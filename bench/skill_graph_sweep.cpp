// SKILL-SWEEP — the declarative skills layer under load.
//
// Series:
//  - BM_SpecPropagate/<spec>: propagate cost vs. graph size/shape for every
//    builtin spec (the §IV ACC graph vs. the three new maneuvers). Runtime
//    self-monitoring must stay cheap no matter which maneuver is active.
//  - BM_SpecParseInstantiate: authoring cost — parse the textual spec form
//    and instantiate the runtime ability graph. This is the "scenario as
//    data" path; it runs at vehicle assembly, not in the control loop.
//  - BM_ManeuverPlatoon/domains: the degradation-triggered split scenario
//    (the workload tests/test_sharded.cpp proves deterministic across
//    domain counts) at 1/2/4 ECU domains. Timing is manual: assembly
//    excluded, run() wall time only.

#include <benchmark/benchmark.h>

#include <chrono>
#include <string>

#include "scenario/presets.hpp"
#include "scenario/scenario_builder.hpp"
#include "skills/capability_registry.hpp"

using namespace sa;
using namespace sa::skills;
using sim::Duration;

namespace {

void BM_SpecPropagate(benchmark::State& state, const char* spec_name) {
    const auto& registry = CapabilityRegistry::builtin();
    AbilityGraph abilities = registry.instantiate_abilities(spec_name);
    // Toggle the first source between two levels so every propagate does
    // real work (no memoized fixpoint).
    std::string source;
    for (const auto& node : abilities.structure().node_names()) {
        if (abilities.structure().node(node).kind == SkillNodeKind::DataSource) {
            source = node;
            break;
        }
    }
    double level = 0.25;
    for (auto _ : state) {
        abilities.set_source_level(source, level);
        level = 1.25 - level; // 0.25 <-> 1.0
        benchmark::DoNotOptimize(abilities.propagate());
    }
    state.counters["nodes"] = static_cast<double>(abilities.structure().node_count());
    state.counters["edges"] = static_cast<double>(abilities.structure().edge_count());
}
BENCHMARK_CAPTURE(BM_SpecPropagate, acc, "acc")->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_SpecPropagate, lane_keep, "lane_keep")
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_SpecPropagate, emergency_stop, "emergency_stop")
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_SpecPropagate, platoon_follow, "platoon_follow")
    ->Unit(benchmark::kMicrosecond);

void BM_SpecParseInstantiate(benchmark::State& state) {
    const std::string text = CapabilityRegistry::builtin().spec("acc").str();
    for (auto _ : state) {
        auto spec = SkillGraphSpec::parse(text);
        benchmark::DoNotOptimize(spec.instantiate_abilities());
    }
    state.counters["text_bytes"] = static_cast<double>(text.size());
}
BENCHMARK(BM_SpecParseInstantiate)->Unit(benchmark::kMicrosecond);

const char* const kVehicles[] = {"alpha", "beta", "gamma"};

void BM_ManeuverPlatoon(benchmark::State& state) {
    const auto domains = static_cast<std::size_t>(state.range(0));
    std::uint64_t events = 0;
    std::uint64_t maneuvers = 0;
    double beta_follow = 1.0;
    for (auto _ : state) {
        scenario::ScenarioBuilder builder(4242);
        builder.domains(domains);
        for (const char* name : kVehicles) {
            scenario::presets::declare_platoon_follow_vehicle(builder, name);
            builder.trust(name, 14).platoon_candidate({name, 0.9, 24.0, 10.0, false});
        }
        platoon::ManeuverPolicy policy;
        policy.check_period = Duration::ms(247); // off any periodic's grid
        builder.platoon_maneuvers(policy);
        builder
            .at(Duration::ms(100),
                [](scenario::Scenario& s) { (void)s.form_managed_platoon(); })
            .at(Duration::ms(600), [](scenario::Scenario& s) {
                auto& abilities = s.vehicle("beta").abilities();
                abilities.set_source_level(caps::kV2vLink, 0.0);
                abilities.set_source_level(acc::kRadar, 0.0);
                abilities.propagate();
            });
        auto scenario = builder.build();

        const auto start = std::chrono::steady_clock::now();
        scenario->run(Duration::sec(2), domains);
        const auto end = std::chrono::steady_clock::now();
        state.SetIterationTime(std::chrono::duration<double>(end - start).count());

        events = scenario->sharded() ? scenario->kernel().executed_events()
                                     : scenario->simulator().executed_events();
        maneuvers = scenario->platoon().history().size();
        beta_follow = scenario->vehicle("beta").abilities().level(caps::kPlatoonFollow);
    }
    state.counters["events"] = static_cast<double>(events);
    state.counters["maneuvers"] = static_cast<double>(maneuvers);
    state.counters["beta_follow"] = beta_follow;
}
BENCHMARK(BM_ManeuverPlatoon)
    ->ArgName("domains")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

} // namespace
