// SHARD — the sharded kernel on the flagship scenario: the dual-bus
// three-vehicle platoon (examples/platoon_dual_bus.cpp) run at 1, 2 and 4
// ECU domains. domains:1 is the single-queue kernel, bit-for-bit today's
// behaviour; the sharded rows run the identical workload (identical
// per-vehicle counters — locked in by tests/test_sharded.cpp) partitioned
// across worker threads with the 20 ms V2V latency as conservative
// lookahead. Wall-clock speedup tracks physical cores; on a single-core
// host the sharded rows surface pure coordination overhead instead.
//
// Timing is manual (UseManualTime): assembly excluded, run() wall time only.

#include <benchmark/benchmark.h>

#include <chrono>
#include <string>

#include "scenario/presets.hpp"
#include "scenario/scenario_builder.hpp"

using namespace sa;
using sim::Duration;
using sim::Time;

namespace {

const char* const kVehicles[] = {"alpha", "beta", "gamma"};

void declare_vehicle(scenario::ScenarioBuilder& builder, const std::string& name) {
    // The canonical preset — identical to the declaration the sharded
    // determinism suite locks in, so this bench measures exactly the
    // workload whose counters are proven stable across domain counts.
    scenario::presets::declare_dual_bus_platoon_vehicle(builder, name);
}

void BM_ShardedDualBusPlatoon(benchmark::State& state) {
    const auto domains = static_cast<std::size_t>(state.range(0));
    std::uint64_t events = 0;
    std::uint64_t windows = 0;
    std::uint64_t cross = 0;
    for (auto _ : state) {
        scenario::ScenarioBuilder builder(2026);
        builder.domains(domains).v2v(0.0, Duration::ms(20));
        for (const char* name : kVehicles) {
            declare_vehicle(builder, name);
        }
        builder.at(Duration::sec(1), [](scenario::Scenario& s) {
            auto& beta = s.vehicle("beta");
            beta.rte().access().grant("perception", "brake_cmd");
            beta.faults().compromise_with_message_storm("perception", "brake_cmd",
                                                        Duration::ms(2));
        });
        auto scenario = builder.build();
        for (const char* name : kVehicles) {
            scenario->v2v().attach(name, scenario->vehicle(name).simulator(),
                                   [](const v2v::Frame&, double) {});
        }
        int slot = 0;
        for (const char* name : kVehicles) {
            scenario->simulator().schedule_periodic(
                Duration::ms(100),
                [&v2v = scenario->v2v(), name] {
                    v2v.transmit(v2v::Medium::cam(name, 0.0, 22.0));
                },
                Duration::ms(10 * ++slot));
        }

        const auto start = std::chrono::steady_clock::now();
        scenario->run(Duration::sec(3), domains);
        const auto end = std::chrono::steady_clock::now();
        state.SetIterationTime(std::chrono::duration<double>(end - start).count());

        if (scenario->sharded()) {
            events = scenario->kernel().executed_events();
            windows = scenario->kernel().windows();
            cross = scenario->kernel().cross_domain_events();
        } else {
            events = scenario->simulator().executed_events();
            windows = 0;
            cross = 0;
        }
    }
    state.counters["events"] = static_cast<double>(events);
    state.counters["windows"] = static_cast<double>(windows);
    state.counters["cross_domain_events"] = static_cast<double>(cross);
}
BENCHMARK(BM_ShardedDualBusPlatoon)
    ->ArgName("domains")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

} // namespace
