// FIG2-LAT — Fig. 2 + §III: "near-native transmit and receive performance
// can be achieved, with an added latency around 7-11 us for a round-trip."
//
// Series reproduced: simulated round-trip latency of an echo transaction
// between two CAN nodes at 500 kbit/s — native controllers vs. virtualized
// controllers with 1..8 active VFs per side. Counters report the simulated
// round-trip time (rt_us) and the overhead over native (overhead_us); the
// paper's claim holds if overhead_us stays within ~7-11 us.

#include <benchmark/benchmark.h>

#include "can/bus.hpp"
#include "can/controller.hpp"
#include "can/virtual_controller.hpp"

using namespace sa;
using namespace sa::can;
using sim::Duration;
using sim::Time;

namespace {

/// One native round trip; returns simulated completion time (us).
double native_round_trip_us() {
    sim::Simulator simulator;
    CanBus bus(simulator, "native", CanBusConfig{500'000, 0.0, 256});
    CanController a(bus, "a");
    CanController b(bus, "b");
    Time done;
    b.add_rx_filter(0x100, 0x7FF,
                    [&](const CanFrame&, Time) { b.send(CanFrame::make(0x200, {1})); });
    a.add_rx_filter(0x200, 0x7FF, [&](const CanFrame&, Time at) { done = at; });
    a.send(CanFrame::make(0x100, {1}));
    simulator.run_until(Time(Duration::ms(50).count_ns()));
    return static_cast<double>(done.ns()) / 1e3;
}

/// One virtualized round trip with `vfs` active VFs per endpoint.
double virtualized_round_trip_us(int vfs) {
    sim::Simulator simulator;
    CanBus bus(simulator, "virt", CanBusConfig{500'000, 0.0, 256});
    VirtualCanController a(bus, "va");
    VirtualCanController b(bus, "vb");
    auto ta = a.take_pf_token();
    auto tb = b.take_pf_token();
    for (int i = 0; i < vfs; ++i) {
        a.pf_create_vf(ta);
        b.pf_create_vf(tb);
    }
    Time done;
    b.vf(0).add_rx_filter(0x100, 0x7FF, [&](const CanFrame&, Time) {
        b.vf(0).send(CanFrame::make(0x200, {1}));
    });
    a.vf(0).add_rx_filter(0x200, 0x7FF, [&](const CanFrame&, Time at) { done = at; });
    a.vf(0).send(CanFrame::make(0x100, {1}));
    simulator.run_until(Time(Duration::ms(50).count_ns()));
    return static_cast<double>(done.ns()) / 1e3;
}

void BM_NativeRoundTrip(benchmark::State& state) {
    double rt = 0.0;
    for (auto _ : state) {
        rt = native_round_trip_us();
        benchmark::DoNotOptimize(rt);
    }
    state.counters["rt_us"] = rt;
}
BENCHMARK(BM_NativeRoundTrip)->Unit(benchmark::kMicrosecond);

void BM_VirtualizedRoundTrip(benchmark::State& state) {
    const int vfs = static_cast<int>(state.range(0));
    const double native = native_round_trip_us();
    double rt = 0.0;
    for (auto _ : state) {
        rt = virtualized_round_trip_us(vfs);
        benchmark::DoNotOptimize(rt);
    }
    state.counters["vfs"] = vfs;
    state.counters["rt_us"] = rt;
    state.counters["overhead_us"] = rt - native;
    state.counters["paper_band"] = (rt - native >= 6.5 && rt - native <= 11.5) ? 1 : 0;
}
BENCHMARK(BM_VirtualizedRoundTrip)->DenseRange(1, 8, 1)->Unit(benchmark::kMicrosecond);

/// Throughput: frames completed per simulated second under saturation —
/// "near-native transmit and receive performance".
void BM_SaturatedThroughput(benchmark::State& state) {
    const bool virtualized = state.range(0) != 0;
    std::uint64_t frames = 0;
    for (auto _ : state) {
        sim::Simulator simulator;
        CanBus bus(simulator, "bus", CanBusConfig{500'000, 0.0, 256});
        if (virtualized) {
            VirtualCanController tx(bus, "tx");
            auto token = tx.take_pf_token();
            auto& vf = tx.pf_create_vf(token, 64);
            std::uint32_t next = 0;
            simulator.schedule_periodic(Duration::us(200), [&] {
                vf.send(CanFrame::make(0x100 + (next++ % 64), {1, 2, 3, 4, 5, 6, 7, 8}));
            });
            simulator.run_until(Time(Duration::sec(1).count_ns()));
            frames = bus.frames_transmitted();
        } else {
            CanController tx(bus, "tx", 64);
            std::uint32_t next = 0;
            simulator.schedule_periodic(Duration::us(200), [&] {
                tx.send(CanFrame::make(0x100 + (next++ % 64), {1, 2, 3, 4, 5, 6, 7, 8}));
            });
            simulator.run_until(Time(Duration::sec(1).count_ns()));
            frames = bus.frames_transmitted();
        }
    }
    state.counters["virtualized"] = virtualized ? 1 : 0;
    state.counters["frames_per_sim_s"] = static_cast<double>(frames);
}
BENCHMARK(BM_SaturatedThroughput)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

} // namespace
