// LEARN-COST — the learned monitor must honour the same §II-B promise as
// the hand-written ones: monitoring "with very little interference on the
// actual functionality." The budget it rides under is the 0.57 ms
// monitor-overhead envelope MON-OVH established.
//
// Series measured: (1) the per-sample MetricModel update (Welford + EWMA,
// the cost paid on every ingested metric), (2) joint-state scoring
// (quantise + leader clustering + surprise, paid once per scoring round),
// and (3) the end-to-end tap path — MonitorManager::ingest() with an
// AnomalyModelMonitor attached vs the bare signal fan-out — which is what
// the vehicle actually pays per metric.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <random>
#include <vector>

#include "learn/anomaly_model_monitor.hpp"
#include "learn/metric_model.hpp"
#include "learn/state_model.hpp"
#include "monitor/manager.hpp"
#include "sim/simulator.hpp"

using namespace sa;

namespace {

/// Pre-generated noisy stream so the RNG is outside the measured loop.
std::vector<double> noise_stream(std::size_t n, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::normal_distribution<double> dist(50.0, 1.5);
    std::vector<double> xs(n);
    for (double& x : xs) {
        x = dist(rng);
    }
    return xs;
}

void BM_MetricModelUpdate(benchmark::State& state) {
    const std::vector<double> xs = noise_stream(4096, 11);
    learn::MetricModel model{learn::MetricModelConfig{}};
    std::size_t i = 0;
    for (auto _ : state) {
        model.update(xs[i++ & 4095]);
        benchmark::DoNotOptimize(model);
    }
    state.counters["drift_z"] = model.drift_z();
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MetricModelUpdate);

void BM_StateModelObserve(benchmark::State& state) {
    const int metric_count = static_cast<int>(state.range(0));
    // A realistic band stream: mostly the origin state with occasional
    // single-band excursions, i.e. the clustered-steady-state regime the
    // in-sim monitor spends its life in.
    std::mt19937_64 rng(23);
    std::uniform_int_distribution<int> band(-1, 1);
    std::vector<std::vector<int>> stream(512);
    for (auto& bands : stream) {
        bands.assign(static_cast<std::size_t>(metric_count), 0);
        bands[static_cast<std::size_t>(rng() % bands.size())] = band(rng);
    }
    learn::StateModel model{learn::StateModelConfig{}};
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.observe(stream[i++ & 511]));
    }
    state.counters["states"] = static_cast<double>(model.state_count());
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StateModelObserve)->Arg(2)->Arg(4)->Arg(8);

/// End-to-end ingest cost with 0 (bare fan-out) or 1 learned monitor
/// attached: the per-metric price the vehicle's pump actually pays.
void BM_IngestWithLearnedMonitor(benchmark::State& state) {
    const bool attached = state.range(0) != 0;
    sim::Simulator simulator(3);
    monitor::MonitorManager manager(simulator);
    learn::LearnedMonitorConfig config;
    config.metrics = {"drive.gap", "drive.speed", "sensor.radar",
                      "sensor.camera"};
    config.auto_metrics = false;
    config.warmup = sim::Duration::ms(0);
    if (attached) {
        manager.add<learn::AnomalyModelMonitor>(manager, config);
    }
    const std::vector<double> xs = noise_stream(4096, 37);
    monitor::Metric metric;
    std::size_t i = 0;
    for (auto _ : state) {
        // One full scoring round: all four tracked metrics ingested once.
        for (const std::string& name : config.metrics) {
            metric.name = name;
            metric.value = xs[i++ & 4095];
            metric.at = sim::Time(static_cast<std::int64_t>(i) * 12'500'000);
            manager.ingest(metric);
        }
    }
    state.counters["learned_monitors"] = attached ? 1 : 0;
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4);
}
BENCHMARK(BM_IngestWithLearnedMonitor)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMicrosecond);

} // namespace
