// MON-OVH — §II-B: monitoring "is actually implemented with very little
// interference on the actual functionality."
//
// Series reproduced: application-task performance (completed jobs, deadline
// misses, CPU utilization) with an increasing number of attached monitors
// plus their periodic overhead tasks. The claim holds if the utilization
// delta stays in the low single digits while monitors deliver full coverage.

#include <benchmark/benchmark.h>

#include "monitor/budget_monitor.hpp"
#include "monitor/deadline_monitor.hpp"
#include "monitor/heartbeat_monitor.hpp"
#include "monitor/manager.hpp"
#include "rte/rte.hpp"

using namespace sa;
using sim::Duration;
using sim::Time;

namespace {

struct RunResult {
    std::uint64_t completed = 0;
    std::uint64_t missed = 0;
    double utilization = 0.0;
    std::uint64_t checks = 0;
};

RunResult run_with_monitors(int monitor_sets) {
    sim::Simulator simulator(3);
    rte::Rte rte(simulator);
    rte::Ecu& ecu = rte.add_ecu(rte::EcuConfig{"ecu0", {1.0}, {}});

    // Application: 5 periodic tasks, ~45% utilization.
    std::vector<rte::TaskId> app_tasks;
    for (int i = 0; i < 5; ++i) {
        rte::RtTaskConfig t;
        t.name = "app" + std::to_string(i);
        t.priority = 10 + i;
        t.period = Duration::ms(5 + i * 5);
        t.wcet = Duration::us(400 + i * 200);
        t.bcet = t.wcet;
        t.randomize_exec = false;
        app_tasks.push_back(ecu.scheduler().add_task(t));
    }

    monitor::MonitorManager monitors(simulator);
    std::vector<monitor::Monitor*> attached;
    for (int m = 0; m < monitor_sets; ++m) {
        auto& deadline = monitors.add<monitor::DeadlineMonitor>(ecu.scheduler());
        auto& budget = monitors.add<monitor::BudgetMonitor>(ecu.scheduler());
        budget.set_mode(monitor::BudgetMode::Warn);
        for (auto id : app_tasks) {
            budget.set_budget(id, Duration::ms(2));
        }
        auto& heartbeat = monitors.add<monitor::HeartbeatMonitor>(
            "app" + std::to_string(m), Duration::ms(100));
        heartbeat.start();
        // Each monitor set costs one periodic check task on the ECU.
        monitors.attach_overhead_task(ecu, Duration::ms(10), Duration::us(50),
                                      100 + m);
        attached.push_back(&deadline);
        attached.push_back(&budget);
        attached.push_back(&heartbeat);
    }

    ecu.scheduler().start();
    simulator.run_until(Time(Duration::sec(5).count_ns()));

    RunResult result;
    result.completed = ecu.scheduler().completed_jobs();
    result.missed = ecu.scheduler().missed_deadlines();
    result.utilization = ecu.scheduler().utilization(simulator.now());
    for (auto* m : attached) {
        result.checks += m->checks();
    }
    return result;
}

void BM_MonitorOverhead(benchmark::State& state) {
    const int sets = static_cast<int>(state.range(0));
    RunResult result;
    for (auto _ : state) {
        result = run_with_monitors(sets);
        benchmark::DoNotOptimize(result);
    }
    const RunResult baseline = run_with_monitors(0);
    state.counters["monitor_sets"] = sets;
    state.counters["app_jobs"] = static_cast<double>(result.completed);
    state.counters["deadline_misses"] = static_cast<double>(result.missed);
    state.counters["cpu_util_pct"] = result.utilization * 100.0;
    state.counters["overhead_util_pct"] =
        (result.utilization - baseline.utilization) * 100.0;
    state.counters["monitor_checks"] = static_cast<double>(result.checks);
}
BENCHMARK(BM_MonitorOverhead)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

} // namespace
