// MON-OVH — §II-B: monitoring "is actually implemented with very little
// interference on the actual functionality."
//
// Series reproduced: application-task performance (completed jobs, deadline
// misses, CPU utilization) with an increasing number of attached monitors
// plus their periodic overhead tasks. The claim holds if the utilization
// delta stays in the low single digits while monitors deliver full coverage.
// The vehicle under test is composed on the sa::scenario builder (the
// measured system includes its assembly, exactly like the hand-wired
// original did).

#include <benchmark/benchmark.h>

#include "scenario/vehicle_builder.hpp"

using namespace sa;
using sim::Duration;
using sim::Time;

namespace {

struct RunResult {
    std::uint64_t completed = 0;
    std::uint64_t missed = 0;
    double utilization = 0.0;
    std::uint64_t checks = 0;
};

RunResult run_with_monitors(int monitor_sets) {
    sim::Simulator simulator(3);
    scenario::VehicleBuilder builder("bench");
    builder.ecu({"ecu0", 1.0, 0.75, model::Asil::D, "cabin", "main"}, {1.0});

    // Application: 5 periodic tasks, ~45% utilization.
    for (int i = 0; i < 5; ++i) {
        rte::RtTaskConfig t;
        t.name = "app" + std::to_string(i);
        t.priority = 10 + i;
        t.period = Duration::ms(5 + i * 5);
        t.wcet = Duration::us(400 + i * 200);
        t.bcet = t.wcet;
        t.randomize_exec = false;
        builder.rt_task("ecu0", t);
    }

    for (int m = 0; m < monitor_sets; ++m) {
        builder.deadline_monitor("ecu0")
            .budget_monitor("ecu0", monitor::BudgetMode::Warn, Duration::ms(2))
            .heartbeat_monitor("app" + std::to_string(m), Duration::ms(100))
            // Each monitor set costs one periodic check task on the ECU.
            .monitor_overhead_task("ecu0", Duration::ms(10), Duration::us(50), 100 + m);
    }

    auto vehicle = builder.build(simulator);
    simulator.run_until(Time(Duration::sec(5).count_ns()));

    RunResult result;
    const auto& scheduler = vehicle->rte().ecu("ecu0").scheduler();
    result.completed = scheduler.completed_jobs();
    result.missed = scheduler.missed_deadlines();
    result.utilization = scheduler.utilization(simulator.now());
    result.checks = vehicle->monitors().total_checks();
    return result;
}

void BM_MonitorOverhead(benchmark::State& state) {
    const int sets = static_cast<int>(state.range(0));
    RunResult result;
    for (auto _ : state) {
        result = run_with_monitors(sets);
        benchmark::DoNotOptimize(result);
    }
    const RunResult baseline = run_with_monitors(0);
    state.counters["monitor_sets"] = sets;
    state.counters["app_jobs"] = static_cast<double>(result.completed);
    state.counters["deadline_misses"] = static_cast<double>(result.missed);
    state.counters["cpu_util_pct"] = result.utilization * 100.0;
    state.counters["overhead_util_pct"] =
        (result.utilization - baseline.utilization) * 100.0;
    state.counters["monitor_checks"] = static_cast<double>(result.checks);
}
BENCHMARK(BM_MonitorOverhead)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

} // namespace
