#!/usr/bin/env python3
"""Regression tests for the run_all.py bench gate.

These run as a plain ctest (label `bench`) and need neither Google Benchmark
nor any real bench binary: fake "benchmark binaries" are tiny shell scripts
that print canned --benchmark_format=json output. What is under test is the
gate logic itself:

  * a bench binary that crashes mid-run fails the run (exit 1, no report
    written) instead of silently shrinking the diff,
  * baseline entries missing from a run fail the --diff gate (exit 2)
    unless --allow-missing is passed,
  * regressions beyond --tolerance fail the gate, matching runs pass.
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile
import unittest

RUN_ALL = os.path.join(os.path.dirname(os.path.abspath(__file__)), "run_all.py")


def bench_json(entries):
    return json.dumps({
        "context": {"host_name": "test"},
        "benchmarks": [
            {"name": name, "run_type": "iteration", "real_time": real_time,
             "time_unit": "ns"}
            for name, real_time in entries
        ],
    })


class RunAllGateTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.mkdtemp(prefix="sa_bench_gate_")
        self.addCleanup(shutil.rmtree, self.tmp, ignore_errors=True)
        self.bin_dir = os.path.join(self.tmp, "bin")
        os.mkdir(self.bin_dir)

    def fake_binary(self, name, stdout_json=None, exit_code=0):
        """A shell script that stands in for a Google Benchmark binary."""
        path = os.path.join(self.bin_dir, name)
        body = "#!/bin/sh\n"
        if stdout_json is not None:
            body += f"cat <<'EOF'\n{stdout_json}\nEOF\n"
        body += f"exit {exit_code}\n"
        with open(path, "w") as fh:
            fh.write(body)
        os.chmod(path, 0o755)
        return path

    def baseline(self, entries):
        """entries: list of (binary, name, real_time)."""
        path = os.path.join(self.tmp, "baseline.json")
        with open(path, "w") as fh:
            json.dump({"benchmarks": [
                {"binary": binary, "name": name, "run_type": "iteration",
                 "real_time": real_time, "time_unit": "ns"}
                for binary, name, real_time in entries
            ]}, fh)
        return path

    def run_gate(self, *extra):
        out = os.path.join(self.tmp, "report.json")
        proc = subprocess.run(
            [sys.executable, RUN_ALL, "--bin-dir", self.bin_dir,
             "--out", out, *extra],
            capture_output=True, text=True, timeout=120)
        return proc, out

    def test_matching_run_passes(self):
        self.fake_binary("bench_a", bench_json([("bm_alpha", 100.0)]))
        base = self.baseline([("bench_a", "bm_alpha", 100.0)])
        proc, out = self.run_gate("--diff", base)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertTrue(os.path.isfile(out))

    def test_crashing_binary_fails_run_and_writes_nothing(self):
        self.fake_binary("bench_a", bench_json([("bm_alpha", 100.0)]))
        self.fake_binary("bench_b", exit_code=3)
        base = self.baseline([("bench_a", "bm_alpha", 100.0)])
        proc, out = self.run_gate("--diff", base)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("bench_b", proc.stderr)
        self.assertFalse(os.path.exists(out),
                         "a partial run must not write the report")

    def test_missing_baseline_entry_fails_gate(self):
        # bench_a still runs fine but no longer emits bm_beta, and bench_gone
        # is not in the bin dir at all — both shrink gate coverage.
        self.fake_binary("bench_a", bench_json([("bm_alpha", 100.0)]))
        base = self.baseline([("bench_a", "bm_alpha", 100.0),
                              ("bench_a", "bm_beta", 50.0),
                              ("bench_gone", "bm_gamma", 10.0)])
        proc, _ = self.run_gate("--diff", base)
        self.assertEqual(proc.returncode, 2, proc.stdout + proc.stderr)
        self.assertIn("GATE FAILURE", proc.stderr)
        self.assertIn("bench gate FAILED", proc.stderr)
        self.assertIn("2 baseline entries missing", proc.stderr)

    def test_allow_missing_demotes_to_warning(self):
        self.fake_binary("bench_a", bench_json([("bm_alpha", 100.0)]))
        base = self.baseline([("bench_a", "bm_alpha", 100.0),
                              ("bench_gone", "bm_gamma", 10.0)])
        proc, _ = self.run_gate("--diff", base, "--allow-missing")
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("WARNING (--allow-missing)", proc.stderr)

    def test_regression_fails_gate(self):
        self.fake_binary("bench_a", bench_json([("bm_alpha", 200.0)]))
        base = self.baseline([("bench_a", "bm_alpha", 100.0)])
        proc, _ = self.run_gate("--diff", base, "--tolerance", "0.25")
        self.assertEqual(proc.returncode, 2, proc.stdout + proc.stderr)
        self.assertIn("REGRESSIONS", proc.stdout)
        self.assertIn("bench gate FAILED", proc.stderr)

    def test_new_entries_do_not_fail_gate(self):
        self.fake_binary("bench_a", bench_json([("bm_alpha", 100.0),
                                                ("bm_new", 42.0)]))
        base = self.baseline([("bench_a", "bm_alpha", 100.0)])
        proc, _ = self.run_gate("--diff", base)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("new entries", proc.stdout)

    def test_update_baseline_merges_only_new_keys(self):
        self.fake_binary("bench_a", bench_json([("bm_alpha", 999.0),
                                                ("bm_new", 42.0)]))
        base = self.baseline([("bench_a", "bm_alpha", 100.0)])
        proc, _ = self.run_gate("--update-baseline", base)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        with open(base) as fh:
            merged = json.load(fh)
        rows = {(e["binary"], e["name"]): e["real_time"]
                for e in merged["benchmarks"]}
        self.assertEqual(rows[("bench_a", "bm_alpha")], 100.0,
                         "existing baseline timings must stay untouched")
        self.assertEqual(rows[("bench_a", "bm_new")], 42.0)


if __name__ == "__main__":
    unittest.main()
