// ROUTE — §V: "a self-aware vehicle could determine whether it plans a
// (possibly shorter) route across an alpine pass in winter or whether it is
// advantageous to take a longer detour without risking degraded performance."
//
// Series reproduced: route choice (pass vs. detour) and expected travel time
// of the weather-blind vs. self-aware planner across a winter-severity sweep.

#include <benchmark/benchmark.h>

#include "vehicle/route_planner.hpp"

using namespace sa::vehicle;

namespace {

void BM_AlpineChoice(benchmark::State& state) {
    const double severity = static_cast<double>(state.range(0)) / 100.0;
    auto planner = make_alpine_example(severity);
    Route blind;
    Route aware;
    for (auto _ : state) {
        blind = planner.plan("home", "destination", 0.0);
        aware = planner.plan("home", "destination", 1.0);
        benchmark::DoNotOptimize(blind);
        benchmark::DoNotOptimize(aware);
    }
    const bool detour = aware.found && aware.waypoints.size() > 1 &&
                        aware.waypoints[1] == std::string("valley_a");
    state.counters["winter_severity_pct"] = severity * 100.0;
    state.counters["aware_takes_detour"] = detour ? 1 : 0;
    state.counters["blind_expected_min"] = blind.expected_minutes;
    state.counters["aware_expected_min"] = aware.expected_minutes;
    state.counters["expected_saving_min"] =
        blind.expected_minutes - aware.expected_minutes;
    state.counters["aware_nominal_min"] = aware.nominal_minutes;
}
BENCHMARK(BM_AlpineChoice)->Arg(0)->Arg(25)->Arg(50)->Arg(75)->Arg(100)
    ->Unit(benchmark::kMicrosecond);

/// Planner scalability on a synthetic grid network.
void BM_GridPlanning(benchmark::State& state) {
    const int size = static_cast<int>(state.range(0));
    RoutePlanner planner;
    auto node = [](int x, int y) {
        return "n" + std::to_string(x) + "_" + std::to_string(y);
    };
    for (int x = 0; x < size; ++x) {
        for (int y = 0; y < size; ++y) {
            if (x + 1 < size) {
                planner.add_road(RoadEdge{node(x, y), node(x + 1, y), 5.0, 80.0,
                                          (x * y) % 3 == 0 ? 0.3 : 0.0, 0.5});
            }
            if (y + 1 < size) {
                planner.add_road(RoadEdge{node(x, y), node(x, y + 1), 5.0, 80.0,
                                          (x + y) % 4 == 0 ? 0.2 : 0.0, 0.5});
            }
        }
    }
    Route route;
    for (auto _ : state) {
        route = planner.plan(node(0, 0), node(size - 1, size - 1), 1.0);
        benchmark::DoNotOptimize(route);
    }
    state.counters["grid"] = size;
    state.counters["edges"] = static_cast<double>(planner.edge_count());
    state.counters["found"] = route.found ? 1 : 0;
    state.counters["hops"] = static_cast<double>(route.waypoints.size());
}
BENCHMARK(BM_GridPlanning)->Arg(4)->Arg(8)->Arg(12)->Unit(benchmark::kMicrosecond);

} // namespace
