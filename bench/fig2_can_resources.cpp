// FIG2-RES — §III: "In terms of FPGA resources, the virtualized solution
// breaks even with multiple stand-alone controllers at four VMs."
//
// Series reproduced: LUT/FF/BRAM cost of (a) one stand-alone controller per
// VM and (b) one virtualized controller serving all VMs, for 1..8 VMs.
// Counter `virt_cheaper` flips to 1 at the break-even point (expected: 4).

#include <benchmark/benchmark.h>

#include "can/resource_model.hpp"

using namespace sa::can;

namespace {

void BM_ResourceComparison(benchmark::State& state) {
    const int vms = static_cast<int>(state.range(0));
    CanControllerResourceModel model;
    FpgaResources virt;
    FpgaResources bank;
    for (auto _ : state) {
        virt = model.virtualized(vms);
        bank = model.standalone_bank(vms);
        benchmark::DoNotOptimize(virt);
        benchmark::DoNotOptimize(bank);
    }
    state.counters["vms"] = vms;
    state.counters["virt_luts"] = static_cast<double>(virt.luts);
    state.counters["bank_luts"] = static_cast<double>(bank.luts);
    state.counters["virt_cost"] = virt.cost();
    state.counters["bank_cost"] = bank.cost();
    state.counters["virt_cheaper"] = virt.cost() <= bank.cost() ? 1 : 0;
}
BENCHMARK(BM_ResourceComparison)->DenseRange(1, 8, 1);

void BM_BreakEvenSearch(benchmark::State& state) {
    CanControllerResourceModel model;
    int break_even = 0;
    for (auto _ : state) {
        break_even = model.break_even_vms();
        benchmark::DoNotOptimize(break_even);
    }
    state.counters["break_even_vms"] = break_even; // paper: 4
}
BENCHMARK(BM_BreakEvenSearch);

} // namespace
