// ACC-SKILL — §IV: ability graphs "are used during operation of the vehicle
// to monitor the current system performance" and enable graceful
// degradation.
//
// Series reproduced:
//  - propagation latency vs. graph size (runtime monitoring must be cheap),
//  - the ACC fog scenario: ability level of the root skill and the safety
//    outcome (min gap, collision) with and without degradation tactics.

#include <benchmark/benchmark.h>

#include "monitor/sensor_quality_monitor.hpp"
#include "skills/acc_graph_factory.hpp"
#include "skills/degradation.hpp"
#include "util/random.hpp"
#include "util/string_util.hpp"
#include "vehicle/vehicle_sim.hpp"

using namespace sa;
using namespace sa::skills;
using sim::Duration;
using sim::Time;

namespace {

/// Random layered DAG: `layers` layers of `width` skills, sources at the
/// bottom, one root on top.
SkillGraph make_layered_graph(int layers, int width, std::uint64_t seed) {
    RandomEngine rng(seed);
    SkillGraph g;
    g.add_skill("root");
    std::vector<std::string> previous{"root"};
    for (int l = 0; l < layers; ++l) {
        std::vector<std::string> current;
        for (int w = 0; w < width; ++w) {
            const std::string name = format("s_%d_%d", l, w);
            g.add_skill(name);
            current.push_back(name);
        }
        for (const auto& parent : previous) {
            // Each parent depends on 2 nodes of the next layer.
            for (int k = 0; k < 2; ++k) {
                const auto& child = current[rng.index(current.size())];
                const auto kids = g.children(parent);
                if (std::find(kids.begin(), kids.end(), child) == kids.end()) {
                    g.add_dependency(parent, child);
                }
            }
        }
        previous = current;
    }
    int source_index = 0;
    for (const auto& leaf : previous) {
        const std::string src = format("src_%d", source_index++);
        g.add_source(src);
        g.add_dependency(leaf, src);
    }
    return g;
}

void BM_Propagate(benchmark::State& state) {
    const int layers = static_cast<int>(state.range(0));
    const int width = static_cast<int>(state.range(1));
    AbilityGraph abilities(make_layered_graph(layers, width, 5));
    RandomEngine rng(9);
    int source_index = 0;
    for (auto _ : state) {
        state.PauseTiming();
        abilities.set_source_level(format("src_%d", source_index++ % width),
                                   rng.uniform(0.0, 1.0));
        state.ResumeTiming();
        benchmark::DoNotOptimize(abilities.propagate());
    }
    state.counters["nodes"] = static_cast<double>(abilities.structure().node_count());
    state.counters["edges"] = static_cast<double>(abilities.structure().edge_count());
}
BENCHMARK(BM_Propagate)->Args({3, 4})->Args({5, 8})->Args({8, 16})->Args({10, 32})
    ->Unit(benchmark::kMicrosecond);

/// The paper's ACC graph: one full degradation + recovery cycle.
void BM_AccGraphCycle(benchmark::State& state) {
    AbilityGraph abilities(make_acc_skill_graph());
    for (auto _ : state) {
        abilities.set_source_level(acc::kCamera, 0.1);
        abilities.propagate();
        abilities.set_source_level(acc::kCamera, 1.0);
        abilities.propagate();
    }
    state.counters["nodes"] = static_cast<double>(abilities.structure().node_count());
}
BENCHMARK(BM_AccGraphCycle)->Unit(benchmark::kMicrosecond);

/// Fog scenario outcome with/without graceful degradation tactics.
void BM_FogScenario(benchmark::State& state) {
    const bool with_tactics = state.range(0) != 0;
    double min_gap = 0.0;
    double root_level = 0.0;
    bool collided = false;
    std::uint64_t tactics_applied = 0;
    for (auto _ : state) {
        sim::Simulator simulator(7);
        vehicle::ScenarioConfig cfg;
        cfg.initial_gap_m = 55.0;
        cfg.ego_speed_mps = 26.0;
        cfg.lead_speed_mps = 22.0;
        vehicle::VehicleSim scenario(simulator, cfg);
        const auto radar = scenario.add_sensor(vehicle::SensorConfig{
            vehicle::SensorType::Radar, "radar", 150.0, 0.3, 0.002});
        const auto camera = scenario.add_sensor(vehicle::SensorConfig{
            vehicle::SensorType::Camera, "camera", 100.0, 0.5, 0.005});

        monitor::SensorQualityConfig mq;
        mq.expected_period = cfg.control_period;
        mq.nominal_noise_sigma = 0.6;
        monitor::SensorQualityMonitor q_radar(simulator, "radar", mq);
        monitor::SensorQualityMonitor q_camera(simulator, "camera", mq);
        scenario.attach_quality_monitor(radar, q_radar);
        scenario.attach_quality_monitor(camera, q_camera);

        AbilityGraph abilities(make_acc_skill_graph());
        abilities.set_aggregation(acc::kPerceiveTrack, Aggregation::WeightedMean);
        abilities.set_dependency_weight(acc::kPerceiveTrack, acc::kRadar, 3.0);
        abilities.set_dependency_weight(acc::kPerceiveTrack, acc::kCamera, 1.0);
        abilities.set_dependency_weight(acc::kPerceiveTrack, acc::kLidar, 1.0);
        abilities.set_source_level(acc::kLidar, 0.0); // not fitted
        abilities.bind_source(acc::kRadar, q_radar);
        abilities.bind_source(acc::kCamera, q_camera);

        DegradationManager tactics;
        if (with_tactics) {
            tactics.register_tactic(Tactic{
                "widen_gap_and_slow", acc::kPerceiveTrack, 0.0, 0.8, 1,
                [&] {
                    scenario.acc().set_time_gap(2.8);
                    scenario.acc().set_speed_limit(14.0);
                },
                nullptr});
            simulator.schedule_periodic(Duration::ms(500),
                                        [&] { (void)tactics.execute(abilities); });
        }
        q_radar.start();
        q_camera.start();
        scenario.set_lead_profile([](Time t) {
            if (t.s() < 20.0) return 22.0;
            if (t.s() < 40.0) return 12.0;
            return 6.0; // lead crawls in the fog
        });
        scenario.start();
        simulator.run_until(Time(Duration::sec(20).count_ns()));
        scenario.set_weather(vehicle::WeatherCondition::dense_fog());
        simulator.run_until(Time(Duration::sec(60).count_ns()));

        min_gap = scenario.gap_stats().min();
        collided = scenario.collided();
        root_level = abilities.level(acc::kAccDriving);
        tactics_applied = tactics.history().size();
    }
    state.counters["with_tactics"] = with_tactics ? 1 : 0;
    state.counters["min_gap_m"] = min_gap;
    state.counters["collided"] = collided ? 1 : 0;
    state.counters["root_ability"] = root_level;
    state.counters["tactics_applied"] = static_cast<double>(tactics_applied);
}
BENCHMARK(BM_FogScenario)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)
    ->Iterations(3);

} // namespace
