// XLAYER-THERM — §V: ambient temperature as a common-cause fault. Series
// reproduced: peak die temperature, DVFS level and deadline misses across an
// ambient sweep, with and without self-aware thermal adaptation — including
// the configuration where naive throttling *would* break deadlines and the
// platform layer must refuse it (model-guarded DVFS).

#include <benchmark/benchmark.h>

#include "util/log.hpp"

#include "core/coordinator.hpp"
#include "core/platform_layer.hpp"
#include "model/contract_parser.hpp"
#include "model/mcc.hpp"
#include "monitor/manager.hpp"
#include "monitor/range_monitor.hpp"
#include "rte/fault_injection.hpp"

using namespace sa;
using sim::Duration;
using sim::Time;

namespace {

// Injection notices are expected here; keep benchmark output clean.
const bool g_quiet = [] {
    Log::set_level(LogLevel::Error);
    return true;
}();

struct Outcome {
    double peak_temp_c = 0.0;
    double final_temp_c = 0.0;
    int dvfs_level = 0;
    std::uint64_t deadline_misses = 0;
    std::uint64_t dvfs_actions = 0;
    std::uint64_t unresolved = 0;
};

Outcome run(double ambient_c, bool self_aware, bool tight_deadlines) {
    sim::Simulator simulator(13);
    model::PlatformModel platform;
    platform.ecus.push_back(
        model::EcuDescriptor{"hot_ecu", 1.0, 0.75, model::Asil::D, "engine_bay", "main"});
    model::Mcc mcc(platform);

    model::ContractParser parser;
    model::ChangeRequest change;
    // Tight deadlines leave no DVFS headroom: the timing model must veto
    // throttling; relaxed deadlines allow stepping down to 0.6x.
    change.contracts = parser.parse(tight_deadlines ? R"(
        component control {
          asil D;
          task loop { wcet 4ms; period 10ms; deadline 4500us; }
        }
        component filter {
          asil C;
          task run { wcet 2ms; period 20ms; deadline 19ms; }
        }
    )"
                                                    : R"(
        component control {
          asil D;
          task loop { wcet 2ms; period 10ms; }
        }
        component filter {
          asil C;
          task run { wcet 3ms; period 20ms; }
        }
    )");
    SA_ASSERT(mcc.integrate(change).accepted, "bench integration must succeed");

    rte::Rte rte(simulator);
    rte::ThermalConfig thermal;
    thermal.ambient_c = 25.0;
    thermal.tau_s = 8.0;
    rte.add_ecu(rte::EcuConfig{"hot_ecu", {1.0, 0.8, 0.6, 0.4}, thermal});
    rte.apply(mcc.make_rte_config());
    rte.start();

    monitor::MonitorManager monitors(simulator);
    core::CrossLayerCoordinator coordinator(simulator);
    core::PlatformLayer* layer_ptr = nullptr;
    if (self_aware) {
        auto& range =
            monitors.add<monitor::RangeMonitor>("thermal", monitor::Domain::Platform);
        range.set_bounds("temp.hot_ecu", -40.0, 85.0, monitor::Severity::Critical);
        rte.ecu("hot_ecu").thermal().temperature_updated().subscribe(
            [&range](double celsius) { range.sample("temp.hot_ecu", celsius); });
        auto layer = std::make_unique<core::PlatformLayer>(rte, mcc);
        layer_ptr = layer.get();
        coordinator.register_layer(std::move(layer));
        coordinator.connect(monitors);
    }

    rte::FaultInjector chaos(rte);
    simulator.schedule(Duration::sec(20), [&chaos, ambient_c] {
        chaos.set_ambient_temperature("hot_ecu", ambient_c);
    });

    Outcome out;
    simulator.schedule_periodic(Duration::ms(500), [&] {
        out.peak_temp_c =
            std::max(out.peak_temp_c, rte.ecu("hot_ecu").thermal().temperature_c());
    });
    simulator.run_until(Time(Duration::sec(150).count_ns()));

    out.final_temp_c = rte.ecu("hot_ecu").thermal().temperature_c();
    out.dvfs_level = rte.ecu("hot_ecu").dvfs_level();
    out.deadline_misses = rte.total_deadline_misses();
    out.dvfs_actions = layer_ptr != nullptr ? layer_ptr->dvfs_actions() : 0;
    out.unresolved = coordinator.problems_unresolved();
    return out;
}

void BM_AmbientSweep(benchmark::State& state) {
    const double ambient = static_cast<double>(state.range(0));
    const bool self_aware = state.range(1) != 0;
    Outcome out;
    for (auto _ : state) {
        out = run(ambient, self_aware, /*tight_deadlines=*/false);
        benchmark::DoNotOptimize(out);
    }
    state.counters["ambient_c"] = ambient;
    state.counters["self_aware"] = self_aware ? 1 : 0;
    state.counters["peak_temp_c"] = out.peak_temp_c;
    state.counters["final_temp_c"] = out.final_temp_c;
    state.counters["dvfs_level"] = out.dvfs_level;
    state.counters["dvfs_actions"] = static_cast<double>(out.dvfs_actions);
    state.counters["deadline_misses"] = static_cast<double>(out.deadline_misses);
}
BENCHMARK(BM_AmbientSweep)
    ->Args({40, 0})->Args({40, 1})
    ->Args({60, 0})->Args({60, 1})
    ->Args({90, 0})->Args({90, 1})
    ->Unit(benchmark::kMillisecond)->Iterations(1);

/// Model-guarded DVFS: with tight deadlines the platform layer must refuse
/// to throttle (adequacy below threshold) instead of causing misses.
void BM_GuardedDvfs(benchmark::State& state) {
    const bool tight = state.range(0) != 0;
    Outcome out;
    for (auto _ : state) {
        out = run(95.0, /*self_aware=*/true, tight);
        benchmark::DoNotOptimize(out);
    }
    state.counters["tight_deadlines"] = tight ? 1 : 0;
    state.counters["dvfs_actions"] = static_cast<double>(out.dvfs_actions);
    state.counters["deadline_misses"] = static_cast<double>(out.deadline_misses);
    state.counters["unresolved_problems"] = static_cast<double>(out.unresolved);
}
BENCHMARK(BM_GuardedDvfs)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)->Iterations(1);

} // namespace
