// FIG1 — Fig. 1 + §II: the closed model/execution-domain loop. The MCC
// integrates change requests through mapping + viewpoint acceptance tests.
//
// Series reproduced: integration latency and acceptance outcome vs. system
// size (number of components), plus the accept/reject discrimination between
// benign and harmful updates. The measured wall-clock time per iteration IS
// the experiment: it is the cost of the automated in-field integration
// process that replaces lab-based re-testing.

#include <benchmark/benchmark.h>

#include "model/mcc.hpp"
#include "scenario/vehicle_builder.hpp"
#include "util/string_util.hpp"

using namespace sa;
using namespace sa::model;
using sim::Duration;

namespace {

/// The platform is declared once on the scenario builder; the benchmark
/// then exercises the MCC against the builder's model-domain product.
PlatformModel make_platform(int ecus) {
    scenario::VehicleBuilder builder("fig1");
    for (int i = 0; i < ecus; ++i) {
        builder.ecu(EcuDescriptor{format("ecu%d", i), 1.0, 0.75, Asil::D,
                                  i % 2 ? "cabin" : "engine_bay", "main"});
    }
    builder.can_bus(BusDescriptor{"can0", 500'000, 0.6})
        .can_bus(BusDescriptor{"can1", 500'000, 0.6});
    return builder.platform_model();
}

Contract make_component(int index, int total) {
    (void)total;
    Contract c;
    c.component = format("comp%03d", index);
    // comp000 is the ASIL-D root service provider; the rest mix levels.
    c.asil = index == 0 ? Asil::D : static_cast<Asil>(index % 5);
    c.security_level = index % 3;
    TaskSpec t;
    t.name = "main";
    t.period = Duration::ms(5 + (index % 4) * 5);
    t.wcet = Duration::us(300 + (index % 7) * 100);
    t.bcet = t.wcet;
    c.tasks.push_back(t);
    // Chain of service dependencies exercises the dependency analyses.
    // Critical clients (ASIL >= C) must depend on an equal-or-higher
    // integrity provider, so they use the ASIL-D root service.
    ProvidedService svc;
    svc.name = format("svc%03d", index);
    svc.max_client_rate_hz = 200.0;
    c.provides.push_back(svc);
    if (index > 0) {
        const bool critical = c.asil >= Asil::C;
        c.requires_.push_back(
            RequiredService{critical ? "svc000" : format("svc%03d", index - 1)});
    }
    MessageSpec m;
    m.name = format("msg%03d", index);
    m.period = Duration::ms(10 + (index % 5) * 10);
    m.payload_bytes = 8;
    m.bus = index % 2 ? "can1" : "can0"; // split load across the two buses
    c.messages.push_back(m);
    return c;
}

/// Full integration of an n-component system from scratch.
void BM_IntegrateSystem(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    scenario::VehicleBuilder contracts_builder("fig1");
    {
        std::vector<Contract> parsed;
        for (int i = 0; i < n; ++i) {
            parsed.push_back(make_component(i, n));
        }
        contracts_builder.contracts(std::move(parsed));
    }
    const ChangeRequest change = contracts_builder.change_request();
    bool accepted = false;
    std::size_t nodes = 0;
    std::size_t edges = 0;
    for (auto _ : state) {
        Mcc mcc(make_platform(std::max(2, n / 8)));
        const auto report = mcc.integrate(change);
        accepted = report.accepted;
        nodes = mcc.dependency_graph().node_count();
        edges = mcc.dependency_graph().edge_count();
        benchmark::DoNotOptimize(report);
    }
    state.counters["components"] = n;
    state.counters["accepted"] = accepted ? 1 : 0;
    state.counters["dep_nodes"] = static_cast<double>(nodes);
    state.counters["dep_edges"] = static_cast<double>(edges);
}
BENCHMARK(BM_IntegrateSystem)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

/// Incremental update onto a running 16-component system (the common
/// in-field case): one new component.
void BM_IncrementalUpdate(benchmark::State& state) {
    const bool harmful = state.range(0) != 0;
    ChangeRequest base;
    for (int i = 0; i < 16; ++i) {
        base.contracts.push_back(make_component(i, 16));
    }
    bool accepted = false;
    for (auto _ : state) {
        state.PauseTiming();
        Mcc mcc(make_platform(4));
        benchmark::DoNotOptimize(mcc.integrate(base));
        ChangeRequest update;
        update.description = harmful ? "harmful" : "benign";
        Contract extra = make_component(16, 17);
        extra.requires_.clear();
        if (harmful) {
            // Unschedulable demand: must be rejected by the timing viewpoint.
            extra.tasks[0].wcet = Duration::ms(9);
            extra.tasks[0].period = Duration::ms(10);
            extra.tasks[0].deadline = Duration::ms(2);
        }
        update.contracts.push_back(extra);
        state.ResumeTiming();
        const auto report = mcc.integrate(update);
        accepted = report.accepted;
        benchmark::DoNotOptimize(report);
    }
    state.counters["harmful"] = harmful ? 1 : 0;
    state.counters["accepted"] = accepted ? 1 : 0; // benign: 1, harmful: 0
}
BENCHMARK(BM_IncrementalUpdate)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// The viewpoint suite alone (acceptance-test cost on a committed model).
void BM_ViewpointSuite(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    Mcc mcc(make_platform(std::max(2, n / 8)));
    ChangeRequest change;
    for (int i = 0; i < n; ++i) {
        change.contracts.push_back(make_component(i, n));
    }
    benchmark::DoNotOptimize(mcc.integrate(change));
    for (auto _ : state) {
        // Re-run the full integration as a no-op update (same contracts).
        ChangeRequest update;
        update.kind = ChangeRequest::Kind::Update;
        update.contracts = change.contracts;
        benchmark::DoNotOptimize(mcc.integrate(update));
    }
    state.counters["components"] = n;
}
BENCHMARK(BM_ViewpointSuite)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

} // namespace
