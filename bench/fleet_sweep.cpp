// FLEET — fleet-scale sweep of the sharded kernel: 8, 32 and 128 light
// vehicles at 1, 2 and 4 ECU domains. Where bench/sharded_kernel.cpp runs
// the heavy dual-bus platoon preset on three vehicles, this sweep holds the
// per-vehicle workload deliberately small (one ECU, two periodic RTE tasks,
// a 100 ms CAM beacon on the shared V2V medium) and scales the vehicle
// count instead — the axis the arena/pool memory layout is built for. In
// steady state every hot structure (event-queue buckets, periodic slots,
// interned metrics, V2V delivery fan-out) is recycled, so the sweep shows
// whether throughput stays linear in fleet size or the kernel drowns in
// allocator traffic.
//
// Timing is manual (UseManualTime): assembly of N vehicles is excluded,
// run() wall time only. Counters report the executed-event totals so the
// sharded rows can be checked for workload identity across domain counts.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>

#include "scenario/scenario_builder.hpp"

using namespace sa;
using sim::Duration;
using sim::Time;

namespace {

std::string vehicle_name(int i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "v%03d", i % 1000);
    return buf;
}

// One light vehicle: a single zone ECU with a 10 ms sense task and a 5 ms
// fuse task (fixed execution times — the sweep measures the kernel, not the
// scheduler's RNG), attached to the V2V medium as a plain endpoint.
void declare_light_vehicle(scenario::ScenarioBuilder& builder,
                           const std::string& name) {
    rte::RtTaskConfig sense;
    sense.name = "sense";
    sense.priority = 1;
    sense.period = Duration::ms(10);
    sense.wcet = Duration::us(200);
    sense.bcet = sense.wcet;
    sense.randomize_exec = false;

    rte::RtTaskConfig fuse;
    fuse.name = "fuse";
    fuse.priority = 2;
    fuse.period = Duration::ms(5);
    fuse.wcet = Duration::us(300);
    fuse.bcet = fuse.wcet;
    fuse.randomize_exec = false;

    builder.vehicle(name)
        .ecu({"zone", 1.0, 0.75, model::Asil::D, "cabin", "main"}, {1.0})
        .rt_task("zone", sense)
        .rt_task("zone", fuse)
        .v2v(0.0);
}

void BM_FleetSweep(benchmark::State& state) {
    const auto vehicles = static_cast<int>(state.range(0));
    const auto domains = static_cast<std::size_t>(state.range(1));
    std::uint64_t events = 0;
    std::uint64_t windows = 0;
    std::uint64_t cross = 0;
    std::uint64_t deliveries = 0;
    for (auto _ : state) {
        scenario::ScenarioBuilder builder(2026);
        builder.domains(domains).v2v(0.0, Duration::ms(20));
        for (int i = 0; i < vehicles; ++i) {
            declare_light_vehicle(builder, vehicle_name(i));
        }
        auto scenario = builder.build();
        // Staggered 100 ms CAM beacons: every vehicle announces itself to
        // the whole fleet, so one transmit fans out to N-1 deliveries.
        for (int i = 0; i < vehicles; ++i) {
            scenario->simulator().schedule_periodic(
                Duration::ms(100),
                [&v2v = scenario->v2v(), name = vehicle_name(i)] {
                    v2v.transmit(v2v::Medium::cam(name, 0.0, 22.0));
                },
                Duration::us(500 * (i + 1)));
        }

        const auto start = std::chrono::steady_clock::now();
        scenario->run(Duration::ms(200), domains);
        const auto end = std::chrono::steady_clock::now();
        state.SetIterationTime(std::chrono::duration<double>(end - start).count());

        if (scenario->sharded()) {
            events = scenario->kernel().executed_events();
            windows = scenario->kernel().windows();
            cross = scenario->kernel().cross_domain_events();
        } else {
            events = scenario->simulator().executed_events();
            windows = 0;
            cross = 0;
        }
        deliveries = scenario->v2v().deliveries();
    }
    state.counters["events"] = static_cast<double>(events);
    state.counters["windows"] = static_cast<double>(windows);
    state.counters["cross_domain_events"] = static_cast<double>(cross);
    state.counters["v2v_deliveries"] = static_cast<double>(deliveries);
    state.counters["events_per_vehicle"] =
        static_cast<double>(events) / static_cast<double>(vehicles);
}
BENCHMARK(BM_FleetSweep)
    ->ArgNames({"vehicles", "domains"})
    ->ArgsProduct({{8, 32, 128}, {1, 2, 4}})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

} // namespace
