// MESH — the multi-hop V2V mesh under load, and its route convergence.
//
// BM_MeshSaturation: a chain of N mesh stacks at 120 m spacing under a
// 150 m radio (only adjacent stacks hear each other directly), beaconing at
// 100 ms with TTL covering the full diameter, sharded across D domains with
// the head unicasting CAMs at the tail. Event throughput scales with N x
// relays; the sharded rows surface the lookahead-window coordination cost on
// the same workload (counters locked in by tests/test_mesh.cpp).
//
// BM_MeshRouteConvergence: simulated time until the head of an 8-stack
// chain first resolves a next hop toward the tail, per next-hop policy —
// the "how long until the mesh is routable" number, reported as sim_ms.
//
// Timing is manual (UseManualTime): assembly excluded, run() wall time only.

#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "mesh/mesh_stack.hpp"
#include "sim/sharded_kernel.hpp"

using namespace sa;
using sim::Duration;
using sim::Time;

namespace {

std::string stack_name(int i) { return "v" + std::to_string(i); }

void BM_MeshSaturation(benchmark::State& state) {
    const int vehicles = static_cast<int>(state.range(0));
    const auto domains = static_cast<std::size_t>(state.range(1));
    std::uint64_t transmissions = 0;
    std::uint64_t deliveries = 0;
    std::uint64_t relays = 0;
    std::uint64_t cams = 0;
    for (auto _ : state) {
        sim::ShardedKernel kernel(domains, 2051);
        v2v::Medium medium(kernel.domain(0), {.loss_probability = 0.1,
                                              .latency = Duration::ms(20),
                                              .range_m = 150.0,
                                              .seed = 2051});
        std::vector<std::unique_ptr<mesh::MeshStack>> stacks;
        for (int i = 0; i < vehicles; ++i) {
            mesh::MeshConfig config;
            config.beacon_ttl = static_cast<std::uint32_t>(vehicles);
            config.beacon_phase = Duration::us(913 * i + 11);
            stacks.push_back(std::make_unique<mesh::MeshStack>(
                stack_name(i), medium,
                kernel.domain(static_cast<std::size_t>(i) % domains), config,
                120.0 * i));
        }
        const std::string tail = stack_name(vehicles - 1);
        kernel.domain(0).schedule_periodic(
            Duration::ms(250),
            [&head = *stacks.front(), tail] { (void)head.send_cam(tail); },
            Duration::ms(100));

        const auto start = std::chrono::steady_clock::now();
        kernel.run_until(Time(Duration::sec(2).count_ns()));
        const auto end = std::chrono::steady_clock::now();
        state.SetIterationTime(std::chrono::duration<double>(end - start).count());

        transmissions = medium.transmissions();
        deliveries = medium.deliveries();
        relays = 0;
        for (const auto& stack : stacks) {
            relays += stack->announces_relayed() + stack->cams_relayed();
        }
        cams = stacks.back()->cams_received();
    }
    state.counters["transmissions"] = static_cast<double>(transmissions);
    state.counters["deliveries"] = static_cast<double>(deliveries);
    state.counters["relays"] = static_cast<double>(relays);
    state.counters["tail_cams"] = static_cast<double>(cams);
}
BENCHMARK(BM_MeshSaturation)
    ->ArgNames({"vehicles", "domains"})
    ->Args({4, 1})
    ->Args({8, 1})
    ->Args({8, 4})
    ->Args({16, 4})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

void BM_MeshRouteConvergence(benchmark::State& state) {
    const auto policy = static_cast<mesh::NextHopPolicy>(state.range(0));
    constexpr int kVehicles = 8;
    double sim_ms = 0.0;
    for (auto _ : state) {
        sim::Simulator sim;
        v2v::Medium medium(sim, {.latency = Duration::ms(20),
                                 .range_m = 150.0,
                                 .seed = 2051});
        std::vector<std::unique_ptr<mesh::MeshStack>> stacks;
        for (int i = 0; i < kVehicles; ++i) {
            mesh::MeshConfig config;
            config.beacon_ttl = kVehicles;
            config.beacon_phase = Duration::us(913 * i + 11);
            config.policy = policy;
            stacks.push_back(std::make_unique<mesh::MeshStack>(
                stack_name(i), medium, sim, config, 120.0 * i));
        }
        const std::string tail = stack_name(kVehicles - 1);

        const auto start = std::chrono::steady_clock::now();
        Time horizon = Time::zero();
        while (!stacks.front()->next_hop(tail).has_value() &&
               horizon.ns() < Duration::sec(10).count_ns()) {
            horizon = Time(horizon.ns() + Duration::ms(10).count_ns());
            sim.run_until(horizon);
        }
        const auto end = std::chrono::steady_clock::now();
        state.SetIterationTime(std::chrono::duration<double>(end - start).count());
        sim_ms = static_cast<double>(horizon.ns()) / 1e6;
    }
    state.counters["sim_ms"] = sim_ms;
}
BENCHMARK(BM_MeshRouteConvergence)
    ->ArgName("policy")
    ->Arg(0)  // hop_count
    ->Arg(1)  // rssi
    ->Arg(2)  // prr
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

} // namespace
