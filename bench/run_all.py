#!/usr/bin/env python3
"""Run every Google Benchmark binary in a directory and aggregate the results.

Each binary is invoked with --benchmark_format=json; the per-binary reports
are merged into a single JSON document (default: BENCH_baseline.json at the
repo root) whose "benchmarks" entries carry a "binary" field naming their
source binary. This file seeds the perf trajectory: later PRs optimising hot
paths (event queue, CAN bus, ...) diff their numbers against it.

Failure behaviour: if ANY binary fails (non-zero exit, timeout, bad JSON)
the script exits non-zero and writes nothing — a committed baseline must
never be clobbered by a partial run. The merged report records the git SHA
(and a "-dirty" suffix when the worktree has uncommitted changes) under
"git_sha" so every baseline is attributable to a revision.

Note: the pinned Google Benchmark (1.7.x) expects --benchmark_min_time as a
plain double in seconds — suffixed forms like "0.01s" are a later addition
and are rejected, so keep MIN_TIME a bare number.
"""

import argparse
import json
import os
import stat
import subprocess
import sys

MIN_TIME = "0.01"  # seconds, plain double — see module docstring


def is_benchmark_binary(path):
    if not os.path.isfile(path):
        return False
    mode = os.stat(path).st_mode
    if not (mode & stat.S_IXUSR):
        return False
    # Skip build-system droppings like CMake scripts.
    return not path.endswith((".py", ".sh", ".cmake", ".txt", ".json"))


def git_sha():
    """Current revision ("<sha>[-dirty]"), or None outside a git checkout."""
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    try:
        sha = subprocess.run(["git", "rev-parse", "HEAD"], cwd=repo_root,
                             capture_output=True, text=True, timeout=30)
        if sha.returncode != 0:
            return None
        dirty = subprocess.run(["git", "status", "--porcelain"], cwd=repo_root,
                               capture_output=True, text=True, timeout=30)
        suffix = "-dirty" if dirty.returncode == 0 and dirty.stdout.strip() else ""
        return sha.stdout.strip() + suffix
    except (OSError, subprocess.TimeoutExpired):
        return None


def run_one(path):
    cmd = [path, "--benchmark_format=json", f"--benchmark_min_time={MIN_TIME}"]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=1800)
    except subprocess.TimeoutExpired:
        print(f"TIMEOUT (1800s): {' '.join(cmd)}", file=sys.stderr)
        return None
    if proc.returncode != 0:
        print(f"FAILED: {' '.join(cmd)}\n{proc.stderr}", file=sys.stderr)
        return None
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError as err:
        print(f"BAD JSON from {' '.join(cmd)}: {err}", file=sys.stderr)
        return None


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bin-dir", required=True,
                        help="directory holding the benchmark binaries")
    parser.add_argument("--out", required=True,
                        help="path of the aggregated JSON report")
    args = parser.parse_args()

    if not os.path.isdir(args.bin_dir):
        print(f"--bin-dir {args.bin_dir} is not a directory", file=sys.stderr)
        return 1
    binaries = sorted(
        os.path.join(args.bin_dir, name)
        for name in os.listdir(args.bin_dir)
        if is_benchmark_binary(os.path.join(args.bin_dir, name))
    )
    if not binaries:
        print(f"no benchmark binaries found in {args.bin_dir}", file=sys.stderr)
        return 1

    merged = {"context": None, "git_sha": git_sha(), "benchmarks": []}
    failed = []
    for path in binaries:
        name = os.path.basename(path)
        print(f"running {name} ...", flush=True)
        report = run_one(path)
        if report is None:
            failed.append(name)
            continue
        if merged["context"] is None:
            merged["context"] = report.get("context")
        for entry in report.get("benchmarks", []):
            entry["binary"] = name
            merged["benchmarks"].append(entry)

    if failed:
        # Never clobber a committed baseline with a partial run.
        print(f"{len(failed)}/{len(binaries)} binaries failed "
              f"({', '.join(failed)}) — not writing {args.out}", file=sys.stderr)
        return 1

    if not merged["benchmarks"]:
        print(f"no benchmark entries produced — not writing {args.out}",
              file=sys.stderr)
        return 1

    tmp_out = args.out + ".tmp"
    with open(tmp_out, "w") as fh:
        json.dump(merged, fh, indent=2)
        fh.write("\n")
    os.replace(tmp_out, args.out)
    print(f"wrote {len(merged['benchmarks'])} benchmark entries from "
          f"{len(binaries)}/{len(binaries)} binaries to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
