#!/usr/bin/env python3
"""Run every Google Benchmark binary in a directory and aggregate the results.

Each binary is invoked with --benchmark_format=json; the per-binary reports
are merged into a single JSON document (default: BENCH_baseline.json at the
repo root) whose "benchmarks" entries carry a "binary" field naming their
source binary. This file seeds the perf trajectory: later PRs optimising hot
paths (event queue, CAN bus, ...) diff their numbers against it.

Modes shared by CI and the local workflow:
  --quick            reduced measurement time per benchmark (noisier, ~5x
                     faster) — what the CI bench-gate runs on every PR
  --diff BASELINE    after aggregating, compare wall times (real_time)
                     entry-by-entry against BASELINE and exit non-zero when
                     any entry regressed beyond --tolerance (default 0.25,
                     i.e. +25%). Entries new in this run are reported but do
                     not fail the gate; baseline entries MISSING from this
                     run DO fail it (a crashed or removed bench binary must
                     not silently shrink coverage) unless --allow-missing is
                     passed for a deliberate bench removal. With
                     --quick, flagged binaries are re-run with 3 repetitions
                     at the full measurement time and each entry is judged on
                     the best observation — wall-time noise (preemption, VM
                     steal) only ever inflates, so only real regressions stay
                     slow in every sample.
  --report-allocs    after aggregating, print every benchmark entry that
                     carries allocation-harness counters (counter names
                     containing "alloc" or "recycle", e.g. the event queue's
                     steady_allocs_per_wave / bucket_recycle_hit_rate) as a
                     table — a quick eyeball of pool health without opening
                     the JSON. Purely informational; the hard zero-allocation
                     pins live in tests/test_alloc.cpp.
  --update-baseline BASELINE
                     merge entries that are new in this run (key: binary +
                     benchmark name) into BASELINE. Existing baseline rows
                     keep their committed timings untouched — only missing
                     rows are added — and the merged "benchmarks" list is
                     rewritten sorted by (binary, name) with sorted JSON
                     keys, so the result is deterministic regardless of run
                     order: adding a bench satellite no longer means
                     hand-editing BENCH_baseline.json.

Failure behaviour: if ANY binary fails (non-zero exit, timeout, bad JSON)
the script exits non-zero and writes nothing — a committed baseline must
never be clobbered by a partial run. The merged report records the git SHA
(and a "-dirty" suffix when the worktree has uncommitted changes) under
"git_sha" so every baseline is attributable to a revision.

Note: the pinned Google Benchmark (1.7.x) expects --benchmark_min_time as a
plain double in seconds — suffixed forms like "0.01s" are a later addition
and are rejected, so keep the min-time values bare numbers.
"""

import argparse
import json
import os
import stat
import subprocess
import sys

MIN_TIME = "0.01"        # seconds, plain double — see module docstring
QUICK_MIN_TIME = "0.002" # --quick: noisier, ~5x faster


def is_benchmark_binary(path):
    if not os.path.isfile(path):
        return False
    mode = os.stat(path).st_mode
    if not (mode & stat.S_IXUSR):
        return False
    # Skip build-system droppings like CMake scripts.
    return not path.endswith((".py", ".sh", ".cmake", ".txt", ".json"))


def git_sha():
    """Current revision ("<sha>[-dirty]"), or None outside a git checkout."""
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    try:
        sha = subprocess.run(["git", "rev-parse", "HEAD"], cwd=repo_root,
                             capture_output=True, text=True, timeout=30)
        if sha.returncode != 0:
            return None
        dirty = subprocess.run(["git", "status", "--porcelain"], cwd=repo_root,
                               capture_output=True, text=True, timeout=30)
        suffix = "-dirty" if dirty.returncode == 0 and dirty.stdout.strip() else ""
        return sha.stdout.strip() + suffix
    except (OSError, subprocess.TimeoutExpired):
        return None


def run_one(path, min_time, repetitions=None):
    cmd = [path, "--benchmark_format=json", f"--benchmark_min_time={min_time}"]
    if repetitions:
        cmd.append(f"--benchmark_repetitions={repetitions}")
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=1800)
    except subprocess.TimeoutExpired:
        print(f"TIMEOUT (1800s): {' '.join(cmd)}", file=sys.stderr)
        return None
    if proc.returncode != 0:
        print(f"FAILED: {' '.join(cmd)}\n{proc.stderr}", file=sys.stderr)
        return None
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError as err:
        print(f"BAD JSON from {' '.join(cmd)}: {err}", file=sys.stderr)
        return None


def entry_key(entry):
    """Stable identity of one benchmark row across runs."""
    return (entry.get("binary", ""), entry.get("name", ""))


def best_iterations(report, binary):
    """Per-key minimum-wall-time iteration entries of one binary's report.

    With --benchmark_repetitions each benchmark appears several times (plus
    aggregate rows, which are dropped); the minimum is the robust wall-time
    estimator — noise only ever inflates it.
    """
    best = {}
    for entry in report.get("benchmarks", []):
        if entry.get("run_type", "iteration") != "iteration":
            continue
        entry["binary"] = binary
        key = entry_key(entry)
        kept = best.get(key)
        if kept is None or entry.get("real_time", 0.0) < kept.get("real_time", 0.0):
            best[key] = entry
    return [best[key] for key in sorted(best)]


def update_baseline(merged, baseline_path):
    """Merge entries missing from the baseline into it, deterministically.

    Existing rows keep their committed timings (a quick local run must never
    silently replace reference numbers); only keys absent from the baseline
    are copied in from `merged`. The result is written with the benchmark
    list sorted by (binary, name) and JSON keys sorted, so two machines
    merging the same new bench produce byte-identical baselines.
    """
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    existing = {entry_key(e) for e in baseline.get("benchmarks", [])}
    added = []
    for entry in merged["benchmarks"]:
        if entry.get("run_type", "iteration") != "iteration":
            continue
        if entry_key(entry) not in existing:
            baseline.setdefault("benchmarks", []).append(entry)
            added.append(entry_key(entry))
    baseline["benchmarks"].sort(key=entry_key)
    tmp = baseline_path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(baseline, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, baseline_path)
    if added:
        print(f"\nmerged {len(added)} new entr{'y' if len(added) == 1 else 'ies'} "
              f"into {baseline_path}:")
        for binary, name in sorted(added):
            print(f"  + {binary}:{name}")
    else:
        print(f"\nno new entries for {baseline_path} (rewritten sorted)")


def report_allocs(merged):
    """Print allocation-harness counters of the aggregated report.

    A counter belongs to the harness when its name mentions "alloc" or
    "recycle" (the event queue's steady_allocs_per_wave and the bucket
    pool's recycle/created/acquire counters use both stems). Entries without
    such counters are skipped; benches opt in simply by exporting them.
    """
    rows = []
    for entry in merged["benchmarks"]:
        if entry.get("run_type", "iteration") != "iteration":
            continue
        counters = {
            key: value
            for key, value in entry.items()
            if isinstance(value, (int, float))
            and ("alloc" in key.lower() or "recycle" in key.lower())
        }
        if counters:
            rows.append((entry.get("binary", ""), entry.get("name", ""), counters))
    print("\nallocation-harness counters:")
    if not rows:
        print("  (no benchmark exported alloc/recycle counters)")
        return
    for binary, name, counters in sorted(rows, key=lambda r: (r[0], r[1])):
        rendered = ", ".join(f"{key}={value:g}"
                             for key, value in sorted(counters.items()))
        print(f"  {binary}:{name}: {rendered}")


def diff_against_baseline(merged, baseline_path, tolerance, allow_missing):
    """Compare wall times against a baseline report.

    Returns (regressed_keys, missing_keys): entries slower than baseline by
    more than `tolerance` (as a fraction), and baseline entries absent from
    this run. Missing entries mean a bench binary crashed mid-run, dropped a
    benchmark, or was removed from the build — all of which silently shrink
    the gate's coverage, so they FAIL the gate unless `allow_missing` is
    set. Prints a human-readable table of regressions, improvements beyond
    the tolerance, new entries and missing entries.
    """
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    base = {entry_key(e): e for e in baseline.get("benchmarks", [])
            if e.get("run_type", "iteration") == "iteration"}
    current = {entry_key(e): e for e in merged["benchmarks"]
               if e.get("run_type", "iteration") == "iteration"}

    regressions, improvements, new = [], [], []
    for key, entry in sorted(current.items()):
        if key not in base:
            new.append(key)
            continue
        before = base[key].get("real_time", 0.0)
        after = entry.get("real_time", 0.0)
        if before <= 0.0:
            continue
        ratio = after / before
        if ratio > 1.0 + tolerance:
            regressions.append((key, before, after, ratio))
        elif ratio < 1.0 - tolerance:
            improvements.append((key, before, after, ratio))
    missing = sorted(k for k in base if k not in current)

    def show(rows, label, sign):
        if rows:
            print(f"\n{label}:")
            for (binary, name), before, after, ratio in rows:
                print(f"  {sign} {binary}:{name}: {before:.1f} -> {after:.1f} "
                      f"{base[(binary, name)].get('time_unit', 'ns')} "
                      f"({(ratio - 1.0) * 100.0:+.1f}%)")

    show(regressions, f"REGRESSIONS (> +{tolerance * 100:.0f}% wall time)", "!!")
    show(improvements, f"improvements (< -{tolerance * 100:.0f}% wall time)", "ok")
    if new:
        print(f"\nnew entries (not in {os.path.basename(baseline_path)}):")
        for binary, name in new:
            print(f"  + {binary}:{name}")
    if missing:
        label = ("WARNING (--allow-missing)" if allow_missing
                 else "GATE FAILURE")
        print(f"\n{label}: entries in the baseline but not in this run "
              f"(crashed bench binary? removed bench? update the baseline "
              f"deliberately):", file=sys.stderr)
        for binary, name in missing:
            print(f"  - {binary}:{name}", file=sys.stderr)
    print(f"\ndiff vs {baseline_path}: {len(regressions)} regression(s), "
          f"{len(improvements)} improvement(s), {len(new)} new, "
          f"{len(missing)} missing "
          f"({len(current)} entries compared at ±{tolerance * 100:.0f}%)")
    return [key for key, *_ in regressions], missing


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bin-dir", required=True,
                        help="directory holding the benchmark binaries")
    parser.add_argument("--out", required=True,
                        help="path of the aggregated JSON report")
    parser.add_argument("--quick", action="store_true",
                        help=f"reduced measurement time per benchmark "
                             f"(min_time {QUICK_MIN_TIME}s instead of "
                             f"{MIN_TIME}s)")
    parser.add_argument("--report-allocs", action="store_true",
                        help="print allocation-harness counters (names "
                             "containing alloc/recycle) of every benchmark "
                             "entry after aggregating")
    parser.add_argument("--diff", metavar="BASELINE",
                        help="after running, diff wall times against this "
                             "baseline JSON and exit non-zero on regression")
    parser.add_argument("--update-baseline", metavar="BASELINE",
                        help="merge entries new in this run into BASELINE "
                             "(existing rows untouched; output sorted and "
                             "therefore deterministic)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed wall-time regression as a fraction "
                             "(default 0.25 = +25%%)")
    parser.add_argument("--allow-missing", action="store_true",
                        help="with --diff: demote baseline entries missing "
                             "from this run to a warning (default: they fail "
                             "the gate, because a crashed or removed bench "
                             "binary silently shrinks gate coverage)")
    args = parser.parse_args()

    if not os.path.isdir(args.bin_dir):
        print(f"--bin-dir {args.bin_dir} is not a directory", file=sys.stderr)
        return 1
    binaries = sorted(
        os.path.join(args.bin_dir, name)
        for name in os.listdir(args.bin_dir)
        if is_benchmark_binary(os.path.join(args.bin_dir, name))
    )
    if not binaries:
        print(f"no benchmark binaries found in {args.bin_dir}", file=sys.stderr)
        return 1

    min_time = QUICK_MIN_TIME if args.quick else MIN_TIME
    merged = {"context": None, "git_sha": git_sha(), "benchmarks": []}
    failed = []
    for path in binaries:
        name = os.path.basename(path)
        print(f"running {name} ...", flush=True)
        report = run_one(path, min_time)
        if report is None:
            failed.append(name)
            continue
        if merged["context"] is None:
            merged["context"] = report.get("context")
        for entry in report.get("benchmarks", []):
            entry["binary"] = name
            merged["benchmarks"].append(entry)

    if failed:
        # Never clobber a committed baseline with a partial run.
        print(f"{len(failed)}/{len(binaries)} binaries failed "
              f"({', '.join(failed)}) — not writing {args.out}", file=sys.stderr)
        return 1

    if not merged["benchmarks"]:
        print(f"no benchmark entries produced — not writing {args.out}",
              file=sys.stderr)
        return 1

    tmp_out = args.out + ".tmp"
    with open(tmp_out, "w") as fh:
        json.dump(merged, fh, indent=2)
        fh.write("\n")
    os.replace(tmp_out, args.out)
    print(f"wrote {len(merged['benchmarks'])} benchmark entries from "
          f"{len(binaries)}/{len(binaries)} binaries to {args.out}")

    if args.report_allocs:
        report_allocs(merged)

    if args.update_baseline:
        if not os.path.isfile(args.update_baseline):
            print(f"--update-baseline {args.update_baseline} not found",
                  file=sys.stderr)
            return 1
        update_baseline(merged, args.update_baseline)

    if args.diff:
        if not os.path.isfile(args.diff):
            print(f"--diff baseline {args.diff} not found", file=sys.stderr)
            return 1
        regressed, missing = diff_against_baseline(merged, args.diff,
                                                   args.tolerance,
                                                   args.allow_missing)
        if regressed and args.quick:
            # A quick pass is noisy: confirm the flagged binaries with three
            # repetitions at the full measurement time and judge each entry
            # on the best of all observations (quick + 3 reps). Noise —
            # scheduler preemption, VM steal time — only ever inflates wall
            # time, so a real regression is the only thing that stays slow
            # in every sample.
            confirm = sorted({binary for binary, _ in regressed})
            print(f"\nconfirming at full measurement time (x3): "
                  f"{', '.join(confirm)}")
            quick_times = {entry_key(e): e.get("real_time")
                           for e in merged["benchmarks"]
                           if e.get("binary") in set(confirm)}
            for name in confirm:
                report = run_one(os.path.join(args.bin_dir, name), MIN_TIME,
                                 repetitions=3)
                if report is None:
                    return 1
                merged["benchmarks"] = [e for e in merged["benchmarks"]
                                        if e.get("binary") != name]
                for entry in best_iterations(report, name):
                    quick = quick_times.get(entry_key(entry))
                    if quick and quick < entry.get("real_time", 0.0):
                        entry = dict(entry, real_time=quick)
                    merged["benchmarks"].append(entry)
            with open(tmp_out, "w") as fh:
                json.dump(merged, fh, indent=2)
                fh.write("\n")
            os.replace(tmp_out, args.out)
            regressed, missing = diff_against_baseline(merged, args.diff,
                                                       args.tolerance,
                                                       args.allow_missing)
        if regressed or (missing and not args.allow_missing):
            causes = []
            if regressed:
                causes.append(f"{len(regressed)} regression(s)")
            if missing and not args.allow_missing:
                causes.append(f"{len(missing)} baseline entr"
                              f"{'y' if len(missing) == 1 else 'ies'} "
                              f"missing from this run")
            print(f"\nbench gate FAILED: {', '.join(causes)}",
                  file=sys.stderr)
            return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
