// WCRT — §II-A: "a worst-case response time analysis can check real-time
// constraints based on a timing model of the system."
//
// Series reproduced: acceptance-test cost (analysis wall time) and result
// (schedulable fraction, max WCRT) vs. task-set size and utilization — the
// scalability that makes the MCC's online acceptance tests viable.

#include <benchmark/benchmark.h>

#include "analysis/can_wcrt.hpp"
#include "analysis/cpu_wcrt.hpp"
#include "util/random.hpp"

using namespace sa;
using namespace sa::analysis;
using sim::Duration;

namespace {

CpuResourceModel make_taskset(int n, double utilization, std::uint64_t seed) {
    RandomEngine rng(seed);
    CpuResourceModel cpu;
    cpu.name = "bench";
    // UUniFast-style utilization split.
    std::vector<double> shares(static_cast<std::size_t>(n), 0.0);
    double remaining = utilization;
    for (int i = 0; i < n - 1; ++i) {
        const double next =
            remaining * std::pow(rng.uniform(0.0, 1.0), 1.0 / (n - 1 - i));
        shares[static_cast<std::size_t>(i)] = remaining - next;
        remaining = next;
    }
    shares[static_cast<std::size_t>(n - 1)] = remaining;
    for (int i = 0; i < n; ++i) {
        TaskModel t;
        t.name = "t" + std::to_string(i);
        const auto period = Duration::us(rng.uniform_int(1'000, 100'000));
        t.activation = EventModel::periodic(period);
        const auto wcet_ns = static_cast<std::int64_t>(
            shares[static_cast<std::size_t>(i)] * static_cast<double>(period.count_ns()));
        t.wcet = Duration(std::max<std::int64_t>(wcet_ns, 1'000));
        t.bcet = t.wcet;
        cpu.tasks.push_back(t);
    }
    // Rate-monotonic priorities (as the MCC's mapper would assign them).
    std::sort(cpu.tasks.begin(), cpu.tasks.end(),
              [](const TaskModel& a, const TaskModel& b) {
                  return a.activation.period() < b.activation.period();
              });
    int prio = 1;
    for (auto& t : cpu.tasks) {
        t.priority = prio++;
    }
    return cpu;
}

void BM_CpuWcrtBySize(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    const auto cpu = make_taskset(n, 0.7, 42);
    CpuWcrtAnalysis analysis;
    ResourceAnalysisResult result;
    for (auto _ : state) {
        result = analysis.analyze(cpu);
        benchmark::DoNotOptimize(result);
    }
    int schedulable = 0;
    double max_wcrt_ms = 0.0;
    for (const auto& e : result.entities) {
        schedulable += e.schedulable ? 1 : 0;
        max_wcrt_ms = std::max(max_wcrt_ms, e.wcrt.to_ms());
    }
    state.counters["tasks"] = n;
    state.counters["schedulable"] = schedulable;
    state.counters["max_wcrt_ms"] = max_wcrt_ms;
}
BENCHMARK(BM_CpuWcrtBySize)->Arg(4)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

void BM_CpuWcrtByUtilization(benchmark::State& state) {
    const double utilization = static_cast<double>(state.range(0)) / 100.0;
    const auto cpu = make_taskset(32, utilization, 7);
    CpuWcrtAnalysis analysis;
    ResourceAnalysisResult result;
    for (auto _ : state) {
        result = analysis.analyze(cpu);
        benchmark::DoNotOptimize(result);
    }
    state.counters["utilization_pct"] = utilization * 100.0;
    state.counters["all_schedulable"] = result.all_schedulable ? 1 : 0;
}
BENCHMARK(BM_CpuWcrtByUtilization)->Arg(50)->Arg(70)->Arg(85)->Arg(95)
    ->Unit(benchmark::kMicrosecond);

void BM_CanWcrt(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    CanBusModel bus;
    bus.name = "bench";
    bus.bitrate_bps = 500'000;
    RandomEngine rng(11);
    for (int i = 0; i < n; ++i) {
        CanMessageModel m;
        m.name = "m" + std::to_string(i);
        m.can_id = 0x100 + static_cast<std::uint32_t>(i);
        m.payload_bytes = static_cast<int>(rng.uniform_int(1, 8));
        m.activation =
            EventModel::periodic(Duration::ms(rng.uniform_int(10, 100)));
        bus.messages.push_back(m);
    }
    CanWcrtAnalysis analysis;
    ResourceAnalysisResult result;
    for (auto _ : state) {
        result = analysis.analyze(bus);
        benchmark::DoNotOptimize(result);
    }
    state.counters["messages"] = n;
    state.counters["bus_util_pct"] = CanWcrtAnalysis::utilization(bus) * 100.0;
    state.counters["all_schedulable"] = result.all_schedulable ? 1 : 0;
}
BENCHMARK(BM_CanWcrt)->Arg(8)->Arg(32)->Arg(64)->Unit(benchmark::kMicrosecond);

} // namespace
