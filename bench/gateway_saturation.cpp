// GW-SAT — the ROADMAP's multi-bus fan-out saturation bench: k buses chained
// by gateways inside each of n vehicles, every vehicle pumping object frames
// down its chain, plus V2V cooperative awareness coupling the vehicles.
//
// Two questions are measured:
//   1. Saturation: how does wall time scale with vehicles x buses x gateways
//      on the single-queue kernel (domains:1)?
//   2. Sharding: with the same workload partitioned across ECU domains
//      (ScenarioBuilder::domains(n)), how does wall time scale with domain
//      count? Cross-domain coupling is the 20 ms V2V beacon latency — the
//      conservative lookahead — so each parallel window carries ~20 ms of
//      dense per-domain gateway traffic. Speedup tracks physical cores: on a
//      single-core host the sharded rows only add coordination overhead.
//
// BM_BridgedBackbone adds the adversarial variant: scenario-level bridges
// (cross-vehicle, cross-domain gateway routes at 100 us forward latency)
// shrink the lookahead window 200x, measuring what fine-grained cross-domain
// coupling costs the sharded kernel in barriers.
//
// Timing is manual (UseManualTime): scenario assembly is excluded, the
// parallel run() is what's measured, wall-clock.

#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <string>

#include "scenario/scenario_builder.hpp"

using namespace sa;
using sim::Duration;
using sim::Time;

namespace {

constexpr std::uint32_t kObjectIdBase = 0x100;

std::string vehicle_name(int i) { return "veh" + std::to_string(i); }

void declare_fanout_vehicle(scenario::ScenarioBuilder& builder,
                            const std::string& name, int buses) {
    rte::RtTaskConfig obj_tx;
    obj_tx.name = "obj_tx";
    obj_tx.priority = 100;
    obj_tx.period = Duration::ms(1);
    obj_tx.wcet = Duration::us(100);
    obj_tx.bcet = obj_tx.wcet;
    obj_tx.randomize_exec = false;
    rte::RtTaskConfig sink;
    sink.name = "sink";
    sink.priority = 90;
    sink.period = Duration::zero(); // sporadic: released by the last hop
    sink.wcet = Duration::us(20);
    sink.randomize_exec = false;

    auto& vehicle = builder.vehicle(name);
    vehicle.ecu({"zone0", 1.0, 0.75, model::Asil::D, "front", "main"}, {1.0});
    // One gateway PER HOP (m = k-1 gateways): a single gateway cannot chain
    // hops, because the ingress filter of hop i+1 would sit on the very
    // controller that egressed hop i, and controllers do not receive their
    // own transmissions.
    for (int b = 0; b < buses; ++b) {
        vehicle.can_bus({"bus" + std::to_string(b), 500'000, 0.6});
        if (b > 0) {
            vehicle.can_gateway({"gw" + std::to_string(b - 1),
                                 {{"bus" + std::to_string(b - 1),
                                   "bus" + std::to_string(b), kObjectIdBase,
                                   0x700}},
                                 Duration::us(50)});
        }
    }
    vehicle.rt_task("zone0", obj_tx)
        .rt_task("zone0", sink)
        .can_tx_on_completion("zone0", "obj_tx", "bus0",
                              can::CanFrame::make(kObjectIdBase, {1, 2, 3, 4}))
        .can_rx_activation("zone0", "sink", "bus" + std::to_string(buses - 1),
                           kObjectIdBase, 0x700);
}

std::unique_ptr<scenario::Scenario> build_fanout(int vehicles, int buses,
                                                 std::size_t domains) {
    scenario::ScenarioBuilder builder(2027);
    builder.domains(domains).v2v(0.0, Duration::ms(20));
    for (int i = 0; i < vehicles; ++i) {
        declare_fanout_vehicle(builder, vehicle_name(i), buses);
    }
    auto scenario = builder.build();
    // Cooperative awareness: every vehicle beacons from its own domain.
    for (int i = 0; i < vehicles; ++i) {
        const std::string name = vehicle_name(i);
        scenario->v2v().attach(name, scenario->vehicle(name).simulator(),
                               [](const v2v::Frame&, double) {});
        scenario->vehicle(name).simulator().schedule_periodic(
            Duration::ms(100),
            [&v2v = scenario->v2v(), name] {
                v2v.transmit(v2v::Medium::cam(name, 0.0, 25.0));
            },
            Duration::ms(1 + i));
    }
    return scenario;
}

void BM_GatewaySaturation(benchmark::State& state) {
    const int vehicles = static_cast<int>(state.range(0));
    const int buses = static_cast<int>(state.range(1));
    const auto domains = static_cast<std::size_t>(state.range(2));
    std::uint64_t forwards = 0;
    std::uint64_t events = 0;
    std::uint64_t windows = 0;
    std::uint64_t cross = 0;
    for (auto _ : state) {
        auto scenario = build_fanout(vehicles, buses, domains);
        const auto start = std::chrono::steady_clock::now();
        scenario->run(Duration::ms(200), domains);
        const auto end = std::chrono::steady_clock::now();
        state.SetIterationTime(std::chrono::duration<double>(end - start).count());
        forwards = 0;
        for (int i = 0; i < vehicles; ++i) {
            auto& vehicle = scenario->vehicle(vehicle_name(i));
            for (int b = 0; b + 1 < buses; ++b) {
                forwards += vehicle.bus_gateway("gw" + std::to_string(b))
                                .frames_forwarded();
            }
        }
        if (scenario->sharded()) {
            events = scenario->kernel().executed_events();
            windows = scenario->kernel().windows();
            cross = scenario->kernel().cross_domain_events();
        } else {
            events = scenario->simulator().executed_events();
            windows = 0;
            cross = 0;
        }
    }
    state.counters["frames_forwarded"] = static_cast<double>(forwards);
    state.counters["events"] = static_cast<double>(events);
    state.counters["windows"] = static_cast<double>(windows);
    state.counters["cross_domain_events"] = static_cast<double>(cross);
}
BENCHMARK(BM_GatewaySaturation)
    ->ArgNames({"vehicles", "buses", "domains"})
    // Saturation scaling on the single-queue kernel.
    ->Args({4, 3, 1})
    ->Args({8, 3, 1})
    ->Args({16, 3, 1})
    ->Args({8, 5, 1})
    // Domain scaling of the same workload (speedup tracks physical cores).
    ->Args({8, 3, 2})
    ->Args({8, 3, 4})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

std::unique_ptr<scenario::Scenario> build_backbone(int vehicles,
                                                   std::size_t domains) {
    scenario::ScenarioBuilder builder(2028);
    builder.domains(domains);
    for (int i = 0; i < vehicles; ++i) {
        rte::RtTaskConfig obj_tx;
        obj_tx.name = "obj_tx";
        obj_tx.priority = 100;
        obj_tx.period = Duration::ms(2);
        obj_tx.wcet = Duration::us(100);
        obj_tx.bcet = obj_tx.wcet;
        obj_tx.randomize_exec = false;
        const auto id = static_cast<std::uint32_t>(kObjectIdBase + i);
        builder.vehicle(vehicle_name(i))
            .ecu({"zone0", 1.0, 0.75, model::Asil::D, "front", "main"}, {1.0})
            .can_bus({"backbone", 500'000, 0.6})
            .rt_task("zone0", obj_tx)
            .can_tx_on_completion("zone0", "obj_tx", "backbone",
                                  can::CanFrame::make(id, {1, 2, 3, 4}));
    }
    // Ring of scenario-level bridges: vehicle i's frames hop (exactly once,
    // the id filter stops loops) onto vehicle i+1's backbone. Under sharding
    // these are cross-domain routes: each ingress domain's lookahead drops
    // to the 100 us forward latency.
    for (int i = 0; i < vehicles; ++i) {
        const int next = (i + 1) % vehicles;
        scenario::BridgeSpec bridge;
        bridge.name = "bridge" + std::to_string(i);
        bridge.forward_latency = Duration::us(100);
        bridge.routes.push_back({vehicle_name(i), "backbone", vehicle_name(next),
                                 "backbone",
                                 static_cast<std::uint32_t>(kObjectIdBase + i),
                                 0x7FF});
        builder.bridge(bridge);
    }
    return builder.build();
}

void BM_BridgedBackbone(benchmark::State& state) {
    const int vehicles = static_cast<int>(state.range(0));
    const auto domains = static_cast<std::size_t>(state.range(1));
    std::uint64_t forwards = 0;
    std::uint64_t windows = 0;
    for (auto _ : state) {
        auto scenario = build_backbone(vehicles, domains);
        const auto start = std::chrono::steady_clock::now();
        scenario->run(Duration::ms(100), domains);
        const auto end = std::chrono::steady_clock::now();
        state.SetIterationTime(std::chrono::duration<double>(end - start).count());
        forwards = 0;
        for (int i = 0; i < vehicles; ++i) {
            forwards += scenario->bridge("bridge" + std::to_string(i))
                            .frames_forwarded();
        }
        windows = scenario->sharded() ? scenario->kernel().windows() : 0;
    }
    state.counters["frames_forwarded"] = static_cast<double>(forwards);
    state.counters["windows"] = static_cast<double>(windows);
}
BENCHMARK(BM_BridgedBackbone)
    ->ArgNames({"vehicles", "domains"})
    ->Args({8, 1})
    ->Args({8, 2})
    ->Args({8, 4})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

} // namespace
