// PLATOON — §V: "agreeing on a common velocity or a minimum distance between
// vehicles in a platoon is an essential but non-trivial problem as the
// communication to or the platform of another vehicle might not be fully
// trustworthy or even compromised."
//
// Series reproduced: rounds-to-convergence and validity of the trimmed-mean
// approximate agreement vs. platoon size and byzantine count, plus the
// ablation against a plain (non-robust) mean.

#include <benchmark/benchmark.h>

#include <cmath>

#include "platoon/consensus.hpp"
#include "platoon/platoon.hpp"
#include "scenario/scenario_builder.hpp"
#include "util/random.hpp"

using namespace sa;
using namespace sa::platoon;

namespace {

void BM_Consensus(benchmark::State& state) {
    const int n_honest = static_cast<int>(state.range(0));
    const int f = static_cast<int>(state.range(1));
    ConsensusConfig cfg;
    cfg.assumed_faults = f;
    cfg.epsilon = 0.05;
    cfg.max_rounds = 100;
    ApproximateAgreement protocol(cfg);

    RandomEngine rng(static_cast<std::uint64_t>(n_honest * 100 + f));
    std::vector<double> honest;
    for (int i = 0; i < n_honest; ++i) {
        honest.push_back(rng.uniform(18.0, 28.0));
    }
    std::vector<ByzantineBehavior> byz;
    for (int i = 0; i < f; ++i) {
        byz.push_back([i](int round, std::size_t receiver) {
            return (receiver + static_cast<std::size_t>(round + i)) % 2 ? 500.0 : -500.0;
        });
    }

    ConsensusResult result;
    for (auto _ : state) {
        result = protocol.run(honest, byz);
        benchmark::DoNotOptimize(result);
    }
    state.counters["honest"] = n_honest;
    state.counters["byzantine"] = f;
    state.counters["rounds"] = result.rounds;
    state.counters["converged"] = result.converged ? 1 : 0;
    state.counters["validity"] = result.validity_held ? 1 : 0;
    state.counters["spread"] = result.spread;
}
BENCHMARK(BM_Consensus)
    ->Args({4, 0})->Args({4, 1})
    ->Args({8, 1})->Args({8, 2})
    ->Args({16, 2})->Args({16, 3})
    ->Unit(benchmark::kMicrosecond);

/// Ablation: plain mean vs. trimmed mean under one byzantine outlier.
void BM_MeanAblation(benchmark::State& state) {
    const bool robust = state.range(0) != 0;
    RandomEngine rng(5);
    std::vector<double> values;
    for (int i = 0; i < 7; ++i) {
        values.push_back(rng.uniform(20.0, 25.0));
    }
    values.push_back(1000.0); // byzantine claim
    double error = 0.0;
    for (auto _ : state) {
        const double agreed = robust ? ApproximateAgreement::trimmed_mean(values, 1)
                                     : ApproximateAgreement::plain_mean(values);
        error = std::abs(agreed - 22.5);
        benchmark::DoNotOptimize(error);
    }
    state.counters["robust"] = robust ? 1 : 0;
    state.counters["error_mps"] = error;
}
BENCHMARK(BM_MeanAblation)->Arg(0)->Arg(1);

/// Full platoon formation in fog (trust gating + double consensus), with
/// the cooperation substrate (trust history, consensus configuration)
/// declared on the scenario builder.
void BM_PlatoonFormation(benchmark::State& state) {
    const int members = static_cast<int>(state.range(0));
    scenario::ScenarioBuilder builder(3);
    for (int i = 0; i < members; ++i) {
        builder.trust("v" + std::to_string(i), 10);
    }
    PlatoonConfig cfg;
    cfg.assumed_faults = 1;
    builder.platoon_config(cfg);
    auto scenario = builder.build();

    std::vector<MemberCapability> candidates;
    for (int i = 0; i < members; ++i) {
        MemberCapability cap;
        cap.id = "v" + std::to_string(i);
        cap.sensor_quality = scenario->rng().uniform(0.5, 1.0);
        cap.safe_speed_mps = safe_speed_for_quality(cap.sensor_quality);
        cap.min_gap_m = scenario->rng().uniform(8.0, 16.0);
        cap.byzantine = (i == members - 1); // one insider
        candidates.push_back(cap);
    }
    PlatoonAgreement agreement;
    for (auto _ : state) {
        agreement = scenario->form_platoon(candidates);
        benchmark::DoNotOptimize(agreement);
    }
    state.counters["members"] = members;
    state.counters["formed"] = agreement.formed ? 1 : 0;
    state.counters["speed_mps"] = agreement.common_speed_mps;
    state.counters["speed_safe"] = agreement.speed_safe ? 1 : 0;
    state.counters["gap_m"] = agreement.min_gap_m;
    state.counters["speed_rounds"] = agreement.speed_consensus.rounds;
}
BENCHMARK(BM_PlatoonFormation)->Arg(3)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

} // namespace
