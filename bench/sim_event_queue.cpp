// SIM-EQ — kernel hot path: the bucketed event queue behind every substrate
// (CAN bus, ECU schedulers, monitors, platoon messaging). The self-awareness
// loop only stays affordable on automotive hardware if scheduling is cheap
// (Schlatow et al. 2017; ROADMAP "hot-path candidates").
//
// Series:
//  - BM_SameTimestampPops: push/pop N events that all share one timestamp —
//    the dense-cohort case produced by periodic monitors and batched CAN
//    windows. The bucketed queue amortises this to O(1) per event; the
//    comparator-heap reference (the pre-batching design, reproduced below)
//    pays O(log n) per event plus a pool scan. The `speedup_vs_heap` counter
//    on the 10k run is the acceptance number for the batching rework (>= 2).
//  - BM_HeapReferenceSameTimestampPops: that reference implementation.
//  - BM_RunBatchDrain vs BM_RunUntilDrain: Simulator::run_batch() cohort
//    drain against the per-event run_until() path on the same workload.
//  - BM_CancelHeavy: schedule/cancel churn (the rte scheduler's
//    preempt-and-reschedule pattern); generation-counter cancel is O(1).
//  - BM_BucketRecycleWaves: waves of distinct timestamps on one long-lived
//    queue — asserts the bucket pool actually recycles (hit rate >= 0.9), so
//    the unbounded bucket-storage growth fixed in the arena rework cannot
//    silently come back.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "util/alloc_hook.hpp"

using namespace sa::sim;

namespace {

constexpr int kAcceptanceN = 10'000; ///< the "10k same-timestamp pops" run

/// The pre-batching EventQueue design, kept here as an in-bench reference so
/// `speedup_vs_heap` is measurable in a single run: a std::priority_queue of
/// heap-allocated entries ordered by (time, seq), with lazily reaped
/// tombstones and a retained-pool scan on pop.
class HeapReferenceQueue {
public:
    using Action = std::function<void()>;

    ~HeapReferenceQueue() {
        for (Entry* e : pool_) {
            delete e;
        }
    }

    void push(Time at, Action action) {
        auto* entry = new Entry{at, next_seq_++, std::move(action)};
        pool_.push_back(entry);
        heap_.push(entry);
    }

    [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }

    struct Popped {
        Time at;
        Action action;
    };
    Popped pop() {
        Entry* top = heap_.top();
        heap_.pop();
        pool_.erase(std::remove(pool_.begin(), pool_.end(), top), pool_.end());
        Popped out{top->at, std::move(top->action)};
        delete top;
        return out;
    }

private:
    struct Entry {
        Time at;
        std::uint64_t seq;
        Action action;
    };
    struct Cmp {
        bool operator()(const Entry* a, const Entry* b) const noexcept {
            if (a->at != b->at) {
                return a->at > b->at;
            }
            return a->seq > b->seq;
        }
    };
    std::priority_queue<Entry*, std::vector<Entry*>, Cmp> heap_;
    std::vector<Entry*> pool_;
    std::uint64_t next_seq_ = 1;
};

template <typename Queue>
double same_timestamp_ns_per_event(int n, int iters) {
    // Measured inline (not via state timing) so both series share one
    // methodology and the speedup counter is a clean ratio.
    std::uint64_t sink = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int it = 0; it < iters; ++it) {
        Queue q;
        for (int i = 0; i < n; ++i) {
            q.push(Time(1'000), [&sink] { ++sink; });
        }
        while (!q.empty()) {
            auto popped = q.pop();
            popped.action();
        }
    }
    benchmark::DoNotOptimize(sink);
    const auto dt = std::chrono::steady_clock::now() - t0;
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()) /
           (static_cast<double>(n) * iters);
}

void BM_SameTimestampPops(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        EventQueue q;
        std::uint64_t sink = 0;
        for (int i = 0; i < n; ++i) {
            q.push(Time(1'000), [&sink] { ++sink; });
        }
        while (!q.empty()) {
            auto popped = q.pop();
            popped.action();
        }
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * n);
    if (n == kAcceptanceN) {
        // Acceptance counter: bucketed queue vs the comparator-heap design
        // on the same 10k same-timestamp workload.
        const double bucketed = same_timestamp_ns_per_event<EventQueue>(n, 20);
        const double heap = same_timestamp_ns_per_event<HeapReferenceQueue>(n, 20);
        state.counters["ns_per_event"] = bucketed;
        state.counters["heap_ns_per_event"] = heap;
        state.counters["speedup_vs_heap"] = heap / bucketed;
    }
}
BENCHMARK(BM_SameTimestampPops)->Arg(100)->Arg(1'000)->Arg(10'000);

void BM_HeapReferenceSameTimestampPops(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        HeapReferenceQueue q;
        std::uint64_t sink = 0;
        for (int i = 0; i < n; ++i) {
            q.push(Time(1'000), [&sink] { ++sink; });
        }
        while (!q.empty()) {
            auto popped = q.pop();
            popped.action();
        }
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HeapReferenceSameTimestampPops)->Arg(100)->Arg(1'000)->Arg(10'000);

/// Cohort drain through Simulator::run_batch(): 64 timestamps x `cohort`
/// events each, the shape of a fleet of same-period monitors.
void BM_RunBatchDrain(benchmark::State& state) {
    const int cohort = static_cast<int>(state.range(0));
    for (auto _ : state) {
        Simulator sim;
        std::uint64_t sink = 0;
        for (int t = 1; t <= 64; ++t) {
            for (int i = 0; i < cohort; ++i) {
                sim.schedule_at(Time(t * 1'000), [&sink] { ++sink; });
            }
        }
        while (sim.run_batch() > 0) {
        }
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 64 * cohort);
}
BENCHMARK(BM_RunBatchDrain)->Arg(16)->Arg(256);

void BM_RunUntilDrain(benchmark::State& state) {
    const int cohort = static_cast<int>(state.range(0));
    for (auto _ : state) {
        Simulator sim;
        std::uint64_t sink = 0;
        for (int t = 1; t <= 64; ++t) {
            for (int i = 0; i < cohort; ++i) {
                sim.schedule_at(Time(t * 1'000), [&sink] { ++sink; });
            }
        }
        sim.run_until(Time::max());
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 64 * cohort);
}
BENCHMARK(BM_RunUntilDrain)->Arg(16)->Arg(256);

/// The rte scheduler's pattern: schedule a completion, cancel it on
/// preemption, reschedule. Cancel is O(1) via generation counters.
void BM_CancelHeavy(benchmark::State& state) {
    for (auto _ : state) {
        EventQueue q;
        std::uint64_t sink = 0;
        std::vector<EventHandle> handles;
        handles.reserve(1'000);
        for (int i = 0; i < 1'000; ++i) {
            handles.push_back(q.push(Time(i), [&sink] { ++sink; }));
        }
        for (std::size_t i = 0; i < handles.size(); i += 2) {
            q.cancel(handles[i]);
        }
        while (!q.empty()) {
            auto popped = q.pop();
            popped.action();
        }
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1'000);
}
BENCHMARK(BM_CancelHeavy);

/// Waves of 64 distinct timestamps pushed and drained on one long-lived
/// queue — the steady-state shape of a simulation that keeps opening and
/// retiring timestamp buckets. With the bucket pool, only the warm-up
/// creates buckets (the pool's geometric ramp makes 8+16+32+64 = 120 for a
/// 64-bucket working set); every later wave runs on recycled ones. The
/// recycle-hit-rate assertion pins that: after the 16 warm-up waves, even a
/// single-iteration probe run sees 2048 acquires against the 120 created,
/// a rate of 1 - 120/2048 ~= 0.94, so the 0.9 gate fails only if recycling
/// actually regresses.
void BM_BucketRecycleWaves(benchmark::State& state) {
    EventQueue q; // outlives all iterations: recycling is the point
    std::uint64_t sink = 0;
    // Untimed warm-up: bring the bucket pool to its steady-state size so the
    // timed iterations (and the hit-rate gate) measure recycling, not the
    // pool's first-contact growth ramp.
    for (int wave = 0; wave < 16; ++wave) {
        for (int i = 0; i < 64; ++i) {
            q.push(Time(wave * 64 + i + 1), [&sink] { ++sink; });
        }
        while (!q.empty()) {
            auto popped = q.pop();
            popped.action();
        }
    }
    for (auto _ : state) {
        for (int wave = 0; wave < 16; ++wave) {
            for (int i = 0; i < 64; ++i) {
                q.push(Time(wave * 64 + i + 1), [&sink] { ++sink; });
            }
            while (!q.empty()) {
                auto popped = q.pop();
                popped.action();
            }
        }
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * 16 * 64);
    state.counters["buckets_created"] = static_cast<double>(q.buckets_created());
    state.counters["bucket_acquires"] = static_cast<double>(q.bucket_acquires());
    state.counters["bucket_recycle_hit_rate"] = q.bucket_recycle_hit_rate();
    if (q.bucket_recycle_hit_rate() < 0.9) {
        state.SkipWithError("bucket pool recycle hit rate below 0.9");
    }
    // Harness-sourced steady-state allocation count: one more wave on the
    // warm queue, counted by the operator-new interposition. Surfaced by
    // `run_all.py --report-allocs`; the hard zero pin lives in test_alloc.
    {
        sa::util::alloc_hook::CountScope scope;
        for (int i = 0; i < 64; ++i) {
            q.push(Time(16 * 64 + i + 1), [&sink] { ++sink; });
        }
        while (!q.empty()) {
            auto popped = q.pop();
            popped.action();
        }
        state.counters["steady_allocs_per_wave"] =
            static_cast<double>(scope.allocations());
    }
}
BENCHMARK(BM_BucketRecycleWaves);

} // namespace
