// Ablation benches for the design choices DESIGN.md §8 calls out:
//
//  A1. VF TX arbitration: priority-respecting (the Fig. 2 design, [8])
//      vs. naive round-robin — measured as worst-case latency of an urgent
//      frame while another VM floods the controller.
//  A2. Ability aggregation: min vs. product vs. weighted mean — measured as
//      root-skill level under single-sensor loss (sensor-fusion realism vs.
//      pessimism).
//  A3. Monitoring enforcement mode: observe vs. enforce for a WCET-violating
//      task — measured as deadline misses suffered by a victim task.

#include <benchmark/benchmark.h>

#include "can/bus.hpp"
#include "can/controller.hpp"
#include "can/virtual_controller.hpp"
#include "monitor/budget_monitor.hpp"
#include "rte/rte.hpp"
#include "skills/ability_graph.hpp"
#include "skills/acc_graph_factory.hpp"

using namespace sa;
using sim::Duration;
using sim::Time;

namespace {

// --- A1: VF arbitration --------------------------------------------------------

void BM_VfArbitration(benchmark::State& state) {
    const bool priority = state.range(0) != 0;
    double urgent_mean_us = 0.0;
    double urgent_p95_us = 0.0;
    double flood_mean_us = 0.0;
    for (auto _ : state) {
        sim::Simulator simulator;
        can::CanBus bus(simulator, "bus", can::CanBusConfig{500'000, 0.0, 4096});
        can::VirtualCanController vc(bus, "vc");
        auto token = vc.take_pf_token();
        // Seven flooding VMs keep low-priority backlogs pending; one VM sends
        // a sparse high-priority stream. Round-robin must cycle through the
        // flooders before serving the urgent VF again — the inversion the
        // priority-respecting arbiter of [8] avoids.
        std::vector<can::VirtualFunction*> flooders;
        for (int i = 0; i < 7; ++i) {
            flooders.push_back(&vc.pf_create_vf(token, 16));
        }
        auto& urgent_vf = vc.pf_create_vf(token, 16);
        vc.pf_set_arbitration(token, priority ? can::VfArbitration::Priority
                                              : can::VfArbitration::RoundRobin);

        std::uint32_t seq = 0;
        simulator.schedule_periodic(Duration::us(150), [&] {
            flooders[seq % flooders.size()]->send(
                can::CanFrame::make(0x500 + (seq % 64), {1, 2, 3, 4}));
            ++seq;
        });
        std::uint32_t useq = 0;
        simulator.schedule_periodic(Duration::ms(2), [&] {
            urgent_vf.send(can::CanFrame::make(0x010 + (useq++ % 8), {9}));
        });
        simulator.run_until(Time(Duration::sec(1).count_ns()));
        urgent_mean_us = urgent_vf.tx_latency_us().mean();
        urgent_p95_us = urgent_vf.tx_latency_us().percentile(95);
        flood_mean_us = flooders[0]->tx_latency_us().mean();
    }
    state.counters["priority_arb"] = priority ? 1 : 0;
    state.counters["urgent_mean_us"] = urgent_mean_us;
    state.counters["urgent_p95_us"] = urgent_p95_us;
    state.counters["flood_mean_us"] = flood_mean_us;
}
BENCHMARK(BM_VfArbitration)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond)
    ->Iterations(3);

// --- A2: aggregation strategies ---------------------------------------------------

void BM_AggregationStrategy(benchmark::State& state) {
    const auto strategy = static_cast<skills::Aggregation>(state.range(0));
    double root_after_loss = 0.0;
    for (auto _ : state) {
        skills::AbilityGraph abilities(skills::make_acc_skill_graph());
        abilities.set_aggregation(skills::acc::kPerceiveTrack, strategy);
        if (strategy == skills::Aggregation::WeightedMean) {
            abilities.set_dependency_weight(skills::acc::kPerceiveTrack,
                                            skills::acc::kRadar, 3.0);
        }
        abilities.set_source_level(skills::acc::kCamera, 0.0); // camera dead
        abilities.propagate();
        root_after_loss = abilities.level(skills::acc::kAccDriving);
        benchmark::DoNotOptimize(root_after_loss);
    }
    state.counters["strategy"] = static_cast<double>(state.range(0));
    state.counters["root_after_camera_loss"] = root_after_loss;
}
BENCHMARK(BM_AggregationStrategy)
    ->Arg(static_cast<int>(skills::Aggregation::Min))
    ->Arg(static_cast<int>(skills::Aggregation::Product))
    ->Arg(static_cast<int>(skills::Aggregation::WeightedMean))
    ->Unit(benchmark::kMicrosecond);

// --- A3: enforcement modes ----------------------------------------------------------

void BM_EnforcementMode(benchmark::State& state) {
    const bool enforce = state.range(0) != 0;
    std::uint64_t victim_misses = 0;
    std::uint64_t enforcements = 0;
    for (auto _ : state) {
        sim::Simulator simulator(4);
        rte::Rte rte(simulator);
        rte::Ecu& ecu = rte.add_ecu(rte::EcuConfig{"ecu0", {1.0}, {}});

        // Rogue high-priority task: contracted 1 ms, actually runs 6 ms.
        rte::RtTaskConfig rogue;
        rogue.name = "rogue";
        rogue.priority = 1;
        rogue.period = Duration::ms(10);
        rogue.wcet = Duration::ms(6);
        rogue.bcet = Duration::ms(6);
        rogue.randomize_exec = false;
        const auto rogue_id = ecu.scheduler().add_task(rogue);

        // Victim: needs 5 ms every 10 ms with a 9 ms deadline.
        rte::RtTaskConfig victim;
        victim.name = "victim";
        victim.priority = 2;
        victim.period = Duration::ms(10);
        victim.wcet = Duration::ms(5);
        victim.bcet = Duration::ms(5);
        victim.deadline = Duration::ms(9);
        victim.randomize_exec = false;
        ecu.scheduler().add_task(victim);

        monitor::BudgetMonitor budget(simulator, ecu.scheduler());
        budget.set_budget(rogue_id, Duration::ms(1)); // the contracted WCET
        budget.set_mode(enforce ? monitor::BudgetMode::Enforce
                                : monitor::BudgetMode::Observe);
        budget.set_enforcement_action(
            [&](rte::TaskId task, const rte::JobRecord&) {
                ecu.scheduler().remove_task(task);
            });

        ecu.scheduler().start();
        simulator.run_until(Time(Duration::sec(2).count_ns()));

        victim_misses = ecu.scheduler().missed_deadlines();
        enforcements = budget.enforcements();
    }
    state.counters["enforce"] = enforce ? 1 : 0;
    state.counters["victim_misses"] = static_cast<double>(victim_misses);
    state.counters["enforcements"] = static_cast<double>(enforcements);
}
BENCHMARK(BM_EnforcementMode)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)
    ->Iterations(3);

} // namespace
