// LINT — cost of the sa::lint structural gate. The gate runs inside every
// Mcc::integrate() (step 3, before the viewpoints), so its cost must stay
// far below the ~30 µs a small integration takes in fig1_mcc_integration:
// BM_LintMccIntegrate measures integrate() with the gate on vs. off (the
// delta IS the gate), BM_LintSystem the bare rule pass, and BM_LintBuiltin
// the skills-layer sweep over the whole builtin capability registry.

#include <benchmark/benchmark.h>

#include "lint/model_rules.hpp"
#include "lint/skills_rules.hpp"
#include "model/mcc.hpp"
#include "skills/capability_registry.hpp"
#include "util/string_util.hpp"

using namespace sa;
using namespace sa::model;
using sim::Duration;

namespace {

PlatformModel make_platform(int ecus) {
    PlatformModel p;
    for (int i = 0; i < ecus; ++i) {
        p.ecus.push_back(EcuDescriptor{format("ecu%d", i), 1.0, 0.75, Asil::D,
                                       i % 2 ? "cabin" : "engine_bay", "main"});
    }
    p.buses.push_back(BusDescriptor{"can0", 500'000, 0.6});
    p.buses.push_back(BusDescriptor{"can1", 500'000, 0.6});
    return p;
}

Contract make_component(int index) {
    Contract c;
    c.component = format("comp%03d", index);
    c.asil = index == 0 ? Asil::D : static_cast<Asil>(index % 5);
    TaskSpec t;
    t.name = "main";
    t.period = Duration::ms(5 + (index % 4) * 5);
    t.wcet = Duration::us(300 + (index % 7) * 100);
    t.bcet = t.wcet;
    c.tasks.push_back(t);
    ProvidedService svc;
    svc.name = format("svc%03d", index);
    c.provides.push_back(svc);
    if (index > 0) {
        const bool critical = c.asil >= Asil::C;
        c.requires_.push_back(
            RequiredService{critical ? "svc000" : format("svc%03d", index - 1)});
    }
    MessageSpec m;
    m.name = format("msg%03d", index);
    m.period = Duration::ms(10 + (index % 5) * 10);
    m.payload_bytes = 8;
    m.bus = index % 2 ? "can1" : "can0";
    c.messages.push_back(m);
    return c;
}

/// Skills-layer sweep over the full builtin registry: every spec, every
/// alarm binding, dead-capability detection across 30+ capabilities.
void BM_LintBuiltin(benchmark::State& state) {
    const auto& registry = skills::CapabilityRegistry::builtin();
    std::size_t findings = 0;
    for (auto _ : state) {
        const auto report = lint::lint_registry(registry);
        findings = report.findings().size();
        benchmark::DoNotOptimize(report);
    }
    state.counters["findings"] = static_cast<double>(findings);
}
BENCHMARK(BM_LintBuiltin)->Unit(benchmark::kMicrosecond);

/// The bare model-layer rule pass the MCC gate runs, over an n-component
/// mapped system.
void BM_LintSystem(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    FunctionModel fm;
    for (int i = 0; i < n; ++i) {
        fm.upsert(make_component(i));
    }
    const auto platform = make_platform(std::max(2, n / 8));
    const auto mapped = Mapper{}.map(fm, platform);
    std::size_t findings = 0;
    for (auto _ : state) {
        const auto report = lint::lint_system(fm, platform, &mapped.mapping);
        findings = report.findings().size();
        benchmark::DoNotOptimize(report);
    }
    state.counters["components"] = n;
    state.counters["findings"] = static_cast<double>(findings);
}
BENCHMARK(BM_LintSystem)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMicrosecond);

/// Full Mcc::integrate() with the structural gate on (arg 1) vs. off
/// (arg 0) — the row-pair delta is the end-to-end cost the gate adds to
/// the fig1 integration path.
void BM_LintMccIntegrate(benchmark::State& state) {
    const bool gate = state.range(0) != 0;
    ChangeRequest change;
    for (int i = 0; i < 4; ++i) {
        change.contracts.push_back(make_component(i));
    }
    MccOptions options;
    options.run_lint = gate;
    bool accepted = false;
    for (auto _ : state) {
        Mcc mcc(make_platform(2), options);
        const auto report = mcc.integrate(change);
        accepted = report.accepted;
        benchmark::DoNotOptimize(report);
    }
    state.counters["lint_gate"] = gate ? 1 : 0;
    state.counters["accepted"] = accepted ? 1 : 0;
}
BENCHMARK(BM_LintMccIntegrate)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

} // namespace
