// XLAYER-IDS — §V worked example: compromised rear-brake component. Head-to-
// head comparison of single-layer vs. cross-layer self-awareness (the
// paper's central argument), plus the redundancy variant.
//
// Series reproduced, per strategy:
//  - detection-to-containment latency (simulated),
//  - whether the function loss was covered (redundancy or compensation),
//  - residual brake effectiveness and whether a speed limit protects it,
//  - decisions/escalations taken.

#include <benchmark/benchmark.h>

#include "util/log.hpp"

#include "core/ability_layer.hpp"
#include "core/coordinator.hpp"
#include "core/network_layer.hpp"
#include "core/objective_layer.hpp"
#include "core/platform_layer.hpp"
#include "core/safety_layer.hpp"
#include "model/contract_parser.hpp"
#include "model/mcc.hpp"
#include "monitor/manager.hpp"
#include "monitor/rate_monitor.hpp"
#include "rte/fault_injection.hpp"
#include "skills/acc_graph_factory.hpp"
#include "skills/degradation.hpp"
#include "vehicle/acc_controller.hpp"
#include "vehicle/brake_by_wire.hpp"

using namespace sa;
using sim::Duration;
using sim::Time;

namespace {

// Injection warnings are expected here; keep benchmark output clean.
const bool g_quiet = [] {
    Log::set_level(LogLevel::Error);
    return true;
}();

struct Outcome {
    bool contained = false;
    double containment_ms = 0.0; ///< attack start -> containment (simulated)
    bool loss_covered = false;   ///< redundancy or compensation happened
    double brake_effectiveness = 0.0;
    bool speed_limited = false;
    bool safe_stop = false;
    std::uint64_t problems = 0;
    std::uint64_t escalations = 0;
};

Outcome run_scenario(bool cross_layer, bool with_redundancy) {
    sim::Simulator simulator(321);
    model::PlatformModel platform;
    platform.ecus.push_back(model::EcuDescriptor{"chassis_a", 1.0, 0.75, model::Asil::D,
                                                 "engine_bay", "main"});
    platform.ecus.push_back(model::EcuDescriptor{"chassis_b", 1.0, 0.75, model::Asil::D,
                                                 "cabin", "main"});
    model::Mcc mcc(platform);

    std::string text = R"(
        component brake_ctrl {
          asil D;
          security_level 2;
          task control { wcet 400us; period 10ms; deadline 8ms; }
          provides service brake_cmd { max_rate 300/s; min_client_level 1; }
          pin ecu chassis_a;
    )";
    if (with_redundancy) {
        text += "  redundant_with brake_ctrl_b;\n";
    }
    text += R"(
        }
        component perception {
          asil C;
          task track { wcet 3ms; period 40ms; }
          provides service object_list { max_rate 100/s; }
        }
    )";
    if (with_redundancy) {
        text += R"(
            component brake_ctrl_b {
              asil D;
              security_level 2;
              task control { wcet 400us; period 10ms; deadline 8ms; }
              redundant_with brake_ctrl;
              pin ecu chassis_b;
            }
        )";
    }
    model::ContractParser parser;
    model::ChangeRequest change;
    change.contracts = parser.parse(text);
    SA_ASSERT(mcc.integrate(change).accepted, "bench integration must succeed");

    rte::Rte rte(simulator);
    rte.add_ecu(rte::EcuConfig{"chassis_a", {1.0, 0.8, 0.6, 0.4}, {}});
    rte.add_ecu(rte::EcuConfig{"chassis_b", {1.0, 0.8, 0.6, 0.4}, {}});
    rte.apply(mcc.make_rte_config());
    rte.start();

    monitor::MonitorManager monitors(simulator);
    auto& ids = monitors.add<monitor::RateMonitor>(rte.services(), Duration::ms(100));
    ids.set_default_bound(400.0);
    ids.start();

    skills::AbilityGraph abilities(skills::make_acc_skill_graph());
    skills::DegradationManager tactics;
    vehicle::BrakeByWire brakes;
    vehicle::AccController acc;

    core::CoordinatorConfig ccfg;
    ccfg.cross_layer_enabled = cross_layer;
    core::CrossLayerCoordinator coordinator(simulator, ccfg);
    coordinator.register_layer(std::make_unique<core::PlatformLayer>(rte, mcc));
    coordinator.register_layer(std::make_unique<core::NetworkLayer>(rte));
    auto safety = std::make_unique<core::SafetyLayer>(rte, mcc);
    auto* safety_ptr = safety.get();
    coordinator.register_layer(std::move(safety));
    auto ability =
        std::make_unique<core::AbilityLayer>(abilities, tactics, skills::acc::kAccDriving);
    ability->set_update_hook([&](const core::Problem& problem) {
        if (problem.anomaly.kind == "component_contained" &&
            problem.anomaly.source == "brake_ctrl") {
            brakes.set_rear_available(false);
            abilities.set_source_level(skills::acc::kBrakeSystem, brakes.ability_level());
            return true;
        }
        return false;
    });
    auto* ability_ptr = ability.get();
    coordinator.register_layer(std::move(ability));
    auto objective = std::make_unique<core::ObjectiveLayer>();
    auto* objective_ptr = objective.get();
    coordinator.register_layer(std::move(objective));
    coordinator.connect(monitors);

    tactics.register_tactic(skills::Tactic{
        "reduce_speed_and_drivetrain_brake", skills::acc::kDecelerate, 0.2, 0.85, 2,
        [&] {
            acc.set_speed_limit(15.0);
            brakes.set_drivetrain_assist(true);
            abilities.set_source_level(skills::acc::kBrakeSystem, brakes.ability_level());
        },
        nullptr});

    // Attack at t = 500 ms.
    rte::FaultInjector chaos(rte);
    const Time attack_at = Time(Duration::ms(500).count_ns());
    simulator.schedule_at(attack_at, [&] {
        rte.access().grant("brake_ctrl", "object_list");
        chaos.compromise_with_message_storm("brake_ctrl", "object_list", Duration::ms(2));
    });

    Time contained_at = Time::zero();
    rte.component("brake_ctrl").state_changed().subscribe(
        [&](rte::ComponentState, rte::ComponentState next) {
            if (next == rte::ComponentState::Contained && contained_at == Time::zero()) {
                contained_at = simulator.now();
            }
        });

    simulator.run_until(Time(Duration::sec(4).count_ns()));

    Outcome out;
    out.contained =
        rte.component("brake_ctrl").state() == rte::ComponentState::Contained;
    out.containment_ms =
        out.contained ? (contained_at - attack_at).to_ms() : -1.0;
    out.loss_covered = safety_ptr->redundancy_activations() > 0 ||
                       ability_ptr->tactics_applied() > 0;
    out.brake_effectiveness = brakes.effectiveness();
    out.speed_limited = acc.speed_limit().has_value();
    out.safe_stop = objective_ptr->objective() == core::DrivingObjective::SafeStop;
    out.problems = coordinator.problems_handled();
    out.escalations = coordinator.total_escalations();
    return out;
}

void BM_Intrusion(benchmark::State& state) {
    const bool cross_layer = state.range(0) != 0;
    const bool redundancy = state.range(1) != 0;
    Outcome out;
    for (auto _ : state) {
        out = run_scenario(cross_layer, redundancy);
        benchmark::DoNotOptimize(out);
    }
    state.counters["cross_layer"] = cross_layer ? 1 : 0;
    state.counters["redundancy"] = redundancy ? 1 : 0;
    state.counters["contained"] = out.contained ? 1 : 0;
    state.counters["containment_ms"] = out.containment_ms;
    state.counters["loss_covered"] = out.loss_covered ? 1 : 0;
    state.counters["brake_effect_pct"] = out.brake_effectiveness * 100.0;
    state.counters["speed_limited"] = out.speed_limited ? 1 : 0;
    state.counters["safe_stop"] = out.safe_stop ? 1 : 0;
    state.counters["problems"] = static_cast<double>(out.problems);
    state.counters["escalations"] = static_cast<double>(out.escalations);
}
// (cross_layer, redundancy): the paper's argument is the contrast between
// {0,0} (local containment only, function loss unhandled) and {1,0}/{1,1}
// (cross-layer coverage via ability tactics or redundancy).
BENCHMARK(BM_Intrusion)->Args({0, 0})->Args({0, 1})->Args({1, 0})->Args({1, 1})
    ->Unit(benchmark::kMillisecond)->Iterations(3);

} // namespace
