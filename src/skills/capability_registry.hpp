#pragma once
// CapabilityRegistry: the capability catalogue the declarative skills layer
// composes graphs from. Nolte et al. frame skill graphs as development
// artifacts assembled from a shared catalogue of skills and abilities; here
// the registry holds
//   - *capabilities*: named skills / data sources / data sinks with typed
//     quality attributes (what can degrade, and what "nominal" means),
//   - *skill-graph specs*: named SkillGraphSpec instances whose nodes must
//     all be registered capabilities of the matching kind — a spec is only
//     as good as the catalogue behind it,
//   - *alarm bindings*: mappings from monitor anomaly kinds onto
//     capability-quality downgrades, the bridge from monitor::MonitorManager
//     alarms into ability-graph levels (consumed by DegradationPolicy).
//
// builtin() exposes the paper's catalogue: the §IV ACC graph re-expressed as
// a spec (behavior-identical to the retired hand-wired factory) plus
// lane-keep, emergency-stop and platoon-follow maneuvers, with default alarm
// bindings for the stock monitors.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "monitor/metric.hpp"
#include "skills/skill_graph_spec.hpp"

namespace sa::skills {

/// What a quality attribute of a capability measures.
enum class QualityKind {
    Availability, ///< is the capability there at all (fault, containment)
    Accuracy,     ///< how good its output is (sensor noise, weather)
    Latency,      ///< is it timely (deadline misses, overload)
    Integrity,    ///< can it be trusted (intrusion, implausible data)
};

const char* to_string(QualityKind kind) noexcept;

/// One typed quality dimension of a capability.
struct QualityAttribute {
    QualityKind kind = QualityKind::Availability;
    double nominal = 1.0; ///< level when nothing degraded it, in [0, 1]
};

/// A catalogue entry: a named skill / source / sink with its quality model.
struct Capability {
    std::string name;
    SkillNodeKind node_kind = SkillNodeKind::Skill;
    std::string description;
    std::vector<QualityAttribute> qualities;

    [[nodiscard]] bool has_quality(QualityKind kind) const;
};

/// One mapping from a monitor anomaly onto a capability-quality downgrade.
/// Matching: `anomaly_kind` must equal the anomaly's kind; `domain` (when
/// set) must equal its domain; `source` (when non-empty) must equal its
/// source. The matched capability is `capability`, or the anomaly's source
/// when `capability` is empty (sensor alarms name the degraded sensor).
struct AlarmBinding {
    std::string anomaly_kind;
    std::string capability;     ///< empty: capability = anomaly.source
    QualityKind quality = QualityKind::Availability;
    double degraded_value = 0.0; ///< level imposed on match, in [0, 1]
    std::optional<monitor::Domain> domain;
    std::string source;         ///< empty: any source

    [[nodiscard]] bool matches(const monitor::Anomaly& anomaly) const;
    /// The capability this binding downgrades for `anomaly`.
    [[nodiscard]] const std::string& capability_for(const monitor::Anomaly& anomaly) const;
};

class CapabilityRegistry {
public:
    CapabilityRegistry() = default;

    // --- capability catalogue ----------------------------------------------
    /// Register a capability; names are unique across kinds.
    CapabilityRegistry& register_capability(Capability capability);
    [[nodiscard]] bool has_capability(const std::string& name) const;
    [[nodiscard]] const Capability& capability(const std::string& name) const;
    /// Registered capability names, sorted.
    [[nodiscard]] std::vector<std::string> capability_names() const;
    [[nodiscard]] std::size_t capability_count() const noexcept {
        return capabilities_.size();
    }

    // --- skill-graph specs -------------------------------------------------
    /// Register a named spec. Every node the spec declares must already be a
    /// registered capability of the same kind — a spec referencing an
    /// unknown capability is a catalogue bug and fails loudly here.
    CapabilityRegistry& register_spec(SkillGraphSpec spec);
    [[nodiscard]] bool has_spec(const std::string& name) const;
    [[nodiscard]] const SkillGraphSpec& spec(const std::string& name) const;
    /// Registered spec names, sorted.
    [[nodiscard]] std::vector<std::string> spec_names() const;

    /// Instantiate a registered spec's structural graph.
    [[nodiscard]] SkillGraph instantiate(const std::string& spec_name) const;
    /// Instantiate a registered spec's runtime ability graph (aggregations
    /// and weights applied).
    [[nodiscard]] AbilityGraph
    instantiate_abilities(const std::string& spec_name,
                          AbilityThresholds thresholds = {}) const;

    // --- alarm bindings ----------------------------------------------------
    /// Bind a monitor anomaly kind to a capability-quality downgrade. A
    /// named capability must be registered (and carry the quality); an
    /// empty capability defers resolution to the anomaly source at match
    /// time.
    CapabilityRegistry& bind_alarm(AlarmBinding binding);
    [[nodiscard]] const std::vector<AlarmBinding>& alarm_bindings() const noexcept {
        return bindings_;
    }
    /// All bindings matching `anomaly`, in registration order.
    [[nodiscard]] std::vector<const AlarmBinding*>
    match(const monitor::Anomaly& anomaly) const;

    /// The built-in catalogue: capabilities of all four stock maneuvers, the
    /// specs ("acc", "acc_aggregate_sensors", "lane_keep", "emergency_stop",
    /// "platoon_follow") and default alarm bindings for the stock monitors.
    /// Immutable; copy it to extend.
    [[nodiscard]] static const CapabilityRegistry& builtin();

private:
    std::map<std::string, Capability> capabilities_;
    std::map<std::string, SkillGraphSpec> specs_;
    std::vector<AlarmBinding> bindings_;
};

/// Canonical node names of the built-in specs (beyond skills::acc).
namespace caps {
// lane_keep
inline constexpr const char* kLaneKeeping = "lane_keeping";
inline constexpr const char* kDetectLaneMarkings = "detect_lane_markings";
inline constexpr const char* kLateralControl = "lateral_control";
inline constexpr const char* kEstimateVehicleState = "estimate_vehicle_state";
inline constexpr const char* kSteering = "steering";
inline constexpr const char* kImu = "imu";
inline constexpr const char* kWheelOdometry = "wheel_odometry";
// emergency_stop
inline constexpr const char* kEmergencyStop = "emergency_stop";
inline constexpr const char* kDetectObstacle = "detect_obstacle";
inline constexpr const char* kFullBraking = "full_braking";
inline constexpr const char* kWarnTraffic = "warn_traffic";
inline constexpr const char* kHazardLights = "hazard_lights";
// platoon_follow
inline constexpr const char* kPlatoonFollow = "platoon_follow";
inline constexpr const char* kTrackLeadVehicle = "track_lead_vehicle";
inline constexpr const char* kControlGap = "control_gap";
inline constexpr const char* kReceivePlatoonCommands = "receive_platoon_commands";
inline constexpr const char* kV2vLink = "v2v_link";
} // namespace caps

} // namespace sa::skills
