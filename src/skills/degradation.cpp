#include "skills/degradation.hpp"

#include <algorithm>
#include <map>

#include "util/assert.hpp"

namespace sa::skills {

void DegradationManager::register_tactic(Tactic tactic) {
    SA_REQUIRE(!tactic.name.empty(), "tactic needs a name");
    SA_REQUIRE(static_cast<bool>(tactic.apply), "tactic needs an apply action");
    SA_REQUIRE(tactic.min_level <= tactic.max_level, "tactic band must be non-empty");
    tactics_.push_back(Entry{std::move(tactic), false});
}

std::vector<const Tactic*> DegradationManager::plan(const AbilityGraph& abilities) const {
    // Cheapest applicable tactic per skill.
    std::map<std::string, const Tactic*> best;
    for (const auto& entry : tactics_) {
        if (entry.fired) {
            continue;
        }
        const Tactic& t = entry.tactic;
        if (!abilities.structure().has_node(t.target_skill)) {
            continue;
        }
        const double level = abilities.level(t.target_skill);
        if (level < t.min_level || level >= t.max_level) {
            continue;
        }
        if (t.extra_condition && !t.extra_condition()) {
            continue;
        }
        auto it = best.find(t.target_skill);
        if (it == best.end() || t.cost < it->second->cost) {
            best[t.target_skill] = &t;
        }
    }
    std::vector<const Tactic*> out;
    out.reserve(best.size());
    for (const auto& [_, t] : best) {
        out.push_back(t);
    }
    return out;
}

std::vector<AppliedTactic> DegradationManager::execute(const AbilityGraph& abilities) {
    std::vector<AppliedTactic> applied;
    for (const Tactic* t : plan(abilities)) {
        for (auto& entry : tactics_) {
            if (&entry.tactic == t) {
                entry.fired = true;
            }
        }
        AppliedTactic record{t->name, t->target_skill, abilities.level(t->target_skill)};
        t->apply();
        history_.push_back(record);
        applied.push_back(record);
    }
    return applied;
}

void DegradationManager::mark_fired(const std::string& tactic_name,
                                    double level_at_application) {
    for (auto& entry : tactics_) {
        if (entry.tactic.name == tactic_name && !entry.fired) {
            entry.fired = true;
            history_.push_back(AppliedTactic{tactic_name, entry.tactic.target_skill,
                                             level_at_application});
        }
    }
}

void DegradationManager::rearm(const std::string& tactic_name) {
    for (auto& entry : tactics_) {
        if (entry.tactic.name == tactic_name) {
            entry.fired = false;
        }
    }
}

void DegradationManager::rearm_all() {
    for (auto& entry : tactics_) {
        entry.fired = false;
    }
}

} // namespace sa::skills
