#pragma once
// SkillGraphSpec: a *declarative* description of a skill graph — the
// development artifact Nolte et al. argue skill graphs should be (composed
// from a capability catalogue instead of hand-written per-maneuver C++
// factories). A spec carries the ordered node/dependency declarations, the
// per-skill aggregation choices, per-edge weights and the root skill, and
// can be
//   - built programmatically (builder-style chaining),
//   - parsed from a compact text form (mirroring model/contract_parser), or
//   - serialized back to that text form (str(); parse(str()) round-trips).
// instantiate() produces the structural SkillGraph; instantiate_abilities()
// the runtime AbilityGraph with aggregations/weights applied — the one
// authoritative path from "scenario described as data" to "running graph".
//
// Text grammar (comments: // to end of line):
//
//   graph <name> {
//     root <skill>;
//     skill  <name> ["description"];
//     source <name> ["description"];
//     sink   <name> ["description"];
//     <parent> -> <child> [<child> ...];        // dependency fan-out
//     aggregate <skill> min|product|weighted_mean;
//     weight <skill> <child> <number>;
//   }

#include <stdexcept>
#include <string>
#include <vector>

#include "skills/ability_graph.hpp"
#include "skills/skill_graph.hpp"

namespace sa::skills {

/// Thrown by SkillGraphSpec::parse() on malformed spec text.
class SpecParseError : public std::runtime_error {
public:
    SpecParseError(int line, const std::string& message);
    [[nodiscard]] int line() const noexcept { return line_; }

private:
    int line_;
};

class SkillGraphSpec {
public:
    struct NodeDecl {
        std::string name;
        SkillNodeKind kind = SkillNodeKind::Skill;
        std::string description;
    };
    struct EdgeDecl {
        std::string parent;
        std::string child;
    };
    struct AggregateDecl {
        std::string skill;
        Aggregation aggregation;
    };
    struct WeightDecl {
        std::string skill;
        std::string child;
        double weight;
    };

    SkillGraphSpec() = default;
    /// `name` must be an identifier ([A-Za-z_][A-Za-z0-9_]*), like every
    /// node name: anything else could not round-trip through the text form.
    explicit SkillGraphSpec(std::string name);

    /// Parse exactly one `graph <name> { ... }` block.
    [[nodiscard]] static SkillGraphSpec parse(const std::string& text);

    // --- builder-style declaration (order is preserved) ---------------------
    SkillGraphSpec& skill(std::string name, std::string description = {});
    SkillGraphSpec& source(std::string name, std::string description = {});
    SkillGraphSpec& sink(std::string name, std::string description = {});
    /// `parent` (a skill) depends on each of `children`, in order.
    SkillGraphSpec& depends(const std::string& parent,
                            const std::vector<std::string>& children);
    SkillGraphSpec& aggregate(std::string skill, Aggregation aggregation);
    SkillGraphSpec& weight(std::string skill, std::string child, double weight);
    SkillGraphSpec& root(std::string skill);

    // --- introspection ------------------------------------------------------
    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] const std::string& root_skill() const noexcept { return root_; }
    [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
    [[nodiscard]] std::size_t edge_count() const noexcept { return edges_.size(); }
    [[nodiscard]] bool declares_node(const std::string& name) const;
    [[nodiscard]] std::vector<std::string> node_names() const;
    [[nodiscard]] SkillNodeKind node_kind(const std::string& name) const;
    /// Raw declarations in declaration order — what sa::lint inspects
    /// without instantiating (instantiate() throws on the defects lint is
    /// supposed to *report*).
    [[nodiscard]] const std::vector<NodeDecl>& nodes() const noexcept {
        return nodes_;
    }
    [[nodiscard]] const std::vector<EdgeDecl>& edges() const noexcept {
        return edges_;
    }
    [[nodiscard]] const std::vector<AggregateDecl>& aggregations() const noexcept {
        return aggregates_;
    }
    [[nodiscard]] const std::vector<WeightDecl>& weights() const noexcept {
        return weights_;
    }

    /// Serialize to the text grammar above; parse(str()) reproduces the spec.
    [[nodiscard]] std::string str() const;

    // --- instantiation ------------------------------------------------------
    /// Build and validate the structural SkillGraph (nodes and dependencies
    /// are added in declaration order, so children() ordering matches a
    /// hand-wired factory making the same calls).
    [[nodiscard]] SkillGraph instantiate() const;

    /// Build the runtime AbilityGraph with the spec's aggregation choices and
    /// dependency weights applied.
    [[nodiscard]] AbilityGraph
    instantiate_abilities(AbilityThresholds thresholds = {}) const;

private:
    SkillGraphSpec& add_node(NodeDecl decl);
    [[nodiscard]] const NodeDecl* find_node(const std::string& name) const;

    std::string name_;
    std::string root_;
    std::vector<NodeDecl> nodes_;
    std::vector<EdgeDecl> edges_;
    std::vector<AggregateDecl> aggregates_;
    std::vector<WeightDecl> weights_;
};

/// Parse the textual aggregation name ("min", "product", "weighted_mean").
/// Returns false when `text` names no aggregation.
[[nodiscard]] bool aggregation_from_string(const std::string& text, Aggregation& out);

} // namespace sa::skills
