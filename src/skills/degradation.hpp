#pragma once
// Graceful-degradation tactics (§IV: "In case of a reduced ability level it
// is possible for the system to apply graceful degradation tactics, e.g. by
// switching to different software modules or by performing
// self-reconfiguration"). Tactics are registered against skills with an
// applicability band on the skill's ability level; the manager picks the
// cheapest applicable tactic per degraded skill and executes it.

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "skills/ability_graph.hpp"

namespace sa::skills {

struct Tactic {
    std::string name;
    std::string target_skill;
    /// Applicable while the target skill's level lies in [min_level, max_level).
    double min_level = 0.0;
    double max_level = 0.85;
    int cost = 1;              ///< smaller = preferable (less functional loss)
    std::function<void()> apply;
    std::function<bool()> extra_condition; ///< optional additional guard
};

struct AppliedTactic {
    std::string tactic;
    std::string skill;
    double level_at_application = 0.0;
};

class DegradationManager {
public:
    void register_tactic(Tactic tactic);

    /// Tactics that would fire for the current ability levels (cheapest per
    /// skill, at most one per skill), without executing them.
    [[nodiscard]] std::vector<const Tactic*> plan(const AbilityGraph& abilities) const;

    /// Execute the plan; each tactic fires at most once until re-armed.
    std::vector<AppliedTactic> execute(const AbilityGraph& abilities);

    /// Re-arm a tactic (e.g. after the skill recovered).
    void rearm(const std::string& tactic_name);
    void rearm_all();

    /// Mark a tactic as fired without executing it here (for callers that
    /// execute tactics themselves, e.g. the ability layer). Records history.
    void mark_fired(const std::string& tactic_name, double level_at_application);

    [[nodiscard]] const std::vector<AppliedTactic>& history() const noexcept {
        return history_;
    }
    [[nodiscard]] std::size_t tactic_count() const noexcept { return tactics_.size(); }

private:
    struct Entry {
        Tactic tactic;
        bool fired = false;
    };
    std::vector<Entry> tactics_;
    std::vector<AppliedTactic> history_;
};

} // namespace sa::skills
