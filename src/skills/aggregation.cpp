#include "skills/aggregation.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sa::skills {

const char* to_string(Aggregation aggregation) noexcept {
    switch (aggregation) {
    case Aggregation::Min: return "min";
    case Aggregation::Product: return "product";
    case Aggregation::WeightedMean: return "weighted_mean";
    }
    return "?";
}

double aggregate(Aggregation aggregation, const std::vector<WeightedLevel>& levels) {
    if (levels.empty()) {
        return 1.0;
    }
    double out = 1.0;
    switch (aggregation) {
    case Aggregation::Min: {
        out = levels.front().level;
        for (const auto& l : levels) {
            out = std::min(out, l.level);
        }
        break;
    }
    case Aggregation::Product: {
        out = 1.0;
        for (const auto& l : levels) {
            out *= l.level;
        }
        break;
    }
    case Aggregation::WeightedMean: {
        double sum = 0.0;
        double weight = 0.0;
        for (const auto& l : levels) {
            SA_REQUIRE(l.weight > 0.0, "weights must be positive");
            sum += l.level * l.weight;
            weight += l.weight;
        }
        out = sum / weight;
        break;
    }
    }
    return std::clamp(out, 0.0, 1.0);
}

} // namespace sa::skills
