#include "skills/skill_graph_spec.hpp"

#include <algorithm>
#include <cctype>

#include "util/assert.hpp"
#include "util/string_util.hpp"

namespace sa::skills {

SpecParseError::SpecParseError(int line, const std::string& message)
    : std::runtime_error(format("line %d: %s", line, message.c_str())), line_(line) {}

bool aggregation_from_string(const std::string& text, Aggregation& out) {
    if (text == "min") {
        out = Aggregation::Min;
    } else if (text == "product") {
        out = Aggregation::Product;
    } else if (text == "weighted_mean") {
        out = Aggregation::WeightedMean;
    } else {
        return false;
    }
    return true;
}

// --- builder ----------------------------------------------------------------------

namespace {

/// Names must lex as single identifiers in the text form, or str() output
/// would not parse back.
bool is_identifier(const std::string& text) {
    if (text.empty() || (!std::isalpha(static_cast<unsigned char>(text[0])) &&
                         text[0] != '_')) {
        return false;
    }
    return std::all_of(text.begin(), text.end(), [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    });
}

} // namespace

SkillGraphSpec::SkillGraphSpec(std::string name) : name_(std::move(name)) {
    SA_REQUIRE(is_identifier(name_),
               "spec name must be an identifier ([A-Za-z_][A-Za-z0-9_]*): '" +
                   name_ + "'");
}

SkillGraphSpec& SkillGraphSpec::add_node(NodeDecl decl) {
    SA_REQUIRE(is_identifier(decl.name),
               "spec node name must be an identifier ([A-Za-z_][A-Za-z0-9_]*): '" +
                   decl.name + "'");
    SA_REQUIRE(find_node(decl.name) == nullptr,
               "duplicate node in spec '" + name_ + "': " + decl.name);
    // Descriptions must survive str() -> parse(): the text form quotes them
    // with no escape sequences, so quotes and newlines are unrepresentable.
    SA_REQUIRE(decl.description.find('"') == std::string::npos &&
                   decl.description.find('\n') == std::string::npos,
               "node description must not contain '\"' or newlines: " + decl.name);
    nodes_.push_back(std::move(decl));
    return *this;
}

SkillGraphSpec& SkillGraphSpec::skill(std::string name, std::string description) {
    return add_node(NodeDecl{std::move(name), SkillNodeKind::Skill,
                             std::move(description)});
}

SkillGraphSpec& SkillGraphSpec::source(std::string name, std::string description) {
    return add_node(NodeDecl{std::move(name), SkillNodeKind::DataSource,
                             std::move(description)});
}

SkillGraphSpec& SkillGraphSpec::sink(std::string name, std::string description) {
    return add_node(NodeDecl{std::move(name), SkillNodeKind::DataSink,
                             std::move(description)});
}

SkillGraphSpec& SkillGraphSpec::depends(const std::string& parent,
                                        const std::vector<std::string>& children) {
    SA_REQUIRE(!children.empty(), "dependency declaration needs at least one child");
    for (const auto& child : children) {
        edges_.push_back(EdgeDecl{parent, child});
    }
    return *this;
}

SkillGraphSpec& SkillGraphSpec::aggregate(std::string skill, Aggregation aggregation) {
    aggregates_.push_back(AggregateDecl{std::move(skill), aggregation});
    return *this;
}

SkillGraphSpec& SkillGraphSpec::weight(std::string skill, std::string child,
                                       double weight) {
    SA_REQUIRE(weight > 0.0, "weights must be positive");
    weights_.push_back(WeightDecl{std::move(skill), std::move(child), weight});
    return *this;
}

SkillGraphSpec& SkillGraphSpec::root(std::string skill) {
    root_ = std::move(skill);
    return *this;
}

// --- introspection ----------------------------------------------------------------

const SkillGraphSpec::NodeDecl* SkillGraphSpec::find_node(const std::string& name) const {
    for (const auto& node : nodes_) {
        if (node.name == name) {
            return &node;
        }
    }
    return nullptr;
}

bool SkillGraphSpec::declares_node(const std::string& name) const {
    return find_node(name) != nullptr;
}

std::vector<std::string> SkillGraphSpec::node_names() const {
    std::vector<std::string> out;
    out.reserve(nodes_.size());
    for (const auto& node : nodes_) {
        out.push_back(node.name);
    }
    return out;
}

SkillNodeKind SkillGraphSpec::node_kind(const std::string& name) const {
    const NodeDecl* node = find_node(name);
    SA_REQUIRE(node != nullptr, "spec '" + name_ + "' declares no node: " + name);
    return node->kind;
}

std::string SkillGraphSpec::str() const {
    std::string out = "graph " + name_ + " {\n";
    if (!root_.empty()) {
        out += "  root " + root_ + ";\n";
    }
    for (const auto& node : nodes_) {
        out += "  ";
        switch (node.kind) {
        case SkillNodeKind::Skill: out += "skill "; break;
        case SkillNodeKind::DataSource: out += "source "; break;
        case SkillNodeKind::DataSink: out += "sink "; break;
        }
        out += node.name;
        if (!node.description.empty()) {
            out += " \"" + node.description + "\"";
        }
        out += ";\n";
    }
    // Edges grouped by parent in declaration order (one fan-out per run).
    for (std::size_t i = 0; i < edges_.size();) {
        out += "  " + edges_[i].parent + " ->";
        const std::string& parent = edges_[i].parent;
        while (i < edges_.size() && edges_[i].parent == parent) {
            out += " " + edges_[i].child;
            ++i;
        }
        out += ";\n";
    }
    for (const auto& agg : aggregates_) {
        out += "  aggregate " + agg.skill + " " +
               std::string(to_string(agg.aggregation)) + ";\n";
    }
    for (const auto& w : weights_) {
        out += "  weight " + w.skill + " " + w.child + " " +
               format("%g", w.weight) + ";\n";
    }
    out += "}\n";
    return out;
}

// --- instantiation ----------------------------------------------------------------

SkillGraph SkillGraphSpec::instantiate() const {
    SkillGraph g;
    for (const auto& node : nodes_) {
        switch (node.kind) {
        case SkillNodeKind::Skill: g.add_skill(node.name, node.description); break;
        case SkillNodeKind::DataSource: g.add_source(node.name, node.description); break;
        case SkillNodeKind::DataSink: g.add_sink(node.name, node.description); break;
        }
    }
    for (const auto& edge : edges_) {
        g.add_dependency(edge.parent, edge.child);
    }
    g.validate();
    if (!root_.empty()) {
        const auto roots = g.roots();
        SA_REQUIRE(std::find(roots.begin(), roots.end(), root_) != roots.end(),
                   "spec '" + name_ + "': declared root '" + root_ +
                       "' is not a root skill of the instantiated graph");
    }
    return g;
}

AbilityGraph SkillGraphSpec::instantiate_abilities(AbilityThresholds thresholds) const {
    AbilityGraph abilities(instantiate(), thresholds);
    for (const auto& agg : aggregates_) {
        abilities.set_aggregation(agg.skill, agg.aggregation);
    }
    for (const auto& w : weights_) {
        abilities.set_dependency_weight(w.skill, w.child, w.weight);
    }
    return abilities;
}

// --- parser -----------------------------------------------------------------------
// Hand-rolled recursive-descent over a tiny token stream, mirroring the
// structure (and error style) of model/contract_parser.

namespace {

enum class TokKind { Ident, Number, String, Punct, End };

struct Token {
    TokKind kind = TokKind::End;
    std::string text;
    int line = 0;
};

class Lexer {
public:
    explicit Lexer(const std::string& text) : text_(text) { advance(); }

    [[nodiscard]] const Token& peek() const noexcept { return current_; }

    Token take() {
        Token t = current_;
        advance();
        return t;
    }

private:
    void advance() {
        skip_space_and_comments();
        current_.line = line_;
        if (pos_ >= text_.size()) {
            current_ = Token{TokKind::End, "", line_};
            return;
        }
        const char c = text_[pos_];
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::size_t start = pos_;
            while (pos_ < text_.size() &&
                   (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                    text_[pos_] == '_')) {
                ++pos_;
            }
            current_ = Token{TokKind::Ident, text_.substr(start, pos_ - start), line_};
            return;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
            std::size_t start = pos_;
            while (pos_ < text_.size() &&
                   (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                    text_[pos_] == '.')) {
                ++pos_;
            }
            current_ = Token{TokKind::Number, text_.substr(start, pos_ - start), line_};
            return;
        }
        if (c == '"') {
            std::size_t start = ++pos_;
            while (pos_ < text_.size() && text_[pos_] != '"' && text_[pos_] != '\n') {
                ++pos_;
            }
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                throw SpecParseError(line_, "unterminated string literal");
            }
            current_ = Token{TokKind::String, text_.substr(start, pos_ - start), line_};
            ++pos_;
            return;
        }
        if (c == '-' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '>') {
            current_ = Token{TokKind::Punct, "->", line_};
            pos_ += 2;
            return;
        }
        current_ = Token{TokKind::Punct, std::string(1, c), line_};
        ++pos_;
    }

    void skip_space_and_comments() {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '\n') {
                ++line_;
                ++pos_;
            } else if (std::isspace(static_cast<unsigned char>(c))) {
                ++pos_;
            } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
                while (pos_ < text_.size() && text_[pos_] != '\n') {
                    ++pos_;
                }
            } else {
                break;
            }
        }
    }

    const std::string& text_;
    std::size_t pos_ = 0;
    int line_ = 1;
    Token current_;
};

class SpecParser {
public:
    explicit SpecParser(const std::string& text) : lex_(text) {}

    SkillGraphSpec parse_one() {
        expect_ident("graph");
        SkillGraphSpec spec(expect(TokKind::Ident, "graph name").text);
        expect_punct("{");
        while (!peek_punct("}")) {
            parse_statement(spec);
        }
        expect_punct("}");
        if (lex_.peek().kind != TokKind::End) {
            fail("expected exactly one graph block");
        }
        return spec;
    }

private:
    [[noreturn]] void fail(const std::string& msg) {
        throw SpecParseError(lex_.peek().line, msg);
    }

    Token expect(TokKind kind, const std::string& what) {
        if (lex_.peek().kind != kind) {
            fail("expected " + what + ", got '" + lex_.peek().text + "'");
        }
        return lex_.take();
    }

    void expect_ident(const std::string& word) {
        const Token t = expect(TokKind::Ident, "'" + word + "'");
        if (t.text != word) {
            throw SpecParseError(t.line, "expected '" + word + "', got '" + t.text + "'");
        }
    }

    void expect_punct(const std::string& punct) {
        if (lex_.peek().kind != TokKind::Punct || lex_.peek().text != punct) {
            fail("expected '" + punct + "', got '" + lex_.peek().text + "'");
        }
        lex_.take();
    }

    [[nodiscard]] bool peek_punct(const std::string& punct) {
        return lex_.peek().kind == TokKind::Punct && lex_.peek().text == punct;
    }

    std::string optional_description() {
        if (lex_.peek().kind == TokKind::String) {
            return lex_.take().text;
        }
        return {};
    }

    void parse_statement(SkillGraphSpec& spec) {
        const Token head = expect(TokKind::Ident, "statement");
        if (head.text == "root") {
            spec.root(expect(TokKind::Ident, "root skill name").text);
        } else if (head.text == "skill") {
            const std::string name = expect(TokKind::Ident, "skill name").text;
            spec.skill(name, optional_description());
        } else if (head.text == "source") {
            const std::string name = expect(TokKind::Ident, "source name").text;
            spec.source(name, optional_description());
        } else if (head.text == "sink") {
            const std::string name = expect(TokKind::Ident, "sink name").text;
            spec.sink(name, optional_description());
        } else if (head.text == "aggregate") {
            const std::string skill = expect(TokKind::Ident, "skill name").text;
            const Token agg = expect(TokKind::Ident, "aggregation name");
            Aggregation aggregation{};
            if (!aggregation_from_string(agg.text, aggregation)) {
                throw SpecParseError(agg.line,
                                     "unknown aggregation '" + agg.text +
                                         "' (min, product, weighted_mean)");
            }
            spec.aggregate(skill, aggregation);
        } else if (head.text == "weight") {
            const std::string skill = expect(TokKind::Ident, "skill name").text;
            const std::string child = expect(TokKind::Ident, "child name").text;
            const Token value = expect(TokKind::Number, "weight value");
            double weight = 0.0;
            try {
                std::size_t consumed = 0;
                weight = std::stod(value.text, &consumed);
                if (consumed != value.text.size()) {
                    throw std::invalid_argument("trailing characters");
                }
            } catch (const std::exception&) {
                throw SpecParseError(value.line,
                                     "bad weight value '" + value.text + "'");
            }
            if (weight <= 0.0) {
                throw SpecParseError(value.line, "weights must be positive");
            }
            spec.weight(skill, child, weight);
        } else if (peek_punct("->")) {
            // `<parent> -> <child> [<child> ...]`
            lex_.take();
            std::vector<std::string> children;
            children.push_back(expect(TokKind::Ident, "child name").text);
            while (lex_.peek().kind == TokKind::Ident) {
                children.push_back(lex_.take().text);
            }
            spec.depends(head.text, children);
        } else {
            throw SpecParseError(head.line, "unknown statement '" + head.text + "'");
        }
        expect_punct(";");
    }

    Lexer lex_;
};

} // namespace

SkillGraphSpec SkillGraphSpec::parse(const std::string& text) {
    SpecParser parser(text);
    return parser.parse_one();
}

} // namespace sa::skills
