#include "skills/capability_registry.hpp"

#include "monitor/anomaly_kinds.hpp"

#include <algorithm>

#include "skills/acc_graph_factory.hpp"
#include "util/assert.hpp"

namespace sa::skills {

namespace kinds = sa::monitor::kinds;

const char* to_string(QualityKind kind) noexcept {
    switch (kind) {
    case QualityKind::Availability: return "availability";
    case QualityKind::Accuracy: return "accuracy";
    case QualityKind::Latency: return "latency";
    case QualityKind::Integrity: return "integrity";
    }
    return "?";
}

bool Capability::has_quality(QualityKind kind) const {
    return std::any_of(qualities.begin(), qualities.end(),
                       [kind](const QualityAttribute& q) { return q.kind == kind; });
}

bool AlarmBinding::matches(const monitor::Anomaly& anomaly) const {
    if (anomaly.kind != anomaly_kind) {
        return false;
    }
    if (domain.has_value() && anomaly.domain != *domain) {
        return false;
    }
    if (!source.empty() && anomaly.source != source) {
        return false;
    }
    return true;
}

const std::string& AlarmBinding::capability_for(const monitor::Anomaly& anomaly) const {
    return capability.empty() ? anomaly.source : capability;
}

// --- catalogue --------------------------------------------------------------------

CapabilityRegistry& CapabilityRegistry::register_capability(Capability capability) {
    SA_REQUIRE(!capability.name.empty(), "capability needs a name");
    SA_REQUIRE(!capability.qualities.empty(),
               "capability needs at least one quality attribute: " + capability.name);
    for (const auto& quality : capability.qualities) {
        SA_REQUIRE(quality.nominal >= 0.0 && quality.nominal <= 1.0,
                   "nominal quality must be within [0,1]: " + capability.name);
    }
    const std::string name = capability.name;
    const bool inserted =
        capabilities_.emplace(name, std::move(capability)).second;
    SA_REQUIRE(inserted, "duplicate capability: " + name);
    return *this;
}

bool CapabilityRegistry::has_capability(const std::string& name) const {
    return capabilities_.contains(name);
}

const Capability& CapabilityRegistry::capability(const std::string& name) const {
    auto it = capabilities_.find(name);
    SA_REQUIRE(it != capabilities_.end(), "unknown capability: " + name);
    return it->second;
}

std::vector<std::string> CapabilityRegistry::capability_names() const {
    std::vector<std::string> out;
    out.reserve(capabilities_.size());
    for (const auto& [name, _] : capabilities_) {
        out.push_back(name);
    }
    return out;
}

// --- specs ------------------------------------------------------------------------

CapabilityRegistry& CapabilityRegistry::register_spec(SkillGraphSpec spec) {
    SA_REQUIRE(!spec.name().empty(), "spec needs a name");
    SA_REQUIRE(!specs_.contains(spec.name()), "duplicate spec: " + spec.name());
    for (const auto& node : spec.node_names()) {
        SA_REQUIRE(has_capability(node),
                   "spec '" + spec.name() + "' references unregistered capability: " +
                       node);
        SA_REQUIRE(capability(node).node_kind == spec.node_kind(node),
                   "spec '" + spec.name() + "' uses capability '" + node +
                       "' as a different kind than the catalogue declares");
    }
    // A registered spec must instantiate cleanly: catch structural errors at
    // registration, not first use.
    (void)spec.instantiate();
    specs_.emplace(spec.name(), std::move(spec));
    return *this;
}

bool CapabilityRegistry::has_spec(const std::string& name) const {
    return specs_.contains(name);
}

const SkillGraphSpec& CapabilityRegistry::spec(const std::string& name) const {
    auto it = specs_.find(name);
    SA_REQUIRE(it != specs_.end(), "unknown skill-graph spec: " + name);
    return it->second;
}

std::vector<std::string> CapabilityRegistry::spec_names() const {
    std::vector<std::string> out;
    out.reserve(specs_.size());
    for (const auto& [name, _] : specs_) {
        out.push_back(name);
    }
    return out;
}

SkillGraph CapabilityRegistry::instantiate(const std::string& spec_name) const {
    return spec(spec_name).instantiate();
}

AbilityGraph CapabilityRegistry::instantiate_abilities(const std::string& spec_name,
                                                       AbilityThresholds thresholds) const {
    return spec(spec_name).instantiate_abilities(thresholds);
}

// --- alarm bindings ---------------------------------------------------------------

CapabilityRegistry& CapabilityRegistry::bind_alarm(AlarmBinding binding) {
    SA_REQUIRE(!binding.anomaly_kind.empty(), "alarm binding needs an anomaly kind");
    SA_REQUIRE(binding.degraded_value >= 0.0 && binding.degraded_value <= 1.0,
               "degraded value must be within [0,1]");
    if (!binding.capability.empty()) {
        SA_REQUIRE(has_capability(binding.capability),
                   "alarm binding references unregistered capability: " +
                       binding.capability);
        SA_REQUIRE(capability(binding.capability).has_quality(binding.quality),
                   "capability '" + binding.capability + "' has no " +
                       std::string(to_string(binding.quality)) + " quality");
    }
    // Re-registering an identical binding is always a composition bug (the
    // rule would silently fire twice); fail loudly like duplicate
    // capabilities and specs do.
    for (const AlarmBinding& existing : bindings_) {
        SA_REQUIRE(!(existing.anomaly_kind == binding.anomaly_kind &&
                     existing.capability == binding.capability &&
                     existing.quality == binding.quality &&
                     existing.degraded_value == binding.degraded_value &&
                     existing.domain == binding.domain &&
                     existing.source == binding.source),
                   "duplicate alarm binding for anomaly kind '" +
                       binding.anomaly_kind + "'");
    }
    bindings_.push_back(std::move(binding));
    return *this;
}

std::vector<const AlarmBinding*>
CapabilityRegistry::match(const monitor::Anomaly& anomaly) const {
    std::vector<const AlarmBinding*> out;
    for (const auto& binding : bindings_) {
        if (binding.matches(anomaly)) {
            out.push_back(&binding);
        }
    }
    return out;
}

// --- builtin catalogue ------------------------------------------------------------

namespace {

/// Shorthand for the three capability shapes of the stock catalogue.
Capability skill_cap(const char* name, const char* description) {
    return Capability{name,
                      SkillNodeKind::Skill,
                      description,
                      {{QualityKind::Availability, 1.0}, {QualityKind::Accuracy, 1.0}}};
}

Capability source_cap(const char* name, const char* description,
                      std::vector<QualityAttribute> qualities = {
                          {QualityKind::Availability, 1.0},
                          {QualityKind::Accuracy, 1.0}}) {
    return Capability{name, SkillNodeKind::DataSource, description,
                      std::move(qualities)};
}

Capability sink_cap(const char* name, const char* description) {
    return Capability{name,
                      SkillNodeKind::DataSink,
                      description,
                      {{QualityKind::Availability, 1.0}}};
}

/// The §IV ACC skill graph as a spec — node and dependency declarations in
/// exactly the order of the retired hand-wired factory, so the instantiated
/// graph is behavior-identical (same children() ordering, same propagate
/// results).
SkillGraphSpec make_acc_spec(bool split_environment_sensors) {
    using namespace acc;
    SkillGraphSpec spec(split_environment_sensors ? "acc" : "acc_aggregate_sensors");
    spec.root(kAccDriving)
        .skill(kAccDriving, "main skill: ACC driving")
        .skill(kControlDistance, "control distance to the preceding vehicle")
        .skill(kControlSpeed, "control speed of the ego vehicle")
        .skill(kKeepControllable, "keep the vehicle controllable for the driver")
        .skill(kEstimateDriverIntent, "estimate the driver's intent")
        .skill(kSelectTarget, "select a target object")
        .skill(kPerceiveTrack, "perceive and track dynamic objects")
        .skill(kAccelerate, "accelerate the vehicle")
        .skill(kDecelerate, "decelerate the vehicle")
        .sink(kPowertrain, "powertrain system (data sink)")
        .sink(kBrakeSystem, "braking system (data sink)")
        .source(kHmi, "human-machine interface (data source)");
    if (split_environment_sensors) {
        spec.source(kRadar, "radar sensor (data source)")
            .source(kCamera, "camera sensor (data source)")
            .source(kLidar, "lidar sensor (data source)");
    } else {
        spec.source("environment_sensors", "environment sensors (data source)");
    }
    spec.depends(kAccDriving, {kControlDistance, kControlSpeed, kKeepControllable})
        .depends(kKeepControllable, {kEstimateDriverIntent, kDecelerate})
        .depends(kControlDistance,
                 {kSelectTarget, kEstimateDriverIntent, kAccelerate, kDecelerate})
        .depends(kControlSpeed,
                 {kSelectTarget, kEstimateDriverIntent, kAccelerate, kDecelerate})
        .depends(kSelectTarget, {kPerceiveTrack});
    if (split_environment_sensors) {
        spec.depends(kPerceiveTrack, {kRadar, kCamera, kLidar});
    } else {
        spec.depends(kPerceiveTrack, {"environment_sensors"});
    }
    spec.depends(kEstimateDriverIntent, {kHmi})
        .depends(kAccelerate, {kPowertrain})
        .depends(kDecelerate, {kPowertrain, kBrakeSystem});
    return spec;
}

SkillGraphSpec make_lane_keep_spec() {
    using namespace caps;
    SkillGraphSpec spec("lane_keep");
    spec.root(kLaneKeeping)
        .skill(kLaneKeeping, "main skill: keep the vehicle in its lane")
        .skill(kDetectLaneMarkings, "detect and track lane markings")
        .skill(kLateralControl, "control the lateral position within the lane")
        .skill(kEstimateVehicleState, "estimate the ego motion state")
        .skill(acc::kEstimateDriverIntent, "estimate the driver's intent")
        .source(acc::kCamera, "camera sensor (data source)")
        .source(kImu, "inertial measurement unit (data source)")
        .source(kWheelOdometry, "wheel odometry (data source)")
        .source(acc::kHmi, "human-machine interface (data source)")
        .sink(kSteering, "steering actuator (data sink)")
        .depends(kLaneKeeping,
                 {kDetectLaneMarkings, kLateralControl, acc::kEstimateDriverIntent})
        .depends(kDetectLaneMarkings, {acc::kCamera})
        .depends(kLateralControl, {kEstimateVehicleState, kSteering})
        .depends(kEstimateVehicleState, {kImu, kWheelOdometry})
        .depends(acc::kEstimateDriverIntent, {acc::kHmi});
    return spec;
}

SkillGraphSpec make_emergency_stop_spec() {
    using namespace caps;
    SkillGraphSpec spec("emergency_stop");
    spec.root(kEmergencyStop)
        .skill(kEmergencyStop, "main skill: bring the vehicle to a safe stop")
        .skill(kDetectObstacle, "detect obstacles in the stopping corridor")
        .skill(kFullBraking, "apply full braking force")
        .skill(kWarnTraffic, "warn following traffic")
        .source(acc::kRadar, "radar sensor (data source)")
        .source(acc::kCamera, "camera sensor (data source)")
        .sink(acc::kBrakeSystem, "braking system (data sink)")
        .sink(kHazardLights, "hazard lights (data sink)")
        .depends(kEmergencyStop, {kDetectObstacle, kFullBraking, kWarnTraffic})
        .depends(kDetectObstacle, {acc::kRadar, acc::kCamera})
        .depends(kFullBraking, {acc::kBrakeSystem})
        .depends(kWarnTraffic, {kHazardLights})
        // Obstacle detection tolerates one degraded sensor: radar dominant.
        .aggregate(kDetectObstacle, Aggregation::WeightedMean)
        .weight(kDetectObstacle, acc::kRadar, 3.0)
        .weight(kDetectObstacle, acc::kCamera, 1.0);
    return spec;
}

SkillGraphSpec make_platoon_follow_spec() {
    using namespace caps;
    SkillGraphSpec spec("platoon_follow");
    spec.root(kPlatoonFollow)
        .skill(kPlatoonFollow, "main skill: follow the platoon lead vehicle")
        .skill(kTrackLeadVehicle, "track the immediate lead vehicle")
        .skill(kControlGap, "control the gap to the lead vehicle")
        .skill(kReceivePlatoonCommands, "receive platoon coordination commands")
        .skill(acc::kAccelerate, "accelerate the vehicle")
        .skill(acc::kDecelerate, "decelerate the vehicle")
        .source(acc::kRadar, "radar sensor (data source)")
        .source(kV2vLink, "V2V communication link (data source)")
        .sink(acc::kPowertrain, "powertrain system (data sink)")
        .sink(acc::kBrakeSystem, "braking system (data sink)")
        .depends(kPlatoonFollow,
                 {kTrackLeadVehicle, kControlGap, kReceivePlatoonCommands})
        .depends(kTrackLeadVehicle, {acc::kRadar, kV2vLink})
        .depends(kControlGap, {kTrackLeadVehicle, acc::kAccelerate, acc::kDecelerate})
        .depends(kReceivePlatoonCommands, {kV2vLink})
        .depends(acc::kAccelerate, {acc::kPowertrain})
        .depends(acc::kDecelerate, {acc::kPowertrain, acc::kBrakeSystem})
        // Tracking fuses radar and V2V: either alone keeps partial ability.
        .aggregate(kTrackLeadVehicle, Aggregation::WeightedMean)
        .weight(kTrackLeadVehicle, acc::kRadar, 2.0)
        .weight(kTrackLeadVehicle, kV2vLink, 1.0);
    return spec;
}

CapabilityRegistry make_builtin() {
    using namespace acc;
    using namespace caps;
    CapabilityRegistry registry;

    // Skills.
    registry
        .register_capability(skill_cap(kAccDriving, "ACC driving"))
        .register_capability(skill_cap(kControlDistance, "distance control"))
        .register_capability(skill_cap(kControlSpeed, "speed control"))
        .register_capability(skill_cap(kKeepControllable, "driver controllability"))
        .register_capability(skill_cap(kEstimateDriverIntent, "driver intent"))
        .register_capability(skill_cap(kSelectTarget, "target selection"))
        .register_capability(skill_cap(kPerceiveTrack, "object perception"))
        .register_capability(skill_cap(kAccelerate, "acceleration"))
        .register_capability(skill_cap(kDecelerate, "deceleration"))
        .register_capability(skill_cap(kLaneKeeping, "lane keeping"))
        .register_capability(skill_cap(kDetectLaneMarkings, "lane-marking detection"))
        .register_capability(skill_cap(kLateralControl, "lateral control"))
        .register_capability(skill_cap(kEstimateVehicleState, "ego-state estimation"))
        .register_capability(skill_cap(kEmergencyStop, "emergency stop"))
        .register_capability(skill_cap(kDetectObstacle, "obstacle detection"))
        .register_capability(skill_cap(kFullBraking, "full braking"))
        .register_capability(skill_cap(kWarnTraffic, "traffic warning"))
        .register_capability(skill_cap(kPlatoonFollow, "platoon following"))
        .register_capability(skill_cap(kTrackLeadVehicle, "lead-vehicle tracking"))
        .register_capability(skill_cap(kControlGap, "gap control"))
        .register_capability(skill_cap(kReceivePlatoonCommands, "platoon commands"));

    // Data sources.
    registry
        .register_capability(source_cap(kRadar, "radar sensor"))
        .register_capability(source_cap(kCamera, "camera sensor"))
        .register_capability(source_cap(kLidar, "lidar sensor"))
        .register_capability(source_cap("environment_sensors", "aggregate sensors"))
        .register_capability(
            source_cap(kHmi, "human-machine interface",
                       {{QualityKind::Availability, 1.0}}))
        .register_capability(source_cap(kImu, "inertial measurement unit"))
        .register_capability(source_cap(kWheelOdometry, "wheel odometry"))
        .register_capability(
            source_cap(kV2vLink, "V2V communication link",
                       {{QualityKind::Availability, 1.0},
                        {QualityKind::Latency, 1.0},
                        {QualityKind::Integrity, 1.0}}));

    // Data sinks.
    registry.register_capability(sink_cap(kPowertrain, "powertrain"))
        .register_capability(sink_cap(kBrakeSystem, "braking system"))
        .register_capability(sink_cap(kSteering, "steering actuator"))
        .register_capability(sink_cap(kHazardLights, "hazard lights"));

    // Specs.
    registry.register_spec(make_acc_spec(/*split_environment_sensors=*/true))
        .register_spec(make_acc_spec(/*split_environment_sensors=*/false))
        .register_spec(make_lane_keep_spec())
        .register_spec(make_emergency_stop_spec())
        .register_spec(make_platoon_follow_spec());

    // Default alarm bindings for the stock monitors. Sensor alarms name the
    // degraded sensor in `source`, so the capability resolves from there.
    AlarmBinding failed;
    failed.anomaly_kind = kinds::kSensorFailed;
    failed.quality = QualityKind::Availability;
    failed.degraded_value = 0.0;
    failed.domain = monitor::Domain::Sensor;
    registry.bind_alarm(failed);

    AlarmBinding degraded;
    degraded.anomaly_kind = kinds::kSensorDegraded;
    degraded.quality = QualityKind::Accuracy;
    degraded.degraded_value = 0.35;
    degraded.domain = monitor::Domain::Sensor;
    registry.bind_alarm(degraded);

    AlarmBinding recovered;
    recovered.anomaly_kind = kinds::kSensorRecovered;
    recovered.quality = QualityKind::Accuracy;
    recovered.degraded_value = 1.0;
    recovered.domain = monitor::Domain::Sensor;
    registry.bind_alarm(recovered);
    recovered.quality = QualityKind::Availability;
    registry.bind_alarm(recovered);

    AlarmBinding heartbeat;
    heartbeat.anomaly_kind = kinds::kHeartbeatLoss;
    heartbeat.quality = QualityKind::Availability;
    heartbeat.degraded_value = 0.0;
    registry.bind_alarm(heartbeat);

    return registry;
}

} // namespace

const CapabilityRegistry& CapabilityRegistry::builtin() {
    static const CapabilityRegistry registry = make_builtin();
    return registry;
}

} // namespace sa::skills
