#include "skills/skill_graph.hpp"

#include <algorithm>
#include <functional>
#include <set>

namespace sa::skills {

const char* to_string(SkillNodeKind kind) noexcept {
    switch (kind) {
    case SkillNodeKind::Skill: return "skill";
    case SkillNodeKind::DataSource: return "source";
    case SkillNodeKind::DataSink: return "sink";
    }
    return "?";
}

void SkillGraph::add_node(SkillNode node) {
    SA_REQUIRE(!node.name.empty(), "skill-graph node needs a name");
    SA_REQUIRE(!nodes_.contains(node.name), "duplicate node: " + node.name);
    nodes_[node.name] = std::move(node);
}

void SkillGraph::add_skill(const std::string& name, const std::string& description) {
    add_node(SkillNode{name, SkillNodeKind::Skill, description});
}

void SkillGraph::add_source(const std::string& name, const std::string& description) {
    add_node(SkillNode{name, SkillNodeKind::DataSource, description});
}

void SkillGraph::add_sink(const std::string& name, const std::string& description) {
    add_node(SkillNode{name, SkillNodeKind::DataSink, description});
}

void SkillGraph::add_dependency(const std::string& parent, const std::string& child) {
    SA_REQUIRE(nodes_.contains(parent), "unknown parent node: " + parent);
    SA_REQUIRE(nodes_.contains(child), "unknown child node: " + child);
    SA_REQUIRE(nodes_.at(parent).kind == SkillNodeKind::Skill,
               "only skills can have dependencies: " + parent);
    auto& kids = children_[parent];
    SA_REQUIRE(std::find(kids.begin(), kids.end(), child) == kids.end(),
               "duplicate dependency: " + parent + " -> " + child);
    kids.push_back(child);
    parents_[child].push_back(parent);
}

bool SkillGraph::has_node(const std::string& name) const { return nodes_.contains(name); }

const SkillNode& SkillGraph::node(const std::string& name) const {
    auto it = nodes_.find(name);
    SA_REQUIRE(it != nodes_.end(), "unknown node: " + name);
    return it->second;
}

std::vector<std::string> SkillGraph::children(const std::string& name) const {
    auto it = children_.find(name);
    return it == children_.end() ? std::vector<std::string>{} : it->second;
}

std::vector<std::string> SkillGraph::parents(const std::string& name) const {
    auto it = parents_.find(name);
    return it == parents_.end() ? std::vector<std::string>{} : it->second;
}

std::vector<std::string> SkillGraph::node_names() const {
    std::vector<std::string> out;
    out.reserve(nodes_.size());
    for (const auto& [name, _] : nodes_) {
        out.push_back(name);
    }
    return out;
}

std::size_t SkillGraph::edge_count() const {
    std::size_t n = 0;
    for (const auto& [_, kids] : children_) {
        n += kids.size();
    }
    return n;
}

std::vector<std::string> SkillGraph::roots() const {
    std::vector<std::string> out;
    for (const auto& [name, node] : nodes_) {
        if (node.kind == SkillNodeKind::Skill &&
            (!parents_.contains(name) || parents_.at(name).empty())) {
            out.push_back(name);
        }
    }
    return out;
}

void SkillGraph::validate() const {
    // Sources/sinks have no children (enforced structurally by
    // add_dependency) and every skill has at least one child.
    for (const auto& [name, node] : nodes_) {
        if (node.kind == SkillNodeKind::Skill) {
            if (!children_.contains(name) || children_.at(name).empty()) {
                throw SkillGraphError("skill has no dependencies (dangling path): " + name);
            }
        }
    }
    if (roots().empty()) {
        throw SkillGraphError("graph has no root (main) skill");
    }
    // Acyclicity via colored DFS.
    enum class Color { White, Gray, Black };
    std::map<std::string, Color> color;
    std::function<void(const std::string&)> visit = [&](const std::string& name) {
        color[name] = Color::Gray;
        for (const auto& child : children(name)) {
            auto c = color.contains(child) ? color[child] : Color::White;
            if (c == Color::Gray) {
                throw SkillGraphError("cycle through: " + child);
            }
            if (c == Color::White) {
                visit(child);
            }
        }
        color[name] = Color::Black;
    };
    for (const auto& [name, _] : nodes_) {
        auto c = color.contains(name) ? color[name] : Color::White;
        if (c == Color::White) {
            visit(name);
        }
    }
}

std::vector<std::string> SkillGraph::topological_order() const {
    // Kahn's algorithm over the child -> parent direction: children first.
    std::map<std::string, std::size_t> pending_children;
    for (const auto& [name, _] : nodes_) {
        pending_children[name] = children(name).size();
    }
    std::vector<std::string> ready;
    for (const auto& [name, n] : pending_children) {
        if (n == 0) {
            ready.push_back(name);
        }
    }
    std::vector<std::string> order;
    std::set<std::string> done;
    while (!ready.empty()) {
        // Deterministic: pop the lexicographically smallest.
        std::sort(ready.begin(), ready.end(), std::greater<>());
        const std::string name = ready.back();
        ready.pop_back();
        order.push_back(name);
        done.insert(name);
        for (const auto& parent : parents(name)) {
            auto& n = pending_children[parent];
            SA_ASSERT(n > 0, "topological sort: negative pending count");
            if (--n == 0) {
                ready.push_back(parent);
            }
        }
    }
    if (order.size() != nodes_.size()) {
        throw SkillGraphError("graph contains a cycle; topological order undefined");
    }
    return order;
}

} // namespace sa::skills
