#pragma once
// Ability graph: the runtime instantiation of a skill graph (§IV: "an
// ability is derived from an abstract skill by instantiation and including
// information about the ability's current performance. ... Within the
// implemented system ability graphs are used during operation of the vehicle
// to monitor the current system performance. The ability level of the
// vehicle can then guide decision making").
//
// Each node carries a performance level in [0, 1]. Sources/sinks get their
// levels from monitors (sensor quality, actuator health); skills combine an
// intrinsic level (own performance, e.g. control quality) with an
// aggregation of their dependencies. propagate() recomputes bottom-up.

#include <map>
#include <string>

#include "monitor/sensor_quality_monitor.hpp"
#include "sim/process.hpp"
#include "skills/aggregation.hpp"
#include "skills/skill_graph.hpp"

namespace sa::skills {

/// Qualitative ability level derived from the numeric score.
enum class AbilityLevel { Unavailable, Marginal, Reduced, Nominal };

const char* to_string(AbilityLevel level) noexcept;

struct AbilityThresholds {
    double nominal = 0.85; ///< >= nominal  => Nominal
    double reduced = 0.50; ///< >= reduced  => Reduced
    double marginal = 0.15;///< >= marginal => Marginal, below => Unavailable
};

AbilityLevel classify(double level, const AbilityThresholds& thresholds = {});

class AbilityGraph {
public:
    explicit AbilityGraph(SkillGraph structure, AbilityThresholds thresholds = {});

    [[nodiscard]] const SkillGraph& structure() const noexcept { return structure_; }

    /// Set a source/sink level (monitor input). Does not propagate.
    void set_source_level(const std::string& name, double level);

    /// Set a skill's intrinsic performance (its own monitor, e.g. control
    /// performance). Default 1.0. Does not propagate.
    void set_intrinsic_level(const std::string& skill, double level);
    /// A skill's intrinsic performance as last set (1.0 by default).
    [[nodiscard]] double intrinsic_level(const std::string& skill) const;

    void set_aggregation(const std::string& skill, Aggregation aggregation);
    void set_dependency_weight(const std::string& skill, const std::string& child,
                               double weight);

    /// Recompute all skill levels bottom-up. Returns the number of nodes
    /// whose qualitative level changed.
    std::size_t propagate();

    [[nodiscard]] double level(const std::string& name) const;
    [[nodiscard]] AbilityLevel ability(const std::string& name) const;
    [[nodiscard]] std::map<std::string, double> snapshot() const;

    /// Emitted from propagate() for each node whose qualitative level
    /// changed: (node, old level, new level).
    sim::Signal<const std::string&, AbilityLevel, AbilityLevel>& level_changed() noexcept {
        return level_changed_;
    }

    /// Convenience: drive a source level from a sensor-quality monitor.
    /// Subscribes to quality updates; each update sets the level and
    /// propagates.
    void bind_source(const std::string& source, monitor::SensorQualityMonitor& monitor);

    [[nodiscard]] const AbilityThresholds& thresholds() const noexcept {
        return thresholds_;
    }

private:
    SkillGraph structure_;
    AbilityThresholds thresholds_;
    std::map<std::string, double> level_;      ///< current propagated levels
    std::map<std::string, double> intrinsic_;  ///< skills only
    std::map<std::string, Aggregation> aggregation_;
    std::map<std::pair<std::string, std::string>, double> weights_;
    std::vector<std::string> topo_;            ///< cached topological order
    sim::Signal<const std::string&, AbilityLevel, AbilityLevel> level_changed_;
};

} // namespace sa::skills
