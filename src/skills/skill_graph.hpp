#pragma once
// Skill graphs after Reschka et al. [22] (§IV): "a directed acyclic graph
// that consists of skill nodes, data sink nodes, data source nodes, and
// dependency relations between the nodes. A path in this DAG, starting with
// a main skill and ending at a data source or data sink, represents a chain
// of dependencies between abilities."
//
// A SkillGraph is the *development-time* model; instantiating it with
// performance metrics yields the runtime AbilityGraph (ability_graph.hpp).

#include <map>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace sa::skills {

enum class SkillNodeKind { Skill, DataSource, DataSink };

const char* to_string(SkillNodeKind kind) noexcept;

struct SkillNode {
    std::string name;
    SkillNodeKind kind = SkillNodeKind::Skill;
    std::string description;
};

/// Thrown by validate() on structural rule violations.
class SkillGraphError : public std::logic_error {
public:
    explicit SkillGraphError(const std::string& what) : std::logic_error(what) {}
};

class SkillGraph {
public:
    void add_skill(const std::string& name, const std::string& description = {});
    void add_source(const std::string& name, const std::string& description = {});
    void add_sink(const std::string& name, const std::string& description = {});

    /// `parent` (a skill) depends on `child` (skill, source or sink).
    void add_dependency(const std::string& parent, const std::string& child);

    [[nodiscard]] bool has_node(const std::string& name) const;
    [[nodiscard]] const SkillNode& node(const std::string& name) const;
    [[nodiscard]] std::vector<std::string> children(const std::string& name) const;
    [[nodiscard]] std::vector<std::string> parents(const std::string& name) const;
    [[nodiscard]] std::vector<std::string> node_names() const;
    [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
    [[nodiscard]] std::size_t edge_count() const;

    /// Skills with no parents — the "main skills" (roots).
    [[nodiscard]] std::vector<std::string> roots() const;

    /// Validate the structural rules of [22]:
    ///  - the graph is acyclic
    ///  - sources and sinks have no outgoing dependencies
    ///  - every skill has at least one dependency (paths must end at data
    ///    sources/sinks, not dangle at skills)
    ///  - at least one root skill exists
    /// Throws SkillGraphError on the first violation.
    void validate() const;

    /// Children in dependency-respecting order: every node appears after all
    /// of its children. Requires a valid (acyclic) graph.
    [[nodiscard]] std::vector<std::string> topological_order() const;

private:
    void add_node(SkillNode node);

    std::map<std::string, SkillNode> nodes_;
    std::map<std::string, std::vector<std::string>> children_;
    std::map<std::string, std::vector<std::string>> parents_;
};

} // namespace sa::skills
