#include "skills/ability_graph.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sa::skills {

const char* to_string(AbilityLevel level) noexcept {
    switch (level) {
    case AbilityLevel::Unavailable: return "unavailable";
    case AbilityLevel::Marginal: return "marginal";
    case AbilityLevel::Reduced: return "reduced";
    case AbilityLevel::Nominal: return "nominal";
    }
    return "?";
}

AbilityLevel classify(double level, const AbilityThresholds& thresholds) {
    if (level >= thresholds.nominal) {
        return AbilityLevel::Nominal;
    }
    if (level >= thresholds.reduced) {
        return AbilityLevel::Reduced;
    }
    if (level >= thresholds.marginal) {
        return AbilityLevel::Marginal;
    }
    return AbilityLevel::Unavailable;
}

AbilityGraph::AbilityGraph(SkillGraph structure, AbilityThresholds thresholds)
    : structure_(std::move(structure)), thresholds_(thresholds) {
    structure_.validate();
    topo_ = structure_.topological_order();
    for (const auto& name : topo_) {
        level_[name] = 1.0;
        if (structure_.node(name).kind == SkillNodeKind::Skill) {
            intrinsic_[name] = 1.0;
            aggregation_[name] = Aggregation::Min;
        }
    }
}

void AbilityGraph::set_source_level(const std::string& name, double level) {
    SA_REQUIRE(structure_.has_node(name), "unknown node: " + name);
    SA_REQUIRE(structure_.node(name).kind != SkillNodeKind::Skill,
               "set_source_level is for sources/sinks; use set_intrinsic_level for " + name);
    SA_REQUIRE(level >= 0.0 && level <= 1.0, "levels must be within [0,1]");
    level_[name] = level;
}

void AbilityGraph::set_intrinsic_level(const std::string& skill, double level) {
    SA_REQUIRE(structure_.has_node(skill), "unknown node: " + skill);
    SA_REQUIRE(structure_.node(skill).kind == SkillNodeKind::Skill,
               "set_intrinsic_level is for skills: " + skill);
    SA_REQUIRE(level >= 0.0 && level <= 1.0, "levels must be within [0,1]");
    intrinsic_[skill] = level;
}

double AbilityGraph::intrinsic_level(const std::string& skill) const {
    auto it = intrinsic_.find(skill);
    SA_REQUIRE(it != intrinsic_.end(), "not a skill: " + skill);
    return it->second;
}

void AbilityGraph::set_aggregation(const std::string& skill, Aggregation aggregation) {
    SA_REQUIRE(structure_.has_node(skill) &&
                   structure_.node(skill).kind == SkillNodeKind::Skill,
               "aggregation applies to skills: " + skill);
    aggregation_[skill] = aggregation;
}

void AbilityGraph::set_dependency_weight(const std::string& skill, const std::string& child,
                                         double weight) {
    SA_REQUIRE(weight > 0.0, "weights must be positive");
    const auto kids = structure_.children(skill);
    SA_REQUIRE(std::find(kids.begin(), kids.end(), child) != kids.end(),
               "no dependency " + skill + " -> " + child);
    weights_[{skill, child}] = weight;
}

std::size_t AbilityGraph::propagate() {
    std::size_t qualitative_changes = 0;
    for (const auto& name : topo_) {
        if (structure_.node(name).kind != SkillNodeKind::Skill) {
            continue; // sources/sinks are inputs
        }
        std::vector<WeightedLevel> inputs;
        for (const auto& child : structure_.children(name)) {
            double w = 1.0;
            if (auto it = weights_.find({name, child}); it != weights_.end()) {
                w = it->second;
            }
            inputs.push_back(WeightedLevel{level_.at(child), w});
        }
        const double combined = aggregate(aggregation_.at(name), inputs);
        const double next = std::min(intrinsic_.at(name), combined);
        const double prev = level_.at(name);
        if (classify(prev, thresholds_) != classify(next, thresholds_)) {
            ++qualitative_changes;
            level_changed_.emit(name, classify(prev, thresholds_),
                                classify(next, thresholds_));
        }
        level_[name] = next;
    }
    return qualitative_changes;
}

double AbilityGraph::level(const std::string& name) const {
    auto it = level_.find(name);
    SA_REQUIRE(it != level_.end(), "unknown node: " + name);
    return it->second;
}

AbilityLevel AbilityGraph::ability(const std::string& name) const {
    return classify(level(name), thresholds_);
}

std::map<std::string, double> AbilityGraph::snapshot() const { return level_; }

void AbilityGraph::bind_source(const std::string& source,
                               monitor::SensorQualityMonitor& monitor) {
    SA_REQUIRE(structure_.has_node(source), "unknown node: " + source);
    monitor.quality_updated().subscribe([this, source](double quality) {
        set_source_level(source, std::clamp(quality, 0.0, 1.0));
        propagate();
    });
}

} // namespace sa::skills
