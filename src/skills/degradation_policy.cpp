#include "skills/degradation_policy.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sa::skills {

DegradationPolicy& DegradationPolicy::on_anomaly(AlarmBinding rule) {
    SA_REQUIRE(!rule.anomaly_kind.empty(), "policy rule needs an anomaly kind");
    SA_REQUIRE(rule.degraded_value >= 0.0 && rule.degraded_value <= 1.0,
               "degraded value must be within [0,1]");
    extra_rules_.push_back(std::move(rule));
    return *this;
}

double DegradationPolicy::effective_level(const std::string& capability) const {
    auto it = state_.find(capability);
    if (it == state_.end() || it->second.empty()) {
        return 1.0;
    }
    double level = 1.0;
    for (const auto& [_, value] : it->second) {
        level = std::min(level, value);
    }
    return level;
}

void DegradationPolicy::push_level(const std::string& capability, double level,
                                   AbilityGraph& abilities) const {
    if (abilities.structure().node(capability).kind == SkillNodeKind::Skill) {
        abilities.set_intrinsic_level(capability, level);
    } else {
        abilities.set_source_level(capability, level);
    }
}

bool DegradationPolicy::apply(const monitor::Anomaly& anomaly,
                              AbilityGraph& abilities) {
    bool changed = false;
    auto apply_binding = [&](const AlarmBinding& binding) {
        if (!binding.matches(anomaly)) {
            return;
        }
        const std::string& capability = binding.capability_for(anomaly);
        if (capability.empty() || !abilities.structure().has_node(capability)) {
            return; // this vehicle's graph has no such capability
        }
        auto& qualities = state_[capability];
        auto it = qualities.find(binding.quality);
        const bool state_changed =
            it == qualities.end() || it->second != binding.degraded_value;
        qualities[binding.quality] = binding.degraded_value;
        const double level = effective_level(capability);
        // Re-impose the effective level even when the tracked state did not
        // move: a tactic or script may have written the graph node directly
        // since the last alarm, and a re-asserted alarm must win over that
        // stale level. A no-op in both state and graph is skipped entirely
        // (repeated identical alarms stay idempotent, history stays
        // bounded by actual change). The graph-side comparison reads what
        // push_level writes: the intrinsic cap for skills (a skill's
        // *propagated* level also reflects its children and would never
        // match while they are degraded), the node level otherwise.
        const bool is_skill = abilities.structure().node(capability).kind ==
                              SkillNodeKind::Skill;
        const double current = is_skill ? abilities.intrinsic_level(capability)
                                        : abilities.level(capability);
        if (!state_changed && current == level) {
            return;
        }
        push_level(capability, level, abilities);
        history_.push_back(AppliedDowngrade{capability, binding.quality,
                                            binding.degraded_value, level,
                                            anomaly.kind});
        changed = true;
    };
    for (const auto& binding : registry_->alarm_bindings()) {
        apply_binding(binding);
    }
    for (const auto& rule : extra_rules_) {
        apply_binding(rule);
    }
    return changed;
}

void DegradationPolicy::restore(const std::string& capability,
                                AbilityGraph& abilities) {
    state_.erase(capability);
    if (abilities.structure().has_node(capability)) {
        push_level(capability, 1.0, abilities);
    }
}

} // namespace sa::skills
