#pragma once
// The paper's worked example (§IV): the skill graph of Adaptive Cruise
// Control. Since the capability-registry rework this is a thin veneer over
// the registered "acc" / "acc_aggregate_sensors" specs
// (skills/capability_registry.hpp) — kept because examples, benches and
// tests address the graph through these canonical node names.
// The structure follows the text of the paper literally:
//
//   - ACC driving (main skill) requires: control distance, control speed,
//     keep the vehicle controllable for the driver
//   - keep vehicle controllable requires: estimate driver intent, decelerate
//   - control distance / control speed require: select target object,
//     estimate driver intent, accelerate & decelerate
//   - select target object requires: perceive and track dynamic objects
//   - perceive/track requires the environment sensors as data sources
//   - estimate driver intent requires the HMI as data source
//   - accelerate requires the powertrain data sink; decelerate requires both
//     powertrain and braking system sinks

#include "skills/skill_graph.hpp"

namespace sa::skills {

/// Canonical node names used by the factory (and by examples/benches).
namespace acc {
inline constexpr const char* kAccDriving = "acc_driving";
inline constexpr const char* kControlDistance = "control_distance";
inline constexpr const char* kControlSpeed = "control_speed";
inline constexpr const char* kKeepControllable = "keep_vehicle_controllable";
inline constexpr const char* kEstimateDriverIntent = "estimate_driver_intent";
inline constexpr const char* kSelectTarget = "select_target_object";
inline constexpr const char* kPerceiveTrack = "perceive_track_dynamic_objects";
inline constexpr const char* kAccelerate = "accelerate";
inline constexpr const char* kDecelerate = "decelerate";
inline constexpr const char* kRadar = "radar";
inline constexpr const char* kCamera = "camera";
inline constexpr const char* kLidar = "lidar";
inline constexpr const char* kHmi = "hmi";
inline constexpr const char* kPowertrain = "powertrain";
inline constexpr const char* kBrakeSystem = "brake_system";
} // namespace acc

struct AccGraphOptions {
    /// true: individual radar/camera/lidar sources (enables per-sensor
    /// degradation stories); false: one aggregate "environment_sensors"
    /// source exactly as the paper's minimal narration.
    bool split_environment_sensors = true;
};

[[nodiscard]] SkillGraph make_acc_skill_graph(const AccGraphOptions& options = {});

} // namespace sa::skills
