#pragma once
// DegradationPolicy: the single path from monitor alarms to ability-graph
// degradation. Previously every example hand-wired its own ability-update
// hook (anomaly kind X => set source Y to 0.35); now the mapping is data —
// the capability registry's alarm bindings plus any scenario-specific rules
// — and every consumer (the ability layer inside the cross-layer
// coordinator, the self-model, the platoon maneuver engine) observes the
// same policy outcome.
//
// A policy instance tracks the per-capability quality state of ONE ability
// graph (one vehicle): each matched binding sets one typed quality attribute
// of the capability, the capability's effective level is the minimum over
// its tracked attributes (conservative: any degraded quality caps the
// node), and the effective level is pushed into the graph as a source/sink
// level or a skill's intrinsic level.

#include <map>
#include <string>
#include <vector>

#include "skills/capability_registry.hpp"

namespace sa::skills {

/// One recorded policy application (for audits and tests).
struct AppliedDowngrade {
    std::string capability;
    QualityKind quality = QualityKind::Availability;
    double value = 1.0;          ///< attribute value imposed
    double effective_level = 1.0; ///< resulting node level in the graph
    std::string anomaly_kind;
};

class DegradationPolicy {
public:
    /// Rules come from `registry` (alarm bindings) plus any added later via
    /// on_anomaly(). The registry must outlive the policy.
    explicit DegradationPolicy(
        const CapabilityRegistry& registry = CapabilityRegistry::builtin())
        : registry_(&registry) {}

    /// Add a scenario-specific rule on top of the registry's bindings.
    DegradationPolicy& on_anomaly(AlarmBinding rule);

    /// Map `anomaly` onto capability-quality downgrades of `abilities`.
    /// Bindings whose capability is not a node of the graph are skipped (a
    /// vehicle only has the capabilities its spec declares). Returns true
    /// when any node level changed (the ability layer re-propagates then).
    bool apply(const monitor::Anomaly& anomaly, AbilityGraph& abilities);

    /// Reset a capability's tracked qualities to nominal and restore its
    /// node level.
    void restore(const std::string& capability, AbilityGraph& abilities);

    [[nodiscard]] const std::vector<AppliedDowngrade>& history() const noexcept {
        return history_;
    }
    /// Effective level of a capability under the tracked quality state
    /// (1.0 when never downgraded).
    [[nodiscard]] double effective_level(const std::string& capability) const;

    [[nodiscard]] const CapabilityRegistry& registry() const noexcept {
        return *registry_;
    }

    /// Scenario-specific rules added via on_anomaly(). Unlike the registry's
    /// bindings these are NOT validated at insertion — sa::lint checks them
    /// against the registry (rule SKL006).
    [[nodiscard]] const std::vector<AlarmBinding>& extra_rules() const noexcept {
        return extra_rules_;
    }

private:
    void push_level(const std::string& capability, double level,
                    AbilityGraph& abilities) const;

    const CapabilityRegistry* registry_;
    std::vector<AlarmBinding> extra_rules_;
    /// capability -> quality -> current attribute value.
    std::map<std::string, std::map<QualityKind, double>> state_;
    std::vector<AppliedDowngrade> history_;
};

} // namespace sa::skills
