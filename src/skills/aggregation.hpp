#pragma once
// Aggregation functions for propagating ability levels up the graph ("The
// development of appropriate metrics, aggregated measures and models for
// performance propagation is subject to ongoing research", §IV — we provide
// the three canonical choices and make them selectable per node so the
// ablation bench can compare them).

#include <vector>

namespace sa::skills {

enum class Aggregation {
    Min,          ///< weakest-link: a skill is only as good as its worst dependency
    Product,      ///< independent-failure assumption: levels multiply
    WeightedMean, ///< graded importance of dependencies
};

const char* to_string(Aggregation aggregation) noexcept;

struct WeightedLevel {
    double level = 1.0;  ///< in [0, 1]
    double weight = 1.0; ///< > 0; only used by WeightedMean
};

/// Aggregate child levels; empty input aggregates to 1.0 (no dependencies
/// cannot degrade a skill). Result is clamped into [0, 1].
double aggregate(Aggregation aggregation, const std::vector<WeightedLevel>& levels);

} // namespace sa::skills
