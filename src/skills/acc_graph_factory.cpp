#include "skills/acc_graph_factory.hpp"

#include "skills/capability_registry.hpp"

namespace sa::skills {

SkillGraph make_acc_skill_graph(const AccGraphOptions& options) {
    // The ACC graph is no longer hand-wired: it instantiates from the
    // registered spec, so "the paper's worked example" and "a spec-described
    // maneuver" are one code path. The spec declares nodes and dependencies
    // in the order the old factory did, keeping children() ordering — and
    // therefore every propagate result — identical.
    return CapabilityRegistry::builtin().instantiate(
        options.split_environment_sensors ? "acc" : "acc_aggregate_sensors");
}

} // namespace sa::skills
