#include "skills/acc_graph_factory.hpp"

namespace sa::skills {

SkillGraph make_acc_skill_graph(const AccGraphOptions& options) {
    using namespace acc;
    SkillGraph g;

    g.add_skill(kAccDriving, "main skill: ACC driving");
    g.add_skill(kControlDistance, "control distance to the preceding vehicle");
    g.add_skill(kControlSpeed, "control speed of the ego vehicle");
    g.add_skill(kKeepControllable, "keep the vehicle controllable for the driver");
    g.add_skill(kEstimateDriverIntent, "estimate the driver's intent");
    g.add_skill(kSelectTarget, "select a target object");
    g.add_skill(kPerceiveTrack, "perceive and track dynamic objects");
    g.add_skill(kAccelerate, "accelerate the vehicle");
    g.add_skill(kDecelerate, "decelerate the vehicle");

    g.add_sink(kPowertrain, "powertrain system (data sink)");
    g.add_sink(kBrakeSystem, "braking system (data sink)");
    g.add_source(kHmi, "human-machine interface (data source)");
    if (options.split_environment_sensors) {
        g.add_source(kRadar, "radar sensor (data source)");
        g.add_source(kCamera, "camera sensor (data source)");
        g.add_source(kLidar, "lidar sensor (data source)");
    } else {
        g.add_source("environment_sensors", "environment sensors (data source)");
    }

    // Main skill refinement.
    g.add_dependency(kAccDriving, kControlDistance);
    g.add_dependency(kAccDriving, kControlSpeed);
    g.add_dependency(kAccDriving, kKeepControllable);

    // Keep the vehicle controllable for the driver.
    g.add_dependency(kKeepControllable, kEstimateDriverIntent);
    g.add_dependency(kKeepControllable, kDecelerate);

    // Distance / speed control.
    g.add_dependency(kControlDistance, kSelectTarget);
    g.add_dependency(kControlDistance, kEstimateDriverIntent);
    g.add_dependency(kControlDistance, kAccelerate);
    g.add_dependency(kControlDistance, kDecelerate);
    g.add_dependency(kControlSpeed, kSelectTarget);
    g.add_dependency(kControlSpeed, kEstimateDriverIntent);
    g.add_dependency(kControlSpeed, kAccelerate);
    g.add_dependency(kControlSpeed, kDecelerate);

    // Target selection needs perception.
    g.add_dependency(kSelectTarget, kPerceiveTrack);
    if (options.split_environment_sensors) {
        g.add_dependency(kPerceiveTrack, kRadar);
        g.add_dependency(kPerceiveTrack, kCamera);
        g.add_dependency(kPerceiveTrack, kLidar);
    } else {
        g.add_dependency(kPerceiveTrack, "environment_sensors");
    }

    // Driver intent needs the HMI.
    g.add_dependency(kEstimateDriverIntent, kHmi);

    // Actuation.
    g.add_dependency(kAccelerate, kPowertrain);
    g.add_dependency(kDecelerate, kPowertrain);
    g.add_dependency(kDecelerate, kBrakeSystem);

    g.validate();
    return g;
}

} // namespace sa::skills
