#include "model/fmea.hpp"

#include <algorithm>

namespace sa::model {

const char* to_string(FailureMode mode) noexcept {
    switch (mode) {
    case FailureMode::Loss: return "loss";
    case FailureMode::Degraded: return "degraded";
    case FailureMode::Babbling: return "babbling";
    }
    return "?";
}

const FmeaEntry* FmeaReport::find(const DepNodeId& failed) const {
    for (const auto& e : entries) {
        if (e.failed == failed) {
            return &e;
        }
    }
    return nullptr;
}

std::size_t FmeaReport::not_fail_operational() const {
    return static_cast<std::size_t>(
        std::count_if(entries.begin(), entries.end(),
                      [](const FmeaEntry& e) { return !e.fail_operational; }));
}

FmeaEntry FmeaEngine::analyze(const DepNodeId& failed, FailureMode mode) const {
    FmeaEntry entry;
    entry.failed = failed;
    entry.mode = mode;

    // Affected set: everything that (transitively) depends on the failed node.
    // A babbling failure additionally affects everything sharing the failed
    // node's resources (it disturbs neighbours, not only dependents).
    std::set<DepNodeId> affected = graph_.dependents_of(failed);
    if (mode == FailureMode::Babbling) {
        for (const auto& peer : graph_.successors(failed, DepEdgeKind::SharesResource)) {
            affected.insert(peer);
            for (const auto& d : graph_.dependents_of(peer)) {
                affected.insert(d);
            }
        }
        // A babbling sender also jams its bus, affecting all bus users.
        for (const auto& bus : graph_.successors(failed, DepEdgeKind::MappedTo)) {
            if (bus.kind == DepNodeKind::Bus) {
                affected.insert(bus);
                for (const auto& d : graph_.dependents_of(bus)) {
                    affected.insert(d);
                }
            }
        }
    }
    entry.affected.assign(affected.begin(), affected.end());

    // Lost components + worst ASIL.
    std::set<std::string> lost;
    if (failed.kind == DepNodeKind::Component) {
        lost.insert(failed.name);
    }
    for (const auto& node : affected) {
        if (node.kind == DepNodeKind::Component) {
            lost.insert(node.name);
        }
    }
    for (const auto& name : lost) {
        const Contract* c = functions_.find(name);
        if (c != nullptr && c->asil > entry.worst_asil) {
            entry.worst_asil = c->asil;
        }
        entry.lost_components.push_back(name);
    }

    // Mitigations: redundancy partners of lost critical components that are
    // not themselves in the affected set.
    for (const auto& name : entry.lost_components) {
        const Contract* c = functions_.find(name);
        if (c == nullptr || c->asil < Asil::C) {
            continue;
        }
        bool mitigated = false;
        // Either direction of the redundancy declaration counts.
        for (const auto& other : functions_.contracts()) {
            const bool pair =
                (c->redundant_with.has_value() && *c->redundant_with == other.component) ||
                (other.redundant_with.has_value() && *other.redundant_with == name);
            if (!pair) {
                continue;
            }
            if (!lost.contains(other.component)) {
                entry.mitigations.push_back(other.component + " covers " + name);
                mitigated = true;
            }
        }
        if (!mitigated) {
            entry.fail_operational = false;
        }
    }

    return entry;
}

FmeaReport FmeaEngine::analyze_all() const {
    FmeaReport report;
    for (const auto& node : graph_.nodes()) {
        switch (node.kind) {
        case DepNodeKind::Ecu:
        case DepNodeKind::Bus:
        case DepNodeKind::Sensor:
        case DepNodeKind::Component:
            report.entries.push_back(analyze(node, FailureMode::Loss));
            break;
        default:
            break;
        }
    }
    return report;
}

} // namespace sa::model
