#pragma once
// Safety viewpoint: ISO 26262-flavoured placement and redundancy rules.
//  - a component's ASIL must not exceed the ECU's certifiable cap
//  - declared redundancy partners must be placed on distinct ECUs
//    (freedom from common-cause platform failure)
//  - services required by ASIL >= C components must be provided by a
//    component of at least the same ASIL (no dependence on lower-integrity
//    providers), unless a redundant provider exists
//  - unresolved required services are errors (fail-operational argument
//    needs the dependency to exist)

#include "model/viewpoint.hpp"

namespace sa::model {

class SafetyViewpoint : public Viewpoint {
public:
    SafetyViewpoint() : Viewpoint("safety") {}

    ViewpointReport check(const SystemModel& model) override;
};

} // namespace sa::model
