#pragma once
// Cross-layer dependency graph (Möstl & Ernst [23][24]: "such dependency
// analysis is automated to derive cross-layer dependency models describing
// the effect of change and actions on the overall system"). Nodes live on
// different layers (function, software, platform, physical); typed edges
// record how effects propagate. The FMEA engine (model/fmea.hpp) and the
// cross-layer coordinator both query this graph.

#include <compare>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "model/function_model.hpp"
#include "model/mapping.hpp"
#include "model/platform_model.hpp"

namespace sa::model {

enum class DepNodeKind {
    Function,    ///< logical vehicle function / skill
    Component,   ///< software component
    Task,        ///< RTE task
    Service,     ///< micro-server service
    Message,     ///< CAN message
    Ecu,         ///< processing resource
    Bus,         ///< communication resource
    PowerDomain, ///< shared power supply
    ThermalZone, ///< shared thermal environment
    Sensor,      ///< data source
};

const char* to_string(DepNodeKind kind) noexcept;

enum class DepEdgeKind {
    MappedTo,         ///< component -> ECU, message -> bus
    Provides,         ///< component -> service
    DependsOn,        ///< client component -> service it requires
    Sends,            ///< component -> message
    SharesResource,   ///< implicit co-location (derived)
    ThermallyCoupled, ///< ECU -> thermal zone
    PoweredBy,        ///< ECU -> power domain
    Feeds,            ///< sensor -> component
};

const char* to_string(DepEdgeKind kind) noexcept;

struct DepNodeId {
    DepNodeKind kind;
    std::string name;

    auto operator<=>(const DepNodeId&) const = default;
    [[nodiscard]] std::string str() const;
};

struct DepEdge {
    DepNodeId from;
    DepNodeId to;
    DepEdgeKind kind;
};

class DependencyGraph {
public:
    void add_node(DepNodeId node);
    void add_edge(DepNodeId from, DepNodeId to, DepEdgeKind kind);

    [[nodiscard]] bool has_node(const DepNodeId& node) const;
    [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
    [[nodiscard]] std::size_t edge_count() const noexcept { return edges_.size(); }
    [[nodiscard]] const std::vector<DepEdge>& edges() const noexcept { return edges_; }
    [[nodiscard]] std::vector<DepNodeId> nodes() const;

    /// Outgoing / incoming neighbours, optionally filtered by edge kind.
    [[nodiscard]] std::vector<DepNodeId> successors(
        const DepNodeId& node, std::optional<DepEdgeKind> kind = std::nullopt) const;
    [[nodiscard]] std::vector<DepNodeId> predecessors(
        const DepNodeId& node, std::optional<DepEdgeKind> kind = std::nullopt) const;

    /// All nodes whose correct operation (transitively) depends on `node`:
    /// reverse reachability over the edge direction "X -> thing X needs".
    /// This is the "affected set" of a failure of `node`. SharesResource
    /// edges are excluded: co-location alone does not make a neighbour fail
    /// (the babbling mode of the FMEA engine traverses them explicitly).
    [[nodiscard]] std::set<DepNodeId> dependents_of(const DepNodeId& node) const;

    /// All nodes `node` (transitively) depends on (SharesResource excluded).
    [[nodiscard]] std::set<DepNodeId> dependencies_of(const DepNodeId& node) const;

private:
    std::set<DepNodeId> nodes_;
    std::vector<DepEdge> edges_;
};

/// Build the full cross-layer graph from the current system model. Dependency
/// direction convention: an edge X --DependsOn/MappedTo/...--> Y means "X
/// needs Y"; failures propagate from Y to X. Shared-environment edges
/// (thermal zone, power domain) attach ECUs to physical nodes so common-cause
/// analysis can traverse them.
DependencyGraph build_dependency_graph(const FunctionModel& functions,
                                       const PlatformModel& platform,
                                       const Mapping& mapping);

} // namespace sa::model
