#pragma once
// Parser for the textual contracting language. Example:
//
//   component brake_ctrl {
//     asil D;
//     security_level 2;
//     task control { wcet 200us; bcet 100us; period 10ms; deadline 5ms; }
//     provides service brake_cmd { max_rate 200/s; min_client_level 1; }
//     requires service brake_actuator;
//     message brake_status { id 0x120; payload 8; period 20ms; }
//     pin ecu brake_ecu;
//     redundant_with brake_ctrl_b;
//     max_e2e_latency 15ms;
//     external;     // has an external interface (attack surface)
//     gateway;      // mediates between security zones
//   }
//
// Durations accept ns/us/ms/s suffixes; rates accept "<n>/s"; ids accept
// decimal or 0x hex. Comments: // to end of line.

#include <stdexcept>
#include <string>
#include <vector>

#include "model/contract.hpp"

namespace sa::model {

class ParseError : public std::runtime_error {
public:
    ParseError(int line, const std::string& message);
    [[nodiscard]] int line() const noexcept { return line_; }

private:
    int line_;
};

class ContractParser {
public:
    /// Parse a document possibly containing several component contracts.
    [[nodiscard]] std::vector<Contract> parse(const std::string& text) const;

    /// Parse exactly one contract (throws if the document has != 1).
    [[nodiscard]] Contract parse_one(const std::string& text) const;
};

} // namespace sa::model
