#include "model/mcc.hpp"

#include <algorithm>

#include "lint/model_rules.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"
#include "util/string_util.hpp"

namespace sa::model {

const ViewpointReport* IntegrationReport::viewpoint(const std::string& name) const {
    for (const auto& r : viewpoints) {
        if (r.viewpoint == name) {
            return &r;
        }
    }
    return nullptr;
}

Mcc::Mcc(PlatformModel platform, MccOptions options)
    : platform_(std::move(platform)), options_(options) {
    SA_REQUIRE(!platform_.ecus.empty(), "MCC needs a platform with at least one ECU");
    viewpoints_.push_back(std::make_unique<TimingViewpoint>());
    viewpoints_.push_back(std::make_unique<LatencyViewpoint>());
    viewpoints_.push_back(std::make_unique<SafetyViewpoint>());
    auto security = std::make_unique<SecurityViewpoint>();
    security_viewpoint_ = security.get();
    viewpoints_.push_back(std::move(security));
}

void Mcc::add_viewpoint(std::unique_ptr<Viewpoint> viewpoint) {
    SA_REQUIRE(viewpoint != nullptr, "viewpoint must not be null");
    viewpoints_.push_back(std::move(viewpoint));
}

IntegrationReport Mcc::integrate(const ChangeRequest& change) {
    ++attempts_;
    IntegrationReport report;

    // Step 1: candidate function model (platform-independent refinement).
    FunctionModel candidate = functions_;
    switch (change.kind) {
    case ChangeRequest::Kind::Add:
    case ChangeRequest::Kind::Update:
        for (const auto& c : change.contracts) {
            candidate.upsert(c);
        }
        report.steps.push_back(IntegrationStep{
            "merge", true,
            format("%zu contract(s) merged, %zu total", change.contracts.size(),
                   candidate.size())});
        break;
    case ChangeRequest::Kind::Remove: {
        if (candidate.find(change.component) == nullptr) {
            report.steps.push_back(IntegrationStep{"merge", false,
                                                   "unknown component " + change.component});
            report.rejection_reason = "unknown component " + change.component;
            return report;
        }
        candidate.remove(change.component);
        report.steps.push_back(
            IntegrationStep{"merge", true, "removed " + change.component});
        break;
    }
    }

    // Step 2: mapping (technical architecture). Existing placements are kept
    // so an accepted change does not disturb running components.
    MappingResult mapped = mapper_.map(candidate, platform_, mapping_);
    {
        IntegrationStep step{"mapping", mapped.feasible, ""};
        if (!mapped.feasible) {
            std::string all;
            for (const auto& e : mapped.errors) {
                all += (all.empty() ? "" : "; ") + e;
            }
            step.detail = all;
        } else {
            step.detail = format("%zu component(s) placed", candidate.size());
        }
        report.steps.push_back(step);
        if (!mapped.feasible) {
            report.rejection_reason = "mapping infeasible: " + report.steps.back().detail;
            return report;
        }
    }
    report.mapping = mapped.mapping;

    // Step 3: structural lint gate. The WCRT viewpoints assume unique
    // priorities per ECU and unique CAN ids per bus; a structurally broken
    // candidate must be rejected *here*, with findings, not silently
    // mis-analyzed two steps later.
    if (options_.run_lint) {
        report.lint = lint::lint_system(candidate, platform_, &mapped.mapping);
        for (const auto& finding : report.lint.findings()) {
            report.steps.push_back(IntegrationStep{
                "lint:" + finding.rule,
                finding.severity != lint::Severity::Error,
                finding.subject + ": " + finding.message});
        }
        if (!report.lint.ok()) {
            std::string reason = "structural lint failed:";
            for (const auto& finding : report.lint.findings()) {
                if (finding.severity == lint::Severity::Error) {
                    reason += " [" + finding.rule + "] " + finding.subject;
                }
            }
            report.rejection_reason = reason;
            return report;
        }
    }

    // Step 4: viewpoint acceptance tests.
    const SystemModel system{candidate, platform_, mapped.mapping};
    bool all_passed = true;
    for (auto& vp : viewpoints_) {
        ViewpointReport vr = vp->check(system);
        const bool passed = vr.passed();
        report.steps.push_back(IntegrationStep{
            "viewpoint:" + vp->name(), passed,
            format("%zu error(s), %zu warning(s)", vr.count(IssueSeverity::Error),
                   vr.count(IssueSeverity::Warning))});
        all_passed = all_passed && passed;
        report.viewpoints.push_back(std::move(vr));
    }
    if (!all_passed) {
        std::string reason = "acceptance tests failed:";
        for (const auto& vr : report.viewpoints) {
            for (const auto& issue : vr.issues) {
                if (issue.severity == IssueSeverity::Error) {
                    reason += " [" + vr.viewpoint + "] " + issue.code + " (" +
                              issue.subject + ")";
                }
            }
        }
        report.rejection_reason = reason;
        SA_LOG_INFO << "MCC rejected change '" << change.description << "': " << reason;
        return report;
    }

    // Step 5: commit.
    functions_ = std::move(candidate);
    mapping_ = mapped.mapping;
    rebuild_committed_artifacts();
    report.steps.push_back(IntegrationStep{
        "commit", true,
        format("dependency graph: %zu node(s), %zu edge(s)",
               dependency_graph_.node_count(), dependency_graph_.edge_count())});
    report.accepted = true;
    ++accepted_;
    SA_LOG_INFO << "MCC accepted change '" << change.description << "'";
    return report;
}

void Mcc::rebuild_committed_artifacts() {
    dependency_graph_ = build_dependency_graph(functions_, platform_, mapping_);
    if (options_.run_fmea) {
        FmeaEngine engine(dependency_graph_, functions_);
        fmea_ = engine.analyze_all();
    }
    if (security_viewpoint_ != nullptr) {
        // Re-derive policy against the committed model.
        const SystemModel system{functions_, platform_, mapping_};
        (void)security_viewpoint_->check(system);
        security_policy_ = security_viewpoint_->policy();
    }
}

rte::RteConfig Mcc::make_rte_config(const std::map<std::string, TaskBody>& bodies) const {
    rte::RteConfig config;
    for (const auto& c : functions_.contracts()) {
        rte::ComponentSpec spec;
        spec.name = c.component;
        spec.ecu = mapping_.ecu_of(c.component);
        spec.safety_level = static_cast<int>(c.asil);
        for (const auto& p : c.provides) {
            spec.provides.push_back(p.name);
        }
        for (const auto& r : c.requires_) {
            spec.requires_.push_back(r.name);
        }
        for (const auto& t : c.tasks) {
            rte::RtTaskConfig task;
            const std::string qualified = c.component + "." + t.name;
            task.name = qualified;
            task.period = t.period;
            task.wcet = t.wcet;
            task.bcet = t.bcet;
            task.deadline = t.deadline;
            auto prio = mapping_.task_priority.find(qualified);
            task.priority = prio != mapping_.task_priority.end() ? prio->second : 1000;
            auto body = bodies.find(qualified);
            if (body != bodies.end()) {
                task.on_complete = body->second;
            }
            spec.tasks.push_back(std::move(task));
        }
        config.components.push_back(std::move(spec));
    }
    config.grants = security_policy_.grants;
    return config;
}

void Mcc::ingest_observed_wcet(const std::string& qualified_task, sim::Duration observed) {
    auto& seen = observed_wcet_[qualified_task];
    seen = std::max(seen, observed);
}

sim::Duration Mcc::observed_wcet(const std::string& qualified_task) const {
    auto it = observed_wcet_.find(qualified_task);
    return it == observed_wcet_.end() ? sim::Duration::zero() : it->second;
}

std::vector<std::string> Mcc::wcet_violations() const {
    std::vector<std::string> out;
    for (const auto& [qualified, observed] : observed_wcet_) {
        const auto dot = qualified.find('.');
        if (dot == std::string::npos) {
            continue;
        }
        const Contract* c = functions_.find(qualified.substr(0, dot));
        if (c == nullptr) {
            continue;
        }
        const TaskSpec* t = c->find_task(qualified.substr(dot + 1));
        if (t != nullptr && observed > t->wcet) {
            out.push_back(qualified);
        }
    }
    return out;
}

bool Mcc::revalidate_with_speed(const std::string& ecu, double speed_factor) const {
    const EcuDescriptor* descriptor = platform_.find_ecu(ecu);
    SA_REQUIRE(descriptor != nullptr, "unknown ECU: " + ecu);
    const SystemModel system{functions_, platform_, mapping_};
    const auto cpu = TimingViewpoint::cpu_model(system, *descriptor, speed_factor);
    if (cpu.tasks.empty()) {
        return true;
    }
    analysis::CpuWcrtAnalysis analysis;
    return analysis.analyze(cpu).all_schedulable;
}

} // namespace sa::model
