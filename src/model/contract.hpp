#pragma once
// The "contracting language" of §II-A: requirements and constraints of each
// component are collected per viewpoint (safety level, real-time constraints,
// security, resources) and serve as input to the MCC. This header is the
// parsed representation; model/contract_parser.hpp reads the textual syntax.

#include <optional>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace sa::model {

using sim::Duration;

/// Automotive safety integrity level (ISO 26262).
enum class Asil { QM = 0, A = 1, B = 2, C = 3, D = 4 };

const char* to_string(Asil asil) noexcept;
std::optional<Asil> asil_from_string(const std::string& text) noexcept;

/// A real-time task the component contributes (priority is assigned by the
/// MCC during integration, not by the contract).
struct TaskSpec {
    std::string name;
    Duration wcet = Duration::us(100);
    Duration bcet = Duration::zero(); ///< zero => == wcet
    Duration period = Duration::ms(10);
    Duration deadline = Duration::zero(); ///< zero => == period
};

/// A micro-server service endpoint offered by the component.
struct ProvidedService {
    std::string name;
    double max_client_rate_hz = 0.0; ///< contracted call-rate bound (0 = unbounded)
    int min_client_level = 0;        ///< minimum security level of clients
};

struct RequiredService {
    std::string name;
};

/// A CAN message the component transmits.
struct MessageSpec {
    std::string name;
    std::uint32_t can_id = 0; ///< 0 => assigned by the MCC
    int payload_bytes = 8;
    Duration period = Duration::ms(10);
    Duration deadline = Duration::zero(); ///< zero => == period
    std::string bus;                      ///< empty => assigned by the MCC
};

/// Per-component contract — one entry of the MCC's input model.
struct Contract {
    std::string component;
    Asil asil = Asil::QM;
    int security_level = 0; ///< 0 (untrusted) .. 3 (highest privilege)
    bool external_interface = false; ///< attack surface (telematics, OBD, V2X)
    bool gateway = false;            ///< mediates between security zones
    std::vector<TaskSpec> tasks;
    std::vector<ProvidedService> provides;
    std::vector<RequiredService> requires_;
    std::vector<MessageSpec> messages;
    std::optional<std::string> pinned_ecu;      ///< placement constraint
    std::optional<std::string> redundant_with;  ///< must be placed on another ECU
    std::optional<Duration> max_e2e_latency;    ///< end-to-end requirement

    [[nodiscard]] double cpu_utilization() const;
    [[nodiscard]] const TaskSpec* find_task(const std::string& name) const;
};

} // namespace sa::model
