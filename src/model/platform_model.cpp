#include "model/platform_model.hpp"

namespace sa::model {

const EcuDescriptor* PlatformModel::find_ecu(const std::string& name) const {
    for (const auto& e : ecus) {
        if (e.name == name) {
            return &e;
        }
    }
    return nullptr;
}

const BusDescriptor* PlatformModel::find_bus(const std::string& name) const {
    for (const auto& b : buses) {
        if (b.name == name) {
            return &b;
        }
    }
    return nullptr;
}

} // namespace sa::model
