#pragma once
// Function model: the platform-independent logical architecture — the set of
// component contracts plus the communication channels derivable from their
// provides/requires declarations (§II-A: "a logical or functional system
// architecture in a platform-independent way").

#include <optional>
#include <string>
#include <vector>

#include "model/contract.hpp"

namespace sa::model {

/// A logical channel: client component -> service (owned by some provider).
struct Channel {
    std::string client;
    std::string service;
    std::string provider; ///< empty if unresolved
};

class FunctionModel {
public:
    FunctionModel() = default;
    explicit FunctionModel(std::vector<Contract> contracts);

    /// Add or replace (by component name) a contract.
    void upsert(Contract contract);
    void remove(const std::string& component);

    [[nodiscard]] const Contract* find(const std::string& component) const;
    [[nodiscard]] const std::vector<Contract>& contracts() const noexcept {
        return contracts_;
    }
    [[nodiscard]] bool empty() const noexcept { return contracts_.empty(); }
    [[nodiscard]] std::size_t size() const noexcept { return contracts_.size(); }

    /// Provider of a service, or empty if none/ambiguous.
    [[nodiscard]] std::string provider_of(const std::string& service) const;

    /// All resolved and unresolved channels.
    [[nodiscard]] std::vector<Channel> channels() const;

    /// Services required but provided by nobody.
    [[nodiscard]] std::vector<Channel> unresolved_channels() const;

    /// Total CPU utilization demand (at speed factor 1).
    [[nodiscard]] double total_utilization() const;

private:
    std::vector<Contract> contracts_;
};

} // namespace sa::model
