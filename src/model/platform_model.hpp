#pragma once
// Platform model: the target architecture the MCC maps functions onto
// ("multiple processing resources and networks", §II-A).

#include <optional>
#include <string>
#include <vector>

#include "model/contract.hpp"

namespace sa::model {

struct EcuDescriptor {
    std::string name;
    double speed_factor = 1.0;      ///< relative CPU performance
    double max_utilization = 0.75;  ///< admission cap for mapping
    Asil max_asil = Asil::D;        ///< highest ASIL certifiable on this ECU
    std::string thermal_zone = "cabin";
    std::string power_domain = "main";
};

struct BusDescriptor {
    std::string name;
    std::int64_t bitrate_bps = 500'000;
    double max_utilization = 0.60;
};

struct PlatformModel {
    std::vector<EcuDescriptor> ecus;
    std::vector<BusDescriptor> buses;

    [[nodiscard]] const EcuDescriptor* find_ecu(const std::string& name) const;
    [[nodiscard]] const BusDescriptor* find_bus(const std::string& name) const;
};

} // namespace sa::model
