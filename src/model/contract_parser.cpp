#include "model/contract_parser.hpp"

#include <cctype>

#include "util/string_util.hpp"

namespace sa::model {

ParseError::ParseError(int line, const std::string& message)
    : std::runtime_error(format("line %d: %s", line, message.c_str())), line_(line) {}

namespace {

enum class TokKind { Ident, Number, Punct, End };

struct Token {
    TokKind kind = TokKind::End;
    std::string text;
    int line = 0;
};

class Lexer {
public:
    explicit Lexer(const std::string& text) : text_(text) { advance(); }

    [[nodiscard]] const Token& peek() const noexcept { return current_; }

    Token take() {
        Token t = current_;
        advance();
        return t;
    }

private:
    void advance() {
        skip_space_and_comments();
        current_.line = line_;
        if (pos_ >= text_.size()) {
            current_ = Token{TokKind::End, "", line_};
            return;
        }
        const char c = text_[pos_];
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::size_t start = pos_;
            while (pos_ < text_.size() &&
                   (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                    text_[pos_] == '_' || text_[pos_] == '.')) {
                ++pos_;
            }
            current_ = Token{TokKind::Ident, text_.substr(start, pos_ - start), line_};
            return;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            // number with optional 0x prefix, decimal point and unit suffix
            std::size_t start = pos_;
            if (c == '0' && pos_ + 1 < text_.size() &&
                (text_[pos_ + 1] == 'x' || text_[pos_ + 1] == 'X')) {
                pos_ += 2;
                while (pos_ < text_.size() &&
                       std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
                    ++pos_;
                }
            } else {
                while (pos_ < text_.size() &&
                       (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                        text_[pos_] == '.')) {
                    ++pos_;
                }
                // unit suffix letters (us, ms, ns, s)
                while (pos_ < text_.size() &&
                       std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
                    ++pos_;
                }
            }
            current_ = Token{TokKind::Number, text_.substr(start, pos_ - start), line_};
            return;
        }
        current_ = Token{TokKind::Punct, std::string(1, c), line_};
        ++pos_;
    }

    void skip_space_and_comments() {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '\n') {
                ++line_;
                ++pos_;
            } else if (std::isspace(static_cast<unsigned char>(c))) {
                ++pos_;
            } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
                while (pos_ < text_.size() && text_[pos_] != '\n') {
                    ++pos_;
                }
            } else {
                break;
            }
        }
    }

    const std::string& text_;
    std::size_t pos_ = 0;
    int line_ = 1;
    Token current_;
};

class Parser {
public:
    explicit Parser(const std::string& text) : lex_(text) {}

    std::vector<Contract> parse_document() {
        std::vector<Contract> out;
        while (lex_.peek().kind != TokKind::End) {
            out.push_back(parse_component());
        }
        return out;
    }

private:
    [[noreturn]] void fail(const std::string& msg) { throw ParseError(lex_.peek().line, msg); }

    Token expect_ident(const std::string& what) {
        if (lex_.peek().kind != TokKind::Ident) {
            fail("expected " + what + ", got '" + lex_.peek().text + "'");
        }
        return lex_.take();
    }

    void expect_punct(char c) {
        if (lex_.peek().kind != TokKind::Punct || lex_.peek().text[0] != c) {
            fail(std::string("expected '") + c + "', got '" + lex_.peek().text + "'");
        }
        lex_.take();
    }

    bool accept_keyword(const std::string& kw) {
        if (lex_.peek().kind == TokKind::Ident && lex_.peek().text == kw) {
            lex_.take();
            return true;
        }
        return false;
    }

    Duration parse_duration() {
        if (lex_.peek().kind != TokKind::Number) {
            fail("expected a duration, got '" + lex_.peek().text + "'");
        }
        const Token t = lex_.take();
        // Split numeric part and suffix.
        std::size_t i = 0;
        while (i < t.text.size() &&
               (std::isdigit(static_cast<unsigned char>(t.text[i])) || t.text[i] == '.')) {
            ++i;
        }
        const std::string num = t.text.substr(0, i);
        const std::string unit = to_lower(t.text.substr(i));
        double value = 0.0;
        try {
            value = std::stod(num);
        } catch (const std::exception&) {
            throw ParseError(t.line, "invalid number '" + t.text + "'");
        }
        double scale = 0.0;
        if (unit == "ns") scale = 1.0;
        else if (unit == "us") scale = 1e3;
        else if (unit == "ms") scale = 1e6;
        else if (unit == "s") scale = 1e9;
        else throw ParseError(t.line, "duration needs a unit (ns/us/ms/s): '" + t.text + "'");
        return Duration(static_cast<std::int64_t>(value * scale));
    }

    double parse_rate() {
        if (lex_.peek().kind != TokKind::Number) {
            fail("expected a rate, got '" + lex_.peek().text + "'");
        }
        const Token t = lex_.take();
        double value = 0.0;
        try {
            value = std::stod(t.text);
        } catch (const std::exception&) {
            throw ParseError(t.line, "invalid number '" + t.text + "'");
        }
        expect_punct('/');
        const Token unit = expect_ident("rate unit");
        if (unit.text != "s") {
            throw ParseError(unit.line, "rates must be per second ('/s')");
        }
        return value;
    }

    std::int64_t parse_int() {
        if (lex_.peek().kind != TokKind::Number) {
            fail("expected an integer, got '" + lex_.peek().text + "'");
        }
        const Token t = lex_.take();
        try {
            if (starts_with(t.text, "0x") || starts_with(t.text, "0X")) {
                return std::stoll(t.text.substr(2), nullptr, 16);
            }
            return std::stoll(t.text);
        } catch (const std::exception&) {
            throw ParseError(t.line, "invalid integer '" + t.text + "'");
        }
    }

    TaskSpec parse_task() {
        TaskSpec task;
        task.name = expect_ident("task name").text;
        expect_punct('{');
        while (!accept_punct_if('}')) {
            const Token key = expect_ident("task attribute");
            if (key.text == "wcet") task.wcet = parse_duration();
            else if (key.text == "bcet") task.bcet = parse_duration();
            else if (key.text == "period") task.period = parse_duration();
            else if (key.text == "deadline") task.deadline = parse_duration();
            else throw ParseError(key.line, "unknown task attribute '" + key.text + "'");
            expect_punct(';');
        }
        if (task.bcet.count_ns() == 0) {
            task.bcet = task.wcet;
        }
        if (task.bcet > task.wcet) {
            throw ParseError(lex_.peek().line, "task " + task.name + ": bcet > wcet");
        }
        return task;
    }

    MessageSpec parse_message() {
        MessageSpec msg;
        msg.name = expect_ident("message name").text;
        expect_punct('{');
        while (!accept_punct_if('}')) {
            const Token key = expect_ident("message attribute");
            if (key.text == "id") msg.can_id = static_cast<std::uint32_t>(parse_int());
            else if (key.text == "payload") msg.payload_bytes = static_cast<int>(parse_int());
            else if (key.text == "period") msg.period = parse_duration();
            else if (key.text == "deadline") msg.deadline = parse_duration();
            else if (key.text == "bus") msg.bus = expect_ident("bus name").text;
            else throw ParseError(key.line, "unknown message attribute '" + key.text + "'");
            expect_punct(';');
        }
        if (msg.payload_bytes < 0 || msg.payload_bytes > 8) {
            throw ParseError(lex_.peek().line,
                             "message " + msg.name + ": payload must be 0..8 bytes");
        }
        return msg;
    }

    bool accept_punct_if(char c) {
        if (lex_.peek().kind == TokKind::Punct && lex_.peek().text[0] == c) {
            lex_.take();
            return true;
        }
        return false;
    }

    Contract parse_component() {
        if (!accept_keyword("component")) {
            fail("expected 'component'");
        }
        Contract c;
        c.component = expect_ident("component name").text;
        expect_punct('{');
        while (!accept_punct_if('}')) {
            const Token key = expect_ident("contract clause");
            if (key.text == "asil") {
                const Token level = expect_ident("ASIL level");
                const auto asil = asil_from_string(level.text);
                if (!asil.has_value()) {
                    throw ParseError(level.line, "unknown ASIL '" + level.text + "'");
                }
                c.asil = *asil;
                expect_punct(';');
            } else if (key.text == "security_level") {
                c.security_level = static_cast<int>(parse_int());
                if (c.security_level < 0 || c.security_level > 3) {
                    throw ParseError(key.line, "security_level must be 0..3");
                }
                expect_punct(';');
            } else if (key.text == "task") {
                c.tasks.push_back(parse_task());
            } else if (key.text == "provides") {
                if (!accept_keyword("service")) {
                    fail("expected 'service' after 'provides'");
                }
                ProvidedService svc;
                svc.name = expect_ident("service name").text;
                if (accept_punct_if('{')) {
                    while (!accept_punct_if('}')) {
                        const Token attr = expect_ident("service attribute");
                        if (attr.text == "max_rate") svc.max_client_rate_hz = parse_rate();
                        else if (attr.text == "min_client_level")
                            svc.min_client_level = static_cast<int>(parse_int());
                        else
                            throw ParseError(attr.line,
                                             "unknown service attribute '" + attr.text + "'");
                        expect_punct(';');
                    }
                } else {
                    expect_punct(';');
                }
                c.provides.push_back(std::move(svc));
            } else if (key.text == "requires") {
                if (!accept_keyword("service")) {
                    fail("expected 'service' after 'requires'");
                }
                RequiredService req;
                req.name = expect_ident("service name").text;
                expect_punct(';');
                c.requires_.push_back(std::move(req));
            } else if (key.text == "message") {
                c.messages.push_back(parse_message());
            } else if (key.text == "pin") {
                if (!accept_keyword("ecu")) {
                    fail("expected 'ecu' after 'pin'");
                }
                c.pinned_ecu = expect_ident("ECU name").text;
                expect_punct(';');
            } else if (key.text == "redundant_with") {
                c.redundant_with = expect_ident("component name").text;
                expect_punct(';');
            } else if (key.text == "max_e2e_latency") {
                c.max_e2e_latency = parse_duration();
                expect_punct(';');
            } else if (key.text == "external") {
                c.external_interface = true;
                expect_punct(';');
            } else if (key.text == "gateway") {
                c.gateway = true;
                expect_punct(';');
            } else {
                throw ParseError(key.line, "unknown contract clause '" + key.text + "'");
            }
        }
        if (c.tasks.empty()) {
            throw ParseError(lex_.peek().line,
                             "component " + c.component + " declares no tasks");
        }
        return c;
    }

    Lexer lex_;
};

} // namespace

std::vector<Contract> ContractParser::parse(const std::string& text) const {
    Parser parser(text);
    return parser.parse_document();
}

Contract ContractParser::parse_one(const std::string& text) const {
    auto contracts = parse(text);
    if (contracts.size() != 1) {
        throw ParseError(1, format("expected exactly one contract, found %zu",
                                   contracts.size()));
    }
    return contracts.front();
}

} // namespace sa::model
