#include "model/dependency_graph.hpp"

#include <queue>

#include "util/assert.hpp"

namespace sa::model {

const char* to_string(DepNodeKind kind) noexcept {
    switch (kind) {
    case DepNodeKind::Function: return "function";
    case DepNodeKind::Component: return "component";
    case DepNodeKind::Task: return "task";
    case DepNodeKind::Service: return "service";
    case DepNodeKind::Message: return "message";
    case DepNodeKind::Ecu: return "ecu";
    case DepNodeKind::Bus: return "bus";
    case DepNodeKind::PowerDomain: return "power";
    case DepNodeKind::ThermalZone: return "thermal";
    case DepNodeKind::Sensor: return "sensor";
    }
    return "?";
}

const char* to_string(DepEdgeKind kind) noexcept {
    switch (kind) {
    case DepEdgeKind::MappedTo: return "mapped_to";
    case DepEdgeKind::Provides: return "provides";
    case DepEdgeKind::DependsOn: return "depends_on";
    case DepEdgeKind::Sends: return "sends";
    case DepEdgeKind::SharesResource: return "shares_resource";
    case DepEdgeKind::ThermallyCoupled: return "thermally_coupled";
    case DepEdgeKind::PoweredBy: return "powered_by";
    case DepEdgeKind::Feeds: return "feeds";
    }
    return "?";
}

std::string DepNodeId::str() const { return std::string(to_string(kind)) + ":" + name; }

void DependencyGraph::add_node(DepNodeId node) { nodes_.insert(std::move(node)); }

void DependencyGraph::add_edge(DepNodeId from, DepNodeId to, DepEdgeKind kind) {
    nodes_.insert(from);
    nodes_.insert(to);
    edges_.push_back(DepEdge{std::move(from), std::move(to), kind});
}

bool DependencyGraph::has_node(const DepNodeId& node) const { return nodes_.contains(node); }

std::vector<DepNodeId> DependencyGraph::nodes() const {
    return {nodes_.begin(), nodes_.end()};
}

std::vector<DepNodeId> DependencyGraph::successors(const DepNodeId& node,
                                                   std::optional<DepEdgeKind> kind) const {
    std::vector<DepNodeId> out;
    for (const auto& e : edges_) {
        if (e.from == node && (!kind.has_value() || e.kind == *kind)) {
            out.push_back(e.to);
        }
    }
    return out;
}

std::vector<DepNodeId> DependencyGraph::predecessors(const DepNodeId& node,
                                                     std::optional<DepEdgeKind> kind) const {
    std::vector<DepNodeId> out;
    for (const auto& e : edges_) {
        if (e.to == node && (!kind.has_value() || e.kind == *kind)) {
            out.push_back(e.from);
        }
    }
    return out;
}

std::set<DepNodeId> DependencyGraph::dependents_of(const DepNodeId& node) const {
    std::set<DepNodeId> seen;
    std::queue<DepNodeId> frontier;
    frontier.push(node);
    while (!frontier.empty()) {
        DepNodeId current = frontier.front();
        frontier.pop();
        for (const auto& e : edges_) {
            if (e.to == current && e.kind != DepEdgeKind::SharesResource &&
                seen.insert(e.from).second) {
                frontier.push(e.from);
            }
        }
    }
    seen.erase(node);
    return seen;
}

std::set<DepNodeId> DependencyGraph::dependencies_of(const DepNodeId& node) const {
    std::set<DepNodeId> seen;
    std::queue<DepNodeId> frontier;
    frontier.push(node);
    while (!frontier.empty()) {
        DepNodeId current = frontier.front();
        frontier.pop();
        for (const auto& e : edges_) {
            if (e.from == current && e.kind != DepEdgeKind::SharesResource &&
                seen.insert(e.to).second) {
                frontier.push(e.to);
            }
        }
    }
    seen.erase(node);
    return seen;
}

DependencyGraph build_dependency_graph(const FunctionModel& functions,
                                       const PlatformModel& platform,
                                       const Mapping& mapping) {
    DependencyGraph g;

    for (const auto& ecu : platform.ecus) {
        const DepNodeId ecu_node{DepNodeKind::Ecu, ecu.name};
        g.add_node(ecu_node);
        g.add_edge(ecu_node, DepNodeId{DepNodeKind::ThermalZone, ecu.thermal_zone},
                   DepEdgeKind::ThermallyCoupled);
        g.add_edge(ecu_node, DepNodeId{DepNodeKind::PowerDomain, ecu.power_domain},
                   DepEdgeKind::PoweredBy);
    }
    for (const auto& bus : platform.buses) {
        g.add_node(DepNodeId{DepNodeKind::Bus, bus.name});
    }

    for (const auto& c : functions.contracts()) {
        const DepNodeId comp{DepNodeKind::Component, c.component};
        g.add_node(comp);

        const std::string ecu = mapping.ecu_of(c.component);
        if (!ecu.empty()) {
            g.add_edge(comp, DepNodeId{DepNodeKind::Ecu, ecu}, DepEdgeKind::MappedTo);
        }
        for (const auto& t : c.tasks) {
            const DepNodeId task{DepNodeKind::Task, c.component + "." + t.name};
            // The component needs its tasks; tasks run on the ECU.
            g.add_edge(comp, task, DepEdgeKind::DependsOn);
            if (!ecu.empty()) {
                g.add_edge(task, DepNodeId{DepNodeKind::Ecu, ecu}, DepEdgeKind::MappedTo);
            }
        }
        for (const auto& p : c.provides) {
            // The service needs its providing component.
            g.add_edge(DepNodeId{DepNodeKind::Service, p.name}, comp,
                       DepEdgeKind::Provides);
        }
        for (const auto& m : c.messages) {
            const DepNodeId msg{DepNodeKind::Message, m.name};
            g.add_edge(msg, comp, DepEdgeKind::Sends); // message needs its sender
            auto bus = mapping.message_to_bus.find(m.name);
            if (bus != mapping.message_to_bus.end()) {
                g.add_edge(msg, DepNodeId{DepNodeKind::Bus, bus->second},
                           DepEdgeKind::MappedTo);
            }
        }
    }

    // Requires edges: client depends on the service node.
    for (const auto& ch : functions.channels()) {
        if (ch.provider.empty()) {
            continue;
        }
        g.add_edge(DepNodeId{DepNodeKind::Component, ch.client},
                   DepNodeId{DepNodeKind::Service, ch.service}, DepEdgeKind::DependsOn);
    }

    // Derived shared-resource edges between co-located components (explicit,
    // so FMEA reports name them without re-deriving placement).
    const auto& contracts = functions.contracts();
    for (std::size_t i = 0; i < contracts.size(); ++i) {
        for (std::size_t j = i + 1; j < contracts.size(); ++j) {
            const std::string ea = mapping.ecu_of(contracts[i].component);
            const std::string eb = mapping.ecu_of(contracts[j].component);
            if (!ea.empty() && ea == eb) {
                g.add_edge(DepNodeId{DepNodeKind::Component, contracts[i].component},
                           DepNodeId{DepNodeKind::Component, contracts[j].component},
                           DepEdgeKind::SharesResource);
                g.add_edge(DepNodeId{DepNodeKind::Component, contracts[j].component},
                           DepNodeId{DepNodeKind::Component, contracts[i].component},
                           DepEdgeKind::SharesResource);
            }
        }
    }

    return g;
}

} // namespace sa::model
