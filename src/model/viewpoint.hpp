#pragma once
// Viewpoint framework (§II-A: the MCC "introduces additional layers that
// model certain aspects of the system in order to represent particular
// viewpoints such as safety, availability or security. ... Viewpoint-specific
// analyses can be implemented as separate entities in the MCC"). Each
// viewpoint inspects the assembled system model and acts as an acceptance
// test: any Error-severity issue rejects the change.

#include <memory>
#include <string>
#include <vector>

#include "model/function_model.hpp"
#include "model/mapping.hpp"
#include "model/platform_model.hpp"

namespace sa::model {

/// Everything a viewpoint may inspect: the gradually refined representation
/// of the new system configuration.
struct SystemModel {
    const FunctionModel& functions;
    const PlatformModel& platform;
    const Mapping& mapping;
};

enum class IssueSeverity { Info, Warning, Error };

const char* to_string(IssueSeverity severity) noexcept;

struct ViewpointIssue {
    IssueSeverity severity = IssueSeverity::Warning;
    std::string code;    ///< machine-matchable, e.g. "timing.unschedulable"
    std::string subject; ///< entity concerned
    std::string detail;
};

struct ViewpointReport {
    std::string viewpoint;
    std::vector<ViewpointIssue> issues;

    [[nodiscard]] bool passed() const noexcept {
        for (const auto& i : issues) {
            if (i.severity == IssueSeverity::Error) {
                return false;
            }
        }
        return true;
    }
    [[nodiscard]] std::size_t count(IssueSeverity severity) const noexcept {
        std::size_t n = 0;
        for (const auto& i : issues) {
            if (i.severity == severity) {
                ++n;
            }
        }
        return n;
    }
};

class Viewpoint {
public:
    explicit Viewpoint(std::string name) : name_(std::move(name)) {}
    virtual ~Viewpoint() = default;

    Viewpoint(const Viewpoint&) = delete;
    Viewpoint& operator=(const Viewpoint&) = delete;

    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    /// Run the viewpoint's acceptance analysis.
    [[nodiscard]] virtual ViewpointReport check(const SystemModel& model) = 0;

private:
    std::string name_;
};

} // namespace sa::model
