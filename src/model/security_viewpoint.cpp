#include "model/security_viewpoint.hpp"

#include <map>
#include <queue>
#include <set>

#include "util/string_util.hpp"

namespace sa::model {

namespace {

/// Breadth-first reach over the service-dependency graph, recording whether
/// any path avoids gateways.
struct Reach {
    int hops = 0;
    bool through_gateway = false;
};

std::map<std::string, Reach> reachable_from(const FunctionModel& functions,
                                            const std::string& start) {
    // Edge: client -> provider (the client can inject data into the provider).
    std::multimap<std::string, std::string> edges;
    for (const auto& ch : functions.channels()) {
        if (!ch.provider.empty()) {
            edges.insert({ch.client, ch.provider});
        }
    }
    std::map<std::string, Reach> seen;
    std::queue<std::pair<std::string, Reach>> frontier;
    frontier.push({start, Reach{0, false}});
    while (!frontier.empty()) {
        auto [node, reach] = frontier.front();
        frontier.pop();
        auto [it, inserted] = seen.insert({node, reach});
        if (!inserted) {
            // Keep the most pessimistic path: fewer hops / no gateway.
            if (it->second.through_gateway && !reach.through_gateway) {
                it->second = reach;
            } else {
                continue;
            }
        }
        const Contract* c = functions.find(node);
        const bool node_is_gateway = c != nullptr && c->gateway;
        auto range = edges.equal_range(node);
        for (auto e = range.first; e != range.second; ++e) {
            Reach next = reach;
            ++next.hops;
            next.through_gateway = next.through_gateway || node_is_gateway;
            frontier.push({e->second, next});
        }
    }
    seen.erase(start);
    return seen;
}

} // namespace

ViewpointReport SecurityViewpoint::check(const SystemModel& model) {
    ViewpointReport report;
    report.viewpoint = name();
    policy_ = DerivedPolicy{};

    // Zone rules + policy derivation.
    for (const auto& ch : model.functions.channels()) {
        if (ch.provider.empty()) {
            continue; // safety viewpoint reports unresolved services
        }
        const Contract* client = model.functions.find(ch.client);
        const Contract* provider = model.functions.find(ch.provider);
        if (client == nullptr || provider == nullptr) {
            continue;
        }
        const ProvidedService* svc = nullptr;
        for (const auto& p : provider->provides) {
            if (p.name == ch.service) {
                svc = &p;
            }
        }
        if (svc == nullptr) {
            continue;
        }
        if (client->security_level < svc->min_client_level) {
            report.issues.push_back(ViewpointIssue{
                IssueSeverity::Error, "security.zone_violation", ch.client,
                format("level %d client may not open %s (requires level %d)",
                       client->security_level, ch.service.c_str(),
                       svc->min_client_level)});
            continue; // no grant derived
        }
        policy_.grants.push_back({ch.client, ch.service});
        if (svc->max_client_rate_hz > 0.0) {
            policy_.rate_bounds.push_back(
                DerivedPolicy::RateBound{ch.client, ch.service, svc->max_client_rate_hz});
        }
    }

    // Attack-surface analysis.
    for (const auto& c : model.functions.contracts()) {
        if (!c.external_interface) {
            continue;
        }
        const auto reach = reachable_from(model.functions, c.component);
        for (const auto& [target, r] : reach) {
            const Contract* t = model.functions.find(target);
            if (t == nullptr || t->asil < Asil::C) {
                continue;
            }
            if (!r.through_gateway) {
                report.issues.push_back(ViewpointIssue{
                    IssueSeverity::Error, "security.exposed_critical", target,
                    format("reachable from external %s in %d hop(s) without a gateway",
                           c.component.c_str(), r.hops)});
            } else {
                report.issues.push_back(ViewpointIssue{
                    IssueSeverity::Warning, "security.gateway_mediated", target,
                    format("reachable from external %s via gateway (%d hops)",
                           c.component.c_str(), r.hops)});
            }
        }
    }

    return report;
}

} // namespace sa::model
