#include "model/viewpoint.hpp"

namespace sa::model {

const char* to_string(IssueSeverity severity) noexcept {
    switch (severity) {
    case IssueSeverity::Info: return "info";
    case IssueSeverity::Warning: return "warning";
    case IssueSeverity::Error: return "error";
    }
    return "?";
}

} // namespace sa::model
