#include "model/mapping.hpp"

#include <algorithm>
#include <set>

#include "util/assert.hpp"
#include "util/string_util.hpp"

namespace sa::model {

std::string Mapping::ecu_of(const std::string& component) const {
    auto it = component_to_ecu.find(component);
    return it == component_to_ecu.end() ? std::string{} : it->second;
}

namespace {

double ecu_load(const FunctionModel& functions, const Mapping& mapping,
                const EcuDescriptor& ecu) {
    double u = 0.0;
    for (const auto& [comp, target] : mapping.component_to_ecu) {
        if (target != ecu.name) {
            continue;
        }
        if (const Contract* c = functions.find(comp)) {
            u += c->cpu_utilization() / ecu.speed_factor;
        }
    }
    return u;
}

bool placement_ok(const Contract& contract, const EcuDescriptor& ecu,
                  const FunctionModel& functions, const Mapping& mapping,
                  std::string* why) {
    if (contract.asil > ecu.max_asil) {
        *why = format("%s: ASIL %s exceeds ECU %s cap %s", contract.component.c_str(),
                      to_string(contract.asil), ecu.name.c_str(), to_string(ecu.max_asil));
        return false;
    }
    const double load = ecu_load(functions, mapping, ecu);
    const double demand = contract.cpu_utilization() / ecu.speed_factor;
    if (load + demand > ecu.max_utilization) {
        *why = format("%s: ECU %s over capacity (%.2f + %.2f > %.2f)",
                      contract.component.c_str(), ecu.name.c_str(), load, demand,
                      ecu.max_utilization);
        return false;
    }
    if (contract.redundant_with.has_value()) {
        const std::string partner_ecu = mapping.ecu_of(*contract.redundant_with);
        if (!partner_ecu.empty() && partner_ecu == ecu.name) {
            *why = format("%s: redundancy partner %s already on %s",
                          contract.component.c_str(), contract.redundant_with->c_str(),
                          ecu.name.c_str());
            return false;
        }
    }
    return true;
}

} // namespace

MappingResult Mapper::map(const FunctionModel& functions, const PlatformModel& platform,
                          const Mapping& existing) const {
    MappingResult result;
    Mapping& mapping = result.mapping;

    // Keep placements of components that still exist.
    for (const auto& [comp, ecu] : existing.component_to_ecu) {
        if (functions.find(comp) != nullptr && platform.find_ecu(ecu) != nullptr) {
            mapping.component_to_ecu[comp] = ecu;
        }
    }

    // Order unplaced components by decreasing utilization (first-fit
    // decreasing); deterministic tie-break by name.
    std::vector<const Contract*> todo;
    for (const auto& c : functions.contracts()) {
        if (!mapping.placed(c.component)) {
            todo.push_back(&c);
        }
    }
    std::sort(todo.begin(), todo.end(), [](const Contract* a, const Contract* b) {
        const double ua = a->cpu_utilization();
        const double ub = b->cpu_utilization();
        if (ua != ub) {
            return ua > ub;
        }
        return a->component < b->component;
    });

    for (const Contract* c : todo) {
        std::string last_reason = "no ECUs in platform";
        bool placed = false;
        if (c->pinned_ecu.has_value()) {
            const EcuDescriptor* ecu = platform.find_ecu(*c->pinned_ecu);
            if (ecu == nullptr) {
                result.errors.push_back(
                    format("%s: pinned to unknown ECU %s", c->component.c_str(),
                           c->pinned_ecu->c_str()));
                result.feasible = false;
                continue;
            }
            if (placement_ok(*c, *ecu, functions, mapping, &last_reason)) {
                mapping.component_to_ecu[c->component] = ecu->name;
                placed = true;
            }
        } else {
            // First fit over ECUs sorted by current load (balance), then name.
            std::vector<const EcuDescriptor*> ecus;
            for (const auto& e : platform.ecus) {
                ecus.push_back(&e);
            }
            std::sort(ecus.begin(), ecus.end(),
                      [&](const EcuDescriptor* a, const EcuDescriptor* b) {
                          const double la = ecu_load(functions, mapping, *a);
                          const double lb = ecu_load(functions, mapping, *b);
                          if (la != lb) {
                              return la < lb;
                          }
                          return a->name < b->name;
                      });
            for (const EcuDescriptor* ecu : ecus) {
                if (placement_ok(*c, *ecu, functions, mapping, &last_reason)) {
                    mapping.component_to_ecu[c->component] = ecu->name;
                    placed = true;
                    break;
                }
            }
        }
        if (!placed) {
            result.errors.push_back(last_reason);
            result.feasible = false;
        }
    }

    // Task priorities: rate-monotonic per ECU over all placed components.
    // Deterministic tie-break: deadline, then name. Priorities 1..n.
    for (const auto& ecu : platform.ecus) {
        struct Entry {
            std::string qualified;
            Duration period;
            Duration deadline;
        };
        std::vector<Entry> entries;
        for (const auto& c : functions.contracts()) {
            if (mapping.ecu_of(c.component) != ecu.name) {
                continue;
            }
            for (const auto& t : c.tasks) {
                entries.push_back(Entry{c.component + "." + t.name, t.period,
                                        t.deadline.count_ns() > 0 ? t.deadline : t.period});
            }
        }
        std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
            if (a.period != b.period) {
                return a.period < b.period;
            }
            if (a.deadline != b.deadline) {
                return a.deadline < b.deadline;
            }
            return a.qualified < b.qualified;
        });
        int prio = 1;
        for (const auto& e : entries) {
            mapping.task_priority[e.qualified] = prio++;
        }
    }

    // Messages: keep declared bus/id; otherwise assign the first bus and
    // deadline-monotonic ids starting at 0x100 (lower id = shorter deadline).
    if (!platform.buses.empty()) {
        struct MsgEntry {
            const MessageSpec* spec;
            std::string component;
        };
        std::vector<MsgEntry> msgs;
        for (const auto& c : functions.contracts()) {
            for (const auto& m : c.messages) {
                msgs.push_back(MsgEntry{&m, c.component});
            }
        }
        std::sort(msgs.begin(), msgs.end(), [](const MsgEntry& a, const MsgEntry& b) {
            const Duration da =
                a.spec->deadline.count_ns() > 0 ? a.spec->deadline : a.spec->period;
            const Duration db =
                b.spec->deadline.count_ns() > 0 ? b.spec->deadline : b.spec->period;
            if (da != db) {
                return da < db;
            }
            return a.spec->name < b.spec->name;
        });
        std::uint32_t next_id = 0x100;
        std::set<std::uint32_t> used;
        for (const auto& m : msgs) {
            if (m.spec->can_id != 0) {
                used.insert(m.spec->can_id);
            }
        }
        for (const auto& m : msgs) {
            const std::string bus =
                !m.spec->bus.empty() ? m.spec->bus : platform.buses.front().name;
            if (platform.find_bus(bus) == nullptr) {
                result.errors.push_back(
                    format("message %s names unknown bus %s", m.spec->name.c_str(),
                           bus.c_str()));
                result.feasible = false;
                continue;
            }
            mapping.message_to_bus[m.spec->name] = bus;
            if (m.spec->can_id != 0) {
                mapping.message_id[m.spec->name] = m.spec->can_id;
            } else {
                while (used.contains(next_id)) {
                    ++next_id;
                }
                mapping.message_id[m.spec->name] = next_id;
                used.insert(next_id);
                ++next_id;
            }
        }
    }

    return result;
}

} // namespace sa::model
