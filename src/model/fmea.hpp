#pragma once
// Automated failure-mode and effects analysis over the cross-layer
// dependency graph (§V: "In traditional design, such dependencies are
// identified with semiformal methods, such as a Failure Mode and Effects
// Analysis (FMEA). In CCC, such dependency analysis is automated").
//
// Given a failure mode of any node (an ECU dying, a thermal zone overheating,
// a component compromised), the engine computes the transitively affected
// set, scores the worst reached ASIL, and notes available mitigations
// (redundancy partners that survive the failure).

#include <string>
#include <vector>

#include "model/dependency_graph.hpp"

namespace sa::model {

enum class FailureMode { Loss, Degraded, Babbling };

const char* to_string(FailureMode mode) noexcept;

struct FmeaEntry {
    DepNodeId failed;
    FailureMode mode = FailureMode::Loss;
    std::vector<DepNodeId> affected;       ///< transitively affected nodes
    std::vector<std::string> lost_components;
    Asil worst_asil = Asil::QM;            ///< highest ASIL among lost components
    std::vector<std::string> mitigations;  ///< surviving redundancy partners
    bool fail_operational = true;          ///< every lost ASIL>=C component mitigated
};

struct FmeaReport {
    std::vector<FmeaEntry> entries;

    [[nodiscard]] const FmeaEntry* find(const DepNodeId& failed) const;
    [[nodiscard]] std::size_t not_fail_operational() const;
};

class FmeaEngine {
public:
    FmeaEngine(const DependencyGraph& graph, const FunctionModel& functions)
        : graph_(graph), functions_(functions) {}

    /// Analyze one failure mode.
    [[nodiscard]] FmeaEntry analyze(const DepNodeId& failed,
                                    FailureMode mode = FailureMode::Loss) const;

    /// Analyze loss of every ECU, bus, sensor and component (the standard
    /// sweep a safety engineer would request).
    [[nodiscard]] FmeaReport analyze_all() const;

private:
    const DependencyGraph& graph_;
    const FunctionModel& functions_;
};

} // namespace sa::model
