#pragma once
// Security viewpoint, following the threat-modelling direction of Hamad et
// al. [4] and the distributed access-control enforcement of [5]:
//  - derives the least-privilege access policy (grants) from the contracts
//  - checks security-zone rules: a client may only open a service whose
//    min_client_level it satisfies
//  - attack-surface analysis: a path from an external-interface component to
//    an ASIL >= C component that does not pass a gateway is an error; with a
//    gateway it is a warning (documented residual risk)
//  - derives rate bounds for the communication IDS (RateMonitor)

#include <utility>
#include <vector>

#include "model/viewpoint.hpp"

namespace sa::model {

struct DerivedPolicy {
    /// (client, service) grants for the RTE access control.
    std::vector<std::pair<std::string, std::string>> grants;
    /// (client, service, max_rate_hz) for the IDS.
    struct RateBound {
        std::string client;
        std::string service;
        double max_rate_hz;
    };
    std::vector<RateBound> rate_bounds;
};

class SecurityViewpoint : public Viewpoint {
public:
    SecurityViewpoint() : Viewpoint("security") {}

    ViewpointReport check(const SystemModel& model) override;

    /// Policy derived during the last check().
    [[nodiscard]] const DerivedPolicy& policy() const noexcept { return policy_; }

private:
    DerivedPolicy policy_;
};

} // namespace sa::model
