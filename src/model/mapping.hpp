#pragma once
// Mapping step of the integration process (§II-A: "first involves fitting
// this functionality to the target platform ... the resulting technical
// architecture is transformed and mapped to a model of its implementation").
//
// The mapper performs deterministic first-fit-decreasing placement of
// components onto ECUs (respecting pins, ASIL caps, utilization caps and
// redundancy separation), assigns rate-monotonic task priorities per ECU and
// deadline-monotonic CAN identifiers per bus.

#include <map>
#include <string>
#include <vector>

#include "model/function_model.hpp"
#include "model/platform_model.hpp"

namespace sa::model {

struct Mapping {
    std::map<std::string, std::string> component_to_ecu;
    /// Fully-qualified task name ("component.task") -> priority on its ECU.
    std::map<std::string, int> task_priority;
    /// Message name -> bus name.
    std::map<std::string, std::string> message_to_bus;
    /// Message name -> assigned CAN id.
    std::map<std::string, std::uint32_t> message_id;

    [[nodiscard]] std::string ecu_of(const std::string& component) const;
    [[nodiscard]] bool placed(const std::string& component) const {
        return component_to_ecu.contains(component);
    }
};

struct MappingResult {
    Mapping mapping;
    bool feasible = true;
    std::vector<std::string> errors;
};

class Mapper {
public:
    /// Produce a mapping for `functions` on `platform`. Components already
    /// placed in `existing` keep their placement (in-field change: do not
    /// disturb running components).
    [[nodiscard]] MappingResult map(const FunctionModel& functions,
                                    const PlatformModel& platform,
                                    const Mapping& existing = {}) const;
};

} // namespace sa::model
