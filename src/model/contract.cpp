#include "model/contract.hpp"

#include "util/string_util.hpp"

namespace sa::model {

const char* to_string(Asil asil) noexcept {
    switch (asil) {
    case Asil::QM: return "QM";
    case Asil::A: return "A";
    case Asil::B: return "B";
    case Asil::C: return "C";
    case Asil::D: return "D";
    }
    return "?";
}

std::optional<Asil> asil_from_string(const std::string& text) noexcept {
    const std::string t = to_lower(text);
    if (t == "qm") return Asil::QM;
    if (t == "a") return Asil::A;
    if (t == "b") return Asil::B;
    if (t == "c") return Asil::C;
    if (t == "d") return Asil::D;
    return std::nullopt;
}

double Contract::cpu_utilization() const {
    double u = 0.0;
    for (const auto& t : tasks) {
        u += static_cast<double>(t.wcet.count_ns()) /
             static_cast<double>(t.period.count_ns());
    }
    return u;
}

const TaskSpec* Contract::find_task(const std::string& name) const {
    for (const auto& t : tasks) {
        if (t.name == name) {
            return &t;
        }
    }
    return nullptr;
}

} // namespace sa::model
