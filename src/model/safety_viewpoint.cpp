#include "model/safety_viewpoint.hpp"

#include "util/string_util.hpp"

namespace sa::model {

ViewpointReport SafetyViewpoint::check(const SystemModel& model) {
    ViewpointReport report;
    report.viewpoint = name();

    for (const auto& c : model.functions.contracts()) {
        const std::string ecu_name = model.mapping.ecu_of(c.component);
        if (ecu_name.empty()) {
            report.issues.push_back(ViewpointIssue{IssueSeverity::Error, "safety.unplaced",
                                                   c.component, "component not mapped"});
            continue;
        }
        const EcuDescriptor* ecu = model.platform.find_ecu(ecu_name);
        if (ecu == nullptr) {
            report.issues.push_back(ViewpointIssue{IssueSeverity::Error, "safety.bad_ecu",
                                                   c.component,
                                                   "mapped to unknown ECU " + ecu_name});
            continue;
        }
        if (c.asil > ecu->max_asil) {
            report.issues.push_back(ViewpointIssue{
                IssueSeverity::Error, "safety.asil_cap", c.component,
                format("ASIL %s exceeds ECU %s cap %s", to_string(c.asil),
                       ecu->name.c_str(), to_string(ecu->max_asil))});
        }
        if (c.redundant_with.has_value()) {
            const Contract* partner = model.functions.find(*c.redundant_with);
            if (partner == nullptr) {
                report.issues.push_back(ViewpointIssue{
                    IssueSeverity::Warning, "safety.redundancy_missing", c.component,
                    "redundancy partner " + *c.redundant_with + " not in the model"});
            } else if (model.mapping.ecu_of(partner->component) == ecu_name) {
                report.issues.push_back(ViewpointIssue{
                    IssueSeverity::Error, "safety.common_cause", c.component,
                    "redundancy partner " + partner->component +
                        " shares ECU " + ecu_name});
            }
        }
    }

    // Dependency integrity rules.
    for (const auto& ch : model.functions.channels()) {
        const Contract* client = model.functions.find(ch.client);
        if (client == nullptr) {
            continue;
        }
        if (ch.provider.empty()) {
            report.issues.push_back(ViewpointIssue{
                IssueSeverity::Error, "safety.unresolved_service", ch.client,
                "required service " + ch.service + " has no provider"});
            continue;
        }
        const Contract* provider = model.functions.find(ch.provider);
        if (provider != nullptr && client->asil >= Asil::C &&
            provider->asil < client->asil) {
            report.issues.push_back(ViewpointIssue{
                IssueSeverity::Error, "safety.integrity_inversion", ch.client,
                format("ASIL %s client depends on ASIL %s provider %s for %s",
                       to_string(client->asil), to_string(provider->asil),
                       ch.provider.c_str(), ch.service.c_str())});
        }
    }

    return report;
}

} // namespace sa::model
