#pragma once
// Multi-Change Controller (§II-A): "takes full control over the system and
// platform configuration ... performs the integration process and ensures
// that a new configuration passes all necessary acceptance and conformance
// tests". The MCC gradually refines the model of a requested change:
//
//   1. merge the change into a candidate function model
//   2. map the candidate onto the platform (technical architecture)
//   3. run the sa::lint structural gate (cheap consistency checks; reject
//      with findings before the expensive analyses see a broken model)
//   4. run every viewpoint analysis as acceptance tests
//   5. on success: commit the candidate, derive the executable RteConfig and
//      the monitor configuration; on failure: reject, keep the old model
//
// At run time the MCC ingests monitoring metrics (Fig. 1 "metrics" arrow),
// refines WCET assumptions, and re-validates the configuration under
// changed platform conditions (DVFS levels in the thermal scenario).

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "lint/diagnostics.hpp"
#include "model/dependency_graph.hpp"
#include "model/fmea.hpp"
#include "model/latency_viewpoint.hpp"
#include "model/safety_viewpoint.hpp"
#include "model/security_viewpoint.hpp"
#include "model/timing_viewpoint.hpp"
#include "model/viewpoint.hpp"
#include "rte/rte.hpp"

namespace sa::model {

struct ChangeRequest {
    enum class Kind { Add, Update, Remove };
    Kind kind = Kind::Add;
    std::vector<Contract> contracts; ///< for Add/Update
    std::string component;           ///< for Remove
    std::string description;
};

struct IntegrationStep {
    std::string name;
    bool passed = true;
    std::string detail;
};

struct IntegrationReport {
    bool accepted = false;
    std::string rejection_reason;
    std::vector<IntegrationStep> steps;
    std::vector<ViewpointReport> viewpoints;
    Mapping mapping; ///< candidate mapping (committed only if accepted)
    /// Findings of the structural gate (one "lint:<RULE>" step each).
    lint::LintReport lint;

    [[nodiscard]] const ViewpointReport* viewpoint(const std::string& name) const;
};

struct MccOptions {
    bool run_fmea = true; ///< include the automated FMEA sweep as evidence
    /// Run the sa::lint structural gate between mapping and the viewpoint
    /// acceptance tests: any Error-severity finding rejects the change before
    /// the expensive WCRT analyses see a model they silently mis-handle.
    bool run_lint = true;
};

class Mcc {
public:
    explicit Mcc(PlatformModel platform, MccOptions options = {});

    /// Register an additional viewpoint (owned). Timing/safety/security are
    /// built in.
    void add_viewpoint(std::unique_ptr<Viewpoint> viewpoint);

    /// Run the integration process for a change request.
    IntegrationReport integrate(const ChangeRequest& change);

    // --- committed state ----------------------------------------------------
    [[nodiscard]] const FunctionModel& functions() const noexcept { return functions_; }
    [[nodiscard]] const PlatformModel& platform() const noexcept { return platform_; }
    [[nodiscard]] const Mapping& mapping() const noexcept { return mapping_; }
    [[nodiscard]] const DependencyGraph& dependency_graph() const noexcept {
        return dependency_graph_;
    }
    [[nodiscard]] const FmeaReport& fmea() const noexcept { return fmea_; }
    [[nodiscard]] const DerivedPolicy& security_policy() const noexcept {
        return security_policy_;
    }

    /// Executable configuration for the committed model. `bodies` lets the
    /// caller attach application logic to tasks ("component.task" -> body).
    using TaskBody = std::function<void(sim::Time)>;
    [[nodiscard]] rte::RteConfig
    make_rte_config(const std::map<std::string, TaskBody>& bodies = {}) const;

    // --- run-time self-awareness hooks --------------------------------------
    /// Feed an observed execution time for "component.task"; the MCC tracks
    /// the max and can tighten/flag the contract (model refinement).
    void ingest_observed_wcet(const std::string& qualified_task, sim::Duration observed);

    /// Observed maxima (fed back from BudgetMonitor).
    [[nodiscard]] sim::Duration observed_wcet(const std::string& qualified_task) const;

    /// Tasks whose observed execution exceeded the contracted WCET.
    [[nodiscard]] std::vector<std::string> wcet_violations() const;

    /// Re-run the timing acceptance test assuming `ecu` runs at
    /// `speed_factor` (thermal scenario: is the configuration still safe
    /// after throttling?). Does not change committed state.
    [[nodiscard]] bool revalidate_with_speed(const std::string& ecu,
                                             double speed_factor) const;

    [[nodiscard]] std::uint64_t integrations_attempted() const noexcept {
        return attempts_;
    }
    [[nodiscard]] std::uint64_t integrations_accepted() const noexcept {
        return accepted_;
    }

private:
    void rebuild_committed_artifacts();

    PlatformModel platform_;
    MccOptions options_;
    FunctionModel functions_;
    Mapping mapping_;
    DependencyGraph dependency_graph_;
    FmeaReport fmea_;
    DerivedPolicy security_policy_;
    Mapper mapper_;
    std::vector<std::unique_ptr<Viewpoint>> viewpoints_;
    SecurityViewpoint* security_viewpoint_ = nullptr; ///< owned by viewpoints_
    std::map<std::string, sim::Duration> observed_wcet_;
    std::uint64_t attempts_ = 0;
    std::uint64_t accepted_ = 0;
};

} // namespace sa::model
