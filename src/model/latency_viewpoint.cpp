#include "model/latency_viewpoint.hpp"

#include "util/string_util.hpp"

namespace sa::model {

ViewpointReport LatencyViewpoint::check(const SystemModel& model) {
    ViewpointReport report;
    report.viewpoint = name();
    last_chains_.clear();

    // Does any contract carry a latency requirement at all?
    bool any = false;
    for (const auto& c : model.functions.contracts()) {
        any = any || c.max_e2e_latency.has_value();
    }
    if (!any) {
        return report;
    }

    // Per-resource analyses (shared across all chains).
    analysis::ChainLatencyAnalysis chains;
    analysis::CpuWcrtAnalysis cpu_analysis;
    analysis::CanWcrtAnalysis can_analysis;
    for (const auto& ecu : model.platform.ecus) {
        const auto cpu = TimingViewpoint::cpu_model(model, ecu);
        if (!cpu.tasks.empty()) {
            chains.add_resource_result(cpu_analysis.analyze(cpu));
        }
    }
    for (const auto& bus : model.platform.buses) {
        const auto bus_mdl = TimingViewpoint::bus_model(model, bus);
        if (!bus_mdl.messages.empty()) {
            chains.add_resource_result(can_analysis.analyze(bus_mdl));
        }
    }

    for (const auto& c : model.functions.contracts()) {
        if (!c.max_e2e_latency.has_value()) {
            continue;
        }
        const std::string ecu = model.mapping.ecu_of(c.component);
        std::vector<analysis::ChainStage> stages;
        std::vector<sim::Duration> sampling;
        for (const auto& t : c.tasks) {
            stages.push_back(analysis::ChainStage{analysis::ChainStage::Kind::CpuTask,
                                                  ecu, c.component + "." + t.name});
            sampling.push_back(sim::Duration::zero());
        }
        for (const auto& m : c.messages) {
            auto bus = model.mapping.message_to_bus.find(m.name);
            stages.push_back(analysis::ChainStage{
                analysis::ChainStage::Kind::CanMessage,
                bus != model.mapping.message_to_bus.end() ? bus->second : std::string{},
                m.name});
            // Asynchronous hand-over into the message: one message period.
            sampling.push_back(m.period);
        }
        if (stages.empty()) {
            report.issues.push_back(ViewpointIssue{
                IssueSeverity::Warning, "latency.empty_chain", c.component,
                "max_e2e_latency declared but the component has no stages"});
            continue;
        }
        auto result = chains.analyze(c.component + ".producer_chain", stages,
                                     *c.max_e2e_latency, sampling);
        if (!result.complete) {
            report.issues.push_back(ViewpointIssue{
                IssueSeverity::Error, "latency.incomplete", c.component,
                "a chain stage has no analysis result (unmapped task or message)"});
        } else if (!result.satisfied) {
            report.issues.push_back(ViewpointIssue{
                IssueSeverity::Error, "latency.requirement_violated", c.component,
                format("worst case %s exceeds requirement %s",
                       result.worst_case.str().c_str(),
                       result.requirement.str().c_str())});
        }
        last_chains_.push_back(std::move(result));
    }

    return report;
}

} // namespace sa::model
