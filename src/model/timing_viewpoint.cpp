#include "model/timing_viewpoint.hpp"

#include "util/string_util.hpp"

namespace sa::model {

analysis::CpuResourceModel TimingViewpoint::cpu_model(const SystemModel& model,
                                                      const EcuDescriptor& ecu,
                                                      double speed_override) {
    analysis::CpuResourceModel cpu;
    cpu.name = ecu.name;
    cpu.speed_factor = speed_override > 0.0 ? speed_override : ecu.speed_factor;
    for (const auto& c : model.functions.contracts()) {
        if (model.mapping.ecu_of(c.component) != ecu.name) {
            continue;
        }
        for (const auto& t : c.tasks) {
            analysis::TaskModel task;
            const std::string qualified = c.component + "." + t.name;
            task.name = qualified;
            task.wcet = t.wcet;
            task.bcet = t.bcet;
            task.activation = analysis::EventModel::periodic(t.period);
            task.deadline = t.deadline;
            auto prio = model.mapping.task_priority.find(qualified);
            task.priority = prio != model.mapping.task_priority.end() ? prio->second : 1000;
            cpu.tasks.push_back(std::move(task));
        }
    }
    return cpu;
}

analysis::CanBusModel TimingViewpoint::bus_model(const SystemModel& model,
                                                 const BusDescriptor& bus) {
    analysis::CanBusModel out;
    out.name = bus.name;
    out.bitrate_bps = bus.bitrate_bps;
    for (const auto& c : model.functions.contracts()) {
        for (const auto& m : c.messages) {
            auto target = model.mapping.message_to_bus.find(m.name);
            if (target == model.mapping.message_to_bus.end() || target->second != bus.name) {
                continue;
            }
            analysis::CanMessageModel msg;
            msg.name = m.name;
            auto id = model.mapping.message_id.find(m.name);
            msg.can_id = id != model.mapping.message_id.end() ? id->second : m.can_id;
            msg.payload_bytes = m.payload_bytes;
            msg.activation = analysis::EventModel::periodic(m.period);
            msg.deadline = m.deadline;
            out.messages.push_back(std::move(msg));
        }
    }
    return out;
}

ViewpointReport TimingViewpoint::check(const SystemModel& model) {
    ViewpointReport report;
    report.viewpoint = name();
    last_results_.clear();

    analysis::CpuWcrtAnalysis cpu_analysis;
    for (const auto& ecu : model.platform.ecus) {
        const auto cpu = cpu_model(model, ecu);
        if (cpu.tasks.empty()) {
            continue;
        }
        if (cpu.utilization() > ecu.max_utilization) {
            report.issues.push_back(ViewpointIssue{
                IssueSeverity::Error, "timing.overutilized", ecu.name,
                format("utilization %.2f exceeds cap %.2f", cpu.utilization(),
                       ecu.max_utilization)});
        }
        auto result = cpu_analysis.analyze(cpu);
        for (const auto& e : result.entities) {
            if (!e.schedulable) {
                report.issues.push_back(ViewpointIssue{
                    IssueSeverity::Error, "timing.unschedulable", e.name,
                    format("WCRT %s > deadline %s on %s", e.wcrt.str().c_str(),
                           e.deadline.str().c_str(), ecu.name.c_str())});
            }
        }
        last_results_.push_back(std::move(result));
    }

    analysis::CanWcrtAnalysis can_analysis;
    for (const auto& bus : model.platform.buses) {
        const auto bus_mdl = bus_model(model, bus);
        if (bus_mdl.messages.empty()) {
            continue;
        }
        const double util = analysis::CanWcrtAnalysis::utilization(bus_mdl);
        if (util > bus.max_utilization) {
            report.issues.push_back(ViewpointIssue{
                IssueSeverity::Error, "timing.bus_overutilized", bus.name,
                format("bus utilization %.2f exceeds cap %.2f", util, bus.max_utilization)});
        }
        auto result = can_analysis.analyze(bus_mdl);
        for (const auto& e : result.entities) {
            if (!e.schedulable) {
                report.issues.push_back(ViewpointIssue{
                    IssueSeverity::Error, "timing.msg_unschedulable", e.name,
                    format("WCRT %s > deadline %s on %s", e.wcrt.str().c_str(),
                           e.deadline.str().c_str(), bus.name.c_str())});
            }
        }
        last_results_.push_back(std::move(result));
    }

    return report;
}

} // namespace sa::model
