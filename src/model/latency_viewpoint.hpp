#pragma once
// Latency viewpoint: checks the contracts' end-to-end latency requirements
// (`max_e2e_latency`) against the composed worst case of the component's
// local producer chain — every task of the component (on its mapped ECU)
// followed by every message it transmits (on the mapped bus, with one
// message period of asynchronous sampling delay each).
//
// This is the chain-latency acceptance test of §II-A layered on top of the
// per-resource WCRT analyses; richer cross-component chains compose the same
// machinery via analysis::ChainLatencyAnalysis directly.

#include "analysis/chain_latency.hpp"
#include "model/timing_viewpoint.hpp"
#include "model/viewpoint.hpp"

namespace sa::model {

class LatencyViewpoint : public Viewpoint {
public:
    LatencyViewpoint() : Viewpoint("latency") {}

    ViewpointReport check(const SystemModel& model) override;

    /// Chain results of the last check() (for reports/telemetry).
    [[nodiscard]] const std::vector<analysis::ChainLatencyResult>& last_chains()
        const noexcept {
        return last_chains_;
    }

private:
    std::vector<analysis::ChainLatencyResult> last_chains_;
};

} // namespace sa::model
