#include "model/function_model.hpp"

#include <algorithm>

namespace sa::model {

FunctionModel::FunctionModel(std::vector<Contract> contracts)
    : contracts_(std::move(contracts)) {}

void FunctionModel::upsert(Contract contract) {
    for (auto& c : contracts_) {
        if (c.component == contract.component) {
            c = std::move(contract);
            return;
        }
    }
    contracts_.push_back(std::move(contract));
}

void FunctionModel::remove(const std::string& component) {
    contracts_.erase(std::remove_if(contracts_.begin(), contracts_.end(),
                                    [&](const Contract& c) {
                                        return c.component == component;
                                    }),
                     contracts_.end());
}

const Contract* FunctionModel::find(const std::string& component) const {
    for (const auto& c : contracts_) {
        if (c.component == component) {
            return &c;
        }
    }
    return nullptr;
}

std::string FunctionModel::provider_of(const std::string& service) const {
    std::string provider;
    for (const auto& c : contracts_) {
        for (const auto& p : c.provides) {
            if (p.name == service) {
                if (!provider.empty()) {
                    return {}; // ambiguous
                }
                provider = c.component;
            }
        }
    }
    return provider;
}

std::vector<Channel> FunctionModel::channels() const {
    std::vector<Channel> out;
    for (const auto& c : contracts_) {
        for (const auto& r : c.requires_) {
            out.push_back(Channel{c.component, r.name, provider_of(r.name)});
        }
    }
    return out;
}

std::vector<Channel> FunctionModel::unresolved_channels() const {
    std::vector<Channel> out;
    for (const auto& ch : channels()) {
        if (ch.provider.empty()) {
            out.push_back(ch);
        }
    }
    return out;
}

double FunctionModel::total_utilization() const {
    double u = 0.0;
    for (const auto& c : contracts_) {
        u += c.cpu_utilization();
    }
    return u;
}

} // namespace sa::model
