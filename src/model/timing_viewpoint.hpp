#pragma once
// Timing viewpoint: builds per-resource analysis models from the contracts
// and the mapping, then runs the worst-case response time analyses as
// acceptance tests (§II-A: "a worst-case response time analysis can check
// real-time constraints based on a timing model of the system").

#include "analysis/can_wcrt.hpp"
#include "analysis/cpu_wcrt.hpp"
#include "model/viewpoint.hpp"

namespace sa::model {

class TimingViewpoint : public Viewpoint {
public:
    TimingViewpoint() : Viewpoint("timing") {}

    ViewpointReport check(const SystemModel& model) override;

    /// Build the CPU analysis model for one ECU from the mapped contracts.
    /// `speed_override` replaces the descriptor's speed factor when > 0
    /// (used by the thermal scenario to re-validate under DVFS).
    [[nodiscard]] static analysis::CpuResourceModel cpu_model(const SystemModel& model,
                                                              const EcuDescriptor& ecu,
                                                              double speed_override = 0.0);

    [[nodiscard]] static analysis::CanBusModel bus_model(const SystemModel& model,
                                                         const BusDescriptor& bus);

    /// Results of the last check() call, for chain composition by the MCC.
    [[nodiscard]] const std::vector<analysis::ResourceAnalysisResult>& last_results()
        const noexcept {
        return last_results_;
    }

private:
    std::vector<analysis::ResourceAnalysisResult> last_results_;
};

} // namespace sa::model
