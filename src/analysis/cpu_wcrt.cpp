#include "analysis/cpu_wcrt.hpp"

#include <algorithm>
#include <set>

#include "util/assert.hpp"

namespace sa::analysis {

namespace {

/// Interference of higher-priority tasks within a window of length w.
sim::Duration interference(const CpuResourceModel& cpu, const TaskModel& task,
                           sim::Duration w) {
    std::int64_t total = 0;
    for (const auto& hp : cpu.tasks) {
        if (hp.priority < task.priority) {
            total += hp.activation.eta_plus(w) * cpu.scaled_wcet(hp).count_ns();
        }
    }
    return sim::Duration(total);
}

} // namespace

ResourceAnalysisResult CpuWcrtAnalysis::analyze(const CpuResourceModel& cpu) const {
    std::set<int> prios;
    for (const auto& t : cpu.tasks) {
        SA_REQUIRE(prios.insert(t.priority).second,
                   "task priorities on a CPU must be unique: " + t.name);
    }
    ResourceAnalysisResult result;
    result.resource = cpu.name;
    result.utilization = cpu.utilization();
    for (const auto& t : cpu.tasks) {
        WcrtResult r = analyze_task(cpu, t);
        result.all_schedulable = result.all_schedulable && r.schedulable;
        result.entities.push_back(std::move(r));
    }
    return result;
}

WcrtResult CpuWcrtAnalysis::analyze_task(const CpuResourceModel& cpu,
                                         const TaskModel& task) const {
    SA_REQUIRE(task.wcet.count_ns() > 0, "task WCET must be positive: " + task.name);
    SA_REQUIRE(task.bcet.count_ns() >= 0 && task.bcet <= task.wcet,
               "task BCET must satisfy 0 <= BCET <= WCET: " + task.name);

    WcrtResult out;
    out.name = task.name;
    out.deadline = task.effective_deadline();

    const sim::Duration c = cpu.scaled_wcet(task);

    // Busy-window: examine the q-th job (q = 1, 2, ...) until the busy
    // period ends (completion of job q before arrival of job q+1).
    sim::Duration worst = sim::Duration::zero();
    bool converged = true;
    for (int q = 1; q <= options_.max_busy_jobs; ++q) {
        // Fixed point: w = q*C + I(w)
        sim::Duration w = sim::Duration(q * c.count_ns());
        bool settled = false;
        for (int it = 0; it < options_.max_iterations; ++it) {
            const sim::Duration next =
                sim::Duration(q * c.count_ns() + interference(cpu, task, w).count_ns());
            if (next == w) {
                settled = true;
                break;
            }
            w = next;
        }
        if (!settled) {
            converged = false;
            break;
        }
        // Response time of job q: completion minus its earliest possible
        // arrival, delta_minus(q) before the busy window start (+ jitter is
        // already inside eta_plus of the interferers; for the task itself the
        // q-th activation arrives no earlier than delta-(q)).
        const sim::Duration resp = w - task.activation.delta_minus(q);
        worst = std::max(worst, resp);
        // Busy period ends when job q completes before job q+1 can arrive.
        if (w <= task.activation.delta_minus(q + 1)) {
            break;
        }
        if (q == options_.max_busy_jobs) {
            converged = false;
        }
    }

    out.converged = converged;
    out.wcrt = converged ? worst : sim::Duration(INT64_MAX / 2);
    out.schedulable = converged && out.wcrt <= out.deadline;
    return out;
}

} // namespace sa::analysis
