#pragma once
// Standard PJD (period / jitter / minimum-distance) event models as used in
// Compositional Performance Analysis (CPA, the analysis framework behind the
// paper's "worst-case response time analysis" acceptance tests).
//
// eta_plus(dt)  : max number of events in any half-open window of length dt
// eta_minus(dt) : min number of events in any window of length dt
// delta_minus(n): min distance between the 1st and n-th event
// delta_plus(n) : max distance between the 1st and n-th event

#include <cstdint>

#include "sim/time.hpp"

namespace sa::analysis {

using sim::Duration;

class EventModel {
public:
    /// Strictly periodic stream.
    static EventModel periodic(Duration period);

    /// Periodic with jitter; d_min bounds event bursts (0 = no bound needed).
    static EventModel periodic_jitter(Duration period, Duration jitter,
                                      Duration d_min = Duration::zero());

    /// Sporadic stream: minimum inter-arrival only.
    static EventModel sporadic(Duration min_interarrival);

    [[nodiscard]] Duration period() const noexcept { return period_; }
    [[nodiscard]] Duration jitter() const noexcept { return jitter_; }
    [[nodiscard]] Duration d_min() const noexcept { return d_min_; }

    [[nodiscard]] std::int64_t eta_plus(Duration window) const;
    [[nodiscard]] std::int64_t eta_minus(Duration window) const;
    [[nodiscard]] Duration delta_minus(std::int64_t n) const;
    [[nodiscard]] Duration delta_plus(std::int64_t n) const;

    /// Long-run activation rate (events per second).
    [[nodiscard]] double rate_hz() const;

    /// Event model of the output stream of a task with response-time jitter
    /// `response_jitter` (classic CPA propagation: J_out = J_in + R - B).
    [[nodiscard]] EventModel with_added_jitter(Duration response_jitter) const;

    bool operator==(const EventModel&) const = default;

private:
    EventModel(Duration period, Duration jitter, Duration d_min);

    Duration period_;
    Duration jitter_;
    Duration d_min_;
};

} // namespace sa::analysis
