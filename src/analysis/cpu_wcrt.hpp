#pragma once
// Worst-case response time analysis for static-priority preemptive (SPP)
// CPU scheduling using the busy-window technique (Lehoczky 1990 / Tindell,
// as used in CPA). This is the acceptance test the paper's MCC runs to
// "check real-time constraints based on a timing model of the system".

#include "analysis/task_model.hpp"

namespace sa::analysis {

struct CpuWcrtOptions {
    int max_iterations = 10'000;   ///< per fixed-point; guards divergence
    int max_busy_jobs = 10'000;    ///< max jobs q examined per busy window
};

class CpuWcrtAnalysis {
public:
    explicit CpuWcrtAnalysis(CpuWcrtOptions options = {}) : options_(options) {}

    /// Analyze all tasks on the resource. Task priorities must be unique.
    [[nodiscard]] ResourceAnalysisResult analyze(const CpuResourceModel& cpu) const;

    /// Response time of a single task given its higher-priority interferers.
    /// Returns a non-converged result if the fixed point does not settle
    /// (utilization >= 1 among the considered tasks).
    [[nodiscard]] WcrtResult analyze_task(const CpuResourceModel& cpu,
                                          const TaskModel& task) const;

private:
    CpuWcrtOptions options_;
};

} // namespace sa::analysis
