#include "analysis/event_model.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sa::analysis {

namespace {
std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
    SA_ASSERT(b > 0, "ceil_div divisor must be positive");
    return (a + b - 1) / b;
}
} // namespace

EventModel::EventModel(Duration period, Duration jitter, Duration d_min)
    : period_(period), jitter_(jitter), d_min_(d_min) {
    SA_REQUIRE(period_.count_ns() > 0, "event model period must be positive");
    SA_REQUIRE(jitter_.count_ns() >= 0, "event model jitter must be non-negative");
    SA_REQUIRE(d_min_.count_ns() >= 0, "event model d_min must be non-negative");
}

EventModel EventModel::periodic(Duration period) {
    return EventModel(period, Duration::zero(), period);
}

EventModel EventModel::periodic_jitter(Duration period, Duration jitter, Duration d_min) {
    return EventModel(period, jitter, d_min);
}

EventModel EventModel::sporadic(Duration min_interarrival) {
    // A sporadic stream with min inter-arrival T is the worst case of a
    // periodic stream with period T (eta_plus identical).
    return EventModel(min_interarrival, Duration::zero(), min_interarrival);
}

std::int64_t EventModel::eta_plus(Duration window) const {
    if (window.count_ns() <= 0) {
        return 0;
    }
    // eta+(w) = ceil((w + J) / P), optionally limited by d_min bursts.
    const std::int64_t by_period =
        ceil_div(window.count_ns() + jitter_.count_ns(), period_.count_ns());
    if (d_min_.count_ns() > 0) {
        const std::int64_t by_dmin = ceil_div(window.count_ns(), d_min_.count_ns());
        return std::min(by_period, by_dmin);
    }
    return by_period;
}

std::int64_t EventModel::eta_minus(Duration window) const {
    if (window.count_ns() <= 0) {
        return 0;
    }
    // eta-(w) = floor((w - J) / P) clamped at 0.
    const std::int64_t num = window.count_ns() - jitter_.count_ns();
    if (num <= 0) {
        return 0;
    }
    return num / period_.count_ns();
}

Duration EventModel::delta_minus(std::int64_t n) const {
    if (n < 2) {
        return Duration::zero();
    }
    // delta-(n) = max((n-1) * P - J, (n-1) * d_min)
    const std::int64_t by_period = (n - 1) * period_.count_ns() - jitter_.count_ns();
    const std::int64_t by_dmin = (n - 1) * d_min_.count_ns();
    return Duration(std::max<std::int64_t>({by_period, by_dmin, 0}));
}

Duration EventModel::delta_plus(std::int64_t n) const {
    if (n < 2) {
        return Duration::zero();
    }
    return Duration((n - 1) * period_.count_ns() + jitter_.count_ns());
}

double EventModel::rate_hz() const {
    return 1e9 / static_cast<double>(period_.count_ns());
}

EventModel EventModel::with_added_jitter(Duration response_jitter) const {
    SA_REQUIRE(response_jitter.count_ns() >= 0, "response jitter must be non-negative");
    return EventModel(period_, jitter_ + response_jitter, d_min_);
}

} // namespace sa::analysis
