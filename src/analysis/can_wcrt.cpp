#include "analysis/can_wcrt.hpp"

#include <algorithm>
#include <set>

#include "util/assert.hpp"

namespace sa::analysis {

std::int64_t can_frame_bits_worst_case(int payload_bytes, bool extended_id) {
    SA_REQUIRE(payload_bytes >= 0 && payload_bytes <= 8,
               "classic CAN payload must be 0..8 bytes");
    // Davis et al. (RTSJ 2007): exact bit counts for CAN 2.0A/2.0B.
    //   standard: g = 34 control bits subject to stuffing, 13 not subject
    //   extended: g = 54 control bits subject to stuffing, 13 not subject
    // Worst-case stuffing adds floor((g + 8s - 1) / 4) bits.
    const std::int64_t s = payload_bytes;
    const std::int64_t g = extended_id ? 54 : 34;
    const std::int64_t stuffed_region = g + 8 * s;
    const std::int64_t stuff_bits = (stuffed_region - 1) / 4;
    return stuffed_region + 13 + stuff_bits;
}

sim::Duration can_frame_time(int payload_bytes, bool extended_id, std::int64_t bitrate_bps) {
    SA_REQUIRE(bitrate_bps > 0, "bitrate must be positive");
    const std::int64_t bits = can_frame_bits_worst_case(payload_bytes, extended_id);
    // bit time in ns = 1e9 / bitrate; compute as bits * 1e9 / rate to stay exact.
    return sim::Duration(bits * 1'000'000'000LL / bitrate_bps);
}

double CanWcrtAnalysis::utilization(const CanBusModel& bus) {
    double u = 0.0;
    for (const auto& m : bus.messages) {
        const auto c = can_frame_time(m.payload_bytes, m.extended_id, bus.bitrate_bps);
        u += static_cast<double>(c.count_ns()) /
             static_cast<double>(m.activation.period().count_ns());
    }
    return u;
}

ResourceAnalysisResult CanWcrtAnalysis::analyze(const CanBusModel& bus) const {
    std::set<std::uint32_t> ids;
    for (const auto& m : bus.messages) {
        SA_REQUIRE(ids.insert(m.can_id).second, "CAN ids on a bus must be unique: " + m.name);
    }
    ResourceAnalysisResult result;
    result.resource = bus.name;
    result.utilization = utilization(bus);
    for (const auto& m : bus.messages) {
        WcrtResult r = analyze_message(bus, m);
        result.all_schedulable = result.all_schedulable && r.schedulable;
        result.entities.push_back(std::move(r));
    }
    return result;
}

WcrtResult CanWcrtAnalysis::analyze_message(const CanBusModel& bus,
                                            const CanMessageModel& msg) const {
    WcrtResult out;
    out.name = msg.name;
    out.deadline = msg.effective_deadline();

    const sim::Duration c = can_frame_time(msg.payload_bytes, msg.extended_id, bus.bitrate_bps);
    const sim::Duration bit = sim::Duration(1'000'000'000LL / bus.bitrate_bps);

    // Blocking: longest lower-priority frame that may already be in
    // transmission (non-preemptive arbitration).
    sim::Duration blocking = sim::Duration::zero();
    for (const auto& lp : bus.messages) {
        if (lp.can_id > msg.can_id) {
            blocking = std::max(
                blocking, can_frame_time(lp.payload_bytes, lp.extended_id, bus.bitrate_bps));
        }
    }

    // Busy-window over queueing delay w: w = B + sum_hp eta+(w + bit) * C_hp
    // plus own preceding jobs (q-1)*C; response of job q = w + C - delta-(q).
    sim::Duration worst = sim::Duration::zero();
    bool converged = true;
    for (int q = 1; q <= options_.max_busy_jobs; ++q) {
        sim::Duration w = sim::Duration(blocking.count_ns() + (q - 1) * c.count_ns());
        bool settled = false;
        for (int it = 0; it < options_.max_iterations; ++it) {
            std::int64_t acc = blocking.count_ns() + (q - 1) * c.count_ns();
            for (const auto& hp : bus.messages) {
                if (hp.can_id < msg.can_id) {
                    // +1 bit: a higher-priority frame arriving just before the
                    // end of w still wins the next arbitration round.
                    acc += hp.activation.eta_plus(w + bit) *
                           can_frame_time(hp.payload_bytes, hp.extended_id, bus.bitrate_bps)
                               .count_ns();
                }
            }
            const sim::Duration next = sim::Duration(acc);
            if (next == w) {
                settled = true;
                break;
            }
            w = next;
        }
        if (!settled) {
            converged = false;
            break;
        }
        const sim::Duration resp = w + c - msg.activation.delta_minus(q);
        worst = std::max(worst, resp);
        if (w + c <= msg.activation.delta_minus(q + 1)) {
            break;
        }
        if (q == options_.max_busy_jobs) {
            converged = false;
        }
    }

    out.converged = converged;
    out.wcrt = converged ? worst : sim::Duration(INT64_MAX / 2);
    out.schedulable = converged && out.wcrt <= out.deadline;
    return out;
}

} // namespace sa::analysis
