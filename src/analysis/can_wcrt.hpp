#pragma once
// Worst-case response time analysis for CAN messages (fixed-priority
// non-preemptive arbitration), following Davis/Burns/Bril/Lukkien,
// "Controller Area Network (CAN) schedulability analysis: refuted,
// revisited and revised" (RTSJ 2007). Used by the MCC to admit network
// configurations and by the security viewpoint to bound IDS detection lag.

#include "analysis/task_model.hpp"

namespace sa::analysis {

/// Worst-case frame transmission time in bits, including the worst-case
/// number of stuff bits. Standard (11-bit) and extended (29-bit) framing.
[[nodiscard]] std::int64_t can_frame_bits_worst_case(int payload_bytes, bool extended_id);

/// Transmission time of a frame at the given bitrate.
[[nodiscard]] sim::Duration can_frame_time(int payload_bytes, bool extended_id,
                                           std::int64_t bitrate_bps);

struct CanWcrtOptions {
    int max_iterations = 10'000;
    int max_busy_jobs = 10'000;
};

class CanWcrtAnalysis {
public:
    explicit CanWcrtAnalysis(CanWcrtOptions options = {}) : options_(options) {}

    /// Analyze all messages on the bus. CAN ids must be unique.
    [[nodiscard]] ResourceAnalysisResult analyze(const CanBusModel& bus) const;

    [[nodiscard]] WcrtResult analyze_message(const CanBusModel& bus,
                                             const CanMessageModel& msg) const;

    /// Bus utilization in [0, inf).
    [[nodiscard]] static double utilization(const CanBusModel& bus);

private:
    CanWcrtOptions options_;
};

} // namespace sa::analysis
