#pragma once
// Task and resource models consumed by the response-time analyses. These are
// *models* (the red domain of Fig. 1), distinct from the executable RTE tasks
// in src/rte — the MCC checks a model before it configures the RTE.

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/event_model.hpp"
#include "sim/time.hpp"

namespace sa::analysis {

using sim::Duration;

/// A software task bound to a CPU, scheduled with static priority preemptive
/// (SPP) scheduling. Smaller priority value = higher priority.
struct TaskModel {
    std::string name;
    Duration wcet;       ///< worst-case execution time at nominal frequency
    Duration bcet;       ///< best-case execution time (>= 0, <= wcet)
    int priority = 0;    ///< unique per resource; smaller = more important
    EventModel activation = EventModel::periodic(Duration::ms(10));
    Duration deadline = Duration::zero(); ///< relative; zero = implicit (== period)

    [[nodiscard]] Duration effective_deadline() const {
        return deadline.count_ns() > 0 ? deadline : activation.period();
    }

    /// Long-run CPU utilization contribution in [0, inf).
    [[nodiscard]] double utilization() const {
        return static_cast<double>(wcet.count_ns()) /
               static_cast<double>(activation.period().count_ns());
    }
};

/// A CPU resource with a set of SPP tasks. `speed_factor` scales execution
/// times (DVFS: factor 0.5 => everything takes twice as long).
struct CpuResourceModel {
    std::string name;
    std::vector<TaskModel> tasks;
    double speed_factor = 1.0;

    [[nodiscard]] double utilization() const {
        double u = 0.0;
        for (const auto& t : tasks) {
            u += t.utilization() / speed_factor;
        }
        return u;
    }

    /// Scaled WCET of a task on this CPU.
    [[nodiscard]] Duration scaled_wcet(const TaskModel& t) const {
        return Duration(static_cast<std::int64_t>(
            static_cast<double>(t.wcet.count_ns()) / speed_factor));
    }
};

/// A CAN message model: fixed-priority non-preemptive arbitration keyed by
/// CAN identifier (lower id = higher priority).
struct CanMessageModel {
    std::string name;
    std::uint32_t can_id = 0;
    int payload_bytes = 8;
    bool extended_id = false;
    EventModel activation = EventModel::periodic(Duration::ms(10));
    Duration deadline = Duration::zero();

    [[nodiscard]] Duration effective_deadline() const {
        return deadline.count_ns() > 0 ? deadline : activation.period();
    }
};

/// A CAN bus resource.
struct CanBusModel {
    std::string name;
    std::int64_t bitrate_bps = 500'000;
    std::vector<CanMessageModel> messages;
};

/// Result of a response-time analysis for one entity.
struct WcrtResult {
    std::string name;
    Duration wcrt = Duration::zero();
    Duration deadline = Duration::zero();
    bool schedulable = false;
    bool converged = true; ///< false if the busy-window iteration diverged
};

/// Result for a whole resource.
struct ResourceAnalysisResult {
    std::string resource;
    std::vector<WcrtResult> entities;
    bool all_schedulable = true;
    double utilization = 0.0;

    [[nodiscard]] const WcrtResult* find(const std::string& name) const {
        for (const auto& e : entities) {
            if (e.name == name) {
                return &e;
            }
        }
        return nullptr;
    }
};

} // namespace sa::analysis
