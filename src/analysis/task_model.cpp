#include "analysis/task_model.hpp"

// Header-only data model; this translation unit exists so the target has a
// stable archive member for the module and to host future out-of-line logic.

namespace sa::analysis {} // namespace sa::analysis
