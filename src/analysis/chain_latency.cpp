#include "analysis/chain_latency.hpp"

#include "util/assert.hpp"

namespace sa::analysis {

void ChainLatencyAnalysis::add_resource_result(const ResourceAnalysisResult& result) {
    results_.push_back(result);
}

const WcrtResult* ChainLatencyAnalysis::lookup(const ChainStage& stage) const {
    for (const auto& rr : results_) {
        if (rr.resource == stage.resource) {
            if (const WcrtResult* e = rr.find(stage.entity)) {
                return e;
            }
        }
    }
    return nullptr;
}

ChainLatencyResult ChainLatencyAnalysis::analyze(
    const std::string& chain_name, const std::vector<ChainStage>& stages,
    sim::Duration requirement, const std::vector<sim::Duration>& sampling_periods) const {
    SA_REQUIRE(!stages.empty(), "chain must have at least one stage");
    SA_REQUIRE(sampling_periods.empty() || sampling_periods.size() == stages.size(),
               "sampling_periods must be empty or match the number of stages");

    ChainLatencyResult out;
    out.chain_name = chain_name;
    out.requirement = requirement;

    std::int64_t total = 0;
    for (std::size_t i = 0; i < stages.size(); ++i) {
        const WcrtResult* r = lookup(stages[i]);
        if (r == nullptr || !r->converged) {
            out.complete = false;
            out.stage_latency.push_back(sim::Duration::zero());
            continue;
        }
        std::int64_t stage = r->wcrt.count_ns();
        // Asynchronous hand-over: the consumer may have sampled just before
        // the producer's output arrived; add one sampling period.
        if (!sampling_periods.empty() && sampling_periods[i].count_ns() > 0) {
            stage += sampling_periods[i].count_ns();
        }
        out.stage_latency.push_back(sim::Duration(stage));
        total += stage;
    }

    out.worst_case = sim::Duration(total);
    out.satisfied = out.complete && out.worst_case <= requirement;
    return out;
}

} // namespace sa::analysis
