#pragma once
// End-to-end latency along a cause-effect chain (sensor -> task -> CAN
// message -> task -> actuator), composed from per-resource WCRT results.
// The MCC uses this to check function-level latency requirements that span
// several resources; the safety viewpoint uses it for fault-reaction times.

#include <string>
#include <variant>
#include <vector>

#include "analysis/can_wcrt.hpp"
#include "analysis/cpu_wcrt.hpp"

namespace sa::analysis {

/// One stage of a cause-effect chain.
struct ChainStage {
    enum class Kind { CpuTask, CanMessage };
    Kind kind = Kind::CpuTask;
    std::string resource; ///< CPU or bus name
    std::string entity;   ///< task or message name
};

struct ChainLatencyResult {
    std::string chain_name;
    sim::Duration worst_case = sim::Duration::zero();
    sim::Duration requirement = sim::Duration::zero();
    bool satisfied = false;
    bool complete = true; ///< false if a stage had no analysis result
    std::vector<sim::Duration> stage_latency;
};

class ChainLatencyAnalysis {
public:
    /// Register per-resource analysis results to compose from.
    void add_resource_result(const ResourceAnalysisResult& result);

    /// Worst-case end-to-end latency with asynchronous (sampling) hand-over:
    /// each stage contributes its WCRT plus, for periodic under-sampled
    /// hand-over, one activation period of the consuming stage.
    [[nodiscard]] ChainLatencyResult analyze(const std::string& chain_name,
                                             const std::vector<ChainStage>& stages,
                                             sim::Duration requirement,
                                             const std::vector<sim::Duration>&
                                                 sampling_periods = {}) const;

private:
    [[nodiscard]] const WcrtResult* lookup(const ChainStage& stage) const;

    std::vector<ResourceAnalysisResult> results_;
};

} // namespace sa::analysis
