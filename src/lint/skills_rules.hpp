#pragma once
// Skills-layer lint rules (SKL001-SKL007): structural checks on
// SkillGraphSpec declarations, capability-catalogue conformance and alarm
// bindings. Unlike SkillGraph::validate() / CapabilityRegistry registration
// (which throw on the *first* defect), these report every finding so a spec
// author fixes one pass, not one error per compile.

#include "lint/diagnostics.hpp"
#include "skills/capability_registry.hpp"
#include "skills/skill_graph_spec.hpp"

namespace sa::lint {

/// Lint one spec: cycles (SKL001), reachability (SKL002), weighted_mean
/// coverage (SKL003), dangling declarations (SKL004) and — when `catalogue`
/// is given — capability conformance (SKL005).
[[nodiscard]] LintReport
lint_spec(const skills::SkillGraphSpec& spec,
          const skills::CapabilityRegistry* catalogue = nullptr);

/// Lint one alarm binding against `catalogue` (SKL006). Bindings with an
/// empty capability resolve from the anomaly source at match time and carry
/// nothing to check statically.
[[nodiscard]] LintReport lint_binding(const skills::AlarmBinding& binding,
                                      const skills::CapabilityRegistry& catalogue);

/// Lint a whole registry: every spec (against the registry itself), every
/// alarm binding, and dead capabilities nothing references (SKL007).
[[nodiscard]] LintReport lint_registry(const skills::CapabilityRegistry& registry);

} // namespace sa::lint
