#include "lint/diagnostics.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/string_util.hpp"

namespace sa::lint {

const char* to_string(Severity severity) noexcept {
    switch (severity) {
    case Severity::Info: return "info";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
    }
    return "?";
}

const char* to_string(Layer layer) noexcept {
    switch (layer) {
    case Layer::Text: return "text";
    case Layer::Skills: return "skills";
    case Layer::Model: return "model";
    case Layer::Scenario: return "scenario";
    case Layer::Learn: return "learn";
    case Layer::Campaign: return "campaign";
    }
    return "?";
}

std::string Finding::str() const {
    return format("%s[%s] %s: %s", to_string(severity), rule.c_str(),
                  subject.c_str(), message.c_str());
}

const std::vector<RuleInfo>& rule_catalogue() {
    static const std::vector<RuleInfo> kCatalogue = {
        // --- text layer -----------------------------------------------------
        {"TXT001", Severity::Error, Layer::Text,
         "input text does not parse as a spec or contract"},
        // --- skills layer ---------------------------------------------------
        {"SKL001", Severity::Error, Layer::Skills,
         "skill-graph spec has a dependency cycle"},
        {"SKL002", Severity::Warning, Layer::Skills,
         "spec node unreachable from the root skill"},
        {"SKL003", Severity::Error, Layer::Skills,
         "weighted_mean aggregation missing weights for some children"},
        {"SKL004", Severity::Error, Layer::Skills,
         "spec declaration references an unknown node or non-edge"},
        {"SKL005", Severity::Error, Layer::Skills,
         "spec node absent from the capability catalogue or kind mismatch"},
        {"SKL006", Severity::Error, Layer::Skills,
         "alarm binding names an unknown capability or missing quality"},
        {"SKL007", Severity::Info, Layer::Skills,
         "dead capability: no spec node or alarm binding uses it"},
        // --- model layer ----------------------------------------------------
        {"MDL001", Severity::Error, Layer::Model,
         "required service has no provider"},
        {"MDL002", Severity::Info, Layer::Model,
         "provided service is never required"},
        {"MDL003", Severity::Error, Layer::Model,
         "duplicate task priority on one ECU (breaks CpuWcrtAnalysis)"},
        {"MDL004", Severity::Error, Layer::Model,
         "duplicate CAN id on one bus or duplicate message name"},
        {"MDL005", Severity::Error, Layer::Model,
         "reference to an ECU or bus the platform does not declare"},
        {"MDL006", Severity::Error, Layer::Model,
         "chain stage names an unknown task, message or resource"},
        {"MDL007", Severity::Warning, Layer::Model,
         "redundant_with names an unknown component"},
        {"MDL008", Severity::Warning, Layer::Model,
         "service has multiple providers (provider_of is ambiguous)"},
        // --- scenario layer -------------------------------------------------
        {"SCN001", Severity::Warning, Layer::Scenario,
         "gateway route shadowed by an earlier id/mask on the same bus pair"},
        {"SCN002", Severity::Error, Layer::Scenario,
         "bus-to-bus routes form a forwarding cycle"},
        {"SCN003", Severity::Error, Layer::Scenario,
         "cross-domain link with zero forward latency (zero lookahead)"},
        {"SCN004", Severity::Error, Layer::Scenario,
         "domain pin out of range for the declared domain count"},
        {"SCN005", Severity::Error, Layer::Scenario,
         "monitor or route references an undeclared ECU, bus or vehicle"},
        {"SCN006", Severity::Warning, Layer::Scenario,
         "heartbeat watches a source nothing publishes"},
        {"SCN007", Severity::Warning, Layer::Scenario,
         "sensor bound to a skill node the vehicle's graph lacks"},
        // --- mesh (scenario-layer V2V topology) -----------------------------
        {"MSH001", Severity::Error, Layer::Scenario,
         "V2V endpoint unreachable under the declared radio ranges"},
        {"MSH002", Severity::Error, Layer::Scenario,
         "mesh beacon TTL smaller than the endpoint's hop eccentricity"},
        // --- learn layer ----------------------------------------------------
        {"LRN001", Severity::Error, Layer::Learn,
         "learned monitor tracks zero metrics after auto-resolution"},
        {"LRN002", Severity::Error, Layer::Learn,
         "learned-monitor warm-up exceeds the declared scenario duration"},
        // --- campaign layer -------------------------------------------------
        {"CMP001", Severity::Error, Layer::Campaign,
         "campaign names an unknown scenario template"},
        {"CMP002", Severity::Error, Layer::Campaign,
         "campaign matrix is empty (seed range lo > hi)"},
        {"CMP003", Severity::Warning, Layer::Campaign,
         "campaign matrix is very large (> 100000 cells)"},
        {"CMP004", Severity::Error, Layer::Campaign,
         "referenced skill-graph spec file is missing or rejected by lint"},
        {"CMP005", Severity::Error, Layer::Campaign,
         "representative cell fails scenario lint"},
        {"CMP006", Severity::Info, Layer::Campaign,
         "matrix contains harness-probe faults (misuse/crash)"},
    };
    return kCatalogue;
}

const RuleInfo* find_rule(std::string_view id) {
    for (const RuleInfo& info : rule_catalogue()) {
        if (std::string_view{info.id} == id) {
            return &info;
        }
    }
    return nullptr;
}

void LintReport::add(std::string_view rule, std::string subject,
                     std::string message) {
    const RuleInfo* info = find_rule(rule);
    SA_ASSERT(info != nullptr, "lint finding uses an ID missing from the catalogue");
    findings_.push_back(Finding{std::string{rule}, info->severity, info->layer,
                                std::move(subject), std::move(message)});
}

void LintReport::merge(const LintReport& other) {
    findings_.insert(findings_.end(), other.findings_.begin(),
                     other.findings_.end());
}

std::size_t LintReport::count(Severity severity) const {
    return static_cast<std::size_t>(
        std::count_if(findings_.begin(), findings_.end(),
                      [severity](const Finding& finding) {
                          return finding.severity == severity;
                      }));
}

const Finding* LintReport::first(std::string_view rule) const {
    for (const Finding& finding : findings_) {
        if (finding.rule == rule) {
            return &finding;
        }
    }
    return nullptr;
}

bool LintReport::has(std::string_view rule) const { return first(rule) != nullptr; }

std::string LintReport::str() const {
    std::string out;
    for (const Finding& finding : findings_) {
        out += finding.str();
        out += '\n';
    }
    out += format("%zu error(s), %zu warning(s), %zu info(s)",
                  count(Severity::Error), count(Severity::Warning),
                  count(Severity::Info));
    return out;
}

std::string LintReport::json() const {
    std::string out = format(
        "{\"version\":1,\"errors\":%zu,\"warnings\":%zu,\"infos\":%zu,"
        "\"findings\":[",
        count(Severity::Error), count(Severity::Warning), count(Severity::Info));
    bool follower = false;
    for (const Finding& finding : findings_) {
        if (follower) {
            out += ',';
        }
        follower = true;
        out += format(
            "{\"rule\":\"%s\",\"severity\":\"%s\",\"layer\":\"%s\","
            "\"subject\":\"%s\",\"message\":\"%s\"}",
            finding.rule.c_str(), to_string(finding.severity),
            to_string(finding.layer), json_escape(finding.subject).c_str(),
            json_escape(finding.message).c_str());
    }
    out += "]}";
    return out;
}

std::string json_escape(std::string_view text) {
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                out += format("\\u%04x", static_cast<unsigned>(c));
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace sa::lint
