#pragma once
// Campaign-layer lint rules (CMP001-CMP006): a campaign file is linted
// before the driver fans out thousands of cells, so a typo'd template, an
// empty seed range or a broken skill-graph spec fails in milliseconds, not
// after a worker fleet burned through half the matrix. CMP005 builds ONE
// representative cell declaration (first value of every axis, seed lo) and
// runs the full ScenarioBuilder::lint() stack over it — the cells of a
// matrix differ only along the declared axes, so one cell's topology
// findings speak for all of them.

#include "campaign/campaign_spec.hpp"
#include "lint/diagnostics.hpp"

namespace sa::lint {

/// Lint one campaign matrix. Spec-file paths inside `spec` must already be
/// resolved (the CLI resolves them relative to the campaign file's
/// directory at load time).
[[nodiscard]] LintReport lint_campaign(const campaign::CampaignSpec& spec);

} // namespace sa::lint
