#pragma once
// Plain-data description of a scenario topology for the scenario-layer lint
// rules. ScenarioBuilder/VehicleBuilder fill these shapes from their private
// declaration state (VehicleBuilder::describe()); keeping the shapes
// std-only avoids a scenario <-> lint include cycle and lets tests fabricate
// broken topologies without touching a builder.

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace sa::lint {

/// One directional forwarding rule. `from`/`to` are node keys: the plain bus
/// name inside a vehicle's gateway, "vehicle:bus" in a scenario bridge.
struct RouteShape {
    std::string from;
    std::string to;
    std::uint32_t id = 0;
    std::uint32_t mask = 0; ///< 0 forwards every frame
};

struct GatewayShape {
    std::string name;
    std::vector<RouteShape> routes;
    long long forward_latency_ns = 0;
};

/// An ECU-bound monitor declaration ("thermal_guard", "deadline_monitor",
/// "budget_monitor", "monitor_overhead").
struct MonitorRefShape {
    std::string kind;
    std::string ecu;
};

/// A learned anomaly monitor declaration after metric auto-resolution.
struct LearnedMonitorShape {
    std::size_t metric_count = 0;
    long long warmup_ns = 0;
};

/// A vehicle's V2V endpoint declaration (VehicleBuilder::v2v()/mesh()).
/// Plain endpoints hear frames but never relay; mesh endpoints run the full
/// MeshStack protocol and carry a beacon TTL (their announcement hop radius).
struct MeshEndpointShape {
    bool is_mesh = false;
    double position_m = 0.0;
    std::uint32_t beacon_ttl = 0; ///< 0 for plain (non-mesh) endpoints
};

struct VehicleShape {
    std::string name;
    std::optional<std::size_t> domain_pin;
    std::vector<std::string> ecus;
    std::vector<std::string> buses;
    std::vector<std::string> sensors;
    std::vector<std::string> raw_tasks;
    std::vector<std::string> components; ///< parsed contract components
    std::vector<GatewayShape> gateways;
    std::vector<MonitorRefShape> ecu_monitors;
    std::vector<std::string> heartbeat_watches;
    bool has_skill_graph = false;
    std::vector<std::string> skill_nodes;
    /// (sensor name, bound skill node) for sensors with a non-empty binding.
    std::vector<std::pair<std::string, std::string>> sensor_skill_bindings;
    std::vector<LearnedMonitorShape> learned_monitors;
    std::optional<MeshEndpointShape> v2v_endpoint;
};

struct ScenarioShape {
    std::size_t num_domains = 1;
    std::vector<VehicleShape> vehicles; ///< declaration order (round-robin order)
    std::vector<GatewayShape> bridges;  ///< routes use "vehicle:bus" keys
    bool v2v_enabled = false;
    long long v2v_latency_ns = 0;
    /// Hard radio range of the medium in meters; 0 = unlimited (MSH001/002
    /// only fire on a finite range).
    double v2v_range_m = 0.0;
    /// Intended run length (ScenarioBuilder::duration_hint()); 0 = unknown.
    long long duration_hint_ns = 0;
};

} // namespace sa::lint
