#pragma once
// Scenario-layer lint rules (SCN001-SCN007): topology checks the builders
// cannot express as single-call preconditions — route shadowing and
// forwarding cycles span declarations, domain/latency interactions span
// vehicles, and monitor targets span subsystems. ScenarioBuilder::lint()
// feeds its declared state in here before build() commits anything to a
// simulator.

#include "lint/diagnostics.hpp"
#include "lint/scenario_shape.hpp"

namespace sa::lint {

/// Lint one vehicle in isolation: unknown ECU/bus references (SCN005),
/// route shadowing within its gateways (SCN001), heartbeat targets (SCN006)
/// and sensor-to-skill bindings (SCN007).
[[nodiscard]] LintReport lint_vehicle(const VehicleShape& vehicle);

/// Lint the whole topology: every vehicle, plus domain pins (SCN004),
/// cross-domain latency (SCN003), bridge references (SCN005) and
/// bus-to-bus forwarding cycles across gateways and bridges (SCN002).
[[nodiscard]] LintReport lint_scenario(const ScenarioShape& scenario);

} // namespace sa::lint
