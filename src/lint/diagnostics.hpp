#pragma once
// sa::lint diagnostic engine. Every finding carries a *stable* rule ID
// (SKL/MDL/SCN/TXT + 3 digits — IDs are append-only, never renumbered so CI
// suppressions and docs stay valid), a severity, the model layer it belongs
// to, a model location ("spec acc / skill select_target") and human text.
// A LintReport renders one line per finding (str()) or a schema-stable JSON
// document (json()) for tools/sa_lint and CI artifacts.
//
// The catalogue itself lives here (rule_catalogue()); the rule
// implementations live per layer in skills_rules / model_rules /
// scenario_rules. docs/LINT.md documents every rule with an example finding
// and the fix.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace sa::lint {

enum class Severity {
    Info,    ///< stylistic / informational; never blocks
    Warning, ///< suspicious but runnable; blocks only strict mode
    Error,   ///< structurally broken; analyses would crash or lie
};

const char* to_string(Severity severity) noexcept;

/// The model layer a rule inspects.
enum class Layer {
    Text,     ///< raw spec/contract text (parse failures)
    Skills,   ///< SkillGraphSpec / CapabilityRegistry / alarm bindings
    Model,    ///< contracts, function model, mapping
    Scenario, ///< builder topology: gateways, domains, monitors
    Learn,    ///< learned anomaly models: tracked metrics, warm-up budgets
    Campaign, ///< campaign matrices: axes, seed ranges, referenced specs
};

const char* to_string(Layer layer) noexcept;

/// One diagnostic. `subject` is the model location (what the finding is
/// about), `message` the human explanation.
struct Finding {
    std::string rule; ///< stable ID, e.g. "SKL001"
    Severity severity = Severity::Error;
    Layer layer = Layer::Model;
    std::string subject;
    std::string message;

    /// "error[SKL001] spec acc / skill select_target: ..." — one line.
    [[nodiscard]] std::string str() const;
};

/// Static metadata for one rule in the catalogue.
struct RuleInfo {
    const char* id;
    Severity severity = Severity::Error;
    Layer layer = Layer::Model;
    const char* summary;
};

/// All registered rules, grouped by layer. IDs are stable across releases.
[[nodiscard]] const std::vector<RuleInfo>& rule_catalogue();

/// Catalogue lookup; nullptr when `id` names no rule.
[[nodiscard]] const RuleInfo* find_rule(std::string_view id);

/// An ordered collection of findings plus counters and renderers.
class LintReport {
public:
    /// Add a finding for catalogue rule `rule` (severity and layer are taken
    /// from the catalogue; unknown IDs are a library bug and assert).
    void add(std::string_view rule, std::string subject, std::string message);

    /// Append all of `other`'s findings (order preserved).
    void merge(const LintReport& other);

    [[nodiscard]] const std::vector<Finding>& findings() const noexcept {
        return findings_;
    }
    [[nodiscard]] std::size_t count(Severity severity) const;
    [[nodiscard]] std::size_t error_count() const { return count(Severity::Error); }
    [[nodiscard]] std::size_t warning_count() const {
        return count(Severity::Warning);
    }

    /// No findings at all (not even Info).
    [[nodiscard]] bool clean() const noexcept { return findings_.empty(); }
    /// No errors (warnings/infos allowed) — the MCC gate criterion.
    [[nodiscard]] bool ok() const { return error_count() == 0; }
    /// First finding with severity >= Warning matching `rule`; nullptr if none.
    [[nodiscard]] const Finding* first(std::string_view rule) const;
    /// True when some finding carries `rule`.
    [[nodiscard]] bool has(std::string_view rule) const;

    /// Human rendering: one line per finding plus a summary line.
    [[nodiscard]] std::string str() const;

    /// Machine-readable report. Schema (version 1, keys stable):
    ///   { "version": 1, "errors": N, "warnings": N, "infos": N,
    ///     "findings": [ { "rule", "severity", "layer",
    ///                     "subject", "message" }, ... ] }
    [[nodiscard]] std::string json() const;

private:
    std::vector<Finding> findings_;
};

/// Escape `text` for embedding in a JSON string literal (no quotes added).
[[nodiscard]] std::string json_escape(std::string_view text);

} // namespace sa::lint
