#pragma once
// Model-layer lint rules (MDL001-MDL008): structural consistency of the
// contract set, the platform references inside it, and — when a mapping is
// available — the undocumented preconditions of the WCRT analyses (unique
// task priorities per ECU, unique CAN ids per bus). These are the checks
// Mcc::integrate() runs as its pre-analysis structural gate: cheap set/map
// passes, no fixed-point iteration.

#include <string>
#include <vector>

#include "analysis/chain_latency.hpp"
#include "lint/diagnostics.hpp"
#include "model/function_model.hpp"
#include "model/mapping.hpp"
#include "model/platform_model.hpp"

namespace sa::lint {

/// Platform-free checks over a raw contract set: dangling requires (MDL001),
/// unused provides (MDL002), duplicate message names / explicit CAN ids on
/// one declared bus (MDL004), unknown redundancy partners (MDL007) and
/// ambiguous providers (MDL008). This is what tools/sa_lint runs on parsed
/// contract files, where no platform exists yet.
[[nodiscard]] LintReport
lint_contracts(const std::vector<model::Contract>& contracts);

/// Everything lint_contracts() checks, plus platform-reference validation
/// (MDL005) and — when `mapping` is non-null — duplicate task priorities per
/// ECU (MDL003) and duplicate assigned CAN ids per bus (MDL004).
[[nodiscard]] LintReport lint_system(const model::FunctionModel& functions,
                                     const model::PlatformModel& platform,
                                     const model::Mapping* mapping = nullptr);

/// Validate a cause-effect chain definition against the mapped system
/// (MDL006): every stage must name a known task/message on a known, matching
/// resource.
[[nodiscard]] LintReport
lint_chain(const std::string& chain_name,
           const std::vector<analysis::ChainStage>& stages,
           const model::FunctionModel& functions,
           const model::PlatformModel& platform, const model::Mapping& mapping);

} // namespace sa::lint
