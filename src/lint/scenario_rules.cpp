#include "lint/scenario_rules.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/string_util.hpp"

namespace sa::lint {
namespace {

/// Does every frame matching (inner_id, inner_mask) also match
/// (outer_id, outer_mask)? Matching: (frame.id & mask) == (id & mask).
bool subsumes(std::uint32_t outer_id, std::uint32_t outer_mask,
              std::uint32_t inner_id, std::uint32_t inner_mask) {
    return (outer_mask & ~inner_mask) == 0 &&
           ((outer_id ^ inner_id) & outer_mask) == 0;
}

void check_route_shadowing(const std::string& vehicle,
                           const GatewayShape& gateway, LintReport& report) {
    for (std::size_t later = 0; later < gateway.routes.size(); ++later) {
        for (std::size_t earlier = 0; earlier < later; ++earlier) {
            const RouteShape& e = gateway.routes[earlier];
            const RouteShape& l = gateway.routes[later];
            if (e.from != l.from || e.to != l.to) {
                continue;
            }
            if (subsumes(e.id, e.mask, l.id, l.mask)) {
                report.add(
                    "SCN001",
                    format("vehicle %s / gateway %s / route %zu",
                           vehicle.c_str(), gateway.name.c_str(), later),
                    format("id 0x%x mask 0x%x is subsumed by route %zu "
                           "(id 0x%x mask 0x%x): every frame it matches is "
                           "already forwarded, so frames arrive twice",
                           l.id, l.mask, earlier, e.id, e.mask));
                break; // one finding per shadowed route is enough
            }
        }
    }
}

/// One edge of the scenario-wide forwarding graph ("vehicle:bus" nodes).
struct ForwardEdge {
    std::string from;
    std::string to;
    std::uint32_t id = 0;
    std::uint32_t mask = 0;
    std::string label; ///< owning gateway/bridge, for the finding text
};

/// Accumulated id/mask constraint along a forwarding path.
struct PathConstraint {
    std::uint32_t value = 0;
    std::uint32_t mask = 0;

    [[nodiscard]] bool compatible(const ForwardEdge& edge) const {
        return ((value ^ edge.id) & (mask & edge.mask)) == 0;
    }
    [[nodiscard]] PathConstraint combined(const ForwardEdge& edge) const {
        PathConstraint next;
        next.mask = mask | edge.mask;
        next.value = (value & mask) | (edge.id & edge.mask & ~mask);
        return next;
    }
};

/// Depth-first elementary-cycle search with filter-constraint pruning. Each
/// cycle is found once: the walk starts at its lowest-numbered edge and only
/// uses edges with a higher index. Work is bounded (kMaxSteps) — topologies
/// are tens of routes, not thousands, and lint must stay cheap.
class CycleSearch {
public:
    explicit CycleSearch(std::vector<ForwardEdge> edges)
        : edges_(std::move(edges)) {}

    void run(LintReport& report) {
        for (std::size_t start = 0; start < edges_.size() && !exhausted_;
             ++start) {
            start_ = start;
            in_path_.assign(edges_.size(), false);
            path_.clear();
            extend(start, PathConstraint{}, report);
        }
        if (exhausted_) {
            report.add("SCN002", "scenario topology",
                       "forwarding-cycle search truncated (topology too "
                       "large); remaining routes unchecked");
        }
    }

private:
    void extend(std::size_t edge_index, PathConstraint constraint,
                LintReport& report) {
        if (++steps_ > kMaxSteps) {
            exhausted_ = true;
            return;
        }
        const ForwardEdge& edge = edges_[edge_index];
        if (!constraint.compatible(edge)) {
            return;
        }
        const PathConstraint next = constraint.combined(edge);
        in_path_[edge_index] = true;
        path_.push_back(edge_index);
        if (edge.to == edges_[start_].from) {
            report_cycle(next, report);
        } else {
            for (std::size_t candidate = start_ + 1;
                 candidate < edges_.size() && !exhausted_; ++candidate) {
                if (!in_path_[candidate] &&
                    edges_[candidate].from == edge.to) {
                    extend(candidate, next, report);
                }
            }
        }
        path_.pop_back();
        in_path_[edge_index] = false;
    }

    void report_cycle(const PathConstraint& constraint, LintReport& report) {
        if (reported_ >= kMaxCycles) {
            exhausted_ = true;
            return;
        }
        ++reported_;
        std::string path = edges_[path_.front()].from;
        std::string via;
        for (std::size_t index : path_) {
            path += " -> " + edges_[index].to;
            if (via.find(edges_[index].label) == std::string::npos) {
                via += (via.empty() ? "" : ", ") + edges_[index].label;
            }
        }
        report.add("SCN002", "route " + via,
                   format("frames matching id 0x%x mask 0x%x circulate "
                          "forever: %s (gateways do not deduplicate)",
                          constraint.value, constraint.mask, path.c_str()));
    }

    static constexpr std::size_t kMaxSteps = 100'000;
    static constexpr std::size_t kMaxCycles = 8;

    std::vector<ForwardEdge> edges_;
    std::size_t start_ = 0;
    std::vector<bool> in_path_;
    std::vector<std::size_t> path_;
    std::size_t steps_ = 0;
    std::size_t reported_ = 0;
    bool exhausted_ = false;
};

std::string node_key(const std::string& vehicle, const std::string& bus) {
    return vehicle + ":" + bus;
}

void lint_vehicle_into(const VehicleShape& vehicle,
                       const std::set<std::string>& publishers,
                       LintReport& report) {
    const std::set<std::string> ecus{vehicle.ecus.begin(), vehicle.ecus.end()};
    const std::set<std::string> buses{vehicle.buses.begin(),
                                      vehicle.buses.end()};

    // SCN005: monitors and gateway routes must reference declared elements.
    for (const auto& monitor : vehicle.ecu_monitors) {
        if (!ecus.contains(monitor.ecu)) {
            report.add("SCN005",
                       format("vehicle %s / %s", vehicle.name.c_str(),
                              monitor.kind.c_str()),
                       "references undeclared ECU '" + monitor.ecu + "'");
        }
    }
    for (const auto& gateway : vehicle.gateways) {
        for (const auto& route : gateway.routes) {
            for (const std::string& bus : {route.from, route.to}) {
                if (!buses.contains(bus)) {
                    report.add("SCN005",
                               format("vehicle %s / gateway %s",
                                      vehicle.name.c_str(),
                                      gateway.name.c_str()),
                               "route references undeclared bus '" + bus +
                                   "'");
                }
            }
        }
        // SCN001: later routes fully subsumed by earlier ones.
        check_route_shadowing(vehicle.name, gateway, report);
    }

    // SCN006: a heartbeat can only trip or stay quiet for a source that
    // something actually feeds — a typo here means the monitor trips at
    // t=timeout forever.
    for (const std::string& watched : vehicle.heartbeat_watches) {
        if (!publishers.contains(watched)) {
            report.add("SCN006",
                       format("vehicle %s / heartbeat %s",
                              vehicle.name.c_str(), watched.c_str()),
                       "no sensor, raw task, component or vehicle publishes "
                       "'" + watched + "'");
        }
    }

    // LRN001: a learned monitor with nothing to track would assert at build
    // time (AnomalyModelMonitor REQUIREs at least one metric) — catch the
    // dead declaration statically.
    for (std::size_t i = 0; i < vehicle.learned_monitors.size(); ++i) {
        if (vehicle.learned_monitors[i].metric_count == 0) {
            report.add("LRN001",
                       format("vehicle %s / learned monitor %zu",
                              vehicle.name.c_str(), i),
                       "no tracked metrics after auto-resolution: declare "
                       "driving(), sensors or a skill graph before "
                       "learned_monitor(), or configure metrics explicitly");
        }
    }

    // SCN007: sensor-to-skill bindings must hit a node of the configured
    // graph (the ability layer silently ignores unknown nodes).
    const std::set<std::string> nodes{vehicle.skill_nodes.begin(),
                                      vehicle.skill_nodes.end()};
    for (const auto& [sensor, node] : vehicle.sensor_skill_bindings) {
        if (node.empty()) {
            continue;
        }
        if (!vehicle.has_skill_graph) {
            report.add("SCN007",
                       format("vehicle %s / sensor %s", vehicle.name.c_str(),
                              sensor.c_str()),
                       "bound to skill node '" + node +
                           "' but the vehicle has no skill graph");
        } else if (!nodes.contains(node)) {
            report.add("SCN007",
                       format("vehicle %s / sensor %s", vehicle.name.c_str(),
                              sensor.c_str()),
                       "bound to unknown skill node '" + node + "'");
        }
    }
}

std::set<std::string> local_publishers(const VehicleShape& vehicle) {
    std::set<std::string> publishers;
    publishers.insert(vehicle.name);
    publishers.insert(vehicle.sensors.begin(), vehicle.sensors.end());
    publishers.insert(vehicle.raw_tasks.begin(), vehicle.raw_tasks.end());
    publishers.insert(vehicle.components.begin(), vehicle.components.end());
    return publishers;
}

} // namespace

LintReport lint_vehicle(const VehicleShape& vehicle) {
    LintReport report;
    lint_vehicle_into(vehicle, local_publishers(vehicle), report);
    return report;
}

LintReport lint_scenario(const ScenarioShape& scenario) {
    LintReport report;

    // Cross-vehicle heartbeats (watching a peer's publications) are
    // legitimate, so the publisher set is scenario-wide.
    std::set<std::string> publishers;
    for (const VehicleShape& vehicle : scenario.vehicles) {
        const auto local = local_publishers(vehicle);
        publishers.insert(local.begin(), local.end());
    }
    for (const VehicleShape& vehicle : scenario.vehicles) {
        lint_vehicle_into(vehicle, publishers, report);
    }

    // SCN004 + domain assignment (mirrors ScenarioBuilder::build()'s
    // round-robin over unpinned vehicles, in declaration order).
    std::map<std::string, std::size_t> domain_of;
    std::size_t round_robin = 0;
    for (const VehicleShape& vehicle : scenario.vehicles) {
        if (vehicle.domain_pin.has_value()) {
            if (*vehicle.domain_pin >= scenario.num_domains) {
                report.add("SCN004", "vehicle " + vehicle.name,
                           format("pinned to domain %zu but the scenario "
                                  "declares %zu domain(s)",
                                  *vehicle.domain_pin, scenario.num_domains));
                continue;
            }
            domain_of[vehicle.name] = *vehicle.domain_pin;
        } else {
            domain_of[vehicle.name] = round_robin++ % scenario.num_domains;
        }
    }

    // SCN003: a cross-domain link's forward latency becomes the ingress
    // domain's lookahead window — zero means the sharded kernel cannot
    // advance at all (BusGateway rejects it loudly, but only at build time).
    if (scenario.v2v_enabled && scenario.num_domains > 1 &&
        scenario.v2v_latency_ns <= 0) {
        report.add("SCN003", "v2v channel",
                   "zero latency with multiple domains leaves no lookahead "
                   "window");
    }

    // Bridge checks + the scenario-wide forwarding graph.
    std::map<std::string, const VehicleShape*> by_name;
    for (const VehicleShape& vehicle : scenario.vehicles) {
        by_name.emplace(vehicle.name, &vehicle);
    }
    std::vector<ForwardEdge> edges;
    for (const VehicleShape& vehicle : scenario.vehicles) {
        for (const auto& gateway : vehicle.gateways) {
            for (const auto& route : gateway.routes) {
                edges.push_back(ForwardEdge{
                    node_key(vehicle.name, route.from),
                    node_key(vehicle.name, route.to), route.id, route.mask,
                    "gateway " + vehicle.name + "/" + gateway.name});
            }
        }
    }
    for (const GatewayShape& bridge : scenario.bridges) {
        bool crosses_domains = false;
        for (const auto& route : bridge.routes) {
            // Bridge route keys are "vehicle:bus"; validate both endpoints.
            for (const std::string& endpoint : {route.from, route.to}) {
                const auto colon = endpoint.find(':');
                const std::string vehicle = endpoint.substr(0, colon);
                const std::string bus =
                    colon == std::string::npos ? std::string{}
                                               : endpoint.substr(colon + 1);
                auto it = by_name.find(vehicle);
                if (it == by_name.end()) {
                    report.add("SCN005", "bridge " + bridge.name,
                               "route references unknown vehicle '" + vehicle +
                                   "'");
                    continue;
                }
                const auto& known = it->second->buses;
                if (std::find(known.begin(), known.end(), bus) ==
                    known.end()) {
                    report.add("SCN005", "bridge " + bridge.name,
                               "route references undeclared bus '" + bus +
                                   "' of vehicle '" + vehicle + "'");
                }
            }
            const auto from_vehicle =
                route.from.substr(0, route.from.find(':'));
            const auto to_vehicle = route.to.substr(0, route.to.find(':'));
            auto from_domain = domain_of.find(from_vehicle);
            auto to_domain = domain_of.find(to_vehicle);
            if (from_domain != domain_of.end() && to_domain != domain_of.end() &&
                from_domain->second != to_domain->second) {
                crosses_domains = true;
            }
            edges.push_back(ForwardEdge{route.from, route.to, route.id,
                                        route.mask, "bridge " + bridge.name});
        }
        check_route_shadowing("(scenario)", bridge, report);
        if (crosses_domains && bridge.forward_latency_ns <= 0) {
            report.add("SCN003", "bridge " + bridge.name,
                       "crosses ECU domains with zero forward latency — the "
                       "ingress domain would have a zero lookahead window");
        }
    }

    // SCN002: forwarding cycles with simultaneously satisfiable filters.
    CycleSearch{std::move(edges)}.run(report);

    // LRN002: a warm-up at least as long as the declared run leaves the
    // learned monitor training forever — it never scores, never alarms, and
    // the scenario silently loses its anomaly coverage.
    if (scenario.duration_hint_ns > 0) {
        for (const VehicleShape& vehicle : scenario.vehicles) {
            for (std::size_t i = 0; i < vehicle.learned_monitors.size(); ++i) {
                const auto& learned = vehicle.learned_monitors[i];
                if (learned.warmup_ns >= scenario.duration_hint_ns) {
                    report.add(
                        "LRN002",
                        format("vehicle %s / learned monitor %zu",
                               vehicle.name.c_str(), i),
                        format("warm-up %.3fs >= declared duration %.3fs: "
                               "the monitor never leaves training",
                               static_cast<double>(learned.warmup_ns) / 1e9,
                               static_cast<double>(scenario.duration_hint_ns) /
                                   1e9));
                }
            }
        }
    }

    // MSH001/MSH002: static reachability of the V2V mesh under the declared
    // radio range. Edges join endpoints within range of each other; only
    // mesh endpoints relay, so interior nodes of a path must be mesh-capable
    // (plain v2v() endpoints hear frames but never forward them).
    if (scenario.v2v_enabled && scenario.v2v_range_m > 0.0) {
        struct MeshNode {
            std::string name;
            double position_m;
            bool is_mesh;
            std::uint32_t beacon_ttl;
        };
        std::vector<MeshNode> nodes;
        for (const VehicleShape& vehicle : scenario.vehicles) {
            if (vehicle.v2v_endpoint.has_value()) {
                nodes.push_back(MeshNode{
                    vehicle.name, vehicle.v2v_endpoint->position_m,
                    vehicle.v2v_endpoint->is_mesh,
                    vehicle.v2v_endpoint->beacon_ttl});
            }
        }
        constexpr std::uint32_t kUnreachable = 0xFFFFFFFFU;
        const auto hop_distances = [&](std::size_t from) {
            std::vector<std::uint32_t> dist(nodes.size(), kUnreachable);
            dist[from] = 0;
            std::vector<std::size_t> frontier{from};
            while (!frontier.empty()) {
                std::vector<std::size_t> next;
                for (const std::size_t u : frontier) {
                    if (u != from && !nodes[u].is_mesh) {
                        continue; // plain endpoints terminate paths
                    }
                    for (std::size_t v = 0; v < nodes.size(); ++v) {
                        if (dist[v] != kUnreachable ||
                            std::abs(nodes[v].position_m -
                                     nodes[u].position_m) >
                                scenario.v2v_range_m) {
                            continue;
                        }
                        dist[v] = dist[u] + 1;
                        next.push_back(v);
                    }
                }
                frontier = std::move(next);
            }
            return dist;
        };
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            const auto dist = hop_distances(i);
            std::uint32_t eccentricity = 0;
            for (std::size_t j = 0; j < nodes.size(); ++j) {
                if (j == i) {
                    continue;
                }
                if (dist[j] == kUnreachable) {
                    // Reachability is symmetric (same edges, same relay
                    // set), so one finding per unordered pair suffices.
                    if (i < j) {
                        report.add(
                            "MSH001",
                            format("v2v mesh / %s -> %s",
                                   nodes[i].name.c_str(),
                                   nodes[j].name.c_str()),
                            format("no relay path within radio range %.1fm "
                                   "(positions %.1fm and %.1fm): the "
                                   "endpoints can never exchange frames",
                                   scenario.v2v_range_m, nodes[i].position_m,
                                   nodes[j].position_m));
                    }
                } else if (dist[j] > eccentricity) {
                    eccentricity = dist[j];
                }
            }
            if (nodes[i].is_mesh && nodes[i].beacon_ttl < eccentricity) {
                report.add(
                    "MSH002", "v2v mesh / " + nodes[i].name,
                    format("beacon TTL %u is smaller than the endpoint's hop "
                           "eccentricity %u: its announcements never reach "
                           "the farthest members, which cannot learn a route "
                           "back to it",
                           nodes[i].beacon_ttl, eccentricity));
            }
        }
    }

    return report;
}

} // namespace sa::lint
