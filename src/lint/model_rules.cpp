#include "lint/model_rules.hpp"

#include <map>
#include <set>
#include <string>
#include <utility>

#include "util/string_util.hpp"

namespace sa::lint {
namespace {

using model::Contract;

std::string component_subject(const std::string& component,
                              const std::string& what) {
    return "component " + component + " / " + what;
}

} // namespace

LintReport lint_contracts(const std::vector<Contract>& contracts) {
    LintReport report;

    // Index services and messages in one pass.
    std::map<std::string, std::vector<std::string>> providers; // service -> comps
    std::set<std::string> required;
    std::set<std::string> components;
    std::map<std::string, std::string> message_owner; // message -> component
    for (const Contract& contract : contracts) {
        components.insert(contract.component);
        for (const auto& provided : contract.provides) {
            providers[provided.name].push_back(contract.component);
        }
        for (const auto& req : contract.requires_) {
            required.insert(req.name);
        }
    }

    for (const Contract& contract : contracts) {
        // MDL001: requires with no provider anywhere.
        for (const auto& req : contract.requires_) {
            if (!providers.contains(req.name)) {
                report.add("MDL001",
                           component_subject(contract.component,
                                             "requires " + req.name),
                           "no component provides service '" + req.name + "'");
            }
        }
        // MDL007: redundancy partner must exist.
        if (contract.redundant_with.has_value() &&
            !components.contains(*contract.redundant_with)) {
            report.add("MDL007", component_subject(contract.component,
                                                   "redundant_with"),
                       "names unknown component '" + *contract.redundant_with +
                           "'");
        }
        // MDL004 (names): message names are global mapping keys — a second
        // declaration would silently alias the first in Mapping's maps.
        for (const auto& message : contract.messages) {
            auto [it, inserted] =
                message_owner.emplace(message.name, contract.component);
            if (!inserted) {
                report.add("MDL004",
                           component_subject(contract.component,
                                             "message " + message.name),
                           "duplicate message name (also declared by '" +
                               it->second + "'); mapping keys would alias");
            }
        }
    }

    // MDL002 / MDL008: unused and ambiguous services.
    for (const auto& [service, provided_by] : providers) {
        if (!required.contains(service)) {
            report.add("MDL002", "service " + service,
                       "provided by '" + provided_by.front() +
                           "' but never required");
        }
        if (provided_by.size() > 1) {
            std::string list = provided_by.front();
            for (std::size_t i = 1; i < provided_by.size(); ++i) {
                list += ", " + provided_by[i];
            }
            report.add("MDL008", "service " + service,
                       "multiple providers (" + list +
                           "); provider_of() resolves to none");
        }
    }

    // MDL004 (ids): explicit CAN ids colliding on the same declared bus. The
    // mapper keeps explicit ids verbatim, so this collision survives into
    // the technical architecture.
    std::map<std::pair<std::string, std::uint32_t>, std::string> explicit_ids;
    for (const Contract& contract : contracts) {
        for (const auto& message : contract.messages) {
            if (message.can_id == 0) {
                continue;
            }
            auto [it, inserted] = explicit_ids.emplace(
                std::make_pair(message.bus, message.can_id), message.name);
            if (!inserted && it->second != message.name) {
                report.add(
                    "MDL004",
                    component_subject(contract.component,
                                      "message " + message.name),
                    format("explicit CAN id 0x%x collides with message '%s'%s",
                           message.can_id, it->second.c_str(),
                           message.bus.empty() ? "" :
                               (" on bus '" + message.bus + "'").c_str()));
            }
        }
    }

    return report;
}

LintReport lint_system(const model::FunctionModel& functions,
                       const model::PlatformModel& platform,
                       const model::Mapping* mapping) {
    LintReport report = lint_contracts(functions.contracts());

    // MDL005: contract references to platform elements.
    for (const Contract& contract : functions.contracts()) {
        if (contract.pinned_ecu.has_value() &&
            platform.find_ecu(*contract.pinned_ecu) == nullptr) {
            report.add("MDL005", component_subject(contract.component, "pin"),
                       "pinned to unknown ECU '" + *contract.pinned_ecu + "'");
        }
        for (const auto& message : contract.messages) {
            if (!message.bus.empty() &&
                platform.find_bus(message.bus) == nullptr) {
                report.add("MDL005",
                           component_subject(contract.component,
                                             "message " + message.name),
                           "declares unknown bus '" + message.bus + "'");
            }
        }
    }

    if (mapping == nullptr) {
        return report;
    }

    // MDL005: mapping targets must exist on the platform.
    for (const auto& [component, ecu] : mapping->component_to_ecu) {
        if (platform.find_ecu(ecu) == nullptr) {
            report.add("MDL005", component_subject(component, "mapping"),
                       "mapped to unknown ECU '" + ecu + "'");
        }
    }
    for (const auto& [message, bus] : mapping->message_to_bus) {
        if (platform.find_bus(bus) == nullptr) {
            report.add("MDL005", "message " + message,
                       "mapped to unknown bus '" + bus + "'");
        }
    }

    // MDL003: CpuWcrtAnalysis requires unique priorities per ECU.
    std::map<std::pair<std::string, int>, std::string> priorities;
    for (const auto& [qualified, priority] : mapping->task_priority) {
        const auto dot = qualified.find('.');
        const std::string component = qualified.substr(0, dot);
        const std::string ecu = mapping->ecu_of(component);
        if (ecu.empty()) {
            continue; // unplaced component: nothing to collide with
        }
        auto [it, inserted] =
            priorities.emplace(std::make_pair(ecu, priority), qualified);
        if (!inserted) {
            report.add("MDL003", "task " + qualified,
                       format("priority %d on ECU '%s' already used by '%s'",
                              priority, ecu.c_str(), it->second.c_str()));
        }
    }

    // MDL004: CanWcrtAnalysis requires unique CAN ids per bus.
    std::map<std::pair<std::string, std::uint32_t>, std::string> bus_ids;
    for (const auto& [message, id] : mapping->message_id) {
        auto bus_it = mapping->message_to_bus.find(message);
        const std::string bus =
            bus_it == mapping->message_to_bus.end() ? std::string{} : bus_it->second;
        auto [it, inserted] =
            bus_ids.emplace(std::make_pair(bus, id), message);
        if (!inserted) {
            report.add("MDL004", "message " + message,
                       format("assigned CAN id 0x%x on bus '%s' already used "
                              "by message '%s'",
                              id, bus.c_str(), it->second.c_str()));
        }
    }

    return report;
}

LintReport lint_chain(const std::string& chain_name,
                      const std::vector<analysis::ChainStage>& stages,
                      const model::FunctionModel& functions,
                      const model::PlatformModel& platform,
                      const model::Mapping& mapping) {
    LintReport report;
    const std::string subject = "chain " + chain_name;

    // Message names across all contracts (stage entities for CanMessage).
    std::set<std::string> messages;
    for (const Contract& contract : functions.contracts()) {
        for (const auto& message : contract.messages) {
            messages.insert(message.name);
        }
    }

    std::size_t index = 0;
    for (const auto& stage : stages) {
        const std::string where = format("%s / stage %zu", subject.c_str(), index);
        ++index;
        if (stage.kind == analysis::ChainStage::Kind::CpuTask) {
            if (platform.find_ecu(stage.resource) == nullptr) {
                report.add("MDL006", where,
                           "names unknown ECU '" + stage.resource + "'");
            }
            const auto dot = stage.entity.find('.');
            const std::string component = stage.entity.substr(0, dot);
            const std::string task =
                dot == std::string::npos ? std::string{}
                                         : stage.entity.substr(dot + 1);
            const Contract* contract = functions.find(component);
            if (contract == nullptr || contract->find_task(task) == nullptr) {
                report.add("MDL006", where,
                           "names unknown task '" + stage.entity + "'");
            } else {
                const std::string placed = mapping.ecu_of(component);
                if (!placed.empty() && placed != stage.resource) {
                    report.add("MDL006", where,
                               "task '" + stage.entity + "' is mapped to '" +
                                   placed + "', not '" + stage.resource + "'");
                }
            }
        } else {
            if (platform.find_bus(stage.resource) == nullptr) {
                report.add("MDL006", where,
                           "names unknown bus '" + stage.resource + "'");
            }
            if (!messages.contains(stage.entity)) {
                report.add("MDL006", where,
                           "names unknown message '" + stage.entity + "'");
            }
        }
    }
    return report;
}

} // namespace sa::lint
