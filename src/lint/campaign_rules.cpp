#include "lint/campaign_rules.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "campaign/runner.hpp"
#include "lint/skills_rules.hpp"
#include "scenario/scenario_builder.hpp"
#include "skills/skill_graph_spec.hpp"
#include "util/string_util.hpp"

namespace sa::lint {
namespace {

/// CMP004: the referenced spec file must exist, parse and pass skills lint.
void check_spec_file(const campaign::CampaignSpec& spec, LintReport& report) {
    const std::string& path = spec.spec_file();
    if (path.empty()) {
        return;
    }
    const std::string subject = "campaign " + spec.name() + " / spec " + path;
    std::ifstream in(path);
    if (!in) {
        report.add("CMP004", subject, "spec file cannot be read");
        return;
    }
    std::ostringstream text;
    text << in.rdbuf();
    skills::SkillGraphSpec parsed;
    try {
        parsed = skills::SkillGraphSpec::parse(text.str());
    } catch (const std::exception& error) {
        report.add("CMP004", subject,
                   std::string("spec file does not parse: ") + error.what());
        return;
    }
    const LintReport spec_report =
        lint_spec(parsed, &skills::CapabilityRegistry::builtin());
    if (spec_report.error_count() > 0) {
        report.add("CMP004", subject,
                   format("spec file fails skills lint with %zu error(s)",
                          spec_report.error_count()));
    }
    report.merge(spec_report);
}

/// CMP005: declare ONE representative cell and lint its full topology.
void check_representative_cell(const campaign::CampaignSpec& spec,
                               LintReport& report) {
    const std::vector<campaign::CellConfig> cells = spec.expand();
    if (cells.empty()) {
        return;
    }
    const campaign::CellConfig& cell = cells.front();
    scenario::ScenarioBuilder builder(cell.seed);
    try {
        campaign::declare_cell_scenario(builder, cell);
    } catch (const std::exception&) {
        // Unreadable/unparseable spec files are CMP004's finding; a broken
        // declaration has nothing left to lint.
        return;
    }
    const LintReport cell_report = builder.lint();
    if (cell_report.error_count() > 0) {
        report.add("CMP005", "campaign " + spec.name() + " / cell " + cell.id(),
                   format("representative cell fails scenario lint with "
                          "%zu error(s)",
                          cell_report.error_count()));
    }
    report.merge(cell_report);
}

} // namespace

LintReport lint_campaign(const campaign::CampaignSpec& spec) {
    LintReport report;
    const std::string subject = "campaign " + spec.name();

    if (spec.scenario_template() != "platoon") {
        report.add("CMP001", subject,
                   "unknown scenario template '" + spec.scenario_template() +
                       "' (known: platoon)");
    }
    if (spec.cell_count() == 0) {
        report.add("CMP002", subject,
                   format("matrix expands to zero cells (seeds %llu..%llu)",
                          static_cast<unsigned long long>(spec.seed_range().lo),
                          static_cast<unsigned long long>(spec.seed_range().hi)));
    } else if (spec.cell_count() > 100000) {
        report.add("CMP003", subject,
                   format("matrix expands to %llu cells; consider a budget "
                          "or a narrower axis",
                          static_cast<unsigned long long>(spec.cell_count())));
    }
    const bool has_probe =
        std::any_of(spec.faults().begin(), spec.faults().end(),
                    campaign::fault_is_harness_probe);
    if (has_probe) {
        report.add("CMP006", subject,
                   "matrix contains harness-probe faults (misuse/crash); "
                   "these exercise the driver, not the modelled system");
    }
    check_spec_file(spec, report);
    if (spec.scenario_template() == "platoon" && spec.cell_count() > 0) {
        check_representative_cell(spec, report);
    }
    return report;
}

} // namespace sa::lint
