#include "lint/skills_rules.hpp"

#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/string_util.hpp"

namespace sa::lint {
namespace {

using skills::Aggregation;
using skills::SkillGraphSpec;
using skills::SkillNodeKind;

std::string spec_subject(const SkillGraphSpec& spec, const std::string& what) {
    return "spec " + spec.name() + " / " + what;
}

/// Depth-first cycle search over the spec's edges; reports one finding per
/// back edge, rendering the cycle path.
class CycleFinder {
public:
    CycleFinder(const SkillGraphSpec& spec,
                const std::map<std::string, std::vector<std::string>>& children)
        : spec_(spec), children_(children) {}

    void run(LintReport& report) {
        for (const auto& node : spec_.nodes()) {
            visit(node.name, report);
        }
    }

private:
    void visit(const std::string& node, LintReport& report) {
        if (done_.contains(node)) {
            return;
        }
        if (on_stack_.contains(node)) {
            report_cycle(node, report);
            return;
        }
        on_stack_.insert(node);
        stack_.push_back(node);
        auto it = children_.find(node);
        if (it != children_.end()) {
            for (const std::string& child : it->second) {
                visit(child, report);
            }
        }
        stack_.pop_back();
        on_stack_.erase(node);
        done_.insert(node);
    }

    void report_cycle(const std::string& node, LintReport& report) {
        std::string path = node;
        bool in_cycle = false;
        for (const std::string& step : stack_) {
            if (step == node) {
                in_cycle = true;
                continue;
            }
            if (in_cycle) {
                path += " -> " + step;
            }
        }
        path += " -> " + node;
        report.add("SKL001", spec_subject(spec_, "skill " + node),
                   "dependency cycle: " + path);
    }

    const SkillGraphSpec& spec_;
    const std::map<std::string, std::vector<std::string>>& children_;
    std::set<std::string> on_stack_;
    std::set<std::string> done_;
    std::vector<std::string> stack_;
};

} // namespace

LintReport lint_spec(const SkillGraphSpec& spec,
                     const skills::CapabilityRegistry* catalogue) {
    LintReport report;

    std::map<std::string, SkillNodeKind> kinds;
    for (const auto& node : spec.nodes()) {
        kinds.emplace(node.name, node.kind);
    }
    auto declared = [&](const std::string& name) { return kinds.contains(name); };
    auto is_skill = [&](const std::string& name) {
        auto it = kinds.find(name);
        return it != kinds.end() && it->second == SkillNodeKind::Skill;
    };

    // SKL004: dangling declarations. Only well-formed edges feed the cycle
    // and reachability passes below.
    std::map<std::string, std::vector<std::string>> children;
    std::set<std::string> has_parent;
    std::set<std::pair<std::string, std::string>> edge_set;
    for (const auto& edge : spec.edges()) {
        bool ok = true;
        if (!declared(edge.parent)) {
            report.add("SKL004", spec_subject(spec, "edge " + edge.parent),
                       "dependency parent '" + edge.parent + "' is not declared");
            ok = false;
        } else if (!is_skill(edge.parent)) {
            report.add("SKL004", spec_subject(spec, "edge " + edge.parent),
                       "dependency parent '" + edge.parent +
                           "' is not a skill (sources/sinks have no dependencies)");
            ok = false;
        }
        if (!declared(edge.child)) {
            report.add("SKL004", spec_subject(spec, "edge " + edge.child),
                       "dependency child '" + edge.child + "' is not declared");
            ok = false;
        }
        if (ok) {
            children[edge.parent].push_back(edge.child);
            has_parent.insert(edge.child);
            edge_set.emplace(edge.parent, edge.child);
        }
    }
    for (const auto& aggregate : spec.aggregations()) {
        if (!declared(aggregate.skill)) {
            report.add("SKL004", spec_subject(spec, "aggregate " + aggregate.skill),
                       "aggregation names undeclared node '" + aggregate.skill + "'");
        } else if (!is_skill(aggregate.skill)) {
            report.add("SKL004", spec_subject(spec, "aggregate " + aggregate.skill),
                       "aggregation on '" + aggregate.skill +
                           "', which is not a skill");
        }
    }
    for (const auto& weight : spec.weights()) {
        if (!declared(weight.skill) || !declared(weight.child)) {
            report.add("SKL004",
                       spec_subject(spec, "weight " + weight.skill + " -> " +
                                              weight.child),
                       "weight names an undeclared node");
        } else if (!edge_set.contains({weight.skill, weight.child})) {
            report.add("SKL004",
                       spec_subject(spec, "weight " + weight.skill + " -> " +
                                              weight.child),
                       "weight on a pair with no declared dependency edge");
        }
    }
    if (!spec.root_skill().empty() && !is_skill(spec.root_skill())) {
        report.add("SKL004", spec_subject(spec, "root " + spec.root_skill()),
                   "root must name a declared skill");
    }

    // SKL001: dependency cycles.
    CycleFinder{spec, children}.run(report);

    // SKL002: reachability from the root skill — or, with no root declared,
    // from every skill that is itself no other skill's dependency.
    std::vector<std::string> roots;
    if (!spec.root_skill().empty() && is_skill(spec.root_skill())) {
        roots.push_back(spec.root_skill());
    } else {
        for (const auto& node : spec.nodes()) {
            if (node.kind == SkillNodeKind::Skill &&
                !has_parent.contains(node.name)) {
                roots.push_back(node.name);
            }
        }
    }
    std::set<std::string> reachable{roots.begin(), roots.end()};
    std::vector<std::string> frontier = roots;
    while (!frontier.empty()) {
        std::string node = std::move(frontier.back());
        frontier.pop_back();
        auto it = children.find(node);
        if (it == children.end()) {
            continue;
        }
        for (const std::string& child : it->second) {
            if (reachable.insert(child).second) {
                frontier.push_back(child);
            }
        }
    }
    for (const auto& node : spec.nodes()) {
        if (!reachable.contains(node.name)) {
            report.add("SKL002", spec_subject(spec, "node " + node.name),
                       spec.root_skill().empty()
                           ? "unreachable from every root skill"
                           : "unreachable from root '" + spec.root_skill() + "'");
        }
    }

    // SKL003: weighted_mean aggregations must weight every child.
    for (const auto& aggregate : spec.aggregations()) {
        if (aggregate.aggregation != Aggregation::WeightedMean) {
            continue;
        }
        auto it = children.find(aggregate.skill);
        const std::vector<std::string> kids =
            it == children.end() ? std::vector<std::string>{} : it->second;
        std::set<std::string> weighted;
        for (const auto& weight : spec.weights()) {
            if (weight.skill == aggregate.skill) {
                weighted.insert(weight.child);
            }
        }
        for (const std::string& child : kids) {
            if (!weighted.contains(child)) {
                report.add("SKL003",
                           spec_subject(spec, "aggregate " + aggregate.skill),
                           "weighted_mean lacks a weight for child '" + child +
                               "'");
            }
        }
        if (kids.empty()) {
            report.add("SKL003", spec_subject(spec, "aggregate " + aggregate.skill),
                       "weighted_mean on a skill with no dependencies");
        }
    }

    // SKL005: every node must be a catalogue capability of the same kind.
    if (catalogue != nullptr) {
        for (const auto& node : spec.nodes()) {
            if (!catalogue->has_capability(node.name)) {
                report.add("SKL005", spec_subject(spec, "node " + node.name),
                           "capability is not in the catalogue");
            } else if (catalogue->capability(node.name).node_kind != node.kind) {
                report.add("SKL005", spec_subject(spec, "node " + node.name),
                           "capability kind differs from the catalogue entry");
            }
        }
    }

    return report;
}

LintReport lint_binding(const skills::AlarmBinding& binding,
                        const skills::CapabilityRegistry& catalogue) {
    LintReport report;
    const std::string subject = "alarm binding " + binding.anomaly_kind;
    if (binding.degraded_value < 0.0 || binding.degraded_value > 1.0) {
        report.add("SKL006", subject,
                   format("degraded value %.3f outside [0,1]",
                          binding.degraded_value));
    }
    if (binding.capability.empty()) {
        return report; // resolved from the anomaly source at match time
    }
    if (!catalogue.has_capability(binding.capability)) {
        report.add("SKL006", subject,
                   "names unknown capability '" + binding.capability + "'");
    } else if (!catalogue.capability(binding.capability)
                    .has_quality(binding.quality)) {
        report.add("SKL006", subject,
                   "capability '" + binding.capability + "' has no " +
                       std::string(to_string(binding.quality)) + " quality");
    }
    return report;
}

LintReport lint_registry(const skills::CapabilityRegistry& registry) {
    LintReport report;
    std::set<std::string> used;
    for (const std::string& name : registry.spec_names()) {
        const auto& spec = registry.spec(name);
        report.merge(lint_spec(spec, &registry));
        for (const auto& node : spec.nodes()) {
            used.insert(node.name);
        }
    }
    for (const auto& binding : registry.alarm_bindings()) {
        report.merge(lint_binding(binding, registry));
        if (!binding.capability.empty()) {
            used.insert(binding.capability);
        }
    }
    // SKL007: dead capabilities. Bindings with an empty capability resolve
    // dynamically and do not keep a capability alive.
    for (const std::string& name : registry.capability_names()) {
        if (!used.contains(name)) {
            report.add("SKL007", "capability " + name,
                       "no spec node or alarm binding references it");
        }
    }
    return report;
}

} // namespace sa::lint
