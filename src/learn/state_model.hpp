#pragma once
// Cross-metric state model, the discrete-DBN half of the learned detector
// (after Kanapram et al.): each metric's drift z-score is quantized into a
// band, the joint band vector is clustered online (deterministic leader
// clustering, seed-reproducible tie-breaks), and every observation is scored
// against the learned state/transition statistics — a rare state or a rare
// transition yields a high surprise in bits. Counts use Laplace smoothing so
// a never-seen state scores high but finite.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sa::learn {

struct StateModelConfig {
    /// Drift z-score units per quantization band.
    double band_width = 1.0;
    /// Bands clamp to [-band_limit, +band_limit].
    int band_limit = 4;
    /// Online clusters cap; at capacity the nearest leader absorbs.
    std::size_t max_states = 64;
    /// L1 distance (band units) within which an observation joins a leader.
    double cluster_radius = 1.0;
    /// Laplace smoothing pseudo-count for state and transition probabilities.
    double laplace = 1.0;
    /// Tie-break key for equidistant leaders; same seed => same clustering.
    std::uint64_t seed = 1;
};

class StateModel {
public:
    explicit StateModel(StateModelConfig config = {});

    struct Observation {
        std::size_t state = 0;   ///< cluster the band vector joined
        double score = 0.0;      ///< surprise in bits (max of state/transition)
        bool new_state = false;  ///< a fresh leader was created
    };

    /// Quantize-free entry point: `bands` is the joint band vector (one
    /// entry per metric, stable order). Scores against the statistics
    /// *before* this observation, then folds it in.
    Observation observe(const std::vector<int>& bands);

    /// Quantize a drift z-score into a band under this config.
    [[nodiscard]] int band(double drift_z) const noexcept;

    [[nodiscard]] std::size_t state_count() const noexcept { return states_.size(); }
    [[nodiscard]] std::uint64_t observations() const noexcept { return total_; }
    /// Leader (band-vector center) of a state.
    [[nodiscard]] const std::vector<int>& state_center(std::size_t state) const;
    [[nodiscard]] std::uint64_t state_visits(std::size_t state) const;

private:
    struct State {
        std::vector<int> center;
        std::uint64_t visits = 0;
        std::uint64_t tie_key = 0;            ///< seed-mixed, for tie-breaks
        std::vector<std::uint64_t> outgoing;  ///< transition counts by target
        std::uint64_t outgoing_total = 0;
    };

    [[nodiscard]] std::size_t find_or_create(const std::vector<int>& bands,
                                             bool& created);

    StateModelConfig config_;
    std::vector<State> states_;
    std::uint64_t total_ = 0;
    bool has_prev_ = false;
    std::size_t prev_ = 0;
};

} // namespace sa::learn
