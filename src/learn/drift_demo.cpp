#include "learn/drift_demo.hpp"

#include "monitor/anomaly_kinds.hpp"
#include "skills/acc_graph_factory.hpp"
#include "util/assert.hpp"

namespace sa::learn {

LearnedMonitorConfig drift_demo_model(const DriftDemoConfig& config) {
    LearnedMonitorConfig learned;
    learned.warmup = config.warmup;
    learned.score_threshold = config.score_threshold;
    learned.seed = config.seed;
    learned.state.band_width = config.band_width;
    // Freeze the per-metric baselines at 20s (400 samples at the 50ms
    // pump), well past the ACC loop's settling transient: the frozen mean
    // then sits on the noise-shifted equilibrium and the transient inflates
    // sigma a little, so the clean operating point reads z ~ 0 instead of
    // hovering against a band boundary.
    learned.metric.warmup_samples = 400;
    return learned;
}

void declare_drift_demo(scenario::ScenarioBuilder& builder,
                        const DriftDemoConfig& config) {
    SA_REQUIRE(config.drift_start.count_ns() >= config.warmup.count_ns(),
               "drift must start after the learned monitor's warm-up");
    SA_REQUIRE(config.drift_steps > 0, "drift needs at least one step");

    builder.domains(config.domains);
    builder.duration_hint(config.duration);

    scenario::VehicleBuilder& ego = builder.vehicle("ego");

    // Steady-state following from t=0: ego starts at the ACC's target gap
    // for the common speed, so the learned baseline is trained on the
    // regulated regime rather than an approach transient.
    vehicle::ScenarioConfig driving;
    driving.ego_speed_mps = 22.0;
    driving.lead_speed_mps = 22.0;
    driving.initial_gap_m = driving.acc.min_gap_m +
                            driving.acc.time_gap_s * driving.ego_speed_mps;
    ego.driving(driving);

    vehicle::SensorConfig radar;
    radar.type = vehicle::SensorType::Radar;
    radar.name = "radar";
    radar.noise_sigma_m = 0.3;
    radar.dropout_prob = 0.0; // see the camera note below
    monitor::SensorQualityConfig radar_quality;
    radar_quality.nominal_noise_sigma = radar.noise_sigma_m;
    ego.sensor(radar, radar_quality);

    vehicle::SensorConfig camera;
    camera.type = vehicle::SensorType::Camera;
    camera.name = "camera";
    camera.max_range_m = 120.0;
    camera.noise_sigma_m = 0.4;
    // No dropout: the demo's premise is that every threshold monitor stays
    // quiet. Even a 1% dropout occasionally blanks one of the two samples in
    // the quality monitor's 100ms availability window and trips
    // sensor_degraded — a distraction the payoff claim must exclude.
    camera.dropout_prob = 0.0;
    monitor::SensorQualityConfig camera_quality;
    camera_quality.nominal_noise_sigma = camera.noise_sigma_m;
    ego.sensor(camera, camera_quality);

    ego.acc_skills();

    // The only route from "the joint state looks wrong" to the ability
    // graph: cap the radar capability's accuracy when the learned monitor
    // alarms. Everything downstream (propagation into acc_driving, tactic
    // planning, self-model) is the standard degradation flow.
    skills::DegradationPolicy policy;
    skills::AlarmBinding rule;
    rule.anomaly_kind = monitor::kinds::kLearnedAbnormality;
    rule.capability = skills::acc::kRadar;
    rule.quality = skills::QualityKind::Accuracy;
    rule.degraded_value = config.degraded_radar_level;
    policy.on_anomaly(rule);
    ego.degradation_policy(std::move(policy));

    ego.learned_monitor(drift_demo_model(config));

    // Stepwise calibration drift on the radar (sensor index 0): each step
    // adds drift_step_m of bias. No threshold is ever crossed — the quality
    // monitor sees unchanged availability/validity/noise — but the joint
    // metric state slides into unvisited territory.
    for (int step = 0; step < config.drift_steps; ++step) {
        const sim::Duration when =
            config.drift_start + config.drift_step_period * step;
        const double bias = config.drift_step_m * (step + 1);
        builder.at(when, [bias](scenario::Scenario& scenario) {
            scenario.vehicle("ego").driving().set_sensor_bias(0, bias);
        });
    }
}

scenario::ScenarioBuilder make_drift_demo(const DriftDemoConfig& config) {
    scenario::ScenarioBuilder builder(config.seed);
    declare_drift_demo(builder, config);
    return builder;
}

} // namespace sa::learn
