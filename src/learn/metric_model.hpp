#pragma once
// Per-metric normality model: Welford running statistics over a configurable
// warm-up window establish the frozen baseline (mean, sigma); afterwards an
// EWMA tracks the current operating level. The drift z-score — how many
// baseline sigmas the EWMA has wandered from the warm-up mean — is the
// per-metric abnormality feature fed into the cross-metric StateModel
// (state_model.hpp). Incremental, O(1) per sample, allocation-free: this is
// monitor-tick hot path (bench/learn_cost.cpp holds it against the 0.57 ms
// monitor-overhead budget).

#include <algorithm>
#include <cstddef>

#include "util/stats.hpp"

namespace sa::learn {

struct MetricModelConfig {
    /// Samples accumulated before the baseline freezes. Until then the
    /// drift z-score reads 0 (no baseline to deviate from).
    std::size_t warmup_samples = 64;
    /// EWMA smoothing factor: higher follows the stream faster but is
    /// noisier against the frozen baseline.
    double ewma_alpha = 0.05;
    /// Floor on the frozen sigma — a metric that was perfectly constant
    /// during warm-up must not turn every later wiggle into infinity.
    double min_sigma = 0.01;
};

class MetricModel {
public:
    explicit MetricModel(MetricModelConfig config = {}) : config_(config) {}

    void update(double x) noexcept {
        ewma_ = (count_ == 0) ? x : config_.ewma_alpha * x +
                                        (1.0 - config_.ewma_alpha) * ewma_;
        last_ = x;
        ++count_;
        if (!frozen_) {
            welford_.add(x);
            if (welford_.count() >= config_.warmup_samples) {
                mean_ = welford_.mean();
                sigma_ = std::max(welford_.stddev(), config_.min_sigma);
                frozen_ = true;
            }
        }
    }

    /// True once the warm-up baseline is frozen.
    [[nodiscard]] bool warmed_up() const noexcept { return frozen_; }
    [[nodiscard]] std::size_t count() const noexcept { return count_; }
    [[nodiscard]] double mean() const noexcept { return mean_; }
    [[nodiscard]] double sigma() const noexcept { return sigma_; }
    [[nodiscard]] double ewma() const noexcept { return ewma_; }
    [[nodiscard]] double last() const noexcept { return last_; }

    /// Slow-drift feature: baseline sigmas between the EWMA level and the
    /// frozen mean. 0 until warmed up.
    [[nodiscard]] double drift_z() const noexcept {
        return frozen_ ? (ewma_ - mean_) / sigma_ : 0.0;
    }
    /// Instantaneous feature: baseline sigmas of the latest raw sample.
    [[nodiscard]] double instant_z() const noexcept {
        return frozen_ ? (last_ - mean_) / sigma_ : 0.0;
    }

private:
    MetricModelConfig config_;
    RunningStats welford_;
    double ewma_ = 0.0;
    double last_ = 0.0;
    double mean_ = 0.0;
    double sigma_ = 1.0;
    std::size_t count_ = 0;
    bool frozen_ = false;
};

} // namespace sa::learn
