#include "learn/trace.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/string_util.hpp"

namespace sa::learn {

namespace {

constexpr std::string_view kHeader = "# sa-trace v1";
constexpr std::string_view kMetaPrefix = "# meta ";

} // namespace

void Trace::set_meta(const std::string& key, std::string value) {
    for (auto& [k, v] : meta) {
        if (k == key) {
            v = std::move(value);
            return;
        }
    }
    meta.emplace_back(key, std::move(value));
}

const std::string* Trace::find_meta(std::string_view key) const {
    for (const auto& [k, v] : meta) {
        if (k == key) {
            return &v;
        }
    }
    return nullptr;
}

std::int64_t Trace::meta_int(std::string_view key, std::int64_t fallback) const {
    const std::string* value = find_meta(key);
    if (value == nullptr) {
        return fallback;
    }
    char* end = nullptr;
    const long long parsed = std::strtoll(value->c_str(), &end, 10);
    return (end == value->c_str() || *end != '\0') ? fallback : parsed;
}

std::string Trace::str() const {
    std::string out;
    out.reserve(32 + meta.size() * 24 + samples.size() * 48);
    out.append(kHeader);
    out.push_back('\n');
    for (const auto& [key, value] : meta) {
        out.append(kMetaPrefix);
        out.append(key);
        out.push_back('=');
        out.append(value);
        out.push_back('\n');
    }
    for (const auto& sample : samples) {
        // %a prints the exact binary double (hexfloat) — values round-trip
        // bit-for-bit through parse() with no decimal rounding in between.
        out.append(format("%lld %s %a\n",
                          static_cast<long long>(sample.at_ns),
                          sample.name.c_str(), sample.value));
    }
    return out;
}

Trace Trace::parse(const std::string& text) {
    Trace trace;
    std::istringstream in(text);
    std::string line;
    bool saw_header = false;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty()) {
            continue;
        }
        if (!saw_header) {
            if (line != kHeader) {
                throw TraceError(format("line %d: expected '%s'", line_no,
                                        std::string(kHeader).c_str()));
            }
            saw_header = true;
            continue;
        }
        if (line.starts_with(kMetaPrefix)) {
            const std::string entry = line.substr(kMetaPrefix.size());
            const std::size_t eq = entry.find('=');
            if (eq == std::string::npos) {
                throw TraceError(format("line %d: malformed meta entry", line_no));
            }
            trace.meta.emplace_back(entry.substr(0, eq), entry.substr(eq + 1));
            continue;
        }
        if (line.front() == '#') {
            continue; // stray comment — tolerated, not produced by str()
        }
        TraceSample sample;
        const char* cursor = line.c_str();
        char* end = nullptr;
        sample.at_ns = std::strtoll(cursor, &end, 10);
        if (end == cursor || *end != ' ') {
            throw TraceError(format("line %d: malformed timestamp", line_no));
        }
        cursor = end + 1;
        const char* name_end = cursor;
        while (*name_end != '\0' && *name_end != ' ') {
            ++name_end;
        }
        if (name_end == cursor || *name_end != ' ') {
            throw TraceError(format("line %d: malformed metric name", line_no));
        }
        sample.name.assign(cursor, name_end);
        cursor = name_end + 1;
        sample.value = std::strtod(cursor, &end); // strtod accepts %a hexfloats
        if (end == cursor || *end != '\0') {
            throw TraceError(format("line %d: malformed value", line_no));
        }
        trace.samples.push_back(std::move(sample));
    }
    if (!saw_header) {
        throw TraceError("empty input: missing sa-trace header");
    }
    return trace;
}

void Trace::save(const std::string& path) const {
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        throw TraceError("cannot write " + path);
    }
    out << str();
}

Trace Trace::load(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw TraceError("cannot read " + path);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parse(buffer.str());
}

TraceRecorder::TraceRecorder(monitor::MonitorManager& manager,
                             std::vector<std::string> filter)
    : manager_(manager), filter_(std::move(filter)) {
    tap_id_ = manager_.metric_ingested().subscribe(
        [this](const monitor::Metric& metric) {
            if (!filter_.empty() &&
                std::find(filter_.begin(), filter_.end(), metric.name) ==
                    filter_.end()) {
                return;
            }
            trace_.samples.push_back(
                TraceSample{metric.at.ns(), metric.name, metric.value});
        });
}

TraceRecorder::~TraceRecorder() { manager_.metric_ingested().unsubscribe(tap_id_); }

} // namespace sa::learn
