#pragma once
// Replayable metric traces. A Trace is the recorded ingest stream of one
// vehicle's MonitorManager; the text form is byte-stable (integer
// nanoseconds, hexfloat values — exact double round-trip), so the
// deterministic simulator makes traces reproducible artifacts: the same
// scenario at any domain count serializes to identical bytes, and
// `sa_learn replay` re-runs a recording and diffs the bytes.
//
// Format (one record per line, '\n' separators, no locale dependence):
//   # sa-trace v1
//   # meta <key>=<value>          (ordered; scenario parameters for replay)
//   <t_ns> <metric-name> <value-as-%a-hexfloat>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "monitor/manager.hpp"

namespace sa::learn {

class TraceError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

struct TraceSample {
    std::int64_t at_ns = 0;
    std::string name;
    double value = 0.0;

    bool operator==(const TraceSample&) const = default;
};

struct Trace {
    /// Ordered key=value metadata (replay parameters: seed, duration, ...).
    std::vector<std::pair<std::string, std::string>> meta;
    std::vector<TraceSample> samples;

    void set_meta(const std::string& key, std::string value);
    /// nullptr when the key is absent.
    [[nodiscard]] const std::string* find_meta(std::string_view key) const;
    /// Integer metadata value, or `fallback` when absent/malformed.
    [[nodiscard]] std::int64_t meta_int(std::string_view key,
                                        std::int64_t fallback) const;

    /// Byte-stable serialization (see the format comment above).
    [[nodiscard]] std::string str() const;
    /// Inverse of str(); throws TraceError on malformed input.
    static Trace parse(const std::string& text);

    void save(const std::string& path) const;
    static Trace load(const std::string& path);
};

/// Records a MonitorManager's ingest stream via the metric_ingested() tap.
/// With a non-empty filter only the named metrics are recorded. Unsubscribes
/// on destruction; the recorder must not outlive the manager.
class TraceRecorder {
public:
    explicit TraceRecorder(monitor::MonitorManager& manager,
                           std::vector<std::string> filter = {});
    ~TraceRecorder();

    TraceRecorder(const TraceRecorder&) = delete;
    TraceRecorder& operator=(const TraceRecorder&) = delete;

    [[nodiscard]] Trace& trace() noexcept { return trace_; }
    [[nodiscard]] const Trace& trace() const noexcept { return trace_; }
    [[nodiscard]] std::size_t sample_count() const noexcept {
        return trace_.samples.size();
    }

private:
    monitor::MonitorManager& manager_;
    std::vector<std::string> filter_;
    Trace trace_;
    std::uint64_t tap_id_ = 0;
};

} // namespace sa::learn
