#include "learn/state_model.hpp"

#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace sa::learn {

namespace {

/// splitmix64: cheap, well-mixed 64-bit hash for the clustering tie-break.
std::uint64_t mix64(std::uint64_t x) noexcept {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

double l1_distance(const std::vector<int>& a, const std::vector<int>& b) noexcept {
    double d = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        d += std::abs(a[i] - b[i]);
    }
    return d;
}

} // namespace

StateModel::StateModel(StateModelConfig config) : config_(config) {
    SA_REQUIRE(config_.band_width > 0.0, "band_width must be positive");
    SA_REQUIRE(config_.band_limit > 0, "band_limit must be positive");
    SA_REQUIRE(config_.max_states > 0, "max_states must be positive");
    SA_REQUIRE(config_.laplace > 0.0, "laplace pseudo-count must be positive");
}

int StateModel::band(double drift_z) const noexcept {
    const double raw = drift_z / config_.band_width;
    const int b = static_cast<int>(std::lround(raw));
    return std::max(-config_.band_limit, std::min(config_.band_limit, b));
}

std::size_t StateModel::find_or_create(const std::vector<int>& bands, bool& created) {
    created = false;
    // Best = (distance, tie_key) lexicographic minimum over all leaders; the
    // tie_key is a seed-mixed hash, so equidistant leaders resolve the same
    // way for the same seed and (possibly) differently for another.
    std::size_t best = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    std::uint64_t best_key = 0;
    for (std::size_t i = 0; i < states_.size(); ++i) {
        const double dist = l1_distance(states_[i].center, bands);
        if (dist < best_dist ||
            (dist == best_dist && states_[i].tie_key < best_key)) {
            best = i;
            best_dist = dist;
            best_key = states_[i].tie_key;
        }
    }
    if (best_dist <= config_.cluster_radius) {
        return best;
    }
    if (states_.size() < config_.max_states) {
        State fresh;
        fresh.center = bands;
        fresh.tie_key = mix64(config_.seed ^ mix64(states_.size() + 1));
        states_.push_back(std::move(fresh));
        created = true;
        return states_.size() - 1;
    }
    // At capacity: the nearest leader absorbs the observation.
    return best;
}

StateModel::Observation StateModel::observe(const std::vector<int>& bands) {
    SA_REQUIRE(!bands.empty(), "state model needs at least one band");
    if (!states_.empty()) {
        SA_REQUIRE(bands.size() == states_.front().center.size(),
                   "band vector width changed mid-stream");
    }
    Observation out;
    out.state = find_or_create(bands, out.new_state);

    // Score against the statistics before this observation. Both terms use
    // Laplace smoothing over the current state count, so a brand-new state
    // is maximally (but finitely) surprising.
    const double k = static_cast<double>(states_.size());
    State& s = states_[out.state];
    const double p_state = (static_cast<double>(s.visits) + config_.laplace) /
                           (static_cast<double>(total_) + config_.laplace * k);
    double surprise = -std::log2(p_state);
    if (has_prev_) {
        State& from = states_[prev_];
        if (from.outgoing.size() < states_.size()) {
            from.outgoing.resize(states_.size(), 0);
        }
        const double p_trans =
            (static_cast<double>(from.outgoing[out.state]) + config_.laplace) /
            (static_cast<double>(from.outgoing_total) + config_.laplace * k);
        surprise = std::max(surprise, -std::log2(p_trans));
        ++from.outgoing[out.state];
        ++from.outgoing_total;
    }
    out.score = surprise;

    ++s.visits;
    ++total_;
    has_prev_ = true;
    prev_ = out.state;
    return out;
}

const std::vector<int>& StateModel::state_center(std::size_t state) const {
    SA_REQUIRE(state < states_.size(), "state index out of range");
    return states_[state].center;
}

std::uint64_t StateModel::state_visits(std::size_t state) const {
    SA_REQUIRE(state < states_.size(), "state index out of range");
    return states_[state].visits;
}

} // namespace sa::learn
