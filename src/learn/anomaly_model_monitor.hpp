#pragma once
// AnomalyModelMonitor: the learned detector as a first-class monitor. It
// subscribes to the MonitorManager's metric_ingested() tap, keeps one
// MetricModel per tracked metric and one cross-metric StateModel, and —
// after a sim-time warm-up — raises standard monitor::Anomaly records (kind
// learned_abnormality, magnitude = score / threshold) whenever the joint
// state becomes surprising. Alarms flow through AlarmBinding /
// DegradationPolicy into the ability graph exactly like every hand-written
// monitor's; nothing downstream knows the threshold was learned.
//
// Evaluation is tap-driven (no own periodic): a scoring round closes when a
// tracked metric repeats, so the anomaly stream is a pure function of the
// ingest stream — identical across 1/2/4 domains by construction.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "learn/metric_model.hpp"
#include "learn/state_model.hpp"
#include "monitor/manager.hpp"
#include "monitor/monitor.hpp"

namespace sa::learn {

struct LearnedMonitorConfig {
    /// Tracked metric names, in band order. Empty + auto_metrics: the
    /// vehicle builder resolves the standard feeds (drive.gap, drive.speed,
    /// sensor.<name>, skill.<root>). Empty + !auto_metrics is a
    /// configuration error (lint rule LRN001).
    std::vector<std::string> metrics;
    bool auto_metrics = true;
    /// Metric-pump period (the builder's periodic that feeds the tap).
    sim::Duration period = sim::Duration::ms(50);
    /// Sim time before scoring starts; state statistics learn throughout.
    sim::Duration warmup = sim::Duration::ms(500);
    /// Surprise (bits) at which learned_abnormality is raised...
    double score_threshold = 8.0;
    /// ...and the fraction of it below which learned_recovered follows.
    double recover_ratio = 0.5;
    MetricModelConfig metric{};
    StateModelConfig state{};
    /// Clustering seed (copied into state.seed by the constructor).
    std::uint64_t seed = 1;
};

class AnomalyModelMonitor : public monitor::Monitor {
public:
    AnomalyModelMonitor(sim::Simulator& simulator,
                        monitor::MonitorManager& manager,
                        LearnedMonitorConfig config);
    ~AnomalyModelMonitor() override;

    [[nodiscard]] const LearnedMonitorConfig& config() const noexcept {
        return config_;
    }
    /// Latest joint-state surprise (bits).
    [[nodiscard]] double score() const noexcept { return score_; }
    [[nodiscard]] bool alarmed() const noexcept { return alarmed_; }
    /// True once the sim-time warm-up has elapsed (scoring active).
    [[nodiscard]] bool warmed_up() const noexcept;
    [[nodiscard]] std::uint64_t evaluations() const noexcept { return evals_; }
    [[nodiscard]] const StateModel& state_model() const noexcept { return state_; }
    /// Per-metric model, nullptr for untracked names.
    [[nodiscard]] const MetricModel* metric_model(std::string_view name) const;

private:
    void on_metric(const monitor::Metric& metric);
    void evaluate(sim::Time at);

    monitor::MonitorManager& manager_;
    LearnedMonitorConfig config_;
    std::vector<MetricModel> models_;
    std::vector<bool> in_round_;  ///< updated since the last evaluation
    std::vector<int> bands_;      ///< scratch, reused every evaluation
    StateModel state_;
    std::optional<sim::Time> first_sample_;
    double score_ = 0.0;
    bool alarmed_ = false;
    std::uint64_t evals_ = 0;
    std::uint64_t tap_id_ = 0;
};

} // namespace sa::learn
