#pragma once
// The learned monitor's payoff scenario: an ACC vehicle whose radar develops
// a slow calibration drift. The bias rides inside every valid sample, so
// availability, validity and noise variance never change — no threshold
// monitor (sensor quality, range, rate) ever reacts — but the fused gap the
// controller regulates and the raw sensor streams slowly pull apart, and the
// learned monitor's joint-state model lands in a state it has never seen.
// Its learned_abnormality alarm flows through the degradation policy and
// caps the radar capability, degrading acc_driving like any hand-written
// alarm would.
//
// One declaration shared by the example, the tests, the sa_learn CLI and the
// campaign fault axis, so "the drift scenario" means the same scenario
// everywhere.

#include <cstdint>

#include "learn/anomaly_model_monitor.hpp"
#include "scenario/scenario_builder.hpp"

namespace sa::learn {

struct DriftDemoConfig {
    std::uint64_t seed = 7;
    std::size_t domains = 1;
    /// Intended run length (also the builder's duration_hint()).
    sim::Duration duration = sim::Duration::sec(40);
    /// Learned-monitor warm-up (training window before scoring). Generous:
    /// the per-metric baselines freeze after ~3.2s, but the closed ACC loop
    /// wanders slowly (~10s excursions of a few decimetres) around its
    /// noise-shifted equilibrium, and the state model must see several full
    /// wander cycles — otherwise the first post-gate excursion rediscovers
    /// an ordinary state as "new" and alarms on nothing.
    sim::Duration warmup = sim::Duration::sec(30);
    /// First bias step; the ramp must start after the warm-up.
    sim::Duration drift_start = sim::Duration::sec(32);
    sim::Duration drift_step_period = sim::Duration::ms(400);
    int drift_steps = 12;
    double drift_step_m = 0.5; ///< radar bias added per step
    /// Surprise (bits) that raises the alarm. Sits between the rarest
    /// normal corner state (~7 bits: a ~1%-frequency excursion) and a
    /// never-seen state late in the run (log2(evaluations) ~ 9+ bits).
    double score_threshold = 8.0;
    /// Band width in drift-z units. The closed ACC loop wanders slowly
    /// around its equilibrium — the EWMA of a clean metric reaches z ~ 1.0
    /// of the frozen baseline late in a 40s run — so the first band flip is
    /// placed at z = 1.5: outside the clean envelope with margin, well
    /// inside the ±2.2 sigma the radar/camera disagreement reaches when the
    /// calibration actually walks.
    double band_width = 3.0;
    /// Radar capability level imposed by the learned_abnormality rule.
    double degraded_radar_level = 0.3;
};

/// The exact learned-monitor configuration the drift scenario installs —
/// shared with sa_learn's offline fit/score so offline verdicts mirror the
/// in-sim monitor.
[[nodiscard]] LearnedMonitorConfig drift_demo_model(const DriftDemoConfig& config);

/// Configure `builder` with the drift scenario: vehicle "ego" (ACC driving
/// loop, radar + camera with quality monitors, the §IV ACC skill graph, a
/// degradation policy mapping learned_abnormality onto the radar capability,
/// and a learned monitor), plus the scripted stepwise radar bias ramp.
/// The builder's seed is NOT touched — construct it with config.seed.
void declare_drift_demo(scenario::ScenarioBuilder& builder,
                        const DriftDemoConfig& config = {});

/// A fresh builder seeded with config.seed and declared via
/// declare_drift_demo().
[[nodiscard]] scenario::ScenarioBuilder
make_drift_demo(const DriftDemoConfig& config = {});

} // namespace sa::learn
