#include "learn/anomaly_model_monitor.hpp"

#include <algorithm>

#include "monitor/anomaly_kinds.hpp"
#include "util/assert.hpp"
#include "util/string_util.hpp"

namespace sa::learn {

namespace {

StateModelConfig seeded(StateModelConfig state, std::uint64_t seed) {
    state.seed = seed;
    return state;
}

} // namespace

AnomalyModelMonitor::AnomalyModelMonitor(sim::Simulator& simulator,
                                         monitor::MonitorManager& manager,
                                         LearnedMonitorConfig config)
    : Monitor(simulator, "learned:model", monitor::Domain::Function),
      manager_(manager),
      config_(std::move(config)),
      state_(seeded(config_.state, config_.seed)) {
    SA_REQUIRE(!config_.metrics.empty(),
               "learned monitor needs at least one tracked metric "
               "(lint rule LRN001)");
    SA_REQUIRE(config_.score_threshold > 0.0, "score threshold must be positive");
    models_.assign(config_.metrics.size(), MetricModel(config_.metric));
    in_round_.assign(config_.metrics.size(), false);
    bands_.assign(config_.metrics.size(), 0);
    tap_id_ = manager_.metric_ingested().subscribe(
        [this](const monitor::Metric& metric) { on_metric(metric); });
}

AnomalyModelMonitor::~AnomalyModelMonitor() {
    manager_.metric_ingested().unsubscribe(tap_id_);
}

bool AnomalyModelMonitor::warmed_up() const noexcept {
    return first_sample_.has_value() &&
           simulator_.now() - *first_sample_ >= config_.warmup;
}

const MetricModel* AnomalyModelMonitor::metric_model(std::string_view name) const {
    for (std::size_t i = 0; i < config_.metrics.size(); ++i) {
        if (config_.metrics[i] == name) {
            return &models_[i];
        }
    }
    return nullptr;
}

void AnomalyModelMonitor::on_metric(const monitor::Metric& metric) {
    const auto it = std::find(config_.metrics.begin(), config_.metrics.end(),
                              metric.name);
    if (it == config_.metrics.end()) {
        return;
    }
    const auto index = static_cast<std::size_t>(it - config_.metrics.begin());
    if (!first_sample_.has_value()) {
        first_sample_ = metric.at;
    }
    // A repeated metric means the ingest stream entered its next round:
    // score the completed joint observation first. Purely stream-driven, so
    // any ingest interleaving (pump order, extra producers) stays
    // deterministic.
    if (in_round_[index]) {
        evaluate(metric.at);
        std::fill(in_round_.begin(), in_round_.end(), false);
    }
    models_[index].update(metric.value);
    in_round_[index] = true;
}

void AnomalyModelMonitor::evaluate(sim::Time at) {
    note_check();
    ++evals_;
    for (std::size_t i = 0; i < models_.size(); ++i) {
        bands_[i] = state_.band(models_[i].drift_z());
    }
    const StateModel::Observation obs = state_.observe(bands_);
    score_ = obs.score;

    // State/transition statistics learn from the whole stream, but alarms
    // only fire once the sim-time warm-up elapsed — the early shuffle while
    // clusters form is training data, not evidence.
    if (at - *first_sample_ < config_.warmup) {
        return;
    }
    if (!alarmed_ && score_ >= config_.score_threshold) {
        alarmed_ = true;
        const double magnitude = score_ / config_.score_threshold;
        const auto severity = magnitude >= 1.5 ? monitor::Severity::Critical
                                               : monitor::Severity::Warning;
        raise(severity, name(), monitor::kinds::kLearnedAbnormality,
              format("state %zu surprise %.2f bits (threshold %.2f, %zu states)",
                     obs.state, score_, config_.score_threshold,
                     state_.state_count()),
              magnitude);
    } else if (alarmed_ &&
               score_ <= config_.recover_ratio * config_.score_threshold) {
        alarmed_ = false;
        raise(monitor::Severity::Info, name(), monitor::kinds::kLearnedRecovered,
              format("surprise %.2f bits back under %.2f", score_,
                     config_.recover_ratio * config_.score_threshold),
              0.0);
    }
}

} // namespace sa::learn
