#include "learn/offline.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sa::learn {

std::vector<std::string>
resolve_trace_metrics(const Trace& trace, const LearnedMonitorConfig& config) {
    if (!config.metrics.empty()) {
        return config.metrics;
    }
    std::vector<std::string> names;
    if (config.auto_metrics) {
        for (const auto& sample : trace.samples) {
            if (std::find(names.begin(), names.end(), sample.name) == names.end()) {
                names.push_back(sample.name);
            }
        }
    }
    return names;
}

OfflineResult run_offline(const Trace& trace, const LearnedMonitorConfig& config) {
    const std::vector<std::string> names = resolve_trace_metrics(trace, config);
    SA_REQUIRE(!names.empty(),
               "no tracked metrics: empty trace or auto_metrics disabled "
               "(lint rule LRN001)");

    StateModelConfig state_config = config.state;
    state_config.seed = config.seed;
    StateModel state(state_config);
    std::vector<MetricModel> models(names.size(), MetricModel(config.metric));
    std::vector<bool> in_round(names.size(), false);
    std::vector<int> bands(names.size(), 0);

    OfflineResult result;
    bool have_first = false;
    std::int64_t first_ns = 0;
    bool alarmed = false;

    // Mirrors AnomalyModelMonitor::on_metric()/evaluate(): a repeated metric
    // closes the round, scoring happens first, alarms gate on warm-up.
    auto evaluate = [&](std::int64_t at_ns) {
        ++result.evaluations;
        for (std::size_t i = 0; i < models.size(); ++i) {
            bands[i] = state.band(models[i].drift_z());
        }
        const StateModel::Observation obs = state.observe(bands);
        result.max_score = std::max(result.max_score, obs.score);
        if (at_ns - first_ns < config.warmup.count_ns()) {
            return;
        }
        if (!alarmed && obs.score >= config.score_threshold) {
            alarmed = true;
            result.events.push_back(
                ScoredEvent{at_ns, obs.state, obs.score, true});
        } else if (alarmed &&
                   obs.score <= config.recover_ratio * config.score_threshold) {
            alarmed = false;
            result.events.push_back(
                ScoredEvent{at_ns, obs.state, obs.score, false});
        }
    };

    for (const auto& sample : trace.samples) {
        const auto it = std::find(names.begin(), names.end(), sample.name);
        if (it == names.end()) {
            continue;
        }
        const auto index = static_cast<std::size_t>(it - names.begin());
        if (!have_first) {
            have_first = true;
            first_ns = sample.at_ns;
        }
        if (in_round[index]) {
            evaluate(sample.at_ns);
            std::fill(in_round.begin(), in_round.end(), false);
        }
        models[index].update(sample.value);
        in_round[index] = true;
    }

    result.state_count = state.state_count();
    result.metrics.reserve(names.size());
    for (std::size_t i = 0; i < names.size(); ++i) {
        result.metrics.push_back(MetricBaseline{
            names[i], models[i].count(), models[i].warmed_up(),
            models[i].mean(), models[i].sigma(), models[i].ewma(),
            models[i].drift_z()});
    }
    return result;
}

} // namespace sa::learn
