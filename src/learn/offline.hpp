#pragma once
// Offline fit/score over recorded traces — the sa_learn CLI's engine. Runs
// the exact online algorithm (MetricModel + StateModel with the same
// round-closing rule as AnomalyModelMonitor) over a Trace, so offline scores
// reproduce what the in-sim monitor would have raised on the same stream.

#include <cstdint>
#include <string>
#include <vector>

#include "learn/anomaly_model_monitor.hpp"
#include "learn/trace.hpp"

namespace sa::learn {

/// An alarm-state transition produced by scoring a trace.
struct ScoredEvent {
    std::int64_t at_ns = 0;
    std::size_t state = 0;
    double score = 0.0;  ///< surprise in bits at the transition
    bool abnormal = false;  ///< true: learned_abnormality; false: recovered

    bool operator==(const ScoredEvent&) const = default;
};

/// Frozen per-metric baseline after a fit.
struct MetricBaseline {
    std::string name;
    std::size_t samples = 0;
    bool warmed_up = false;
    double mean = 0.0;
    double sigma = 0.0;
    double ewma = 0.0;
    double drift_z = 0.0;
};

struct OfflineResult {
    std::vector<MetricBaseline> metrics;
    std::size_t state_count = 0;
    std::uint64_t evaluations = 0;
    double max_score = 0.0;
    std::vector<ScoredEvent> events;
};

/// Tracked metric names for `trace` under `config`: the configured list, or
/// (auto_metrics) every distinct metric in first-appearance order.
[[nodiscard]] std::vector<std::string>
resolve_trace_metrics(const Trace& trace, const LearnedMonitorConfig& config);

/// Fit + score `trace` under `config` in one pass (the algorithm is fully
/// incremental, so fitting IS scoring with the events kept).
[[nodiscard]] OfflineResult run_offline(const Trace& trace,
                                        const LearnedMonitorConfig& config);

} // namespace sa::learn
