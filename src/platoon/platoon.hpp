#pragma once
// Platoon formation and operation (§V: "driving in dense fog with
// inappropriate or broken sensors will not be possible by a single
// autonomous vehicle. Nevertheless, building a platoon with better equipped
// vehicles could still be a viable option, which, however, raises the issue
// of trustworthiness"). A degraded vehicle may join a platoon whose leader
// it trusts; the platoon agrees on a common velocity and minimum gap via
// byzantine-tolerant approximate agreement over per-member safe proposals.

#include <optional>
#include <string>
#include <vector>

#include "platoon/consensus.hpp"
#include "platoon/trust.hpp"
#include "sim/process.hpp"
#include "vehicle/sensor.hpp"
#include "vehicle/weather.hpp"

namespace sa::platoon {

struct MemberCapability {
    std::string id;
    /// Best sensor quality among the member's environment sensors in the
    /// current weather (drives its safe speed).
    double sensor_quality = 1.0;
    /// Maximum speed the member considers safe under current conditions.
    double safe_speed_mps = 30.0;
    /// Minimum gap the member needs (degraded braking => larger).
    double min_gap_m = 10.0;
    bool byzantine = false; ///< ground truth, for experiments only
};

/// Safe-speed heuristic: scale a nominal speed by sensor quality, floored so
/// a blind vehicle proposes walking pace rather than zero.
[[nodiscard]] double safe_speed_for_quality(double quality, double nominal_mps = 33.0);

struct PlatoonAgreement {
    bool formed = false;
    std::string rejected_reason;
    std::vector<std::string> members; ///< admitted members
    double common_speed_mps = 0.0;
    double min_gap_m = 0.0;
    ConsensusResult speed_consensus;
    ConsensusResult gap_consensus;
    /// Safety check: agreed speed must not exceed the slowest honest
    /// member's safe speed by more than the tolerance.
    bool speed_safe = true;
};

struct PlatoonConfig {
    double trust_threshold = 0.55;
    int assumed_faults = 1;
    double consensus_epsilon = 0.1;
    double safety_tolerance_mps = 0.5;
};

class PlatoonCoordinator {
public:
    PlatoonCoordinator(TrustManager& trust, PlatoonConfig config = {})
        : trust_(trust), config_(config) {}

    /// Form a platoon from candidates: untrusted members are rejected, then
    /// the admitted members agree on common speed and gap. Byzantine members
    /// that slipped through trust gating participate adversarially in the
    /// consensus (equivocating around the honest range).
    [[nodiscard]] PlatoonAgreement form(const std::vector<MemberCapability>& candidates,
                                        RandomEngine& rng) const;

private:
    TrustManager& trust_;
    PlatoonConfig config_;
};

// --- maneuvers ---------------------------------------------------------------------
// A formed platoon is not static: members join at the tail, leave when their
// own self-model says following is no longer safe, and a severely degraded
// member in the middle forces a *split* — the vehicles behind it cannot
// safely follow through it, so they detach as a trailing group. Every
// maneuver re-runs the byzantine-tolerant agreement over the remaining
// members: a leave can relax the common speed, a join can tighten it.

enum class ManeuverKind { Form, Join, Leave, Split, Dissolve };

const char* to_string(ManeuverKind kind) noexcept;

/// One executed (or refused) maneuver, for audits and determinism tests.
struct ManeuverRecord {
    ManeuverKind kind = ManeuverKind::Form;
    std::string subject; ///< vehicle the maneuver is about (empty for Form)
    std::string reason;
    bool succeeded = true;
    std::vector<std::string> members_after; ///< this platoon, after the maneuver
    std::vector<std::string> detached;      ///< Split: the detached trailing group

    [[nodiscard]] std::string str() const;
};

/// Thresholds driving automatic maneuvers from ability-graph levels (the
/// scenario layer's maneuver engine evaluates these at script barriers).
struct ManeuverPolicy {
    /// Root skill watched on every member (and candidate) vehicle.
    std::string follow_skill = "platoon_follow";
    /// A member whose follow skill drops below this leaves the platoon.
    double leave_below = 0.5;
    /// A *mid-platoon* member below this forces a split at its position
    /// (the vehicles behind cannot safely follow through it).
    double split_below = 0.15;
    /// A non-member candidate below this (but still at or above
    /// leave_below — a vehicle too degraded to *stay* is not re-admitted,
    /// which is the hysteresis that prevents leave/re-join oscillation)
    /// asks to join: degraded alone, safer in the platoon. 0.0 never joins.
    double join_below = 0.0;
    /// Evaluation period of the maneuver engine.
    sim::Duration check_period = sim::Duration::ms(500);
};

/// A formed platoon with its ordered members (leader first) and maneuver
/// history. Maneuvers re-run the trust-gated byzantine agreement via a
/// PlatoonCoordinator over the shared TrustManager.
class Platoon {
public:
    Platoon(std::string id, TrustManager& trust, PlatoonConfig config = {})
        : id_(std::move(id)), trust_(trust), config_(config) {}

    [[nodiscard]] const std::string& platoon_id() const noexcept { return id_; }
    [[nodiscard]] bool formed() const noexcept { return agreement_.formed; }
    [[nodiscard]] const PlatoonAgreement& agreement() const noexcept {
        return agreement_;
    }
    /// Members in convoy order, leader first. Non-empty only while formed.
    [[nodiscard]] const std::vector<MemberCapability>& members() const noexcept {
        return members_;
    }
    [[nodiscard]] std::vector<std::string> member_names() const;
    [[nodiscard]] bool contains(const std::string& name) const;
    /// Leader = front member. Requires formed().
    [[nodiscard]] const std::string& leader() const;

    /// Form from ordered candidates (trust-gated; see PlatoonCoordinator).
    /// Admitted members keep candidate order. Replaces any previous state.
    const PlatoonAgreement& form(const std::vector<MemberCapability>& candidates,
                                 RandomEngine& rng);

    /// Admit `candidate` at the tail: trust gate, then re-run the agreement
    /// over members + candidate. On failure the platoon is unchanged.
    const PlatoonAgreement& join(const MemberCapability& candidate, RandomEngine& rng,
                                 std::string reason = {});

    /// Remove `name` and re-run the agreement over the rest. Fewer than two
    /// remaining members dissolve the platoon. Unknown names are a no-op
    /// recorded as a failed maneuver.
    const PlatoonAgreement& leave(const std::string& name, RandomEngine& rng,
                                  std::string reason = {});

    /// Split at member `at`: `at` and everyone behind it detach (returned in
    /// convoy order, for the caller to regroup); the head re-runs its
    /// agreement. Splitting at the leader dissolves the whole platoon.
    std::vector<MemberCapability> split(const std::string& at, RandomEngine& rng,
                                        std::string reason = {});

    /// Refresh a member's capability (degraded sensors => lower safe speed)
    /// and re-run the agreement so the common speed respects it.
    const PlatoonAgreement& update_member(const MemberCapability& capability,
                                          RandomEngine& rng);

    [[nodiscard]] const std::vector<ManeuverRecord>& history() const noexcept {
        return history_;
    }
    sim::Signal<const ManeuverRecord&>& maneuver_performed() noexcept {
        return maneuver_performed_;
    }

private:
    /// Re-run the agreement over `members`; on success adopt them.
    bool adopt(std::vector<MemberCapability> members, RandomEngine& rng,
               PlatoonAgreement& out);
    void record(ManeuverRecord record);

    std::string id_;
    TrustManager& trust_;
    PlatoonConfig config_;
    PlatoonAgreement agreement_;
    std::vector<MemberCapability> members_;
    std::vector<ManeuverRecord> history_;
    sim::Signal<const ManeuverRecord&> maneuver_performed_;
};

} // namespace sa::platoon
