#pragma once
// Platoon formation and operation (§V: "driving in dense fog with
// inappropriate or broken sensors will not be possible by a single
// autonomous vehicle. Nevertheless, building a platoon with better equipped
// vehicles could still be a viable option, which, however, raises the issue
// of trustworthiness"). A degraded vehicle may join a platoon whose leader
// it trusts; the platoon agrees on a common velocity and minimum gap via
// byzantine-tolerant approximate agreement over per-member safe proposals.

#include <optional>
#include <string>
#include <vector>

#include "platoon/consensus.hpp"
#include "platoon/trust.hpp"
#include "vehicle/sensor.hpp"
#include "vehicle/weather.hpp"

namespace sa::platoon {

struct MemberCapability {
    std::string id;
    /// Best sensor quality among the member's environment sensors in the
    /// current weather (drives its safe speed).
    double sensor_quality = 1.0;
    /// Maximum speed the member considers safe under current conditions.
    double safe_speed_mps = 30.0;
    /// Minimum gap the member needs (degraded braking => larger).
    double min_gap_m = 10.0;
    bool byzantine = false; ///< ground truth, for experiments only
};

/// Safe-speed heuristic: scale a nominal speed by sensor quality, floored so
/// a blind vehicle proposes walking pace rather than zero.
[[nodiscard]] double safe_speed_for_quality(double quality, double nominal_mps = 33.0);

struct PlatoonAgreement {
    bool formed = false;
    std::string rejected_reason;
    std::vector<std::string> members; ///< admitted members
    double common_speed_mps = 0.0;
    double min_gap_m = 0.0;
    ConsensusResult speed_consensus;
    ConsensusResult gap_consensus;
    /// Safety check: agreed speed must not exceed the slowest honest
    /// member's safe speed by more than the tolerance.
    bool speed_safe = true;
};

struct PlatoonConfig {
    double trust_threshold = 0.55;
    int assumed_faults = 1;
    double consensus_epsilon = 0.1;
    double safety_tolerance_mps = 0.5;
};

class PlatoonCoordinator {
public:
    PlatoonCoordinator(TrustManager& trust, PlatoonConfig config = {})
        : trust_(trust), config_(config) {}

    /// Form a platoon from candidates: untrusted members are rejected, then
    /// the admitted members agree on common speed and gap. Byzantine members
    /// that slipped through trust gating participate adversarially in the
    /// consensus (equivocating around the honest range).
    [[nodiscard]] PlatoonAgreement form(const std::vector<MemberCapability>& candidates,
                                        RandomEngine& rng) const;

private:
    TrustManager& trust_;
    PlatoonConfig config_;
};

} // namespace sa::platoon
