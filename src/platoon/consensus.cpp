#include "platoon/consensus.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sa::platoon {

double ApproximateAgreement::trimmed_mean(std::vector<double> values, int f) {
    SA_REQUIRE(f >= 0, "f must be non-negative");
    SA_REQUIRE(values.size() > static_cast<std::size_t>(2 * f),
               "trimmed mean needs more than 2f values");
    std::sort(values.begin(), values.end());
    double sum = 0.0;
    const std::size_t lo = static_cast<std::size_t>(f);
    const std::size_t hi = values.size() - static_cast<std::size_t>(f);
    for (std::size_t i = lo; i < hi; ++i) {
        sum += values[i];
    }
    return sum / static_cast<double>(hi - lo);
}

double ApproximateAgreement::plain_mean(const std::vector<double>& values) {
    SA_REQUIRE(!values.empty(), "mean of empty set");
    double sum = 0.0;
    for (double v : values) {
        sum += v;
    }
    return sum / static_cast<double>(values.size());
}

ConsensusResult ApproximateAgreement::run(
    std::vector<double> honest_initial,
    const std::vector<ByzantineBehavior>& byzantine) const {
    SA_REQUIRE(!honest_initial.empty(), "need at least one honest node");
    const int f = config_.assumed_faults;
    const std::size_t n_honest = honest_initial.size();
    SA_REQUIRE(n_honest + byzantine.size() > static_cast<std::size_t>(2 * f),
               "not enough nodes for the assumed fault count");

    const double initial_min =
        *std::min_element(honest_initial.begin(), honest_initial.end());
    const double initial_max =
        *std::max_element(honest_initial.begin(), honest_initial.end());

    ConsensusResult result;
    std::vector<double> values = std::move(honest_initial);

    for (int round = 1; round <= config_.max_rounds; ++round) {
        result.rounds = round;
        std::vector<double> next(n_honest);
        for (std::size_t receiver = 0; receiver < n_honest; ++receiver) {
            // Receive all honest broadcasts plus byzantine (possibly
            // equivocating) values.
            std::vector<double> received = values;
            for (const auto& byz : byzantine) {
                received.push_back(byz(round, receiver));
            }
            next[receiver] = trimmed_mean(std::move(received), f);
        }
        values = std::move(next);

        const double lo = *std::min_element(values.begin(), values.end());
        const double hi = *std::max_element(values.begin(), values.end());
        if (lo < initial_min - 1e-9 || hi > initial_max + 1e-9) {
            result.validity_held = false;
        }
        if (hi - lo < config_.epsilon) {
            result.converged = true;
            break;
        }
    }

    result.final_values = values;
    const double lo = *std::min_element(values.begin(), values.end());
    const double hi = *std::max_element(values.begin(), values.end());
    result.spread = hi - lo;
    result.agreed_value = plain_mean(values);
    return result;
}

} // namespace sa::platoon
