#pragma once
// Vehicle-to-vehicle communication substrate and plausibility-based trust
// formation (§V: cooperating vehicles "share information", but "the
// communication to or the platform of another vehicle might not be fully
// trustworthy"). Beacons broadcast over a lossy channel; receivers compare a
// neighbour's claims against their own sensor observations and feed the
// outcome into the TrustManager — this is how the reputation that gates
// platoon formation is earned in the first place.
//
// Sharding: V2V is the canonical cross-domain link. Each member may name a
// home simulator (the domain its vehicle lives on); beacons are delivered to
// every member's home via sim::post(), and when the channel rides a
// ShardedKernel its latency is declared as every domain's lookahead bound —
// the 20 ms beacon latency is exactly the window the domains may race ahead
// inside. On a single shared simulator the behaviour (and event order) is
// bit-for-bit the pre-sharding one.

#include <atomic>
#include <functional>
#include <map>
#include <string>

#include "platoon/trust.hpp"
#include "sim/simulator.hpp"

namespace sa::platoon {

using sim::Duration;
using sim::Time;

/// Periodic cooperative-awareness message (CAM-style).
struct V2vBeacon {
    std::string sender;
    double position_m = 0.0; ///< along-track position
    double speed_mps = 0.0;
    Time sent;
};

/// Lossy broadcast channel with constant latency.
class V2vChannel {
public:
    V2vChannel(sim::Simulator& simulator, double loss_probability = 0.0,
               Duration latency = Duration::ms(20));

    using Receiver = std::function<void(const V2vBeacon&)>;

    /// Join the channel; every delivered beacon from *other* senders invokes
    /// the callback. The member's home is the channel's own simulator —
    /// therefore only valid on an unsharded channel (on a sharded kernel
    /// every member must name its home; use the overload below).
    void join(const std::string& name, Receiver receiver);
    /// Join with an explicit home simulator: delivered beacons execute on
    /// `home` (its domain worker, under sharding). `home` must be the
    /// channel's simulator or a domain of the same ShardedKernel.
    void join(const std::string& name, sim::Simulator& home, Receiver receiver);
    void leave(const std::string& name);

    /// Broadcast a beacon; each receiver independently experiences loss.
    /// Timestamps and loss draws use the calling domain's clock and RNG
    /// (the channel simulator's outside any sharded window). Membership
    /// must be quiescent during a sharded run: join/leave only between
    /// runs or from script barriers.
    void broadcast(V2vBeacon beacon);

    [[nodiscard]] std::uint64_t broadcasts() const noexcept {
        return broadcasts_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t deliveries() const noexcept {
        return deliveries_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t losses() const noexcept {
        return losses_.load(std::memory_order_relaxed);
    }

private:
    struct Member {
        sim::Simulator* home;
        Receiver receiver;
    };

    sim::Simulator& simulator_;
    double loss_probability_;
    Duration latency_;
    std::map<std::string, Member> members_;
    // Relaxed atomics: broadcasts may run concurrently on several domain
    // workers; the counts are order-free sums.
    std::atomic<std::uint64_t> broadcasts_{0};
    std::atomic<std::uint64_t> deliveries_{0};
    std::atomic<std::uint64_t> losses_{0};
};

/// Compares a neighbour's claimed kinematics against own observations and
/// records the outcome as a trust interaction.
class PlausibilityChecker {
public:
    PlausibilityChecker(TrustManager& trust, double position_tolerance_m = 5.0,
                        double speed_tolerance_mps = 2.0)
        : trust_(trust),
          position_tolerance_m_(position_tolerance_m),
          speed_tolerance_mps_(speed_tolerance_mps) {}

    /// Check a beacon against an own measurement of the sender (e.g. from
    /// radar): measured position/speed of the vehicle the beacon claims to
    /// be. Records positive/negative trust and returns plausibility.
    bool check(const V2vBeacon& beacon, double measured_position_m,
               double measured_speed_mps);

    [[nodiscard]] std::uint64_t checks() const noexcept { return checks_; }
    [[nodiscard]] std::uint64_t implausible() const noexcept { return implausible_; }

private:
    TrustManager& trust_;
    double position_tolerance_m_;
    double speed_tolerance_mps_;
    std::uint64_t checks_ = 0;
    std::uint64_t implausible_ = 0;
};

} // namespace sa::platoon
