#pragma once
// Vehicle-to-vehicle communication substrate and plausibility-based trust
// formation (§V: cooperating vehicles "share information", but "the
// communication to or the platform of another vehicle might not be fully
// trustworthy"). Beacons broadcast over a lossy channel; receivers compare a
// neighbour's claims against their own sensor observations and feed the
// outcome into the TrustManager — this is how the reputation that gates
// platoon formation is earned in the first place.

#include <functional>
#include <map>
#include <string>

#include "platoon/trust.hpp"
#include "sim/simulator.hpp"

namespace sa::platoon {

using sim::Duration;
using sim::Time;

/// Periodic cooperative-awareness message (CAM-style).
struct V2vBeacon {
    std::string sender;
    double position_m = 0.0; ///< along-track position
    double speed_mps = 0.0;
    Time sent;
};

/// Lossy broadcast channel with constant latency.
class V2vChannel {
public:
    V2vChannel(sim::Simulator& simulator, double loss_probability = 0.0,
               Duration latency = Duration::ms(20));

    using Receiver = std::function<void(const V2vBeacon&)>;

    /// Join the channel; every delivered beacon from *other* senders invokes
    /// the callback.
    void join(const std::string& name, Receiver receiver);
    void leave(const std::string& name);

    /// Broadcast a beacon; each receiver independently experiences loss.
    void broadcast(V2vBeacon beacon);

    [[nodiscard]] std::uint64_t broadcasts() const noexcept { return broadcasts_; }
    [[nodiscard]] std::uint64_t deliveries() const noexcept { return deliveries_; }
    [[nodiscard]] std::uint64_t losses() const noexcept { return losses_; }

private:
    sim::Simulator& simulator_;
    double loss_probability_;
    Duration latency_;
    std::map<std::string, Receiver> members_;
    std::uint64_t broadcasts_ = 0;
    std::uint64_t deliveries_ = 0;
    std::uint64_t losses_ = 0;
};

/// Compares a neighbour's claimed kinematics against own observations and
/// records the outcome as a trust interaction.
class PlausibilityChecker {
public:
    PlausibilityChecker(TrustManager& trust, double position_tolerance_m = 5.0,
                        double speed_tolerance_mps = 2.0)
        : trust_(trust),
          position_tolerance_m_(position_tolerance_m),
          speed_tolerance_mps_(speed_tolerance_mps) {}

    /// Check a beacon against an own measurement of the sender (e.g. from
    /// radar): measured position/speed of the vehicle the beacon claims to
    /// be. Records positive/negative trust and returns plausibility.
    bool check(const V2vBeacon& beacon, double measured_position_m,
               double measured_speed_mps);

    [[nodiscard]] std::uint64_t checks() const noexcept { return checks_; }
    [[nodiscard]] std::uint64_t implausible() const noexcept { return implausible_; }

private:
    TrustManager& trust_;
    double position_tolerance_m_;
    double speed_tolerance_mps_;
    std::uint64_t checks_ = 0;
    std::uint64_t implausible_ = 0;
};

} // namespace sa::platoon
