#pragma once
// Plausibility-based trust formation over the V2V mesh (§V: cooperating
// vehicles "share information", but "the communication to or the platform of
// another vehicle might not be fully trustworthy"). CAM frames arrive over
// the v2v::Medium / mesh::MeshStack transport (src/mesh/); receivers compare
// a neighbour's claims against their own sensor observations and feed the
// outcome into the TrustManager — this is how the reputation that gates
// platoon formation is earned in the first place.
//
// The old single-hop V2vChannel lived here; it has been replaced by the
// redesigned radio substrate in mesh/medium.hpp (v2v::Medium) plus the
// per-vehicle protocol endpoint in mesh/mesh_stack.hpp (mesh::MeshStack).

#include <cstdint>

#include "mesh/medium.hpp"
#include "platoon/trust.hpp"

namespace sa::platoon {

/// Compares a neighbour's claimed kinematics against own observations and
/// records the outcome as a trust interaction.
class PlausibilityChecker {
public:
    PlausibilityChecker(TrustManager& trust, double position_tolerance_m = 5.0,
                        double speed_tolerance_mps = 2.0)
        : trust_(trust),
          position_tolerance_m_(position_tolerance_m),
          speed_tolerance_mps_(speed_tolerance_mps) {}

    /// Check a CAM frame against an own measurement of its ORIGIN (e.g. from
    /// radar): measured position/speed of the vehicle the frame claims to
    /// be. Trust accrues to the origin, not the relaying transmitter — a
    /// relay faithfully forwarding a liar's claim is not the liar. Records
    /// positive/negative trust and returns plausibility.
    bool check(const v2v::Frame& frame, double measured_position_m,
               double measured_speed_mps);

    [[nodiscard]] std::uint64_t checks() const noexcept { return checks_; }
    [[nodiscard]] std::uint64_t implausible() const noexcept { return implausible_; }

private:
    TrustManager& trust_;
    double position_tolerance_m_;
    double speed_tolerance_mps_;
    std::uint64_t checks_ = 0;
    std::uint64_t implausible_ = 0;
};

} // namespace sa::platoon
