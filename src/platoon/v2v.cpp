#include "platoon/v2v.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace sa::platoon {

V2vChannel::V2vChannel(sim::Simulator& simulator, double loss_probability,
                       Duration latency)
    : simulator_(simulator), loss_probability_(loss_probability), latency_(latency) {
    SA_REQUIRE(loss_probability_ >= 0.0 && loss_probability_ <= 1.0,
               "loss probability must be within [0,1]");
    SA_REQUIRE(latency_.count_ns() >= 0, "latency must be non-negative");
}

void V2vChannel::join(const std::string& name, Receiver receiver) {
    SA_REQUIRE(static_cast<bool>(receiver), "receiver must be callable");
    SA_REQUIRE(members_.count(name) == 0, "duplicate channel member: " + name);
    members_[name] = std::move(receiver);
}

void V2vChannel::leave(const std::string& name) { members_.erase(name); }

void V2vChannel::broadcast(V2vBeacon beacon) {
    ++broadcasts_;
    beacon.sent = simulator_.now();
    for (const auto& [name, receiver] : members_) {
        if (name == beacon.sender) {
            continue;
        }
        if (loss_probability_ > 0.0 && simulator_.rng().chance(loss_probability_)) {
            ++losses_;
            continue;
        }
        ++deliveries_;
        simulator_.schedule(latency_, [receiver, beacon] { receiver(beacon); });
    }
}

bool PlausibilityChecker::check(const V2vBeacon& beacon, double measured_position_m,
                                double measured_speed_mps) {
    ++checks_;
    const bool position_ok =
        std::abs(beacon.position_m - measured_position_m) <= position_tolerance_m_;
    const bool speed_ok =
        std::abs(beacon.speed_mps - measured_speed_mps) <= speed_tolerance_mps_;
    const bool plausible = position_ok && speed_ok;
    if (!plausible) {
        ++implausible_;
    }
    trust_.record(beacon.sender, plausible);
    return plausible;
}

} // namespace sa::platoon
