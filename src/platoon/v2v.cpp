#include "platoon/v2v.hpp"

#include <cmath>

#include "sim/sharded_kernel.hpp"
#include "util/assert.hpp"

namespace sa::platoon {

V2vChannel::V2vChannel(sim::Simulator& simulator, double loss_probability,
                       Duration latency)
    : simulator_(simulator), loss_probability_(loss_probability), latency_(latency) {
    SA_REQUIRE(loss_probability_ >= 0.0 && loss_probability_ <= 1.0,
               "loss probability must be within [0,1]");
    SA_REQUIRE(latency_.count_ns() >= 0, "latency must be non-negative");
    if (sim::ShardedKernel* kernel = simulator_.shard()) {
        SA_REQUIRE(latency_.count_ns() > 0,
                   "a V2V channel on a sharded kernel needs a positive "
                   "latency (it becomes every domain's lookahead)");
        // Any domain may carry a sender, so the beacon latency bounds every
        // domain's lookahead: it IS the window the domains may race ahead.
        for (std::size_t d = 0; d < kernel->num_domains(); ++d) {
            kernel->declare_lookahead(d, latency_);
        }
    }
}

void V2vChannel::join(const std::string& name, Receiver receiver) {
    // On a sharded kernel a default home would silently pin every receiver
    // to the channel's own domain — callbacks for vehicles living elsewhere
    // would run on the wrong worker. Require the explicit overload there.
    SA_REQUIRE(simulator_.shard() == nullptr,
               "on a sharded kernel, name the member's home simulator: "
               "join(name, home, receiver) or Scenario::join_v2v()");
    join(name, simulator_, std::move(receiver));
}

void V2vChannel::join(const std::string& name, sim::Simulator& home,
                      Receiver receiver) {
    SA_REQUIRE(static_cast<bool>(receiver), "receiver must be callable");
    SA_REQUIRE(!members_.contains(name), "duplicate channel member: " + name);
    SA_REQUIRE(&home == &simulator_ || (simulator_.shard() != nullptr &&
                                        home.shard() == simulator_.shard()),
               "member home must be the channel's simulator or a domain of "
               "the same sharded kernel");
    members_[name] = Member{&home, std::move(receiver)};
}

void V2vChannel::leave(const std::string& name) { members_.erase(name); }

void V2vChannel::broadcast(V2vBeacon beacon) {
    broadcasts_.fetch_add(1, std::memory_order_relaxed);
    // The sending context: the domain whose window is executing, or the
    // channel's own simulator from quiescent contexts. Its clock stamps the
    // beacon and its RNG draws the per-receiver losses, keeping each
    // domain's stream independent and the whole run seed-stable.
    sim::Simulator* executing = sim::detail::executing_domain();
    sim::Simulator& context = executing != nullptr ? *executing : simulator_;
    beacon.sent = context.now();
    const Time deliver_at = beacon.sent + latency_;
    for (const auto& [name, member] : members_) {
        if (name == beacon.sender) {
            continue;
        }
        if (loss_probability_ > 0.0 && context.rng().chance(loss_probability_)) {
            losses_.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        deliveries_.fetch_add(1, std::memory_order_relaxed);
        sim::post(*member.home, deliver_at,
                  [receiver = member.receiver, beacon] { receiver(beacon); });
    }
}

bool PlausibilityChecker::check(const V2vBeacon& beacon, double measured_position_m,
                                double measured_speed_mps) {
    ++checks_;
    const bool position_ok =
        std::abs(beacon.position_m - measured_position_m) <= position_tolerance_m_;
    const bool speed_ok =
        std::abs(beacon.speed_mps - measured_speed_mps) <= speed_tolerance_mps_;
    const bool plausible = position_ok && speed_ok;
    if (!plausible) {
        ++implausible_;
    }
    trust_.record(beacon.sender, plausible);
    return plausible;
}

} // namespace sa::platoon
