#include "platoon/v2v.hpp"

#include <cmath>

namespace sa::platoon {

bool PlausibilityChecker::check(const v2v::Frame& frame,
                                double measured_position_m,
                                double measured_speed_mps) {
    ++checks_;
    const bool position_ok =
        std::abs(frame.position_m - measured_position_m) <= position_tolerance_m_;
    const bool speed_ok =
        std::abs(frame.speed_mps - measured_speed_mps) <= speed_tolerance_mps_;
    const bool plausible = position_ok && speed_ok;
    if (!plausible) {
        ++implausible_;
    }
    trust_.record(frame.origin, plausible);
    return plausible;
}

} // namespace sa::platoon
