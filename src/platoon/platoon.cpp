#include "platoon/platoon.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/string_util.hpp"

namespace sa::platoon {

double safe_speed_for_quality(double quality, double nominal_mps) {
    quality = std::clamp(quality, 0.0, 1.0);
    return std::max(2.0, nominal_mps * (0.25 + 0.75 * quality));
}

PlatoonAgreement PlatoonCoordinator::form(const std::vector<MemberCapability>& candidates,
                                          RandomEngine& rng) const {
    PlatoonAgreement agreement;

    // Trust gating: only admit members we trust.
    std::vector<const MemberCapability*> admitted;
    for (const auto& c : candidates) {
        if (trust_.trusted(c.id, config_.trust_threshold)) {
            admitted.push_back(&c);
            agreement.members.push_back(c.id);
        }
    }
    if (admitted.size() < 2) {
        agreement.rejected_reason = "fewer than two trusted members";
        return agreement;
    }

    // Partition into honest proposals and byzantine behaviours. Trust gating
    // is imperfect: byzantine members with good reputations still get in —
    // that is exactly what the consensus must tolerate.
    std::vector<double> honest_speeds;
    std::vector<double> honest_gaps;
    std::size_t byz_count = 0;
    for (const auto* m : admitted) {
        if (m->byzantine) {
            ++byz_count;
        } else {
            honest_speeds.push_back(m->safe_speed_mps);
            honest_gaps.push_back(m->min_gap_m);
        }
    }
    if (honest_speeds.empty()) {
        agreement.rejected_reason = "no honest members";
        return agreement;
    }

    const double lo_speed =
        *std::min_element(honest_speeds.begin(), honest_speeds.end());
    const double hi_speed =
        *std::max_element(honest_speeds.begin(), honest_speeds.end());

    // Byzantine strategy: equivocate wildly around the honest range to pull
    // receivers apart (worst case for convergence).
    std::vector<ByzantineBehavior> byz_speed;
    std::vector<ByzantineBehavior> byz_gap;
    for (std::size_t i = 0; i < byz_count; ++i) {
        const double low = lo_speed - 20.0;
        const double high = hi_speed + 40.0;
        byz_speed.push_back([low, high](int round, std::size_t receiver) {
            return (receiver + static_cast<std::size_t>(round)) % 2 == 0 ? high : low;
        });
        byz_gap.push_back([](int round, std::size_t receiver) {
            return (receiver + static_cast<std::size_t>(round)) % 2 == 0 ? 0.5 : 80.0;
        });
    }
    (void)rng;

    ConsensusConfig cc;
    // Clamp f to what the admitted population supports: approximate
    // agreement under equivocation needs n >= 3f + 1. Small platoons cannot
    // tolerate byzantine members at all — the consensus then fails safe
    // (no convergence => no platoon) rather than agreeing on a poisoned value.
    const int max_f = (static_cast<int>(admitted.size()) - 1) / 3;
    cc.assumed_faults = std::min(config_.assumed_faults, max_f);
    cc.epsilon = config_.consensus_epsilon;
    ApproximateAgreement protocol(cc);

    agreement.speed_consensus = protocol.run(honest_speeds, byz_speed);
    agreement.gap_consensus = protocol.run(honest_gaps, byz_gap);
    agreement.formed =
        agreement.speed_consensus.converged && agreement.gap_consensus.converged;
    if (!agreement.formed) {
        agreement.rejected_reason = "consensus did not converge";
        return agreement;
    }

    // The agreed speed must respect the slowest member: cap at the minimum
    // honest proposal (validity already bounds it; the cap makes it exact).
    agreement.common_speed_mps =
        std::min(agreement.speed_consensus.agreed_value, lo_speed);
    // The agreed gap must respect the largest requirement among honest
    // members: take the max of the consensus value and the honest max.
    const double hi_gap = *std::max_element(honest_gaps.begin(), honest_gaps.end());
    agreement.min_gap_m = std::max(agreement.gap_consensus.agreed_value, hi_gap);
    agreement.speed_safe =
        agreement.common_speed_mps <= lo_speed + config_.safety_tolerance_mps;
    return agreement;
}

// --- maneuvers ---------------------------------------------------------------------

const char* to_string(ManeuverKind kind) noexcept {
    switch (kind) {
    case ManeuverKind::Form: return "form";
    case ManeuverKind::Join: return "join";
    case ManeuverKind::Leave: return "leave";
    case ManeuverKind::Split: return "split";
    case ManeuverKind::Dissolve: return "dissolve";
    }
    return "?";
}

std::string ManeuverRecord::str() const {
    std::string out = format("%s(%s)%s%s", to_string(kind), subject.c_str(),
                             succeeded ? "" : " FAILED",
                             reason.empty() ? "" : (": " + reason).c_str());
    out += " members=[";
    for (std::size_t i = 0; i < members_after.size(); ++i) {
        out += (i ? " " : "") + members_after[i];
    }
    out += "]";
    if (!detached.empty()) {
        out += " detached=[";
        for (std::size_t i = 0; i < detached.size(); ++i) {
            out += (i ? " " : "") + detached[i];
        }
        out += "]";
    }
    return out;
}

std::vector<std::string> Platoon::member_names() const {
    std::vector<std::string> out;
    out.reserve(members_.size());
    for (const auto& m : members_) {
        out.push_back(m.id);
    }
    return out;
}

bool Platoon::contains(const std::string& name) const {
    return std::any_of(members_.begin(), members_.end(),
                       [&](const MemberCapability& m) { return m.id == name; });
}

const std::string& Platoon::leader() const {
    SA_REQUIRE(formed() && !members_.empty(), "platoon '" + id_ + "' is not formed");
    return members_.front().id;
}

void Platoon::record(ManeuverRecord r) {
    history_.push_back(r);
    // Emit the local copy, not history_.back(): a subscriber may trigger a
    // follow-up maneuver whose push_back reallocates history_ mid-emit.
    maneuver_performed_.emit(r);
}

bool Platoon::adopt(std::vector<MemberCapability> members, RandomEngine& rng,
                    PlatoonAgreement& out) {
    PlatoonCoordinator coordinator(trust_, config_);
    out = coordinator.form(members, rng);
    if (!out.formed) {
        return false;
    }
    // Keep the admitted members only (trust gating may have dropped some),
    // preserving convoy order.
    std::vector<MemberCapability> admitted;
    for (const auto& m : members) {
        if (std::find(out.members.begin(), out.members.end(), m.id) !=
            out.members.end()) {
            admitted.push_back(m);
        }
    }
    agreement_ = out;
    members_ = std::move(admitted);
    return true;
}

const PlatoonAgreement& Platoon::form(const std::vector<MemberCapability>& candidates,
                                      RandomEngine& rng) {
    PlatoonAgreement attempt;
    const bool ok = adopt(candidates, rng, attempt);
    if (!ok) {
        agreement_ = attempt;
        members_.clear();
    }
    ManeuverRecord r;
    r.kind = ManeuverKind::Form;
    r.reason = ok ? "" : attempt.rejected_reason;
    r.succeeded = ok;
    r.members_after = member_names();
    record(std::move(r));
    return agreement_;
}

const PlatoonAgreement& Platoon::join(const MemberCapability& candidate,
                                      RandomEngine& rng, std::string reason) {
    ManeuverRecord r;
    r.kind = ManeuverKind::Join;
    r.subject = candidate.id;
    r.reason = std::move(reason);
    if (!formed() || contains(candidate.id) ||
        !trust_.trusted(candidate.id, config_.trust_threshold)) {
        r.succeeded = false;
        if (!formed()) {
            r.reason = "platoon not formed";
        } else if (contains(candidate.id)) {
            r.reason = "already a member";
        } else {
            r.reason = "candidate not trusted";
        }
        r.members_after = member_names();
        record(std::move(r));
        return agreement_;
    }
    std::vector<MemberCapability> next = members_;
    next.push_back(candidate);
    PlatoonAgreement attempt;
    const bool ok = adopt(std::move(next), rng, attempt) && contains(candidate.id);
    r.succeeded = ok;
    if (!ok && !attempt.formed) {
        r.reason = attempt.rejected_reason; // platoon unchanged
    }
    r.members_after = member_names();
    record(std::move(r));
    return agreement_;
}

const PlatoonAgreement& Platoon::leave(const std::string& name, RandomEngine& rng,
                                       std::string reason) {
    ManeuverRecord r;
    r.kind = ManeuverKind::Leave;
    r.subject = name;
    r.reason = std::move(reason);
    if (!contains(name)) {
        r.succeeded = false;
        r.reason = "not a member";
        r.members_after = member_names();
        record(std::move(r));
        return agreement_;
    }
    std::vector<MemberCapability> rest;
    for (const auto& m : members_) {
        if (m.id != name) {
            rest.push_back(m);
        }
    }
    if (rest.size() < 2) {
        // A one-vehicle platoon is no platoon: dissolve.
        members_.clear();
        agreement_ = PlatoonAgreement{};
        agreement_.rejected_reason = "dissolved: fewer than two members left";
        r.members_after = member_names();
        record(std::move(r));
        ManeuverRecord d;
        d.kind = ManeuverKind::Dissolve;
        d.reason = "fewer than two members left";
        record(std::move(d));
        return agreement_;
    }
    PlatoonAgreement attempt;
    const bool ok = adopt(std::move(rest), rng, attempt);
    if (!ok) {
        // The remaining members could not re-agree: the platoon dissolves
        // (fail safe) rather than drive on a stale agreement.
        members_.clear();
        agreement_ = attempt;
    }
    r.members_after = member_names();
    record(std::move(r));
    if (!ok) {
        ManeuverRecord d;
        d.kind = ManeuverKind::Dissolve;
        d.reason = "re-agreement failed: " + attempt.rejected_reason;
        record(std::move(d));
    }
    return agreement_;
}

std::vector<MemberCapability> Platoon::split(const std::string& at, RandomEngine& rng,
                                             std::string reason) {
    ManeuverRecord r;
    r.kind = ManeuverKind::Split;
    r.subject = at;
    r.reason = std::move(reason);
    const auto it = std::find_if(members_.begin(), members_.end(),
                                 [&](const MemberCapability& m) { return m.id == at; });
    if (it == members_.end()) {
        r.succeeded = false;
        r.reason = "not a member";
        r.members_after = member_names();
        record(std::move(r));
        return {};
    }
    std::vector<MemberCapability> tail(it, members_.end());
    std::vector<MemberCapability> head(members_.begin(), it);
    for (const auto& m : tail) {
        r.detached.push_back(m.id);
    }
    if (head.size() < 2) {
        // Splitting at the leader (or its immediate follower) leaves no
        // platoon at the head: dissolve.
        members_.clear();
        agreement_ = PlatoonAgreement{};
        agreement_.rejected_reason = "dissolved by split at " + at;
        r.members_after = member_names();
        record(std::move(r));
        ManeuverRecord d;
        d.kind = ManeuverKind::Dissolve;
        d.reason = "split at " + at + " left no head platoon";
        record(std::move(d));
        return tail;
    }
    PlatoonAgreement attempt;
    const bool ok = adopt(std::move(head), rng, attempt);
    if (!ok) {
        members_.clear();
        agreement_ = attempt;
    }
    r.members_after = member_names();
    record(std::move(r));
    if (!ok) {
        ManeuverRecord d;
        d.kind = ManeuverKind::Dissolve;
        d.reason = "head re-agreement failed: " + attempt.rejected_reason;
        record(std::move(d));
    }
    return tail;
}

const PlatoonAgreement& Platoon::update_member(const MemberCapability& capability,
                                               RandomEngine& rng) {
    const auto it = std::find_if(
        members_.begin(), members_.end(),
        [&](const MemberCapability& m) { return m.id == capability.id; });
    SA_REQUIRE(it != members_.end(),
               "update_member: '" + capability.id + "' is not a member");
    *it = capability;
    PlatoonAgreement attempt;
    if (!adopt(members_, rng, attempt)) {
        members_.clear();
        agreement_ = attempt;
        ManeuverRecord d;
        d.kind = ManeuverKind::Dissolve;
        d.subject = capability.id;
        d.reason = "re-agreement failed after capability update: " +
                   attempt.rejected_reason;
        record(std::move(d));
    }
    return agreement_;
}

} // namespace sa::platoon
