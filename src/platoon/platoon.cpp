#include "platoon/platoon.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sa::platoon {

double safe_speed_for_quality(double quality, double nominal_mps) {
    quality = std::clamp(quality, 0.0, 1.0);
    return std::max(2.0, nominal_mps * (0.25 + 0.75 * quality));
}

PlatoonAgreement PlatoonCoordinator::form(const std::vector<MemberCapability>& candidates,
                                          RandomEngine& rng) const {
    PlatoonAgreement agreement;

    // Trust gating: only admit members we trust.
    std::vector<const MemberCapability*> admitted;
    for (const auto& c : candidates) {
        if (trust_.trusted(c.id, config_.trust_threshold)) {
            admitted.push_back(&c);
            agreement.members.push_back(c.id);
        }
    }
    if (admitted.size() < 2) {
        agreement.rejected_reason = "fewer than two trusted members";
        return agreement;
    }

    // Partition into honest proposals and byzantine behaviours. Trust gating
    // is imperfect: byzantine members with good reputations still get in —
    // that is exactly what the consensus must tolerate.
    std::vector<double> honest_speeds;
    std::vector<double> honest_gaps;
    std::size_t byz_count = 0;
    for (const auto* m : admitted) {
        if (m->byzantine) {
            ++byz_count;
        } else {
            honest_speeds.push_back(m->safe_speed_mps);
            honest_gaps.push_back(m->min_gap_m);
        }
    }
    if (honest_speeds.empty()) {
        agreement.rejected_reason = "no honest members";
        return agreement;
    }

    const double lo_speed =
        *std::min_element(honest_speeds.begin(), honest_speeds.end());
    const double hi_speed =
        *std::max_element(honest_speeds.begin(), honest_speeds.end());

    // Byzantine strategy: equivocate wildly around the honest range to pull
    // receivers apart (worst case for convergence).
    std::vector<ByzantineBehavior> byz_speed;
    std::vector<ByzantineBehavior> byz_gap;
    for (std::size_t i = 0; i < byz_count; ++i) {
        const double low = lo_speed - 20.0;
        const double high = hi_speed + 40.0;
        byz_speed.push_back([low, high](int round, std::size_t receiver) {
            return (receiver + static_cast<std::size_t>(round)) % 2 == 0 ? high : low;
        });
        byz_gap.push_back([](int round, std::size_t receiver) {
            return (receiver + static_cast<std::size_t>(round)) % 2 == 0 ? 0.5 : 80.0;
        });
    }
    (void)rng;

    ConsensusConfig cc;
    // Clamp f to what the admitted population supports: approximate
    // agreement under equivocation needs n >= 3f + 1. Small platoons cannot
    // tolerate byzantine members at all — the consensus then fails safe
    // (no convergence => no platoon) rather than agreeing on a poisoned value.
    const int max_f = (static_cast<int>(admitted.size()) - 1) / 3;
    cc.assumed_faults = std::min(config_.assumed_faults, max_f);
    cc.epsilon = config_.consensus_epsilon;
    ApproximateAgreement protocol(cc);

    agreement.speed_consensus = protocol.run(honest_speeds, byz_speed);
    agreement.gap_consensus = protocol.run(honest_gaps, byz_gap);
    agreement.formed =
        agreement.speed_consensus.converged && agreement.gap_consensus.converged;
    if (!agreement.formed) {
        agreement.rejected_reason = "consensus did not converge";
        return agreement;
    }

    // The agreed speed must respect the slowest member: cap at the minimum
    // honest proposal (validity already bounds it; the cap makes it exact).
    agreement.common_speed_mps =
        std::min(agreement.speed_consensus.agreed_value, lo_speed);
    // The agreed gap must respect the largest requirement among honest
    // members: take the max of the consensus value and the honest max.
    const double hi_gap = *std::max_element(honest_gaps.begin(), honest_gaps.end());
    agreement.min_gap_m = std::max(agreement.gap_consensus.agreed_value, hi_gap);
    agreement.speed_safe =
        agreement.common_speed_mps <= lo_speed + config_.safety_tolerance_mps;
    return agreement;
}

} // namespace sa::platoon
