#include "platoon/trust.hpp"

namespace sa::platoon {

void TrustManager::record(const std::string& peer, bool positive) {
    auto& r = records_[peer];
    ++r.total;
    if (positive) {
        ++r.positive;
    }
}

double TrustManager::trust(const std::string& peer) const {
    auto it = records_.find(peer);
    if (it == records_.end()) {
        return 0.5;
    }
    const auto& r = it->second;
    return (static_cast<double>(r.positive) + 1.0) / (static_cast<double>(r.total) + 2.0);
}

std::uint64_t TrustManager::interactions(const std::string& peer) const {
    auto it = records_.find(peer);
    return it == records_.end() ? 0 : it->second.total;
}

std::vector<std::string> TrustManager::known_peers() const {
    std::vector<std::string> out;
    out.reserve(records_.size());
    for (const auto& [peer, _] : records_) {
        out.push_back(peer);
    }
    return out;
}

} // namespace sa::platoon
