#pragma once
// Approximate agreement on a scalar (common platoon velocity / minimum
// distance; §V: "agreeing on a common velocity or a minimum distance between
// vehicles in a platoon is an essential but non-trivial problem as ... the
// platform of another vehicle might not be fully trustworthy or even
// compromised. ... this can be addressed by agreement or consensus
// protocols").
//
// Synchronous trimmed-mean approximate agreement (Dolev et al. style): each
// round, every honest node broadcasts its value, collects all n values,
// discards the f lowest and f highest, and adopts the mean of the rest.
// Byzantine nodes may equivocate (send different values to different
// receivers). With n >= 3f + 1 the honest values contract towards the honest
// range and converge; validity (staying within the initial honest range)
// holds throughout.

#include <cstdint>
#include <functional>
#include <vector>

#include "util/random.hpp"

namespace sa::platoon {

struct ConsensusConfig {
    int max_rounds = 30;
    double epsilon = 0.05; ///< stop when honest spread < epsilon
    int assumed_faults = 0; ///< f used for trimming
};

/// A byzantine node's behaviour: value sent in `round` to honest `receiver`.
using ByzantineBehavior = std::function<double(int round, std::size_t receiver)>;

struct ConsensusResult {
    bool converged = false;
    int rounds = 0;
    std::vector<double> final_values; ///< one per honest node
    double spread = 0.0;              ///< max - min of final honest values
    double agreed_value = 0.0;        ///< mean of final honest values
    bool validity_held = true; ///< honest values stayed within initial honest range
};

class ApproximateAgreement {
public:
    explicit ApproximateAgreement(ConsensusConfig config = {}) : config_(config) {}

    /// Run with the given honest initial values and byzantine behaviours.
    [[nodiscard]] ConsensusResult run(std::vector<double> honest_initial,
                                      const std::vector<ByzantineBehavior>& byzantine) const;

    /// Trimmed mean: drop the f smallest and f largest, average the rest.
    /// Requires values.size() > 2 * f.
    [[nodiscard]] static double trimmed_mean(std::vector<double> values, int f);

    /// Plain mean — the non-robust ablation baseline.
    [[nodiscard]] static double plain_mean(const std::vector<double>& values);

private:
    ConsensusConfig config_;
};

} // namespace sa::platoon
