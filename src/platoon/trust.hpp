#pragma once
// Trust management for cooperating vehicles (§V: "any reaction it takes
// might require cooperation with others and even delegation, raising issues
// of trust and self-protection against other malicious neighbors").
// Beta-reputation: trust = (positive + 1) / (interactions + 2), i.e. a
// Laplace-smoothed success ratio starting at 0.5 for strangers.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sa::platoon {

class TrustManager {
public:
    /// Record an interaction outcome with a peer (e.g. its broadcast matched
    /// our own observation).
    void record(const std::string& peer, bool positive);

    /// Current trust in [0, 1]; unknown peers score 0.5.
    [[nodiscard]] double trust(const std::string& peer) const;

    [[nodiscard]] bool trusted(const std::string& peer, double threshold = 0.6) const {
        return trust(peer) >= threshold;
    }

    [[nodiscard]] std::uint64_t interactions(const std::string& peer) const;
    [[nodiscard]] std::vector<std::string> known_peers() const;

private:
    struct Record {
        std::uint64_t positive = 0;
        std::uint64_t total = 0;
    };
    std::map<std::string, Record> records_;
};

} // namespace sa::platoon
