#pragma once
// VehicleBuilder: declarative assembly of one self-aware vehicle. Declare
// the platform (ECUs, CAN buses, gateways), the contract set, monitors,
// the skill graph, degradation tactics and the layer stack; build()
// composes everything on a simulator in one canonical order (documented at
// build()) so every example, bench and test constructs vehicles the same
// way — construction order stops being implicit call-site knowledge.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "learn/anomaly_model_monitor.hpp"
#include "lint/scenario_shape.hpp"
#include "monitor/budget_monitor.hpp"
#include "scenario/scenario.hpp"
#include "skills/acc_graph_factory.hpp"
#include "skills/capability_registry.hpp"
#include "skills/degradation_policy.hpp"
#include "skills/skill_graph_spec.hpp"

namespace sa::scenario {

/// How build() reacts to the MCC rejecting the declared contract set.
enum class IntegrationPolicy {
    RequireAccepted, ///< SA_REQUIRE acceptance (default: a typo is a bug)
    ReportOnly,      ///< keep the report, skip deployment when rejected
};

/// One ECU declaration — feeds both the model domain (EcuDescriptor for the
/// MCC's platform model) and the execution domain (rte::EcuConfig), which
/// previously had to be kept in sync by hand at every call site.
struct EcuSpec {
    model::EcuDescriptor model;
    /// Absolute DVFS speed factors, fastest first (level 0 = full speed).
    std::vector<double> dvfs_levels{1.0, 0.8, 0.6, 0.4};
    rte::ThermalConfig thermal{};
};

/// A directional bus-to-bus forwarding rule of a BusGateway.
struct GatewayRoute {
    std::string from_bus;
    std::string to_bus;
    std::uint32_t id = 0;
    std::uint32_t mask = 0; ///< 0 forwards every frame
};

/// A named gateway joining two or more buses (can::BusGateway).
struct GatewaySpec {
    std::string name;
    std::vector<GatewayRoute> routes;
    sim::Duration forward_latency = sim::Duration::us(20);
};

class VehicleBuilder {
public:
    explicit VehicleBuilder(std::string name = "ego");

    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    // --- sharding -----------------------------------------------------------
    /// Pin this vehicle (all its buses, ECUs and periodics) to one ECU
    /// domain of a sharded scenario (ScenarioBuilder::domains(n)). Without a
    /// pin, vehicles are assigned round-robin in declaration order.
    VehicleBuilder& domain(std::size_t index);
    [[nodiscard]] std::optional<std::size_t> assigned_domain() const noexcept {
        return domain_;
    }

    // --- platform -----------------------------------------------------------
    /// ECU with default DVFS ladder and thermal model.
    VehicleBuilder& ecu(model::EcuDescriptor descriptor);
    /// ECU with explicit DVFS ladder (absolute speed factors, fastest first)
    /// and thermal model.
    VehicleBuilder& ecu(model::EcuDescriptor descriptor, std::vector<double> dvfs_levels,
                        rte::ThermalConfig thermal = {});
    /// CAN bus; the wire bitrate comes from the descriptor, the remaining
    /// simulation knobs (error rate, trace depth) from `config`.
    VehicleBuilder& can_bus(model::BusDescriptor descriptor,
                            can::CanBusConfig config = {});
    VehicleBuilder& can_gateway(GatewaySpec spec);

    // --- model domain -------------------------------------------------------
    /// Contract-language source, appended to the initial change request.
    VehicleBuilder& contracts(std::string_view text);
    /// Pre-built contracts, appended to the initial change request.
    VehicleBuilder& contracts(std::vector<model::Contract> parsed);
    VehicleBuilder& mcc_options(model::MccOptions options);
    VehicleBuilder& integration_policy(IntegrationPolicy policy);

    // --- raw platform tasks (benchmarks, CAN-driven chains) ----------------
    /// A task registered directly with the ECU's scheduler, outside any
    /// contract. Addressable later via Vehicle::rt_task(ecu, name).
    VehicleBuilder& rt_task(std::string ecu_name, rte::RtTaskConfig task);
    /// Transmit `frame` on `bus` every time the raw task completes.
    VehicleBuilder& can_tx_on_completion(std::string ecu_name, std::string task,
                                         std::string bus, can::CanFrame frame);
    /// Release the raw (sporadic) task whenever a frame matching (id & mask)
    /// arrives on `bus`.
    VehicleBuilder& can_rx_activation(std::string ecu_name, std::string task,
                                      std::string bus, std::uint32_t id,
                                      std::uint32_t mask);

    // --- monitors (created in declaration order) ---------------------------
    /// Rate-based intrusion detection on the service registry, bounds wired
    /// from the MCC's derived security policy. 0 = no default bound.
    VehicleBuilder& rate_ids(sim::Duration window = sim::Duration::ms(100),
                             double default_bound = 0.0);
    /// Over-temperature guard: a Platform-domain RangeMonitor watching
    /// "temp.<ecu>" fed from the ECU's thermal model.
    VehicleBuilder& thermal_guard(std::string ecu_name, double lo_c = -40.0,
                                  double hi_c = 85.0,
                                  monitor::Severity severity = monitor::Severity::Critical);
    VehicleBuilder& deadline_monitor(std::string ecu_name);
    /// Budget monitor over the ECU's scheduler; `budget` (if non-zero) is
    /// applied to every raw task declared on that ECU, regardless of
    /// declaration order relative to this call.
    VehicleBuilder& budget_monitor(std::string ecu_name, monitor::BudgetMode mode,
                                   sim::Duration budget = sim::Duration::zero());
    VehicleBuilder& heartbeat_monitor(std::string watched, sim::Duration timeout);
    /// Model the monitoring cost itself as a periodic RTE task.
    VehicleBuilder& monitor_overhead_task(std::string ecu_name, sim::Duration period,
                                          sim::Duration wcet, int priority);
    /// Online learned anomaly model over the vehicle's metric stream
    /// (learn::AnomalyModelMonitor). With auto_metrics (the default) the
    /// tracked metrics resolve from the declarations — drive.gap and
    /// drive.speed when driving() is declared, sensor.<name> per declared
    /// sensor, skill.<root> when a skill graph is declared — and build()
    /// schedules a metric pump at config.period feeding them into the
    /// monitor manager. Explicitly configured metrics are pumped when they
    /// match one of those feeds and otherwise expected from external
    /// producers (thermal signals, ad-hoc ingest() calls).
    VehicleBuilder& learned_monitor(learn::LearnedMonitorConfig config = {});
    /// Tracked metric names of `config` after auto-resolution against this
    /// builder's declarations (the lint surface for rule LRN001).
    [[nodiscard]] std::vector<std::string>
    resolved_learned_metrics(const learn::LearnedMonitorConfig& config) const;

    // --- skills / degradation ----------------------------------------------
    VehicleBuilder& skill_graph(skills::SkillGraph graph, std::string root_skill);
    /// Declarative form: instantiate `spec` at build time (its aggregation
    /// choices and dependency weights are applied before any aggregation()/
    /// dependency_weight() declared on this builder). The root skill comes
    /// from the spec, which must declare one.
    VehicleBuilder& skill_graph(skills::SkillGraphSpec spec);
    /// Instantiate a spec registered in `registry` by name (the builtin
    /// catalogue by default): `skill_graph("platoon_follow")`.
    VehicleBuilder& skill_graph(const std::string& registry_spec_name,
                                const skills::CapabilityRegistry& registry =
                                    skills::CapabilityRegistry::builtin());
    /// The paper's §IV ACC skill graph with root acc_driving.
    VehicleBuilder& acc_skills(skills::AccGraphOptions options = {});
    /// Route every monitor alarm of this vehicle through `policy` into the
    /// ability graph (capability-quality downgrades via the registry's alarm
    /// bindings plus the policy's own rules) — the unified degradation flow
    /// consumed by the coordinator's ability layer and the self-model.
    /// Requires a skill graph.
    VehicleBuilder& degradation_policy(skills::DegradationPolicy policy);
    VehicleBuilder& aggregation(std::string skill, skills::Aggregation aggregation);
    VehicleBuilder& dependency_weight(std::string skill, std::string child,
                                      double weight);
    /// A degradation tactic whose action receives the built vehicle.
    using VehicleTactic = std::function<void(Vehicle&)>;
    VehicleBuilder& tactic(std::string name, std::string target_skill,
                           double min_level, double max_level, int cost,
                           VehicleTactic apply);
    /// Re-plan tactics from the current ability state every `period`.
    VehicleBuilder& plan_tactics_every(sim::Duration period);

    // --- layer stack --------------------------------------------------------
    /// Layers to register, bottom-up; default none. Ability requires a
    /// configured skill graph.
    VehicleBuilder& layers(std::vector<core::LayerId> which);
    /// All five layers (Ability included only when skills are configured).
    VehicleBuilder& full_layer_stack();
    VehicleBuilder& coordinator(core::CoordinatorConfig config);
    /// Ability-update hook: maps anomalies onto ability-graph inputs before
    /// the ability layer plans (see core::AbilityLayer::set_update_hook).
    using UpdateHook = std::function<bool(Vehicle&, const core::Problem&)>;
    VehicleBuilder& ability_update_hook(UpdateHook hook);
    VehicleBuilder& self_model(sim::Duration period);

    // --- V2V mesh -----------------------------------------------------------
    /// A plain endpoint and a full mesh stack on the scenario's radio medium
    /// (requires ScenarioBuilder::v2v()). Exactly one of the two per vehicle.
    struct V2vEndpointSpec {
        bool is_mesh = false;
        mesh::MeshConfig config{};
        double position_m = 0.0;
    };
    /// Attach this vehicle to the V2V medium at `position_m` as a plain
    /// endpoint: it hears frames (and counts toward deliveries/losses) but
    /// runs no protocol. For a custom receiver, skip this declaration and
    /// call Medium::attach(name, home, receiver) on the built scenario.
    VehicleBuilder& v2v(double position_m = 0.0);
    /// Give this vehicle a mesh::MeshStack protocol endpoint at
    /// `position_m`: neighbor table, TTL'd self-announcements and multi-hop
    /// CAM relay under `config`. Reachable as Scenario::mesh(name).
    VehicleBuilder& mesh(mesh::MeshConfig config = {}, double position_m = 0.0);
    [[nodiscard]] const std::optional<V2vEndpointSpec>&
    v2v_endpoint() const noexcept {
        return v2v_endpoint_;
    }

    // --- closed-loop driving ------------------------------------------------
    VehicleBuilder& driving(vehicle::ScenarioConfig config);
    /// Range sensor on the driving loop; with a quality config a
    /// SensorQualityMonitor is attached (and bound to `skill_node` in the
    /// ability graph when non-empty).
    VehicleBuilder& sensor(vehicle::SensorConfig sensor);
    VehicleBuilder& sensor(vehicle::SensorConfig sensor,
                           monitor::SensorQualityConfig quality,
                           std::string skill_node = {});
    VehicleBuilder& lead_profile(vehicle::LeadProfile profile);

    // --- model-domain-only products (benchmarks, analyses) -----------------
    /// The declared platform as the MCC sees it.
    [[nodiscard]] model::PlatformModel platform_model() const;
    /// The declared contracts as the initial change request.
    [[nodiscard]] model::ChangeRequest change_request() const;

    // --- lint surface -------------------------------------------------------
    /// Fill `shape` with this vehicle's declared topology for the
    /// scenario-layer lint rules. Contract text that fails to parse leaves
    /// `shape.components` empty — ScenarioBuilder::lint() reports the parse
    /// error itself (TXT001).
    void describe(lint::VehicleShape& shape) const;
    /// The declarative skill-graph spec, when one was configured.
    [[nodiscard]] const std::optional<skills::SkillGraphSpec>&
    skill_spec() const noexcept {
        return skill_spec_;
    }
    /// The configured degradation policy, when one was declared.
    [[nodiscard]] const std::optional<skills::DegradationPolicy>&
    declared_degradation_policy() const noexcept {
        return degradation_policy_;
    }

    /// Compose the vehicle on `simulator`. Canonical assembly order:
    ///   1. model domain: MCC + integration of the declared contracts
    ///   2. execution domain: ECUs, buses, gateways, raw tasks, CAN
    ///      bindings, deployment of the accepted configuration, rte.start()
    ///   3. monitors, in declaration order (IDS bounds from the MCC policy)
    ///   4. driving loop + sensors + quality monitors (created, not started)
    ///   5. ability graph: aggregation, weights, sensor bindings
    ///   6. tactics + the periodic tactic planner
    ///   7. quality monitors started, then the driving loop (plus the
    ///      learned monitor's metric pump, when one was declared)
    ///   8. coordinator: layer stack, connect to the monitor stream
    ///   9. self-model capture
    [[nodiscard]] std::unique_ptr<Vehicle> build(sim::Simulator& simulator) const;

private:
    struct BusSpec {
        model::BusDescriptor model;
        can::CanBusConfig config;
    };
    struct RawTaskSpec {
        std::string ecu;
        rte::RtTaskConfig task;
    };
    struct CanTxSpec {
        std::string ecu;
        std::string task;
        std::string bus;
        can::CanFrame frame;
    };
    struct CanRxSpec {
        std::string ecu;
        std::string task;
        std::string bus;
        std::uint32_t id;
        std::uint32_t mask;
    };
    struct RateIdsDecl {
        sim::Duration window;
        double default_bound;
    };
    struct ThermalGuardDecl {
        std::string ecu;
        double lo;
        double hi;
        monitor::Severity severity;
    };
    struct DeadlineDecl {
        std::string ecu;
    };
    struct BudgetDecl {
        std::string ecu;
        monitor::BudgetMode mode;
        sim::Duration budget;
    };
    struct HeartbeatDecl {
        std::string watched;
        sim::Duration timeout;
    };
    struct OverheadDecl {
        std::string ecu;
        sim::Duration period;
        sim::Duration wcet;
        int priority;
    };
    struct LearnedDecl {
        learn::LearnedMonitorConfig config;
    };
    using MonitorDecl = std::variant<RateIdsDecl, ThermalGuardDecl, DeadlineDecl,
                                     BudgetDecl, HeartbeatDecl, OverheadDecl,
                                     LearnedDecl>;
    struct TacticSpec {
        std::string name;
        std::string target_skill;
        double min_level;
        double max_level;
        int cost;
        VehicleTactic apply;
    };
    struct SensorSpec {
        vehicle::SensorConfig config;
        std::optional<monitor::SensorQualityConfig> quality;
        std::string skill_node;
    };
    struct AggregationSpec {
        std::string skill;
        skills::Aggregation aggregation;
    };
    struct WeightSpec {
        std::string skill;
        std::string child;
        double weight;
    };

    void build_monitors(Vehicle& vehicle) const;
    void require_unique_sensor(const std::string& name) const;

    std::string name_;
    std::optional<std::size_t> domain_;
    std::vector<EcuSpec> ecus_;
    std::vector<BusSpec> buses_;
    std::vector<GatewaySpec> gateways_;
    std::string contract_text_;
    std::vector<model::Contract> contracts_;
    model::MccOptions mcc_options_{};
    IntegrationPolicy policy_ = IntegrationPolicy::RequireAccepted;
    std::vector<RawTaskSpec> raw_tasks_;
    std::vector<CanTxSpec> can_tx_;
    std::vector<CanRxSpec> can_rx_;
    std::vector<MonitorDecl> monitor_decls_;
    std::optional<skills::SkillGraph> skill_graph_;
    std::optional<skills::SkillGraphSpec> skill_spec_;
    std::optional<skills::DegradationPolicy> degradation_policy_;
    std::string root_skill_;
    std::vector<AggregationSpec> aggregations_;
    std::vector<WeightSpec> weights_;
    std::vector<TacticSpec> tactics_;
    std::optional<sim::Duration> tactic_plan_period_;
    std::vector<core::LayerId> layers_;
    core::CoordinatorConfig coordinator_config_{};
    UpdateHook update_hook_;
    std::optional<sim::Duration> self_model_period_;
    std::optional<vehicle::ScenarioConfig> driving_;
    std::vector<SensorSpec> sensors_;
    vehicle::LeadProfile lead_profile_;
    std::optional<V2vEndpointSpec> v2v_endpoint_;
};

} // namespace sa::scenario
