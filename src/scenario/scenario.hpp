#pragma once
// sa::scenario — the sanctioned composition root. A Vehicle owns one
// composed self-aware stack (model domain, execution domain, monitors,
// layer stack, skills, optional closed-loop driving); a Scenario owns the
// simulator plus N vehicles and the cooperation substrate (trust, V2V,
// platoon formation) and exposes a single run()/report() surface.
//
// Both are produced by the builders (vehicle_builder.hpp,
// scenario_builder.hpp); examples, benches and tests compose systems there
// instead of hand-wiring subsystems. The paper's pitch — responding "without
// the need to anticipate the exact situation at design time" — only pays off
// if *situations* are cheap to write down; this API is that surface.

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "can/bus_gateway.hpp"
#include "core/coordinator.hpp"
#include "core/objective_layer.hpp"
#include "core/platform_layer.hpp"
#include "core/self_model.hpp"
#include "learn/anomaly_model_monitor.hpp"
#include "mesh/mesh_stack.hpp"
#include "model/mcc.hpp"
#include "monitor/range_monitor.hpp"
#include "monitor/rate_monitor.hpp"
#include "monitor/sensor_quality_monitor.hpp"
#include "platoon/platoon.hpp"
#include "platoon/v2v.hpp"
#include "rte/can_gateway.hpp"
#include "rte/fault_injection.hpp"
#include "rte/rte.hpp"
#include "sim/sharded_kernel.hpp"
#include "skills/ability_graph.hpp"
#include "skills/degradation.hpp"
#include "skills/degradation_policy.hpp"
#include "vehicle/vehicle_sim.hpp"

namespace sa::scenario {

class VehicleBuilder;
class ScenarioBuilder;

/// Per-vehicle slice of a ScenarioReport.
struct VehicleReport {
    std::string name;
    std::uint64_t jobs_completed = 0;
    std::uint64_t deadline_misses = 0;
    std::uint64_t anomalies = 0;
    std::uint64_t problems_handled = 0;
    std::uint64_t problems_resolved = 0;
    std::optional<core::SelfSnapshot> self;

    [[nodiscard]] std::string str() const;
};

/// Aggregate counters at report() time, one entry per vehicle in
/// declaration order.
struct ScenarioReport {
    sim::Time at;
    std::vector<VehicleReport> vehicles;

    [[nodiscard]] const VehicleReport& vehicle(const std::string& name) const;
    [[nodiscard]] std::string str() const;
};

/// One composed self-aware vehicle. Owns its subsystems; typed accessors
/// REQUIRE the corresponding builder declaration (use the has_*() probes
/// when a subsystem is optional in your scenario).
class Vehicle {
public:
    /// Stops every periodic activity this vehicle registered on the
    /// simulator (tactic planner, self-model capture, driving loop, the
    /// RTE's schedulers and thermal models), so a Vehicle built on an
    /// externally owned simulator can be destroyed while the simulator
    /// keeps running.
    ~Vehicle();

    Vehicle(const Vehicle&) = delete;
    Vehicle& operator=(const Vehicle&) = delete;

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] sim::Simulator& simulator() noexcept { return simulator_; }

    // --- model domain -------------------------------------------------------
    [[nodiscard]] bool has_mcc() const noexcept { return mcc_ != nullptr; }
    [[nodiscard]] model::Mcc& mcc();
    /// Report of the build-time integration of the declared contracts.
    [[nodiscard]] const model::IntegrationReport& integration_report() const noexcept {
        return integration_report_;
    }
    /// Run-time change management: integrate a contract-language update and,
    /// when accepted, deploy the new configuration to the running RTE.
    model::IntegrationReport integrate(const std::string& description,
                                       std::string_view contract_text);
    model::IntegrationReport integrate(const model::ChangeRequest& change);

    // --- execution domain ---------------------------------------------------
    [[nodiscard]] rte::Rte& rte() noexcept { return *rte_; }
    [[nodiscard]] rte::FaultInjector& faults() noexcept { return *faults_; }
    [[nodiscard]] bool has_bus_gateway(const std::string& name) const;
    [[nodiscard]] can::BusGateway& bus_gateway(const std::string& name);
    /// CAN endpoint (task <-> frame binding) on (ecu, bus); created by the
    /// builder's can_tx_on_completion()/can_rx_activation() declarations.
    [[nodiscard]] rte::CanGateway& can_endpoint(const std::string& ecu,
                                                const std::string& bus);
    /// Task id of a task declared via VehicleBuilder::rt_task().
    [[nodiscard]] rte::TaskId rt_task(const std::string& ecu,
                                      const std::string& task) const;

    // --- monitors -----------------------------------------------------------
    [[nodiscard]] monitor::MonitorManager& monitors() noexcept { return *monitors_; }
    [[nodiscard]] bool has_ids() const noexcept { return ids_ != nullptr; }
    [[nodiscard]] monitor::RateMonitor& ids();
    [[nodiscard]] bool has_thermal_guard() const noexcept {
        return thermal_guard_ != nullptr;
    }
    [[nodiscard]] monitor::RangeMonitor& thermal_guard();
    [[nodiscard]] monitor::SensorQualityMonitor& sensor_quality(const std::string& sensor);
    /// Learned anomaly monitor (declared via
    /// VehicleBuilder::learned_monitor()).
    [[nodiscard]] bool has_learned_monitor() const noexcept {
        return learned_ != nullptr;
    }
    [[nodiscard]] learn::AnomalyModelMonitor& learned_monitor();

    // --- skills / degradation ----------------------------------------------
    [[nodiscard]] bool has_abilities() const noexcept { return abilities_ != nullptr; }
    [[nodiscard]] skills::AbilityGraph& abilities();
    [[nodiscard]] skills::DegradationManager& tactics() noexcept { return tactics_; }
    void add_tactic(skills::Tactic tactic) { tactics_.register_tactic(std::move(tactic)); }
    /// Unified degradation flow (declared via
    /// VehicleBuilder::degradation_policy()): every monitor alarm is mapped
    /// onto capability-quality downgrades of the ability graph.
    [[nodiscard]] bool has_degradation_policy() const noexcept {
        return policy_ != nullptr;
    }
    [[nodiscard]] skills::DegradationPolicy& degradation_policy();
    /// Root skill of the configured skill graph (empty when none).
    [[nodiscard]] const std::string& root_skill() const noexcept { return root_skill_; }

    // --- layer stack --------------------------------------------------------
    [[nodiscard]] core::CrossLayerCoordinator& coordinator() noexcept {
        return *coordinator_;
    }
    [[nodiscard]] core::ObjectiveLayer& objective_layer();
    [[nodiscard]] core::PlatformLayer& platform_layer();
    [[nodiscard]] bool has_self_model() const noexcept { return self_ != nullptr; }
    [[nodiscard]] core::SelfModel& self_model();

    // --- vehicle dynamics ---------------------------------------------------
    [[nodiscard]] bool has_driving() const noexcept { return driving_ != nullptr; }
    [[nodiscard]] vehicle::VehicleSim& driving();
    /// ACC controller: the driving loop's controller when closed-loop
    /// driving is configured, a standalone instance otherwise.
    [[nodiscard]] vehicle::AccController& acc() noexcept;
    [[nodiscard]] vehicle::BrakeByWire& brakes() noexcept;

    [[nodiscard]] VehicleReport report() const;

private:
    friend class VehicleBuilder;
    Vehicle(std::string name, sim::Simulator& simulator);

    std::string name_;
    sim::Simulator& simulator_;
    model::IntegrationReport integration_report_;
    std::unique_ptr<model::Mcc> mcc_;
    std::unique_ptr<rte::Rte> rte_;
    std::unique_ptr<rte::FaultInjector> faults_;
    std::map<std::string, std::unique_ptr<can::BusGateway>> bus_gateways_;
    std::map<std::pair<std::string, std::string>, std::unique_ptr<rte::CanGateway>>
        can_endpoints_;
    std::map<std::pair<std::string, std::string>, rte::TaskId> raw_tasks_;
    std::unique_ptr<monitor::MonitorManager> monitors_;
    monitor::RateMonitor* ids_ = nullptr;             ///< owned by monitors_
    monitor::RangeMonitor* thermal_guard_ = nullptr;  ///< owned by monitors_
    std::map<std::string, monitor::SensorQualityMonitor*> sensor_quality_;
    learn::AnomalyModelMonitor* learned_ = nullptr; ///< owned by monitors_
    std::uint64_t learned_pump_id_ = 0;             ///< periodic handle; 0 = none
    std::unique_ptr<skills::AbilityGraph> abilities_;
    std::unique_ptr<skills::DegradationPolicy> policy_;
    std::string root_skill_;
    skills::DegradationManager tactics_;
    std::uint64_t tactic_planner_id_ = 0; ///< periodic handle; 0 = none
    std::unique_ptr<vehicle::VehicleSim> driving_;
    vehicle::BrakeByWire brakes_;
    vehicle::AccController acc_;
    std::unique_ptr<core::CrossLayerCoordinator> coordinator_;
    core::ObjectiveLayer* objective_ = nullptr; ///< owned by coordinator_
    std::unique_ptr<core::SelfModel> self_;
};

/// A composed scenario: the simulation kernel (single-queue, or sharded
/// across ECU domains when the builder declared domains(n) > 1), its
/// vehicles and the cooperation substrate, behind one run()/report()
/// surface.
class Scenario {
public:
    Scenario(const Scenario&) = delete;
    Scenario& operator=(const Scenario&) = delete;

    /// The control simulator: the single queue of an unsharded scenario, or
    /// domain 0 of the sharded kernel. Events scheduled here before run()
    /// (beacon drivers, measurement probes) behave identically either way.
    [[nodiscard]] sim::Simulator& simulator() {
        return kernel_ ? kernel_->domain(0) : simulator_;
    }
    /// True when the builder partitioned the scenario into > 1 ECU domains.
    [[nodiscard]] bool sharded() const noexcept { return kernel_ != nullptr; }
    /// The sharded kernel. Requires sharded().
    [[nodiscard]] sim::ShardedKernel& kernel();
    /// Number of ECU domains (1 for the single-queue kernel).
    [[nodiscard]] std::size_t num_domains() const noexcept {
        return kernel_ ? kernel_->num_domains() : 1;
    }
    /// Scenario-level RNG (platoon formation, ad-hoc noise); seeded with the
    /// builder seed, independent of the simulator's own engine.
    [[nodiscard]] RandomEngine& rng() noexcept { return rng_; }

    [[nodiscard]] bool has_vehicle(const std::string& name) const;
    [[nodiscard]] Vehicle& vehicle(const std::string& name);
    /// The single vehicle of a one-vehicle scenario.
    [[nodiscard]] Vehicle& only_vehicle();
    [[nodiscard]] const std::vector<std::string>& vehicle_names() const noexcept {
        return order_;
    }

    // --- cooperation substrate ---------------------------------------------
    [[nodiscard]] platoon::TrustManager& trust() noexcept { return trust_; }
    [[nodiscard]] bool has_v2v() const noexcept { return v2v_ != nullptr; }
    /// The shared radio substrate (ScenarioBuilder::v2v()). Custom receivers
    /// attach here directly: v2v().attach(name, vehicle(name).simulator(),
    /// receiver) — one surface, no implicit home rule.
    [[nodiscard]] v2v::Medium& v2v();
    /// The mesh protocol endpoint of `vehicle` (VehicleBuilder::mesh()).
    [[nodiscard]] bool has_mesh(const std::string& vehicle) const;
    [[nodiscard]] mesh::MeshStack& mesh(const std::string& vehicle);

    // --- cross-vehicle bridges ---------------------------------------------
    /// Scenario-level CAN gateway declared via ScenarioBuilder::bridge():
    /// joins buses of different vehicles (cross-domain when sharded).
    [[nodiscard]] bool has_bridge(const std::string& name) const;
    [[nodiscard]] can::BusGateway& bridge(const std::string& name);
    /// Form a platoon from the builder-declared candidates (or an explicit
    /// list), gated by the shared TrustManager, drawing from rng().
    [[nodiscard]] platoon::PlatoonAgreement form_platoon();
    [[nodiscard]] platoon::PlatoonAgreement
    form_platoon(const std::vector<platoon::MemberCapability>& candidates);

    // --- managed platoon + automatic maneuvers ------------------------------
    /// True when the builder declared platoon_maneuvers(policy).
    [[nodiscard]] bool has_platoon() const noexcept { return platoon_ != nullptr; }
    /// The managed platoon (join/leave/split maneuver history lives here).
    [[nodiscard]] platoon::Platoon& platoon();
    [[nodiscard]] const platoon::ManeuverPolicy& maneuver_policy() const;
    /// Form the managed platoon from the builder-declared candidates. Call
    /// before run() or from a script (`at(...)`); once formed, the maneuver
    /// engine evaluates the policy every check_period at a script barrier:
    /// a member whose follow skill degraded below leave_below leaves, a
    /// mid-platoon member below split_below splits the platoon at its
    /// position, and a non-member candidate below join_below joins.
    const platoon::PlatoonAgreement& form_managed_platoon();
    /// Members detached by split maneuvers so far, in maneuver order.
    [[nodiscard]] const std::vector<platoon::MemberCapability>&
    detached_members() const noexcept {
        return detached_;
    }

    /// Apply weather to every vehicle with closed-loop driving.
    void set_weather(const vehicle::WeatherCondition& weather);

    // --- run / report -------------------------------------------------------
    std::size_t run_until(sim::Time until);
    /// Run until absolute simulation time `until` (from time zero).
    ///
    /// `num_domains` is a cross-check knob, not a re-partitioner: 0 (the
    /// default) runs whatever partition was declared at build time, and any
    /// non-zero value is REQUIREd to equal it (1 for an unsharded scenario)
    /// — the vehicle→domain binding is fixed when the vehicles are
    /// composed, so call sites that state a count fail loudly when the
    /// build disagrees.
    std::size_t run(sim::Duration until, std::size_t num_domains = 0);
    std::size_t run_for(sim::Duration span);
    /// Thread-safe stop request: the single-queue drain (or the sharded
    /// coordinator, at its next barrier) returns, leaving events queued.
    void stop() noexcept { kernel_ ? kernel_->stop() : simulator_.stop(); }

    /// Aggregate counters at the current point of the run. Valid after a
    /// completed run(), after stop(), and after a run() that threw (a
    /// scripted fault injection raising a contract violation): the report
    /// then covers the partial run up to the failure, with `at` at the
    /// furthest domain clock.
    [[nodiscard]] ScenarioReport report() const;

private:
    friend class ScenarioBuilder;
    Scenario(std::uint64_t seed, std::size_t num_domains);

    /// The simulator a domain index maps to (the single queue when
    /// unsharded; domains beyond 0 REQUIRE a sharded build).
    [[nodiscard]] sim::Simulator& domain_simulator(std::size_t domain);

    /// Arm the maneuver engine: one policy evaluation at absolute time `at`,
    /// rescheduling itself every check_period. Uses the script-barrier
    /// mechanism under sharding (every domain quiescent), a plain event on
    /// the single queue — the same dichotomy as ScenarioBuilder::at().
    void schedule_maneuver_check(sim::Time at);
    /// One policy evaluation (runs quiescent; may touch any vehicle).
    void run_maneuver_check();

    sim::Simulator simulator_; ///< single-queue kernel (unsharded scenarios)
    std::unique_ptr<sim::ShardedKernel> kernel_; ///< non-null when domains(n>1)
    RandomEngine rng_;
    platoon::TrustManager trust_;
    platoon::PlatoonConfig platoon_config_;
    std::vector<platoon::MemberCapability> candidates_;
    std::unique_ptr<platoon::Platoon> platoon_;
    platoon::ManeuverPolicy maneuver_policy_;
    /// True while a future maneuver check is scheduled. Cleared when the
    /// engine parks itself on a dissolved platoon; form_managed_platoon()
    /// re-arms.
    bool check_armed_ = false;
    std::vector<platoon::MemberCapability> detached_;
    std::unique_ptr<v2v::Medium> v2v_;
    /// Declared after v2v_: each MeshStack detaches from the medium in its
    /// destructor, so reverse member destruction must tear the stacks down
    /// while the medium is still alive.
    std::map<std::string, std::unique_ptr<mesh::MeshStack>> meshes_;
    std::vector<std::string> order_;
    std::map<std::string, std::unique_ptr<Vehicle>> vehicles_;
    std::map<std::string, std::unique_ptr<can::BusGateway>> bridges_;
};

} // namespace sa::scenario
