#include "scenario/scenario_builder.hpp"

#include <algorithm>

#include "lint/model_rules.hpp"
#include "lint/scenario_rules.hpp"
#include "lint/skills_rules.hpp"
#include "model/contract_parser.hpp"
#include "util/assert.hpp"
#include "util/string_util.hpp"

namespace sa::scenario {

ScenarioBuilder::ScenarioBuilder(std::uint64_t seed) : seed_(seed) {}

VehicleBuilder& ScenarioBuilder::vehicle(const std::string& name) {
    for (auto& builder : builders_) {
        if (builder.name() == name) {
            return builder;
        }
    }
    order_.push_back(name);
    builders_.emplace_back(name);
    return builders_.back();
}

ScenarioBuilder& ScenarioBuilder::domains(std::size_t n) {
    SA_REQUIRE(n >= 1, "a scenario needs at least one domain");
    num_domains_ = n;
    return *this;
}

ScenarioBuilder& ScenarioBuilder::bridge(BridgeSpec spec) {
    SA_REQUIRE(!spec.name.empty(), "bridge needs a name");
    SA_REQUIRE(!spec.routes.empty(), "bridge needs at least one route");
    bridges_.push_back(std::move(spec));
    return *this;
}

ScenarioBuilder& ScenarioBuilder::v2v(v2v::MediumConfig config) {
    SA_REQUIRE(config.loss_probability >= 0.0 && config.loss_probability <= 1.0,
               "loss probability must be in [0, 1]");
    v2v_enabled_ = true;
    v2v_config_ = config;
    return *this;
}

ScenarioBuilder& ScenarioBuilder::v2v(double loss_probability, sim::Duration latency) {
    v2v::MediumConfig config;
    config.loss_probability = loss_probability;
    config.latency = latency;
    return v2v(config);
}

ScenarioBuilder& ScenarioBuilder::trust(const std::string& peer, int positive,
                                        int negative) {
    SA_REQUIRE(positive >= 0 && negative >= 0, "trust counts must be non-negative");
    trust_seeds_.push_back(TrustSeed{peer, positive, negative});
    return *this;
}

ScenarioBuilder& ScenarioBuilder::platoon_config(platoon::PlatoonConfig config) {
    platoon_config_ = config;
    return *this;
}

ScenarioBuilder& ScenarioBuilder::platoon_candidate(platoon::MemberCapability candidate) {
    candidates_.push_back(std::move(candidate));
    return *this;
}

ScenarioBuilder& ScenarioBuilder::platoon_maneuvers(platoon::ManeuverPolicy policy) {
    SA_REQUIRE(!policy.follow_skill.empty(), "maneuver policy needs a follow skill");
    SA_REQUIRE(policy.check_period.count_ns() > 0,
               "maneuver check period must be positive");
    SA_REQUIRE(policy.leave_below >= policy.split_below,
               "leave_below must be >= split_below (a split is the more "
               "severe maneuver)");
    maneuver_policy_ = policy;
    return *this;
}

ScenarioBuilder& ScenarioBuilder::at(sim::Duration when,
                                     std::function<void(Scenario&)> action) {
    SA_REQUIRE(action != nullptr, "script needs an action");
    SA_REQUIRE(when.count_ns() >= 0, "script time must be non-negative");
    scripts_.push_back(Script{when, std::move(action)});
    return *this;
}

ScenarioBuilder& ScenarioBuilder::duration_hint(sim::Duration duration) {
    SA_REQUIRE(duration.count_ns() >= 0, "duration hint must be non-negative");
    duration_hint_ = duration;
    return *this;
}

lint::LintReport
ScenarioBuilder::lint(const skills::CapabilityRegistry& registry) const {
    lint::LintReport report;

    // Scenario-layer topology rules (SCN*).
    lint::ScenarioShape shape;
    shape.num_domains = num_domains_;
    shape.v2v_enabled = v2v_enabled_;
    shape.v2v_latency_ns = v2v_config_.latency.count_ns();
    shape.v2v_range_m = v2v_config_.range_m;
    shape.duration_hint_ns = duration_hint_.count_ns();
    for (const auto& name : order_) {
        auto it = std::find_if(builders_.begin(), builders_.end(),
                               [&](const VehicleBuilder& b) {
                                   return b.name() == name;
                               });
        SA_ASSERT(it != builders_.end(), "builder list out of sync");
        lint::VehicleShape vehicle;
        it->describe(vehicle);
        shape.vehicles.push_back(std::move(vehicle));
    }
    for (const auto& spec : bridges_) {
        lint::GatewayShape bridge;
        bridge.name = spec.name;
        bridge.forward_latency_ns = spec.forward_latency.count_ns();
        for (const auto& route : spec.routes) {
            bridge.routes.push_back(lint::RouteShape{
                route.from_vehicle + ":" + route.from_bus,
                route.to_vehicle + ":" + route.to_bus, route.id, route.mask});
        }
        shape.bridges.push_back(std::move(bridge));
    }
    report.merge(lint::lint_scenario(shape));

    // Model- and skills-layer rules per vehicle.
    for (const auto& builder : builders_) {
        try {
            const model::ChangeRequest change = builder.change_request();
            if (!change.contracts.empty()) {
                const model::FunctionModel functions{change.contracts};
                report.merge(
                    lint::lint_system(functions, builder.platform_model()));
            }
        } catch (const model::ParseError& error) {
            report.add("TXT001",
                       "vehicle " + builder.name() + " / contracts",
                       format("line %d: %s", error.line(), error.what()));
        }
        if (builder.skill_spec().has_value()) {
            report.merge(lint::lint_spec(*builder.skill_spec(), &registry));
        }
        if (builder.declared_degradation_policy().has_value()) {
            const auto& policy = *builder.declared_degradation_policy();
            for (const auto& rule : policy.extra_rules()) {
                report.merge(lint::lint_binding(rule, policy.registry()));
            }
        }
    }
    return report;
}

ScenarioBuilder& ScenarioBuilder::strict(bool enabled) {
    strict_ = enabled;
    return *this;
}

std::unique_ptr<Scenario> ScenarioBuilder::build() {
    if (strict_) {
        const lint::LintReport report = lint();
        SA_REQUIRE(report.error_count() + report.warning_count() == 0,
                   "strict scenario lint failed:\n" + report.str());
    }
    auto scenario = std::unique_ptr<Scenario>(new Scenario(seed_, num_domains_));
    std::size_t round_robin = 0;
    for (const auto& name : order_) {
        auto it = std::find_if(builders_.begin(), builders_.end(),
                               [&](const VehicleBuilder& b) { return b.name() == name; });
        SA_ASSERT(it != builders_.end(), "builder list out of sync");
        // Pinned vehicles must not consume round-robin slots: only unpinned
        // ones advance the counter, so "round-robin in declaration order
        // unless pinned" means exactly that.
        std::size_t domain;
        if (it->assigned_domain().has_value()) {
            domain = *it->assigned_domain();
        } else {
            domain = round_robin++ % num_domains_;
        }
        SA_REQUIRE(domain < num_domains_,
                   "vehicle '" + name + "' pinned to domain out of range");
        scenario->vehicles_.emplace(name,
                                    it->build(scenario->domain_simulator(domain)));
        scenario->order_.push_back(name);
    }
    for (const auto& spec : bridges_) {
        SA_REQUIRE(!scenario->bridges_.contains(spec.name),
                   "duplicate bridge: " + spec.name);
        auto gateway =
            std::make_unique<can::BusGateway>(spec.name, spec.forward_latency);
        for (const auto& route : spec.routes) {
            can::CanBus& from =
                scenario->vehicle(route.from_vehicle).rte().can_bus(route.from_bus);
            can::CanBus& to =
                scenario->vehicle(route.to_vehicle).rte().can_bus(route.to_bus);
            gateway->add_route(from, to, route.id, route.mask);
        }
        scenario->bridges_.emplace(spec.name, std::move(gateway));
    }
    for (const auto& seed : trust_seeds_) {
        for (int i = 0; i < seed.positive; ++i) {
            scenario->trust_.record(seed.peer, true);
        }
        for (int i = 0; i < seed.negative; ++i) {
            scenario->trust_.record(seed.peer, false);
        }
    }
    if (v2v_enabled_) {
        scenario->v2v_ = std::make_unique<v2v::Medium>(scenario->simulator(),
                                                       v2v_config_);
    }
    for (const auto& name : order_) {
        auto it = std::find_if(builders_.begin(), builders_.end(),
                               [&](const VehicleBuilder& b) { return b.name() == name; });
        SA_ASSERT(it != builders_.end(), "builder list out of sync");
        const auto& endpoint = it->v2v_endpoint();
        if (!endpoint.has_value()) {
            continue;
        }
        SA_REQUIRE(v2v_enabled_, "vehicle '" + name +
                                     "' declared a V2V endpoint but the "
                                     "scenario has no v2v() medium");
        sim::Simulator& home = scenario->vehicle(name).simulator();
        if (endpoint->is_mesh) {
            scenario->meshes_.emplace(
                name, std::make_unique<mesh::MeshStack>(
                          name, *scenario->v2v_, home, endpoint->config,
                          endpoint->position_m));
        } else {
            scenario->v2v_->attach(
                name, home, [](const v2v::Frame&, double) {},
                endpoint->position_m);
        }
    }
    scenario->platoon_config_ = platoon_config_;
    scenario->candidates_ = candidates_;
    if (maneuver_policy_.has_value()) {
        scenario->maneuver_policy_ = *maneuver_policy_;
        scenario->platoon_ = std::make_unique<platoon::Platoon>(
            "platoon", scenario->trust_, platoon_config_);
        scenario->schedule_maneuver_check(
            sim::Time(maneuver_policy_->check_period.count_ns()));
        scenario->check_armed_ = true;
    }
    Scenario* raw = scenario.get();
    for (const auto& script : scripts_) {
        if (scenario->kernel_) {
            // Scripts are global barriers under sharding: they run at
            // exactly `when` with every domain quiescent, so they may touch
            // any vehicle without racing the workers.
            scenario->kernel_->schedule_script(
                sim::Time(script.when.count_ns()),
                [raw, action = script.action] { action(*raw); });
        } else {
            (void)scenario->simulator_.schedule(
                script.when, [raw, action = script.action] { action(*raw); });
        }
    }
    return scenario;
}

} // namespace sa::scenario
