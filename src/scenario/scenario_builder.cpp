#include "scenario/scenario_builder.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sa::scenario {

ScenarioBuilder::ScenarioBuilder(std::uint64_t seed) : seed_(seed) {}

VehicleBuilder& ScenarioBuilder::vehicle(const std::string& name) {
    for (auto& builder : builders_) {
        if (builder.name() == name) {
            return builder;
        }
    }
    order_.push_back(name);
    builders_.emplace_back(name);
    return builders_.back();
}

ScenarioBuilder& ScenarioBuilder::v2v(double loss_probability, sim::Duration latency) {
    SA_REQUIRE(loss_probability >= 0.0 && loss_probability <= 1.0,
               "loss probability must be in [0, 1]");
    v2v_enabled_ = true;
    v2v_loss_ = loss_probability;
    v2v_latency_ = latency;
    return *this;
}

ScenarioBuilder& ScenarioBuilder::trust(const std::string& peer, int positive,
                                        int negative) {
    SA_REQUIRE(positive >= 0 && negative >= 0, "trust counts must be non-negative");
    trust_seeds_.push_back(TrustSeed{peer, positive, negative});
    return *this;
}

ScenarioBuilder& ScenarioBuilder::platoon_config(platoon::PlatoonConfig config) {
    platoon_config_ = config;
    return *this;
}

ScenarioBuilder& ScenarioBuilder::platoon_candidate(platoon::MemberCapability candidate) {
    candidates_.push_back(std::move(candidate));
    return *this;
}

ScenarioBuilder& ScenarioBuilder::at(sim::Duration when,
                                     std::function<void(Scenario&)> action) {
    SA_REQUIRE(action != nullptr, "script needs an action");
    SA_REQUIRE(when.count_ns() >= 0, "script time must be non-negative");
    scripts_.push_back(Script{when, std::move(action)});
    return *this;
}

std::unique_ptr<Scenario> ScenarioBuilder::build() {
    auto scenario = std::unique_ptr<Scenario>(new Scenario(seed_));
    for (const auto& name : order_) {
        auto it = std::find_if(builders_.begin(), builders_.end(),
                               [&](const VehicleBuilder& b) { return b.name() == name; });
        SA_ASSERT(it != builders_.end(), "builder list out of sync");
        scenario->vehicles_.emplace(name, it->build(scenario->simulator_));
        scenario->order_.push_back(name);
    }
    for (const auto& seed : trust_seeds_) {
        for (int i = 0; i < seed.positive; ++i) {
            scenario->trust_.record(seed.peer, true);
        }
        for (int i = 0; i < seed.negative; ++i) {
            scenario->trust_.record(seed.peer, false);
        }
    }
    if (v2v_enabled_) {
        scenario->v2v_ = std::make_unique<platoon::V2vChannel>(scenario->simulator_,
                                                               v2v_loss_, v2v_latency_);
    }
    scenario->platoon_config_ = platoon_config_;
    scenario->candidates_ = candidates_;
    Scenario* raw = scenario.get();
    for (const auto& script : scripts_) {
        (void)scenario->simulator_.schedule(script.when,
                                            [raw, action = script.action] {
                                                action(*raw);
                                            });
    }
    return scenario;
}

} // namespace sa::scenario
