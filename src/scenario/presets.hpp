#pragma once
// Canonical scenario presets: vehicle shapes shared between the test suites
// and the benchmarks, so the workload a bench measures is byte-identical to
// the workload the determinism/regression tests lock in. The flagship
// preset follows the dual-bus zonal shape of examples/platoon_dual_bus.cpp
// (sensor zone -> gateway -> actuation zone) minus the example's acc_app
// application component, which rides on the services but adds nothing to
// the CAN chain the sharded suites measure.

#include <string>

#include "scenario/scenario_builder.hpp"

namespace sa::scenario::presets {

/// CAN id of the object frames crossing the dual-bus vehicle's gateway.
inline constexpr std::uint32_t kDualBusObjectFrameId = 0x120;

/// Declare one dual-bus zonal vehicle on `builder`: two ECU zones on
/// separate CAN buses joined by a store-and-forward gateway, a raw
/// object-TX / brake-activation chain across the gateway, perception and
/// brake-control contracts, rate IDS, the ACC skill graph, the full layer
/// stack and a 500 ms self-model. Deterministic: no task randomises its
/// execution time and no bus has a non-zero error rate, so runs reproduce
/// bit-for-bit from a seed (the sharded determinism suite depends on this).
void declare_dual_bus_platoon_vehicle(ScenarioBuilder& builder,
                                      const std::string& name);

/// Maneuver-scenario variant: the same deterministic dual-bus platform, but
/// running the registry's platoon_follow skill graph with the unified
/// degradation policy instead of the ACC graph. The follow skill degrades
/// through capability downgrades (fog scripts, sensor faults), which is what
/// the automatic join/leave/split maneuvers key on — shared by the sharded
/// determinism suite and bench/skill_graph_sweep.cpp so they measure one
/// workload.
void declare_platoon_follow_vehicle(ScenarioBuilder& builder,
                                    const std::string& name);

} // namespace sa::scenario::presets
