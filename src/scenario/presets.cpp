#include "scenario/presets.hpp"

namespace sa::scenario::presets {

void declare_dual_bus_platoon_vehicle(ScenarioBuilder& builder,
                                      const std::string& name) {
    rte::RtTaskConfig obj_tx;
    obj_tx.name = "obj_tx";
    obj_tx.priority = 100;
    obj_tx.period = sim::Duration::ms(20);
    obj_tx.wcet = sim::Duration::us(150);
    obj_tx.randomize_exec = false;
    rte::RtTaskConfig brake_apply;
    brake_apply.name = "brake_apply";
    brake_apply.priority = 100;
    brake_apply.period = sim::Duration::zero(); // sporadic: released by CAN RX
    brake_apply.wcet = sim::Duration::us(80);
    brake_apply.randomize_exec = false;

    builder.vehicle(name)
        .ecu({"zone_front", 1.0, 0.75, model::Asil::D, "engine_bay", "main"})
        .ecu({"zone_rear", 1.0, 0.75, model::Asil::D, "trunk", "main"})
        .can_bus({"can_sense", 500'000, 0.6})
        .can_bus({"can_act", 250'000, 0.6})
        .can_gateway({"gw",
                      {{"can_sense", "can_act", kDualBusObjectFrameId, 0x7F0}},
                      sim::Duration::us(50)})
        .contracts(R"(
            component perception {
              asil C;
              security_level 1;
              task track { wcet 2ms; period 20ms; }
              provides service object_list { max_rate 100/s; }
              message objects { payload 8; period 20ms; bus can_sense; }
              pin ecu zone_front;
            }
            component brake_ctrl {
              asil D;
              security_level 2;
              task control { wcet 400us; period 10ms; deadline 8ms; }
              provides service brake_cmd { max_rate 300/s; min_client_level 1; }
              message brake { payload 4; period 10ms; bus can_act; }
              pin ecu zone_rear;
            }
        )")
        .rt_task("zone_front", obj_tx)
        .rt_task("zone_rear", brake_apply)
        .can_tx_on_completion(
            "zone_front", "obj_tx", "can_sense",
            can::CanFrame::make(kDualBusObjectFrameId, {1, 2, 3, 4}))
        .can_rx_activation("zone_rear", "brake_apply", "can_act",
                           kDualBusObjectFrameId, 0x7F0)
        .rate_ids(sim::Duration::ms(100), 400.0)
        .acc_skills()
        .full_layer_stack()
        .self_model(sim::Duration::ms(500));
}

void declare_platoon_follow_vehicle(ScenarioBuilder& builder,
                                    const std::string& name) {
    declare_dual_bus_platoon_vehicle(builder, name);
    builder.vehicle(name)
        .skill_graph("platoon_follow")
        .degradation_policy(skills::DegradationPolicy{});
}

} // namespace sa::scenario::presets
