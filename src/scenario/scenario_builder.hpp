#pragma once
// ScenarioBuilder: N vehicles on one simulator plus the cooperation
// substrate (trust records, V2V channel, platoon candidates) and scripted
// events, producing a Scenario with a single run()/report() surface.

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <vector>

#include "lint/diagnostics.hpp"
#include "scenario/vehicle_builder.hpp"

namespace sa::scenario {

/// A directional cross-vehicle forwarding rule of a scenario-level bridge.
struct BridgeRoute {
    std::string from_vehicle;
    std::string from_bus;
    std::string to_vehicle;
    std::string to_bus;
    std::uint32_t id = 0;
    std::uint32_t mask = 0; ///< 0 forwards every frame
};

/// A named scenario-level CAN gateway joining buses of different vehicles
/// (a backbone link). Under sharding its routes cross domains and the
/// forward latency becomes the ingress domains' lookahead.
struct BridgeSpec {
    std::string name;
    std::vector<BridgeRoute> routes;
    sim::Duration forward_latency = sim::Duration::us(100);
};

class ScenarioBuilder {
public:
    /// `seed` seeds both the simulator and the scenario-level RNG.
    explicit ScenarioBuilder(std::uint64_t seed = 0x5AA5F00DULL);

    /// Declare (or retrieve, by name) a vehicle. Builders are stable: keep
    /// the reference and chain configuration across statements.
    VehicleBuilder& vehicle(const std::string& name);

    /// Partition the scenario into `n` ECU domains (sim::ShardedKernel).
    /// Vehicles are assigned round-robin in declaration order unless pinned
    /// via VehicleBuilder::domain(). 1 (the default) builds everything on
    /// one single-queue Simulator — bit-for-bit today's behaviour.
    ScenarioBuilder& domains(std::size_t n);

    /// Declare a scenario-level bridge joining buses of different vehicles.
    ScenarioBuilder& bridge(BridgeSpec spec);

    // --- cooperation substrate ---------------------------------------------
    /// Create the shared V2V radio medium (v2v::Medium) with the full
    /// physics surface: base loss, latency, hard radio range and fading
    /// model. Vehicles join it via VehicleBuilder::v2v()/mesh().
    ScenarioBuilder& v2v(v2v::MediumConfig config);
    /// Range-free shorthand (base loss + latency only).
    ScenarioBuilder& v2v(double loss_probability,
                         sim::Duration latency = sim::Duration::ms(20));
    /// Seed the shared TrustManager with interaction history for a peer.
    ScenarioBuilder& trust(const std::string& peer, int positive, int negative = 0);
    ScenarioBuilder& platoon_config(platoon::PlatoonConfig config);
    ScenarioBuilder& platoon_candidate(platoon::MemberCapability candidate);
    /// Manage a platoon over the declared candidates with automatic
    /// join/leave/split maneuvers driven by the members' skill-graph levels:
    /// the maneuver engine evaluates `policy` every check_period at a
    /// script barrier (deterministic across domain counts). Form the platoon
    /// with Scenario::form_managed_platoon() (directly or from a script).
    ScenarioBuilder& platoon_maneuvers(platoon::ManeuverPolicy policy);

    // --- scripted events ----------------------------------------------------
    /// Run `action` at absolute simulation time `when`.
    ScenarioBuilder& at(sim::Duration when, std::function<void(Scenario&)> action);

    /// Declare how long the scenario is intended to run. Purely a lint
    /// surface: rule LRN002 checks learned-monitor warm-ups against it.
    ScenarioBuilder& duration_hint(sim::Duration duration);

    // --- static analysis ----------------------------------------------------
    /// Lint the declared topology without building anything: scenario rules
    /// (SCN*) over every vehicle and bridge, model rules (MDL*) over each
    /// vehicle's contracts and platform, skills rules (SKL*) over each
    /// vehicle's spec and degradation-policy rules against `registry`.
    /// Contract text that fails to parse becomes a TXT001 finding instead of
    /// an exception.
    [[nodiscard]] lint::LintReport
    lint(const skills::CapabilityRegistry& registry =
             skills::CapabilityRegistry::builtin()) const;

    /// Strict build mode: build() first runs lint() and requires zero
    /// errors AND zero warnings (Info findings are allowed).
    ScenarioBuilder& strict(bool enabled = true);

    /// Build every declared vehicle (in declaration order), seed trust,
    /// create the V2V channel, then schedule the scripts.
    [[nodiscard]] std::unique_ptr<Scenario> build();

private:
    struct TrustSeed {
        std::string peer;
        int positive;
        int negative;
    };
    struct Script {
        sim::Duration when;
        std::function<void(Scenario&)> action;
    };

    std::uint64_t seed_;
    bool strict_ = false;
    std::size_t num_domains_ = 1;
    std::vector<std::string> order_;
    std::list<VehicleBuilder> builders_; ///< list: stable references
    std::vector<BridgeSpec> bridges_;
    bool v2v_enabled_ = false;
    v2v::MediumConfig v2v_config_{};
    std::vector<TrustSeed> trust_seeds_;
    platoon::PlatoonConfig platoon_config_{};
    std::vector<platoon::MemberCapability> candidates_;
    std::optional<platoon::ManeuverPolicy> maneuver_policy_;
    std::vector<Script> scripts_;
    sim::Duration duration_hint_ = sim::Duration::zero();
};

} // namespace sa::scenario
