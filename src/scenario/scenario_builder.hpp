#pragma once
// ScenarioBuilder: N vehicles on one simulator plus the cooperation
// substrate (trust records, V2V channel, platoon candidates) and scripted
// events, producing a Scenario with a single run()/report() surface.

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <vector>

#include "scenario/vehicle_builder.hpp"

namespace sa::scenario {

class ScenarioBuilder {
public:
    /// `seed` seeds both the simulator and the scenario-level RNG.
    explicit ScenarioBuilder(std::uint64_t seed = 0x5AA5F00DULL);

    /// Declare (or retrieve, by name) a vehicle. Builders are stable: keep
    /// the reference and chain configuration across statements.
    VehicleBuilder& vehicle(const std::string& name);

    // --- cooperation substrate ---------------------------------------------
    ScenarioBuilder& v2v(double loss_probability,
                         sim::Duration latency = sim::Duration::ms(20));
    /// Seed the shared TrustManager with interaction history for a peer.
    ScenarioBuilder& trust(const std::string& peer, int positive, int negative = 0);
    ScenarioBuilder& platoon_config(platoon::PlatoonConfig config);
    ScenarioBuilder& platoon_candidate(platoon::MemberCapability candidate);

    // --- scripted events ----------------------------------------------------
    /// Run `action` at absolute simulation time `when`.
    ScenarioBuilder& at(sim::Duration when, std::function<void(Scenario&)> action);

    /// Build every declared vehicle (in declaration order), seed trust,
    /// create the V2V channel, then schedule the scripts.
    [[nodiscard]] std::unique_ptr<Scenario> build();

private:
    struct TrustSeed {
        std::string peer;
        int positive;
        int negative;
    };
    struct Script {
        sim::Duration when;
        std::function<void(Scenario&)> action;
    };

    std::uint64_t seed_;
    std::vector<std::string> order_;
    std::list<VehicleBuilder> builders_; ///< list: stable references
    bool v2v_enabled_ = false;
    double v2v_loss_ = 0.0;
    sim::Duration v2v_latency_ = sim::Duration::ms(20);
    std::vector<TrustSeed> trust_seeds_;
    platoon::PlatoonConfig platoon_config_{};
    std::vector<platoon::MemberCapability> candidates_;
    std::vector<Script> scripts_;
};

} // namespace sa::scenario
