#include "scenario/scenario.hpp"

#include "model/contract_parser.hpp"
#include "util/assert.hpp"
#include "util/string_util.hpp"

namespace sa::scenario {

Vehicle::Vehicle(std::string name, sim::Simulator& simulator)
    : name_(std::move(name)), simulator_(simulator) {}

Vehicle::~Vehicle() {
    // Tear down every periodic activity registered on the simulator so a
    // vehicle built on an externally owned simulator can die first: the
    // simulator may keep running after this vehicle is gone. Monitors and
    // bus gateways cancel/guard their own events in their destructors.
    if (self_ != nullptr) {
        self_->stop();
    }
    if (tactic_planner_id_ != 0) {
        simulator_.cancel_periodic(tactic_planner_id_);
    }
    if (learned_pump_id_ != 0) {
        simulator_.cancel_periodic(learned_pump_id_);
    }
    if (driving_ != nullptr) {
        driving_->stop();
    }
    if (rte_ != nullptr) {
        rte_->stop(); // scheduler job releases + thermal updates per ECU
    }
}

model::IntegrationReport Vehicle::integrate(const std::string& description,
                                            std::string_view contract_text) {
    model::ContractParser parser;
    model::ChangeRequest change;
    change.description = description;
    change.contracts = parser.parse(std::string(contract_text));
    return integrate(change);
}

model::Mcc& Vehicle::mcc() {
    SA_REQUIRE(mcc_ != nullptr,
               "vehicle '" + name_ + "': no model domain (declare at least one ECU)");
    return *mcc_;
}

model::IntegrationReport Vehicle::integrate(const model::ChangeRequest& change) {
    model::IntegrationReport report = mcc().integrate(change);
    if (report.accepted) {
        rte_->apply(mcc_->make_rte_config());
    }
    return report;
}

bool Vehicle::has_bus_gateway(const std::string& name) const {
    return bus_gateways_.contains(name);
}

can::BusGateway& Vehicle::bus_gateway(const std::string& name) {
    auto it = bus_gateways_.find(name);
    SA_REQUIRE(it != bus_gateways_.end(),
               "vehicle '" + name_ + "': unknown bus gateway: " + name);
    return *it->second;
}

rte::CanGateway& Vehicle::can_endpoint(const std::string& ecu, const std::string& bus) {
    auto it = can_endpoints_.find({ecu, bus});
    SA_REQUIRE(it != can_endpoints_.end(), "vehicle '" + name_ +
                                               "': no CAN endpoint for ECU " + ecu +
                                               " on bus " + bus);
    return *it->second;
}

rte::TaskId Vehicle::rt_task(const std::string& ecu, const std::string& task) const {
    auto it = raw_tasks_.find({ecu, task});
    SA_REQUIRE(it != raw_tasks_.end(),
               "vehicle '" + name_ + "': unknown raw task " + ecu + "." + task);
    return it->second;
}

monitor::RateMonitor& Vehicle::ids() {
    SA_REQUIRE(ids_ != nullptr, "vehicle '" + name_ + "': rate_ids() not declared");
    return *ids_;
}

monitor::RangeMonitor& Vehicle::thermal_guard() {
    SA_REQUIRE(thermal_guard_ != nullptr,
               "vehicle '" + name_ + "': thermal_guard() not declared");
    return *thermal_guard_;
}

monitor::SensorQualityMonitor& Vehicle::sensor_quality(const std::string& sensor) {
    auto it = sensor_quality_.find(sensor);
    SA_REQUIRE(it != sensor_quality_.end(),
               "vehicle '" + name_ + "': no quality monitor for sensor " + sensor);
    return *it->second;
}

learn::AnomalyModelMonitor& Vehicle::learned_monitor() {
    SA_REQUIRE(learned_ != nullptr,
               "vehicle '" + name_ + "': learned_monitor() not declared");
    return *learned_;
}

skills::AbilityGraph& Vehicle::abilities() {
    SA_REQUIRE(abilities_ != nullptr,
               "vehicle '" + name_ + "': no skill graph configured");
    return *abilities_;
}

skills::DegradationPolicy& Vehicle::degradation_policy() {
    SA_REQUIRE(policy_ != nullptr,
               "vehicle '" + name_ + "': degradation_policy() not declared");
    return *policy_;
}

core::ObjectiveLayer& Vehicle::objective_layer() {
    SA_REQUIRE(objective_ != nullptr,
               "vehicle '" + name_ + "': objective layer not registered");
    return *objective_;
}

core::PlatformLayer& Vehicle::platform_layer() {
    SA_REQUIRE(coordinator_->has_layer(core::LayerId::Platform),
               "vehicle '" + name_ + "': platform layer not registered");
    auto* layer = dynamic_cast<core::PlatformLayer*>(
        &coordinator_->layer(core::LayerId::Platform));
    SA_REQUIRE(layer != nullptr, "platform layer has an unexpected type");
    return *layer;
}

core::SelfModel& Vehicle::self_model() {
    SA_REQUIRE(self_ != nullptr, "vehicle '" + name_ + "': self_model() not declared");
    return *self_;
}

vehicle::VehicleSim& Vehicle::driving() {
    SA_REQUIRE(driving_ != nullptr, "vehicle '" + name_ + "': driving() not declared");
    return *driving_;
}

vehicle::AccController& Vehicle::acc() noexcept {
    return driving_ != nullptr ? driving_->acc() : acc_;
}

vehicle::BrakeByWire& Vehicle::brakes() noexcept {
    return driving_ != nullptr ? driving_->brakes() : brakes_;
}

VehicleReport Vehicle::report() const {
    VehicleReport report;
    report.name = name_;
    report.jobs_completed = rte_->total_completed_jobs();
    report.deadline_misses = rte_->total_deadline_misses();
    report.anomalies = monitors_->total_anomalies();
    report.problems_handled = coordinator_->problems_handled();
    report.problems_resolved = coordinator_->problems_resolved();
    if (self_ != nullptr && !self_->history().empty()) {
        report.self = self_->latest();
    }
    return report;
}

std::string VehicleReport::str() const {
    std::string text = format(
        "%s: jobs=%llu misses=%llu anomalies=%llu problems=%llu/%llu", name.c_str(),
        static_cast<unsigned long long>(jobs_completed),
        static_cast<unsigned long long>(deadline_misses),
        static_cast<unsigned long long>(anomalies),
        static_cast<unsigned long long>(problems_resolved),
        static_cast<unsigned long long>(problems_handled));
    if (self.has_value()) {
        text += " self=" + self->str();
    }
    return text;
}

const VehicleReport& ScenarioReport::vehicle(const std::string& name) const {
    for (const auto& v : vehicles) {
        if (v.name == name) {
            return v;
        }
    }
    sa::detail::contract_failed("precondition", "vehicle in report", __FILE__, __LINE__,
                                "no vehicle named " + name + " in the report");
}

std::string ScenarioReport::str() const {
    std::string text = format("t=%.3fs", at.s());
    for (const auto& v : vehicles) {
        text += "\n  " + v.str();
    }
    return text;
}

} // namespace sa::scenario
