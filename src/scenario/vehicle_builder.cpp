#include "scenario/vehicle_builder.hpp"

#include <algorithm>

#include "core/ability_layer.hpp"
#include "core/network_layer.hpp"
#include "core/safety_layer.hpp"
#include "model/contract_parser.hpp"
#include "monitor/budget_monitor.hpp"
#include "monitor/deadline_monitor.hpp"
#include "monitor/heartbeat_monitor.hpp"
#include "util/assert.hpp"

namespace sa::scenario {

namespace {

template <class... Ts>
struct overloaded : Ts... {
    using Ts::operator()...;
};

} // namespace

VehicleBuilder::VehicleBuilder(std::string name) : name_(std::move(name)) {
    SA_REQUIRE(!name_.empty(), "vehicle needs a name");
}

VehicleBuilder& VehicleBuilder::domain(std::size_t index) {
    domain_ = index;
    return *this;
}

VehicleBuilder& VehicleBuilder::ecu(model::EcuDescriptor descriptor) {
    return ecu(std::move(descriptor), {1.0, 0.8, 0.6, 0.4});
}

VehicleBuilder& VehicleBuilder::ecu(model::EcuDescriptor descriptor,
                                    std::vector<double> dvfs_levels,
                                    rte::ThermalConfig thermal) {
    SA_REQUIRE(!descriptor.name.empty(), "ECU needs a name");
    SA_REQUIRE(!dvfs_levels.empty(), "ECU needs at least one DVFS level");
    ecus_.push_back(EcuSpec{std::move(descriptor), std::move(dvfs_levels), thermal});
    return *this;
}

VehicleBuilder& VehicleBuilder::can_bus(model::BusDescriptor descriptor,
                                        can::CanBusConfig config) {
    SA_REQUIRE(!descriptor.name.empty(), "bus needs a name");
    buses_.push_back(BusSpec{std::move(descriptor), config});
    return *this;
}

VehicleBuilder& VehicleBuilder::can_gateway(GatewaySpec spec) {
    SA_REQUIRE(!spec.name.empty(), "gateway needs a name");
    SA_REQUIRE(!spec.routes.empty(), "gateway needs at least one route");
    gateways_.push_back(std::move(spec));
    return *this;
}

VehicleBuilder& VehicleBuilder::contracts(std::string_view text) {
    contract_text_.append(text);
    contract_text_.push_back('\n');
    return *this;
}

VehicleBuilder& VehicleBuilder::contracts(std::vector<model::Contract> parsed) {
    contracts_.insert(contracts_.end(), std::make_move_iterator(parsed.begin()),
                      std::make_move_iterator(parsed.end()));
    return *this;
}

VehicleBuilder& VehicleBuilder::mcc_options(model::MccOptions options) {
    mcc_options_ = options;
    return *this;
}

VehicleBuilder& VehicleBuilder::integration_policy(IntegrationPolicy policy) {
    policy_ = policy;
    return *this;
}

VehicleBuilder& VehicleBuilder::rt_task(std::string ecu_name, rte::RtTaskConfig task) {
    SA_REQUIRE(!task.name.empty(), "raw task needs a name");
    raw_tasks_.push_back(RawTaskSpec{std::move(ecu_name), std::move(task)});
    return *this;
}

VehicleBuilder& VehicleBuilder::can_tx_on_completion(std::string ecu_name,
                                                     std::string task, std::string bus,
                                                     can::CanFrame frame) {
    can_tx_.push_back(
        CanTxSpec{std::move(ecu_name), std::move(task), std::move(bus), frame});
    return *this;
}

VehicleBuilder& VehicleBuilder::can_rx_activation(std::string ecu_name, std::string task,
                                                  std::string bus, std::uint32_t id,
                                                  std::uint32_t mask) {
    can_rx_.push_back(
        CanRxSpec{std::move(ecu_name), std::move(task), std::move(bus), id, mask});
    return *this;
}

VehicleBuilder& VehicleBuilder::rate_ids(sim::Duration window, double default_bound) {
    monitor_decls_.emplace_back(RateIdsDecl{window, default_bound});
    return *this;
}

VehicleBuilder& VehicleBuilder::thermal_guard(std::string ecu_name, double lo_c,
                                              double hi_c, monitor::Severity severity) {
    monitor_decls_.emplace_back(ThermalGuardDecl{std::move(ecu_name), lo_c, hi_c,
                                                 severity});
    return *this;
}

VehicleBuilder& VehicleBuilder::deadline_monitor(std::string ecu_name) {
    monitor_decls_.emplace_back(DeadlineDecl{std::move(ecu_name)});
    return *this;
}

VehicleBuilder& VehicleBuilder::budget_monitor(std::string ecu_name,
                                               monitor::BudgetMode mode,
                                               sim::Duration budget) {
    monitor_decls_.emplace_back(BudgetDecl{std::move(ecu_name), mode, budget});
    return *this;
}

VehicleBuilder& VehicleBuilder::heartbeat_monitor(std::string watched,
                                                  sim::Duration timeout) {
    monitor_decls_.emplace_back(HeartbeatDecl{std::move(watched), timeout});
    return *this;
}

VehicleBuilder& VehicleBuilder::monitor_overhead_task(std::string ecu_name,
                                                      sim::Duration period,
                                                      sim::Duration wcet, int priority) {
    monitor_decls_.emplace_back(OverheadDecl{std::move(ecu_name), period, wcet,
                                             priority});
    return *this;
}

VehicleBuilder& VehicleBuilder::learned_monitor(learn::LearnedMonitorConfig config) {
    monitor_decls_.emplace_back(LearnedDecl{std::move(config)});
    return *this;
}

std::vector<std::string> VehicleBuilder::resolved_learned_metrics(
    const learn::LearnedMonitorConfig& config) const {
    if (!config.metrics.empty()) {
        return config.metrics;
    }
    std::vector<std::string> names;
    if (!config.auto_metrics) {
        return names;
    }
    if (driving_.has_value()) {
        names.emplace_back("drive.gap");
        names.emplace_back("drive.speed");
    }
    for (const auto& spec : sensors_) {
        names.push_back("sensor." + spec.config.name);
    }
    if (!root_skill_.empty()) {
        names.push_back("skill." + root_skill_);
    }
    return names;
}

VehicleBuilder& VehicleBuilder::skill_graph(skills::SkillGraph graph,
                                            std::string root_skill) {
    skill_graph_ = std::move(graph);
    skill_spec_.reset();
    root_skill_ = std::move(root_skill);
    return *this;
}

VehicleBuilder& VehicleBuilder::skill_graph(skills::SkillGraphSpec spec) {
    SA_REQUIRE(!spec.root_skill().empty(),
               "skill_graph(spec): spec '" + spec.name() + "' declares no root");
    root_skill_ = spec.root_skill();
    skill_spec_ = std::move(spec);
    skill_graph_.reset();
    return *this;
}

VehicleBuilder& VehicleBuilder::skill_graph(const std::string& registry_spec_name,
                                            const skills::CapabilityRegistry& registry) {
    return skill_graph(registry.spec(registry_spec_name));
}

VehicleBuilder& VehicleBuilder::degradation_policy(skills::DegradationPolicy policy) {
    degradation_policy_ = std::move(policy);
    return *this;
}

VehicleBuilder& VehicleBuilder::acc_skills(skills::AccGraphOptions options) {
    return skill_graph(skills::make_acc_skill_graph(options), skills::acc::kAccDriving);
}

VehicleBuilder& VehicleBuilder::aggregation(std::string skill,
                                            skills::Aggregation aggregation) {
    aggregations_.push_back(AggregationSpec{std::move(skill), aggregation});
    return *this;
}

VehicleBuilder& VehicleBuilder::dependency_weight(std::string skill, std::string child,
                                                  double weight) {
    weights_.push_back(WeightSpec{std::move(skill), std::move(child), weight});
    return *this;
}

VehicleBuilder& VehicleBuilder::tactic(std::string name, std::string target_skill,
                                       double min_level, double max_level, int cost,
                                       VehicleTactic apply) {
    SA_REQUIRE(apply != nullptr, "tactic needs an action");
    tactics_.push_back(TacticSpec{std::move(name), std::move(target_skill), min_level,
                                  max_level, cost, std::move(apply)});
    return *this;
}

VehicleBuilder& VehicleBuilder::plan_tactics_every(sim::Duration period) {
    tactic_plan_period_ = period;
    return *this;
}

VehicleBuilder& VehicleBuilder::layers(std::vector<core::LayerId> which) {
    layers_ = std::move(which);
    return *this;
}

VehicleBuilder& VehicleBuilder::full_layer_stack() {
    layers_ = {core::LayerId::Platform, core::LayerId::Network, core::LayerId::Safety,
               core::LayerId::Ability, core::LayerId::Objective};
    return *this;
}

VehicleBuilder& VehicleBuilder::coordinator(core::CoordinatorConfig config) {
    coordinator_config_ = config;
    return *this;
}

VehicleBuilder& VehicleBuilder::ability_update_hook(UpdateHook hook) {
    update_hook_ = std::move(hook);
    return *this;
}

VehicleBuilder& VehicleBuilder::self_model(sim::Duration period) {
    self_model_period_ = period;
    return *this;
}

VehicleBuilder& VehicleBuilder::driving(vehicle::ScenarioConfig config) {
    driving_ = config;
    return *this;
}

VehicleBuilder& VehicleBuilder::sensor(vehicle::SensorConfig sensor) {
    require_unique_sensor(sensor.name);
    sensors_.push_back(SensorSpec{sensor, std::nullopt, {}});
    return *this;
}

VehicleBuilder& VehicleBuilder::sensor(vehicle::SensorConfig sensor,
                                       monitor::SensorQualityConfig quality,
                                       std::string skill_node) {
    require_unique_sensor(sensor.name);
    sensors_.push_back(SensorSpec{sensor, quality, std::move(skill_node)});
    return *this;
}

void VehicleBuilder::require_unique_sensor(const std::string& name) const {
    SA_REQUIRE(!name.empty(), "sensor needs a name");
    for (const auto& spec : sensors_) {
        SA_REQUIRE(spec.config.name != name, "duplicate sensor name: " + name);
    }
}

VehicleBuilder& VehicleBuilder::lead_profile(vehicle::LeadProfile profile) {
    lead_profile_ = std::move(profile);
    return *this;
}

VehicleBuilder& VehicleBuilder::v2v(double position_m) {
    SA_REQUIRE(!v2v_endpoint_.has_value(),
               "vehicle already declared a V2V endpoint");
    v2v_endpoint_ = V2vEndpointSpec{false, {}, position_m};
    return *this;
}

VehicleBuilder& VehicleBuilder::mesh(mesh::MeshConfig config, double position_m) {
    SA_REQUIRE(!v2v_endpoint_.has_value(),
               "vehicle already declared a V2V endpoint");
    v2v_endpoint_ = V2vEndpointSpec{true, config, position_m};
    return *this;
}

model::PlatformModel VehicleBuilder::platform_model() const {
    model::PlatformModel platform;
    platform.ecus.reserve(ecus_.size());
    for (const auto& spec : ecus_) {
        platform.ecus.push_back(spec.model);
    }
    platform.buses.reserve(buses_.size());
    for (const auto& spec : buses_) {
        platform.buses.push_back(spec.model);
    }
    return platform;
}

model::ChangeRequest VehicleBuilder::change_request() const {
    model::ChangeRequest change;
    change.description = name_ + " system";
    change.contracts = contracts_;
    if (!contract_text_.empty()) {
        model::ContractParser parser;
        auto parsed = parser.parse(contract_text_);
        change.contracts.insert(change.contracts.end(),
                                std::make_move_iterator(parsed.begin()),
                                std::make_move_iterator(parsed.end()));
    }
    return change;
}

void VehicleBuilder::describe(lint::VehicleShape& shape) const {
    shape.name = name_;
    shape.domain_pin = domain_;
    for (const auto& spec : ecus_) {
        shape.ecus.push_back(spec.model.name);
    }
    for (const auto& spec : buses_) {
        shape.buses.push_back(spec.model.name);
    }
    for (const auto& spec : sensors_) {
        shape.sensors.push_back(spec.config.name);
        if (!spec.skill_node.empty()) {
            shape.sensor_skill_bindings.emplace_back(spec.config.name,
                                                     spec.skill_node);
        }
    }
    for (const auto& spec : raw_tasks_) {
        shape.raw_tasks.push_back(spec.task.name);
    }
    for (const auto& gateway : gateways_) {
        lint::GatewayShape out;
        out.name = gateway.name;
        out.forward_latency_ns = gateway.forward_latency.count_ns();
        for (const auto& route : gateway.routes) {
            out.routes.push_back(lint::RouteShape{route.from_bus, route.to_bus,
                                                  route.id, route.mask});
        }
        shape.gateways.push_back(std::move(out));
    }
    for (const auto& decl : monitor_decls_) {
        std::visit(
            overloaded{
                [&](const RateIdsDecl&) {},
                [&](const ThermalGuardDecl& d) {
                    shape.ecu_monitors.push_back({"thermal_guard", d.ecu});
                },
                [&](const DeadlineDecl& d) {
                    shape.ecu_monitors.push_back({"deadline_monitor", d.ecu});
                },
                [&](const BudgetDecl& d) {
                    shape.ecu_monitors.push_back({"budget_monitor", d.ecu});
                },
                [&](const HeartbeatDecl& d) {
                    shape.heartbeat_watches.push_back(d.watched);
                },
                [&](const OverheadDecl& d) {
                    shape.ecu_monitors.push_back({"monitor_overhead", d.ecu});
                },
                [&](const LearnedDecl& d) {
                    shape.learned_monitors.push_back(
                        {resolved_learned_metrics(d.config).size(),
                         d.config.warmup.count_ns()});
                },
            },
            decl);
    }
    if (v2v_endpoint_.has_value()) {
        shape.v2v_endpoint = lint::MeshEndpointShape{
            v2v_endpoint_->is_mesh, v2v_endpoint_->position_m,
            v2v_endpoint_->is_mesh ? v2v_endpoint_->config.beacon_ttl : 0};
    }
    if (skill_spec_.has_value()) {
        shape.has_skill_graph = true;
        shape.skill_nodes = skill_spec_->node_names();
    } else if (skill_graph_.has_value()) {
        shape.has_skill_graph = true;
        shape.skill_nodes = skill_graph_->node_names();
    }
    // Parse failures surface as TXT001 via ScenarioBuilder::lint(); here
    // they only mean the component list stays unknown.
    try {
        for (const auto& contract : change_request().contracts) {
            shape.components.push_back(contract.component);
        }
    } catch (const model::ParseError&) {
        // Swallowed deliberately — see the comment above the try.
    }
}

void VehicleBuilder::build_monitors(Vehicle& v) const {
    for (const auto& decl : monitor_decls_) {
        std::visit(
            overloaded{
                [&](const RateIdsDecl& d) {
                    SA_REQUIRE(v.ids_ == nullptr, "rate_ids() declared twice");
                    auto& ids = v.monitors_->add<monitor::RateMonitor>(
                        v.rte_->services(), d.window);
                    if (v.mcc_ != nullptr) {
                        for (const auto& rb : v.mcc_->security_policy().rate_bounds) {
                            ids.set_rate_bound(rb.client, rb.service, rb.max_rate_hz);
                        }
                    }
                    if (d.default_bound > 0.0) {
                        ids.set_default_bound(d.default_bound);
                    }
                    ids.start();
                    v.ids_ = &ids;
                },
                [&](const ThermalGuardDecl& d) {
                    if (v.thermal_guard_ == nullptr) {
                        v.thermal_guard_ = &v.monitors_->add<monitor::RangeMonitor>(
                            "thermal", monitor::Domain::Platform);
                    }
                    monitor::RangeMonitor* guard = v.thermal_guard_;
                    const std::string signal = "temp." + d.ecu;
                    guard->set_bounds(signal, d.lo, d.hi, d.severity);
                    v.rte_->ecu(d.ecu).thermal().temperature_updated().subscribe(
                        [guard, signal](double celsius) {
                            (void)guard->sample(signal, celsius);
                        });
                },
                [&](const DeadlineDecl& d) {
                    v.monitors_->add<monitor::DeadlineMonitor>(
                        v.rte_->ecu(d.ecu).scheduler());
                },
                [&](const BudgetDecl& d) {
                    auto& budget = v.monitors_->add<monitor::BudgetMonitor>(
                        v.rte_->ecu(d.ecu).scheduler());
                    budget.set_mode(d.mode);
                    if (d.budget.count_ns() > 0) {
                        for (const auto& raw : raw_tasks_) {
                            if (raw.ecu == d.ecu) {
                                budget.set_budget(
                                    v.raw_tasks_.at({raw.ecu, raw.task.name}),
                                    d.budget);
                            }
                        }
                    }
                },
                [&](const HeartbeatDecl& d) {
                    auto& heartbeat = v.monitors_->add<monitor::HeartbeatMonitor>(
                        d.watched, d.timeout);
                    heartbeat.start();
                },
                [&](const OverheadDecl& d) {
                    (void)v.monitors_->attach_overhead_task(v.rte_->ecu(d.ecu),
                                                            d.period, d.wcet,
                                                            d.priority);
                },
                [&](const LearnedDecl& d) {
                    SA_REQUIRE(v.learned_ == nullptr,
                               "learned_monitor() declared twice");
                    learn::LearnedMonitorConfig config = d.config;
                    config.metrics = resolved_learned_metrics(d.config);
                    v.learned_ = &v.monitors_->add<learn::AnomalyModelMonitor>(
                        *v.monitors_, std::move(config));
                },
            },
            decl);
    }
}

std::unique_ptr<Vehicle> VehicleBuilder::build(sim::Simulator& simulator) const {
    auto owned = std::unique_ptr<Vehicle>(new Vehicle(name_, simulator));
    Vehicle& v = *owned;

    // 1. Model domain: the MCC integrates the declared contract set. A
    //    vehicle with nothing for the model domain to do (no contracts and
    //    no model-consulting layer) skips the MCC entirely — pure
    //    driving-loop or raw-task scenarios have no model domain.
    const model::ChangeRequest change = change_request();
    const bool wants_model_layer =
        std::any_of(layers_.begin(), layers_.end(), [](core::LayerId id) {
            return id == core::LayerId::Platform || id == core::LayerId::Safety;
        });
    bool deploy = false;
    if (!ecus_.empty() && (!change.contracts.empty() || wants_model_layer)) {
        v.mcc_ = std::make_unique<model::Mcc>(platform_model(), mcc_options_);
    } else {
        SA_REQUIRE(change.contracts.empty(), "contracts require at least one ECU");
    }
    if (!change.contracts.empty()) {
        v.integration_report_ = v.mcc_->integrate(change);
        if (policy_ == IntegrationPolicy::RequireAccepted) {
            SA_REQUIRE(v.integration_report_.accepted,
                       "vehicle '" + name_ + "': initial integration rejected: " +
                           v.integration_report_.rejection_reason);
        }
        deploy = v.integration_report_.accepted;
    }

    // 2. Execution domain: platform assembly, deployment, start.
    v.rte_ = std::make_unique<rte::Rte>(simulator);
    for (const auto& spec : ecus_) {
        v.rte_->add_ecu(rte::EcuConfig{spec.model.name, spec.dvfs_levels, spec.thermal});
    }
    for (const auto& spec : buses_) {
        can::CanBusConfig config = spec.config;
        config.bitrate_bps = spec.model.bitrate_bps;
        v.rte_->add_can_bus(spec.model.name, config);
    }
    for (const auto& spec : gateways_) {
        SA_REQUIRE(!v.bus_gateways_.contains(spec.name),
                   "duplicate gateway name: " + spec.name);
        auto gateway = std::make_unique<can::BusGateway>(name_ + "." + spec.name,
                                                         spec.forward_latency);
        for (const auto& route : spec.routes) {
            gateway->add_route(v.rte_->can_bus(route.from_bus),
                               v.rte_->can_bus(route.to_bus), route.id, route.mask);
        }
        v.bus_gateways_.emplace(spec.name, std::move(gateway));
    }
    for (const auto& raw : raw_tasks_) {
        const rte::TaskId id = v.rte_->ecu(raw.ecu).scheduler().add_task(raw.task);
        const bool inserted = v.raw_tasks_.emplace(std::pair{raw.ecu, raw.task.name}, id)
                                  .second;
        SA_REQUIRE(inserted, "duplicate raw task: " + raw.ecu + "." + raw.task.name);
    }
    auto endpoint = [&](const std::string& ecu_name,
                        const std::string& bus) -> rte::CanGateway& {
        auto key = std::pair{ecu_name, bus};
        auto it = v.can_endpoints_.find(key);
        if (it == v.can_endpoints_.end()) {
            it = v.can_endpoints_
                     .emplace(key, std::make_unique<rte::CanGateway>(
                                       v.rte_->can_bus(bus),
                                       name_ + "." + ecu_name + "@" + bus))
                     .first;
        }
        return *it->second;
    };
    for (const auto& tx : can_tx_) {
        endpoint(tx.ecu, tx.bus)
            .transmit_on_completion(v.rte_->ecu(tx.ecu).scheduler(),
                                    v.rt_task(tx.ecu, tx.task), tx.frame);
    }
    for (const auto& rx : can_rx_) {
        endpoint(rx.ecu, rx.bus)
            .activate_on_rx(v.rte_->ecu(rx.ecu).scheduler(), v.rt_task(rx.ecu, rx.task),
                            rx.id, rx.mask);
    }
    if (deploy) {
        v.rte_->apply(v.mcc_->make_rte_config());
    }
    v.rte_->start();
    v.faults_ = std::make_unique<rte::FaultInjector>(*v.rte_);

    // 3. Monitors, in declaration order.
    v.monitors_ = std::make_unique<monitor::MonitorManager>(simulator);
    build_monitors(v);

    // 4. Closed-loop driving + sensors (created, started in step 7).
    if (driving_.has_value()) {
        v.driving_ = std::make_unique<vehicle::VehicleSim>(simulator, *driving_);
        for (const auto& spec : sensors_) {
            const std::size_t index = v.driving_->add_sensor(spec.config);
            if (spec.quality.has_value()) {
                auto& quality = v.monitors_->add<monitor::SensorQualityMonitor>(
                    spec.config.name, *spec.quality);
                v.driving_->attach_quality_monitor(index, quality);
                v.sensor_quality_.emplace(spec.config.name, &quality);
            }
        }
        if (lead_profile_) {
            v.driving_->set_lead_profile(lead_profile_);
        }
    } else {
        SA_REQUIRE(sensors_.empty(), "sensor() requires driving() to be declared");
    }

    // 5. Ability graph: from the declarative spec (aggregations/weights of
    //    the spec applied first) or a raw SkillGraph; builder-level
    //    aggregation()/dependency_weight() declarations refine either.
    if (skill_spec_.has_value()) {
        v.abilities_ = std::make_unique<skills::AbilityGraph>(
            skill_spec_->instantiate_abilities());
    } else if (skill_graph_.has_value()) {
        v.abilities_ = std::make_unique<skills::AbilityGraph>(*skill_graph_);
    }
    if (v.abilities_ != nullptr) {
        v.root_skill_ = root_skill_;
        for (const auto& spec : aggregations_) {
            v.abilities_->set_aggregation(spec.skill, spec.aggregation);
        }
        for (const auto& spec : weights_) {
            v.abilities_->set_dependency_weight(spec.skill, spec.child, spec.weight);
        }
        for (const auto& spec : sensors_) {
            if (!spec.skill_node.empty()) {
                v.abilities_->bind_source(spec.skill_node,
                                          v.sensor_quality(spec.config.name));
            }
        }
    }
    if (degradation_policy_.has_value()) {
        // The unified degradation flow: every monitor alarm is mapped onto
        // capability-quality downgrades before the coordinator (connected in
        // step 8, i.e. after this subscription) consults its layers.
        SA_REQUIRE(v.abilities_ != nullptr,
                   "degradation_policy() requires a skill graph");
        v.policy_ = std::make_unique<skills::DegradationPolicy>(*degradation_policy_);
        Vehicle* vp = &v;
        v.monitors_->anomalies().subscribe([vp](const monitor::Anomaly& anomaly) {
            if (vp->policy_->apply(anomaly, *vp->abilities_)) {
                vp->abilities_->propagate();
            }
        });
    }

    // 6. Degradation tactics + the periodic planner.
    for (const auto& spec : tactics_) {
        skills::Tactic tactic;
        tactic.name = spec.name;
        tactic.target_skill = spec.target_skill;
        tactic.min_level = spec.min_level;
        tactic.max_level = spec.max_level;
        tactic.cost = spec.cost;
        tactic.apply = [&v, action = spec.apply] { action(v); };
        v.tactics_.register_tactic(std::move(tactic));
    }
    if (tactic_plan_period_.has_value()) {
        SA_REQUIRE(v.abilities_ != nullptr,
                   "plan_tactics_every() requires a skill graph");
        v.tactic_planner_id_ = simulator.schedule_periodic(
            *tactic_plan_period_, [&v] { (void)v.tactics_.execute(*v.abilities_); });
    }

    // 7. Start the quality monitors (declaration order), then the driving loop.
    if (v.driving_ != nullptr) {
        for (const auto& spec : sensors_) {
            if (spec.quality.has_value()) {
                v.sensor_quality(spec.config.name).start();
            }
        }
        v.driving_->start();
    }

    // 7b. Learned-monitor metric pump: one periodic at the monitor's period
    //     feeding the resolved metrics into the monitor manager (and thereby
    //     the learned monitor's tap). Metric names that match no standard
    //     feed are skipped here — external producers ingest them directly.
    if (v.learned_ != nullptr) {
        // Names are interned once here; the pump ingests by MetricId, so the
        // periodic feed never re-hashes (or copies) a metric name.
        struct Feed {
            monitor::MetricId id;
            std::function<std::optional<double>(Vehicle&)> read;
        };
        auto feeds = std::make_shared<std::vector<Feed>>();
        const auto feed_id = [&v](const std::string& name) {
            return v.monitors_->metric_id(name);
        };
        for (const auto& metric : v.learned_->config().metrics) {
            if (metric == "drive.gap") {
                feeds->push_back({feed_id(metric), [](Vehicle& veh) -> std::optional<double> {
                    if (veh.driving_ == nullptr) {
                        return std::nullopt;
                    }
                    return veh.driving_->last_fused_gap();
                }});
            } else if (metric == "drive.speed") {
                feeds->push_back({feed_id(metric), [](Vehicle& veh) -> std::optional<double> {
                    if (veh.driving_ == nullptr) {
                        return std::nullopt;
                    }
                    return veh.driving_->ego_speed();
                }});
            } else if (metric.starts_with("sensor.")) {
                const std::string sensor_name = metric.substr(7);
                for (std::size_t i = 0; i < sensors_.size(); ++i) {
                    if (sensors_[i].config.name == sensor_name) {
                        feeds->push_back(
                            {feed_id(metric), [i](Vehicle& veh) -> std::optional<double> {
                                if (veh.driving_ == nullptr) {
                                    return std::nullopt;
                                }
                                return veh.driving_->last_measurement(i);
                            }});
                        break;
                    }
                }
            } else if (metric.starts_with("skill.")) {
                const std::string node = metric.substr(6);
                feeds->push_back({feed_id(metric), [node](Vehicle& veh) -> std::optional<double> {
                    if (veh.abilities_ == nullptr ||
                        !veh.abilities_->structure().has_node(node)) {
                        return std::nullopt;
                    }
                    return veh.abilities_->level(node);
                }});
            }
        }
        Vehicle* vp = &v;
        v.learned_pump_id_ = simulator.schedule_periodic(
            v.learned_->config().period, [vp, feeds] {
                const sim::Time now = vp->simulator_.now();
                for (const auto& feed : *feeds) {
                    if (const std::optional<double> value = feed.read(*vp)) {
                        vp->monitors_->ingest(feed.id, *value, now);
                    }
                }
            });
    }

    // 8. Layer stack; the coordinator subscribes to the anomaly stream.
    v.coordinator_ =
        std::make_unique<core::CrossLayerCoordinator>(simulator, coordinator_config_);
    for (const core::LayerId id : layers_) {
        switch (id) {
        case core::LayerId::Platform:
            SA_REQUIRE(v.mcc_ != nullptr, "platform layer requires an ECU platform");
            v.coordinator_->register_layer(
                std::make_unique<core::PlatformLayer>(*v.rte_, *v.mcc_));
            break;
        case core::LayerId::Network:
            v.coordinator_->register_layer(std::make_unique<core::NetworkLayer>(*v.rte_));
            break;
        case core::LayerId::Safety:
            SA_REQUIRE(v.mcc_ != nullptr, "safety layer requires an ECU platform");
            v.coordinator_->register_layer(
                std::make_unique<core::SafetyLayer>(*v.rte_, *v.mcc_));
            break;
        case core::LayerId::Ability: {
            SA_REQUIRE(v.abilities_ != nullptr, "ability layer requires a skill graph");
            auto layer = std::make_unique<core::AbilityLayer>(*v.abilities_, v.tactics_,
                                                              root_skill_);
            if (update_hook_ || v.policy_ != nullptr) {
                // The degradation policy runs first: coordinator-internal
                // follow-up problems (containment consequences) that never
                // hit the monitor stream still map onto capability
                // downgrades. A user hook refines with vehicle-specific
                // actuation on top.
                layer->set_update_hook([&v, hook = update_hook_](
                                           const core::Problem& problem) {
                    bool updated = false;
                    if (v.policy_ != nullptr) {
                        updated = v.policy_->apply(problem.anomaly, *v.abilities_);
                    }
                    if (hook) {
                        updated = hook(v, problem) || updated;
                    }
                    return updated;
                });
            }
            v.coordinator_->register_layer(std::move(layer));
            break;
        }
        case core::LayerId::Objective: {
            auto layer = std::make_unique<core::ObjectiveLayer>();
            v.objective_ = layer.get();
            v.coordinator_->register_layer(std::move(layer));
            break;
        }
        }
    }
    if (!layers_.empty()) {
        v.coordinator_->connect(*v.monitors_);
    }

    // 9. Self-model capture; with a skill graph the root ability level is
    //    part of every snapshot (the degradation-policy outcome in the
    //    self-representation).
    if (self_model_period_.has_value()) {
        v.self_ = std::make_unique<core::SelfModel>(simulator, *v.coordinator_);
        if (v.abilities_ != nullptr && !root_skill_.empty()) {
            v.self_->bind_abilities(*v.abilities_, root_skill_);
        }
        v.self_->start(*self_model_period_);
    }
    return owned;
}

} // namespace sa::scenario
