#include "scenario/scenario.hpp"

#include "util/assert.hpp"

namespace sa::scenario {

Scenario::Scenario(std::uint64_t seed, std::size_t num_domains)
    : simulator_(seed), rng_(seed) {
    SA_REQUIRE(num_domains >= 1, "a scenario needs at least one domain");
    if (num_domains > 1) {
        kernel_ = std::make_unique<sim::ShardedKernel>(num_domains, seed);
    }
}

sim::ShardedKernel& Scenario::kernel() {
    SA_REQUIRE(kernel_ != nullptr,
               "kernel() requires a sharded scenario (builder domains(n) > 1)");
    return *kernel_;
}

sim::Simulator& Scenario::domain_simulator(std::size_t domain) {
    if (kernel_ == nullptr) {
        SA_REQUIRE(domain == 0, "domain index out of range (unsharded scenario)");
        return simulator_;
    }
    return kernel_->domain(domain);
}

std::size_t Scenario::run_until(sim::Time until) {
    return kernel_ ? kernel_->run_until(until) : simulator_.run_until(until);
}

std::size_t Scenario::run(sim::Duration until, std::size_t num_domains) {
    SA_REQUIRE(num_domains == 0 || num_domains == this->num_domains(),
               "num_domains disagrees with the partition declared at build "
               "time; declare domains(n) on the ScenarioBuilder");
    return run_until(sim::Time(until.count_ns()));
}

std::size_t Scenario::run_for(sim::Duration span) {
    return kernel_ ? kernel_->run_for(span) : simulator_.run_for(span);
}

bool Scenario::has_vehicle(const std::string& name) const {
    return vehicles_.contains(name);
}

Vehicle& Scenario::vehicle(const std::string& name) {
    auto it = vehicles_.find(name);
    SA_REQUIRE(it != vehicles_.end(), "unknown vehicle: " + name);
    return *it->second;
}

Vehicle& Scenario::only_vehicle() {
    SA_REQUIRE(vehicles_.size() == 1,
               "only_vehicle() needs exactly one vehicle in the scenario");
    return *vehicles_.begin()->second;
}

v2v::Medium& Scenario::v2v() {
    SA_REQUIRE(v2v_ != nullptr, "v2v() not declared on the ScenarioBuilder");
    return *v2v_;
}

bool Scenario::has_mesh(const std::string& vehicle_name) const {
    return meshes_.contains(vehicle_name);
}

mesh::MeshStack& Scenario::mesh(const std::string& vehicle_name) {
    auto it = meshes_.find(vehicle_name);
    SA_REQUIRE(it != meshes_.end(),
               "no mesh endpoint declared for vehicle: " + vehicle_name);
    return *it->second;
}

bool Scenario::has_bridge(const std::string& name) const {
    return bridges_.contains(name);
}

can::BusGateway& Scenario::bridge(const std::string& name) {
    auto it = bridges_.find(name);
    SA_REQUIRE(it != bridges_.end(), "unknown bridge: " + name);
    return *it->second;
}

platoon::PlatoonAgreement Scenario::form_platoon() { return form_platoon(candidates_); }

platoon::PlatoonAgreement
Scenario::form_platoon(const std::vector<platoon::MemberCapability>& candidates) {
    SA_REQUIRE(!candidates.empty(), "form_platoon() needs candidates");
    platoon::PlatoonCoordinator coordinator(trust_, platoon_config_);
    return coordinator.form(candidates, rng_);
}

platoon::Platoon& Scenario::platoon() {
    SA_REQUIRE(platoon_ != nullptr,
               "platoon() requires platoon_maneuvers() on the ScenarioBuilder");
    return *platoon_;
}

const platoon::ManeuverPolicy& Scenario::maneuver_policy() const {
    SA_REQUIRE(platoon_ != nullptr,
               "maneuver_policy() requires platoon_maneuvers() on the builder");
    return maneuver_policy_;
}

const platoon::PlatoonAgreement& Scenario::form_managed_platoon() {
    SA_REQUIRE(!candidates_.empty(),
               "form_managed_platoon() needs platoon_candidate() declarations");
    const platoon::PlatoonAgreement& agreement = platoon().form(candidates_, rng_);
    // Re-arm the engine if it parked itself on a dissolved platoon.
    if (!check_armed_) {
        const sim::Time now = kernel_ ? kernel_->now() : simulator_.now();
        schedule_maneuver_check(
            sim::Time(now.ns() + maneuver_policy_.check_period.count_ns()));
        check_armed_ = true;
    }
    return agreement;
}

void Scenario::schedule_maneuver_check(sim::Time at) {
    if (kernel_) {
        kernel_->schedule_script(at, [this] { run_maneuver_check(); });
    } else {
        (void)simulator_.schedule(sim::Duration(at.ns() - simulator_.now().ns()),
                                  [this] { run_maneuver_check(); });
    }
}

void Scenario::run_maneuver_check() {
    // Runs quiescent (script barrier under sharding, a plain event on the
    // single queue): reading any vehicle's ability graph and mutating the
    // platoon is race-free, and every decision draws from the scenario RNG —
    // the whole evaluation reproduces bit-for-bit across domain counts.
    //
    // A dissolved platoon can never maneuver again (join requires a formed
    // platoon), so the engine parks instead of burning a global barrier per
    // check_period; form_managed_platoon() re-arms it.
    if (!platoon_->formed() && !platoon_->history().empty()) {
        check_armed_ = false;
        return;
    }
    const sim::Time now = kernel_ ? kernel_->now() : simulator_.now();
    schedule_maneuver_check(sim::Time(now.ns() + maneuver_policy_.check_period.count_ns()));
    if (!platoon_->formed()) {
        return; // not formed yet: keep polling for a scripted formation
    }
    const std::string& follow = maneuver_policy_.follow_skill;
    auto follow_level = [&](const std::string& name, double& level) {
        if (!has_vehicle(name)) {
            return false;
        }
        Vehicle& v = vehicle(name);
        if (!v.has_abilities() || !v.abilities().structure().has_node(follow)) {
            return false;
        }
        level = v.abilities().level(follow);
        return true;
    };

    // Leave/split: scan members in convoy order; at most one maneuver per
    // member per check. Splitting at a mid-platoon member takes precedence
    // over leaving (the vehicles behind cannot follow through it).
    const auto members = platoon_->member_names();
    for (std::size_t i = 0; i < members.size() && platoon_->formed(); ++i) {
        const std::string& name = members[i];
        if (!platoon_->contains(name)) {
            continue; // already detached by an earlier split this check
        }
        double level = 1.0;
        if (!follow_level(name, level)) {
            continue;
        }
        if (level < maneuver_policy_.split_below && name != platoon_->leader()) {
            auto detached = platoon_->split(
                name, rng_,
                "follow skill " + std::string(skills::to_string(skills::classify(
                                      level))) +
                    " below split threshold");
            detached_.insert(detached_.end(),
                             std::make_move_iterator(detached.begin()),
                             std::make_move_iterator(detached.end()));
        } else if (level < maneuver_policy_.leave_below) {
            (void)platoon_->leave(name, rng_, "follow skill below leave threshold");
        }
    }

    // Join: candidates outside the platoon whose own follow skill degraded
    // below join_below seek the platoon's cover (the §V fog story). The
    // lower bound is the hysteresis band: a vehicle too degraded to *stay*
    // (below leave_below) is not re-admitted, otherwise a member could
    // leave and re-join on every check forever.
    for (const auto& candidate : candidates_) {
        if (!platoon_->formed() || platoon_->contains(candidate.id)) {
            continue;
        }
        double level = 1.0;
        if (!follow_level(candidate.id, level)) {
            continue;
        }
        if (level < maneuver_policy_.join_below &&
            level >= maneuver_policy_.leave_below) {
            (void)platoon_->join(candidate, rng_, "follow skill below join threshold");
        }
    }
}

void Scenario::set_weather(const vehicle::WeatherCondition& weather) {
    for (const auto& name : order_) {
        Vehicle& v = *vehicles_.at(name);
        if (v.has_driving()) {
            v.driving().set_weather(weather);
        }
    }
}

ScenarioReport Scenario::report() const {
    ScenarioReport report;
    // progress(), not now(): after stop() or a window exception the sharded
    // coordinator's barrier time lags the domain clocks, and a partial
    // report must reflect how far the run actually got.
    report.at = kernel_ ? kernel_->progress() : simulator_.now();
    report.vehicles.reserve(order_.size());
    for (const auto& name : order_) {
        report.vehicles.push_back(vehicles_.at(name)->report());
    }
    return report;
}

} // namespace sa::scenario
