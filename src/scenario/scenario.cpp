#include "scenario/scenario.hpp"

#include "util/assert.hpp"

namespace sa::scenario {

Scenario::Scenario(std::uint64_t seed, std::size_t num_domains)
    : simulator_(seed), rng_(seed) {
    SA_REQUIRE(num_domains >= 1, "a scenario needs at least one domain");
    if (num_domains > 1) {
        kernel_ = std::make_unique<sim::ShardedKernel>(num_domains, seed);
    }
}

sim::ShardedKernel& Scenario::kernel() {
    SA_REQUIRE(kernel_ != nullptr,
               "kernel() requires a sharded scenario (builder domains(n) > 1)");
    return *kernel_;
}

sim::Simulator& Scenario::domain_simulator(std::size_t domain) {
    if (kernel_ == nullptr) {
        SA_REQUIRE(domain == 0, "domain index out of range (unsharded scenario)");
        return simulator_;
    }
    return kernel_->domain(domain);
}

std::size_t Scenario::run_until(sim::Time until) {
    return kernel_ ? kernel_->run_until(until) : simulator_.run_until(until);
}

std::size_t Scenario::run(sim::Duration until, std::size_t num_domains) {
    SA_REQUIRE(num_domains == 0 || num_domains == this->num_domains(),
               "num_domains disagrees with the partition declared at build "
               "time; declare domains(n) on the ScenarioBuilder");
    return run_until(sim::Time(until.count_ns()));
}

std::size_t Scenario::run_for(sim::Duration span) {
    return kernel_ ? kernel_->run_for(span) : simulator_.run_for(span);
}

bool Scenario::has_vehicle(const std::string& name) const {
    return vehicles_.count(name) > 0;
}

Vehicle& Scenario::vehicle(const std::string& name) {
    auto it = vehicles_.find(name);
    SA_REQUIRE(it != vehicles_.end(), "unknown vehicle: " + name);
    return *it->second;
}

Vehicle& Scenario::only_vehicle() {
    SA_REQUIRE(vehicles_.size() == 1,
               "only_vehicle() needs exactly one vehicle in the scenario");
    return *vehicles_.begin()->second;
}

platoon::V2vChannel& Scenario::v2v() {
    SA_REQUIRE(v2v_ != nullptr, "v2v() not declared on the ScenarioBuilder");
    return *v2v_;
}

void Scenario::join_v2v(const std::string& vehicle_name,
                        platoon::V2vChannel::Receiver receiver) {
    v2v().join(vehicle_name, vehicle(vehicle_name).simulator(),
               std::move(receiver));
}

bool Scenario::has_bridge(const std::string& name) const {
    return bridges_.count(name) > 0;
}

can::BusGateway& Scenario::bridge(const std::string& name) {
    auto it = bridges_.find(name);
    SA_REQUIRE(it != bridges_.end(), "unknown bridge: " + name);
    return *it->second;
}

platoon::PlatoonAgreement Scenario::form_platoon() { return form_platoon(candidates_); }

platoon::PlatoonAgreement
Scenario::form_platoon(const std::vector<platoon::MemberCapability>& candidates) {
    SA_REQUIRE(!candidates.empty(), "form_platoon() needs candidates");
    platoon::PlatoonCoordinator coordinator(trust_, platoon_config_);
    return coordinator.form(candidates, rng_);
}

void Scenario::set_weather(const vehicle::WeatherCondition& weather) {
    for (const auto& name : order_) {
        Vehicle& v = *vehicles_.at(name);
        if (v.has_driving()) {
            v.driving().set_weather(weather);
        }
    }
}

ScenarioReport Scenario::report() const {
    ScenarioReport report;
    report.at = kernel_ ? kernel_->now() : simulator_.now();
    report.vehicles.reserve(order_.size());
    for (const auto& name : order_) {
        report.vehicles.push_back(vehicles_.at(name)->report());
    }
    return report;
}

} // namespace sa::scenario
