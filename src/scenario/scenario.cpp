#include "scenario/scenario.hpp"

#include "util/assert.hpp"

namespace sa::scenario {

Scenario::Scenario(std::uint64_t seed) : simulator_(seed), rng_(seed) {}

bool Scenario::has_vehicle(const std::string& name) const {
    return vehicles_.count(name) > 0;
}

Vehicle& Scenario::vehicle(const std::string& name) {
    auto it = vehicles_.find(name);
    SA_REQUIRE(it != vehicles_.end(), "unknown vehicle: " + name);
    return *it->second;
}

Vehicle& Scenario::only_vehicle() {
    SA_REQUIRE(vehicles_.size() == 1,
               "only_vehicle() needs exactly one vehicle in the scenario");
    return *vehicles_.begin()->second;
}

platoon::V2vChannel& Scenario::v2v() {
    SA_REQUIRE(v2v_ != nullptr, "v2v() not declared on the ScenarioBuilder");
    return *v2v_;
}

platoon::PlatoonAgreement Scenario::form_platoon() { return form_platoon(candidates_); }

platoon::PlatoonAgreement
Scenario::form_platoon(const std::vector<platoon::MemberCapability>& candidates) {
    SA_REQUIRE(!candidates.empty(), "form_platoon() needs candidates");
    platoon::PlatoonCoordinator coordinator(trust_, platoon_config_);
    return coordinator.form(candidates, rng_);
}

void Scenario::set_weather(const vehicle::WeatherCondition& weather) {
    for (const auto& name : order_) {
        Vehicle& v = *vehicles_.at(name);
        if (v.has_driving()) {
            v.driving().set_weather(weather);
        }
    }
}

ScenarioReport Scenario::report() const {
    ScenarioReport report;
    report.at = simulator_.now();
    report.vehicles.reserve(order_.size());
    for (const auto& name : order_) {
        report.vehicles.push_back(vehicles_.at(name)->report());
    }
    return report;
}

} // namespace sa::scenario
