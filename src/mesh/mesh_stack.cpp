#include "mesh/mesh_stack.hpp"

#include "util/assert.hpp"
#include "util/string_util.hpp"

namespace sa::mesh {

const char* to_string(NextHopPolicy policy) noexcept {
    switch (policy) {
    case NextHopPolicy::HopCount: return "hop_count";
    case NextHopPolicy::Rssi: return "rssi";
    case NextHopPolicy::Prr: return "prr";
    }
    return "?";
}

bool next_hop_policy_from_string(const std::string& text, NextHopPolicy& out) {
    for (const NextHopPolicy policy :
         {NextHopPolicy::HopCount, NextHopPolicy::Rssi, NextHopPolicy::Prr}) {
        if (text == to_string(policy)) {
            out = policy;
            return true;
        }
    }
    return false;
}

MeshStack::MeshStack(std::string name, v2v::Medium& medium, sim::Simulator& home,
                     MeshConfig config, double position_m)
    : name_(std::move(name)), medium_(medium), home_(home), config_(config) {
    SA_REQUIRE(config_.beacon_ttl >= 1, "beacon TTL must be at least 1");
    SA_REQUIRE(config_.beacon_period.count_ns() > 0,
               "beacon period must be positive");
    SA_REQUIRE(config_.neighbor_ttl.count_ns() > 0,
               "neighbor TTL must be positive");
    SA_REQUIRE(config_.rssi_alpha > 0.0 && config_.rssi_alpha <= 1.0 &&
                   config_.prr_alpha > 0.0 && config_.prr_alpha <= 1.0,
               "EWMA smoothing factors must be in (0, 1]");
    medium_.attach(
        name_, home_,
        [this](const v2v::Frame& frame, double rssi_dbm) {
            handle_frame(frame, rssi_dbm);
        },
        position_m);
    beacon_id_ = home_.schedule_periodic(
        config_.beacon_period, [this] { beacon_tick(); }, config_.beacon_phase);
}

MeshStack::~MeshStack() {
    home_.cancel_periodic(beacon_id_);
    if (medium_.attached(name_)) {
        medium_.detach(name_);
    }
}

void MeshStack::handle_frame(const v2v::Frame& frame, double rssi_dbm) {
    // Runs on the home domain (the medium posts deliveries there), so every
    // table mutation below is single-threaded by construction.
    const Time now = home_.now();
    auto [it, fresh] = neighbors_.try_emplace(frame.transmitter);
    Neighbor& neighbor = it->second;
    if (fresh) {
        neighbor.rssi_dbm = rssi_dbm;
    } else {
        neighbor.rssi_dbm += config_.rssi_alpha * (rssi_dbm - neighbor.rssi_dbm);
    }
    ++neighbor.frames_heard;
    neighbor.last_heard = now;
    if (frame.kind == v2v::FrameKind::Announce &&
        frame.origin == frame.transmitter) {
        // PRR from gaps in the neighbor's own announcement sequence: hearing
        // seq s after seq l means 1 of (s - l) announcements got through.
        if (neighbor.last_seq != 0 && frame.seq > neighbor.last_seq) {
            const double sample =
                1.0 / static_cast<double>(frame.seq - neighbor.last_seq);
            neighbor.prr += config_.prr_alpha * (sample - neighbor.prr);
        }
        if (frame.seq > neighbor.last_seq) {
            neighbor.last_seq = frame.seq;
        }
    }
    if (frame.kind == v2v::FrameKind::Announce) {
        handle_announce(frame);
    } else {
        handle_cam(frame);
    }
}

void MeshStack::handle_announce(const v2v::Frame& frame) {
    if (frame.origin == name_) {
        return; // our own announcement echoed back through a relay
    }
    // Route discovery: origin is reachable via the transmitter in hops+1
    // transmissions. Every copy updates the candidate set — a stale or
    // duplicate seq still proves the path exists.
    routes_[frame.origin][frame.transmitter] =
        RouteCandidate{frame.hops + 1, home_.now()};
    // Selective on-announcement (serval idiom): re-transmit only the FIRST
    // copy of a new per-origin sequence number, so one beacon crosses the
    // mesh once instead of multiplying at every node.
    auto [it, fresh] = origin_seq_.try_emplace(frame.origin, 0);
    if (!fresh && frame.seq <= it->second) {
        return;
    }
    it->second = frame.seq;
    if (frame.ttl > 1) {
        v2v::Frame relay = frame;
        relay.transmitter = name_;
        relay.ttl = frame.ttl - 1;
        relay.hops = frame.hops + 1;
        medium_.transmit(std::move(relay));
        ++announces_relayed_;
    }
}

void MeshStack::handle_cam(const v2v::Frame& frame) {
    if (frame.destination.empty() || frame.destination == name_) {
        ++cams_received_;
        if (cam_handler_) {
            cam_handler_(frame);
        }
        return;
    }
    // We are the addressed next hop of someone else's unicast: relay it
    // along our own best route, burning one TTL.
    if (frame.ttl <= 1) {
        ++cams_unroutable_;
        return;
    }
    const auto hop = next_hop(frame.destination);
    if (!hop.has_value()) {
        ++cams_unroutable_;
        return;
    }
    v2v::Frame relay = frame;
    relay.transmitter = name_;
    relay.next_hop = *hop;
    relay.ttl = frame.ttl - 1;
    relay.hops = frame.hops + 1;
    medium_.transmit(std::move(relay));
    ++cams_relayed_;
}

void MeshStack::beacon_tick() {
    age_tables(home_.now());
    v2v::Frame frame;
    frame.kind = v2v::FrameKind::Announce;
    frame.transmitter = name_;
    frame.origin = name_;
    frame.seq = ++announce_seq_;
    frame.ttl = config_.beacon_ttl;
    frame.position_m = medium_.position(name_);
    frame.speed_mps = config_.speed_mps;
    medium_.transmit(std::move(frame));
    ++announces_sent_;
}

void MeshStack::age_tables(Time now) {
    const std::int64_t ttl = config_.neighbor_ttl.count_ns();
    for (auto it = neighbors_.begin(); it != neighbors_.end();) {
        if (now.ns() - it->second.last_heard.ns() > ttl) {
            it = neighbors_.erase(it);
        } else {
            ++it;
        }
    }
    for (auto origin = routes_.begin(); origin != routes_.end();) {
        auto& candidates = origin->second;
        for (auto it = candidates.begin(); it != candidates.end();) {
            if (now.ns() - it->second.last_update.ns() > ttl ||
                !neighbors_.contains(it->first)) {
                it = candidates.erase(it);
            } else {
                ++it;
            }
        }
        if (candidates.empty()) {
            origin = routes_.erase(origin);
        } else {
            ++origin;
        }
    }
}

void MeshStack::broadcast_cam() {
    v2v::Frame frame =
        v2v::Medium::cam(name_, medium_.position(name_), config_.speed_mps);
    frame.seq = ++cam_seq_;
    medium_.transmit(std::move(frame));
    ++cams_sent_;
}

bool MeshStack::send_cam(const std::string& destination) {
    SA_REQUIRE(destination != name_, "a CAM cannot be addressed to its sender");
    const auto hop = next_hop(destination);
    if (!hop.has_value()) {
        ++cams_unroutable_;
        return false;
    }
    v2v::Frame frame;
    frame.kind = v2v::FrameKind::Cam;
    frame.transmitter = name_;
    frame.origin = name_;
    frame.destination = destination;
    frame.next_hop = *hop;
    frame.seq = ++cam_seq_;
    frame.ttl = cam_ttl();
    frame.position_m = medium_.position(name_);
    frame.speed_mps = config_.speed_mps;
    medium_.transmit(std::move(frame));
    ++cams_sent_;
    return true;
}

std::optional<std::string>
MeshStack::next_hop(const std::string& destination) const {
    const auto routes = routes_.find(destination);
    if (routes == routes_.end()) {
        return std::nullopt;
    }
    const std::string* best = nullptr;
    std::uint32_t best_hops = 0;
    double best_metric = 0.0;
    for (const auto& [via, candidate] : routes->second) {
        const auto neighbor = neighbors_.find(via);
        if (neighbor == neighbors_.end()) {
            continue; // first hop aged out; candidate dies at the next tick
        }
        double metric = 0.0;
        switch (config_.policy) {
        case NextHopPolicy::HopCount:
            metric = -static_cast<double>(candidate.hops);
            break;
        case NextHopPolicy::Rssi:
            metric = neighbor->second.rssi_dbm;
            break;
        case NextHopPolicy::Prr:
            metric = neighbor->second.prr;
            break;
        }
        // Strictly-greater keeps the lexicographically smallest neighbor on
        // ties (map iteration order), so the choice is deterministic.
        if (best == nullptr || metric > best_metric) {
            best = &via;
            best_metric = metric;
            best_hops = candidate.hops;
        }
    }
    (void)best_hops;
    if (best == nullptr) {
        return std::nullopt;
    }
    return *best;
}

std::string MeshStack::table_str() const {
    std::string out = name_ + ":\n";
    for (const auto& [name, neighbor] : neighbors_) {
        out += format("  nbr %s rssi=%.1f prr=%.3f heard=%llu\n", name.c_str(),
                      neighbor.rssi_dbm, neighbor.prr,
                      static_cast<unsigned long long>(neighbor.frames_heard));
    }
    for (const auto& [origin, candidates] : routes_) {
        const auto hop = next_hop(origin);
        if (!hop.has_value()) {
            continue;
        }
        out += format("  route %s via %s hops=%u\n", origin.c_str(),
                      hop->c_str(), candidates.at(*hop).hops);
    }
    return out;
}

} // namespace sa::mesh
