#include "mesh/medium.hpp"

#include <cmath>

#include "sim/sharded_kernel.hpp"
#include "util/assert.hpp"

namespace sa::v2v {
namespace {

/// splitmix64 finalizer: the avalanche stage used for the per-domain seed
/// derivation, reused here to mix the loss-draw hash state.
std::uint64_t mix64(std::uint64_t x) noexcept {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

/// FNV-1a over a string, folded into the running hash state.
std::uint64_t mix_string(std::uint64_t h, const std::string& text) noexcept {
    std::uint64_t fnv = 0xCBF29CE484222325ULL;
    for (const char c : text) {
        fnv = (fnv ^ static_cast<unsigned char>(c)) * 0x100000001B3ULL;
    }
    return mix64(h ^ fnv);
}

} // namespace

const char* to_string(FrameKind kind) noexcept {
    switch (kind) {
    case FrameKind::Announce: return "announce";
    case FrameKind::Cam: return "cam";
    }
    return "?";
}

const char* to_string(Fading fading) noexcept {
    switch (fading) {
    case Fading::None: return "none";
    case Fading::Linear: return "linear";
    case Fading::Quadratic: return "quadratic";
    }
    return "?";
}

Medium::Medium(sim::Simulator& simulator, MediumConfig config)
    : simulator_(simulator), config_(config) {
    SA_REQUIRE(config_.loss_probability >= 0.0 && config_.loss_probability <= 1.0,
               "loss probability must be within [0,1]");
    SA_REQUIRE(config_.latency.count_ns() >= 0, "latency must be non-negative");
    SA_REQUIRE(config_.range_m >= 0.0, "radio range must be non-negative");
    SA_REQUIRE(config_.fading == Fading::None || config_.range_m > 0.0,
               "a fading model needs a finite radio range (range_m > 0)");
    if (sim::ShardedKernel* kernel = simulator_.shard()) {
        SA_REQUIRE(config_.latency.count_ns() > 0,
                   "a V2V medium on a sharded kernel needs a positive "
                   "latency (it becomes every domain's lookahead)");
        // Any domain may carry a transmitter, so the frame latency bounds
        // every domain's lookahead: it IS the window the domains may race
        // ahead.
        for (std::size_t d = 0; d < kernel->num_domains(); ++d) {
            kernel->declare_lookahead(d, config_.latency);
        }
    }
}

void Medium::require_quiescent(const char* operation) const {
    SA_REQUIRE(sim::detail::executing_domain() == nullptr,
               std::string("Medium::") + operation +
                   " called from inside a sharded window: membership and "
                   "positions are read lock-free by every domain's "
                   "transmit(); mutate only between runs or from a script "
                   "barrier");
}

void Medium::attach(const std::string& name, sim::Simulator& home,
                    Receiver receiver, double position_m) {
    require_quiescent("attach");
    SA_REQUIRE(static_cast<bool>(receiver), "receiver must be callable");
    SA_REQUIRE(!endpoints_.contains(name), "duplicate medium endpoint: " + name);
    SA_REQUIRE(&home == &simulator_ || (simulator_.shard() != nullptr &&
                                        home.shard() == simulator_.shard()),
               "endpoint home must be the medium's simulator or a domain of "
               "the same sharded kernel");
    endpoints_[name] = Endpoint{&home, std::move(receiver), position_m};
}

void Medium::detach(const std::string& name) {
    require_quiescent("detach");
    endpoints_.erase(name);
}

void Medium::move(const std::string& name, double position_m) {
    require_quiescent("move");
    auto it = endpoints_.find(name);
    SA_REQUIRE(it != endpoints_.end(), "unknown medium endpoint: " + name);
    it->second.position_m = position_m;
}

bool Medium::attached(const std::string& name) const {
    return endpoints_.contains(name);
}

double Medium::position(const std::string& name) const {
    auto it = endpoints_.find(name);
    SA_REQUIRE(it != endpoints_.end(), "unknown medium endpoint: " + name);
    return it->second.position_m;
}

std::vector<std::string> Medium::members() const {
    std::vector<std::string> names;
    names.reserve(endpoints_.size());
    for (const auto& [name, endpoint] : endpoints_) {
        names.push_back(name);
    }
    return names;
}

double Medium::loss_at(double distance_m) const noexcept {
    if (config_.range_m > 0.0 && distance_m > config_.range_m) {
        return 1.0;
    }
    double fade = 0.0;
    if (config_.range_m > 0.0) {
        const double ratio = distance_m / config_.range_m;
        switch (config_.fading) {
        case Fading::None: break;
        case Fading::Linear: fade = ratio; break;
        case Fading::Quadratic: fade = ratio * ratio; break;
        }
    }
    return config_.loss_probability + (1.0 - config_.loss_probability) * fade;
}

double Medium::rssi_at(double distance_m) noexcept {
    // Log-distance path loss: -40 dBm reference at 1 m, exponent 2.2 (open
    // road with some ground reflection). Purely a function of distance, so
    // every run and every domain count sees the same estimate.
    const double d = distance_m < 1.0 ? 1.0 : distance_m;
    return -40.0 - 10.0 * 2.2 * std::log10(d);
}

double Medium::loss_draw(const Frame& frame,
                         const std::string& receiver) const noexcept {
    std::uint64_t h = mix64(config_.seed);
    h = mix_string(h, frame.transmitter);
    h = mix_string(h, receiver);
    h = mix64(h ^ static_cast<std::uint64_t>(frame.sent.ns()));
    h = mix_string(h, frame.origin);
    h = mix64(h ^ (static_cast<std::uint64_t>(frame.seq) |
                   (static_cast<std::uint64_t>(frame.kind) << 32) |
                   (static_cast<std::uint64_t>(frame.hops) << 40)));
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

Frame Medium::cam(std::string sender, double position_m, double speed_mps) {
    Frame frame;
    frame.kind = FrameKind::Cam;
    frame.transmitter = sender;
    frame.origin = std::move(sender);
    frame.position_m = position_m;
    frame.speed_mps = speed_mps;
    return frame;
}

void Medium::transmit(Frame frame) {
    auto tx = endpoints_.find(frame.transmitter);
    SA_REQUIRE(tx != endpoints_.end(),
               "transmitter not attached to the medium: " + frame.transmitter);
    SA_REQUIRE(frame.ttl >= 1, "frame TTL exhausted before transmit");
    transmissions_.fetch_add(1, std::memory_order_relaxed);
    // The sending context: the domain whose window is executing, or the
    // medium's own simulator from quiescent contexts. Only its clock is
    // touched — loss draws are stateless hashes, never an RNG stream, so
    // the delivery trace is identical at every domain count.
    sim::Simulator* executing = sim::detail::executing_domain();
    sim::Simulator& context = executing != nullptr ? *executing : simulator_;
    if (frame.hops == 0) {
        frame.sent = context.now();
    }
    const Time deliver_at = context.now() + config_.latency;
    const double tx_position = tx->second.position_m;
    for (const auto& [name, endpoint] : endpoints_) {
        if (name == frame.transmitter) {
            continue;
        }
        if (!frame.next_hop.empty() && name != frame.next_hop) {
            continue; // addressed relay: only the named hop listens
        }
        const double distance = std::abs(endpoint.position_m - tx_position);
        const double p = loss_at(distance);
        if (p >= 1.0 || (p > 0.0 && loss_draw(frame, name) < p)) {
            losses_.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        deliveries_.fetch_add(1, std::memory_order_relaxed);
        const double rssi = rssi_at(distance);
        // Resolve the receiver at delivery time, not capture it: an endpoint
        // that detached while the frame was in flight (quiescent contexts
        // only, so the lookup itself never races) silently misses the frame
        // instead of invoking a dangling callback.
        sim::post(*endpoint.home, deliver_at,
                  [this, receiver_name = name, frame, rssi] {
                      const auto rx = endpoints_.find(receiver_name);
                      if (rx != endpoints_.end()) {
                          rx->second.receiver(frame, rssi);
                      }
                  });
    }
}

} // namespace sa::v2v
