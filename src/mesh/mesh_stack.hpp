#pragma once
// mesh::MeshStack — the per-vehicle protocol endpoint of the V2V mesh, built
// on the v2v::Medium radio substrate. Three mechanisms, borrowed from proven
// shapes:
//
//  * Neighbor table with link-quality estimation (the Contiki tree-routing
//    idiom): every frame heard from a transmitter refreshes an EWMA RSSI
//    estimate; gaps in a neighbor's own announcement sequence numbers feed
//    an EWMA packet-reception-ratio (PRR). Entries age out after
//    neighbor_ttl of silence.
//
//  * TTL'd self-announcements with selective on-announcement (the serval-dna
//    overlay idiom): each stack periodically announces itself; a stack
//    hearing a NEW announcement (per-origin sequence dedup) re-transmits it
//    once with TTL-1, so presence floods the mesh exactly once per beacon
//    instead of exponentially. Announcements double as route discovery:
//    hearing origin O via transmitter T records a candidate route O-via-T
//    with the frame's hop count.
//
//  * Pluggable next-hop policies (hop-count / RSSI / PRR) choosing among the
//    candidate routes for unicast CAM relay beyond radio range. Relays are
//    addressed (Frame::next_hop), so a relayed CAM crosses the mesh as a
//    chain of unicasts, not a flood.
//
// Determinism. All mutable state lives on the stack's home simulator: the
// medium posts every delivery to the home domain, the announcement beacon is
// a home-domain periodic, and aging keys off the home clock. Under sharding
// the state is therefore single-threaded by construction (TSan-clean), and
// because the medium's loss draws are stateless hashes, neighbor tables,
// chosen routes and relay traces reproduce byte-identically at every domain
// count.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "mesh/medium.hpp"

namespace sa::mesh {

using sim::Duration;
using sim::Time;

/// Next-hop selection among the candidate routes to a destination.
enum class NextHopPolicy : std::uint8_t {
    HopCount, ///< fewest hops to the origin (ties: lexicographic neighbor)
    Rssi,     ///< strongest first-hop RSSI estimate
    Prr,      ///< best first-hop packet-reception ratio
};

[[nodiscard]] const char* to_string(NextHopPolicy policy) noexcept;
[[nodiscard]] bool next_hop_policy_from_string(const std::string& text,
                                               NextHopPolicy& out);

struct MeshConfig {
    /// Announcement TTL: how many transmissions a self-announcement may
    /// take, i.e. the hop radius of presence discovery. Must cover the
    /// mesh's hop diameter (lint rule MSH002 checks this statically).
    std::uint32_t beacon_ttl = 4;
    /// Self-announcement period and first-firing phase. Stagger phases
    /// across vehicles to keep announcement instants off shared timestamps.
    Duration beacon_period = Duration::ms(100);
    Duration beacon_phase = Duration::zero();
    /// Neighbor/route entries older than this are dropped at the next
    /// beacon tick (EWMA aging horizon).
    Duration neighbor_ttl = Duration::ms(600);
    /// TTL for unicast CAM sends (0 = reuse beacon_ttl).
    std::uint32_t cam_ttl = 0;
    NextHopPolicy policy = NextHopPolicy::HopCount;
    /// EWMA smoothing factors (weight of the newest sample).
    double rssi_alpha = 0.3;
    double prr_alpha = 0.3;
    /// Claimed speed carried in announcements and CAMs.
    double speed_mps = 0.0;
};

/// One direct-link neighbor (keyed by transmitter name).
struct Neighbor {
    double rssi_dbm = 0.0; ///< EWMA over every frame heard from this node
    double prr = 1.0;      ///< EWMA packet-reception ratio of its announces
    std::uint32_t last_seq = 0; ///< newest announce seq heard (PRR gaps)
    std::uint64_t frames_heard = 0;
    Time last_heard;
};

/// One candidate route to an origin via a direct neighbor.
struct RouteCandidate {
    std::uint32_t hops = 0; ///< transmissions origin -> here along this path
    Time last_update;
};

class MeshStack {
public:
    /// CAM payloads addressed to (or broadcast past) this stack.
    using CamHandler = std::function<void(const v2v::Frame&)>;

    /// Attaches `name` to the medium at `position_m` and arms the periodic
    /// self-announcement on `home`. Build-time only (quiescent contexts):
    /// the medium's attach contract applies.
    MeshStack(std::string name, v2v::Medium& medium, sim::Simulator& home,
              MeshConfig config = {}, double position_m = 0.0);
    /// Cancels the beacon and detaches from the medium (quiescent only).
    ~MeshStack();

    MeshStack(const MeshStack&) = delete;
    MeshStack& operator=(const MeshStack&) = delete;

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] const MeshConfig& config() const noexcept { return config_; }

    /// Deliver CAM payloads to `handler` (home-domain execution). Set it
    /// before the run (or from a script barrier).
    void on_cam(CamHandler handler) { cam_handler_ = std::move(handler); }

    /// Single-hop CAM broadcast (the pre-mesh beacon behaviour): every
    /// endpoint in radio range hears it, nobody relays it.
    void broadcast_cam();
    /// Unicast CAM toward `destination`, relayed hop by hop along each
    /// stack's chosen route. Returns false (and counts cams_unroutable)
    /// when no route to the destination is known yet.
    bool send_cam(const std::string& destination);

    /// The chosen next hop toward `destination` under the configured
    /// policy, or nullopt when no live candidate route exists.
    [[nodiscard]] std::optional<std::string>
    next_hop(const std::string& destination) const;

    [[nodiscard]] const std::map<std::string, Neighbor>& neighbors() const noexcept {
        return neighbors_;
    }
    /// Candidate routes per origin (via -> candidate).
    [[nodiscard]] const std::map<std::string, std::map<std::string, RouteCandidate>>&
    routes() const noexcept {
        return routes_;
    }

    /// Canonical text rendering of the neighbor table and the chosen route
    /// per known origin — the byte-identical determinism fingerprint the
    /// mesh suite compares across domain counts.
    [[nodiscard]] std::string table_str() const;

    // --- counters (home-domain writes; read when quiescent) ----------------
    [[nodiscard]] std::uint64_t announces_sent() const noexcept {
        return announces_sent_;
    }
    [[nodiscard]] std::uint64_t announces_relayed() const noexcept {
        return announces_relayed_;
    }
    [[nodiscard]] std::uint64_t cams_sent() const noexcept { return cams_sent_; }
    [[nodiscard]] std::uint64_t cams_received() const noexcept {
        return cams_received_;
    }
    [[nodiscard]] std::uint64_t cams_relayed() const noexcept {
        return cams_relayed_;
    }
    /// CAMs that needed a relay but found no route (here or mid-path).
    [[nodiscard]] std::uint64_t cams_unroutable() const noexcept {
        return cams_unroutable_;
    }

private:
    void handle_frame(const v2v::Frame& frame, double rssi_dbm);
    void handle_announce(const v2v::Frame& frame);
    void handle_cam(const v2v::Frame& frame);
    /// Periodic beacon tick: age the tables, then announce self.
    void beacon_tick();
    void age_tables(Time now);
    [[nodiscard]] std::uint32_t cam_ttl() const noexcept {
        return config_.cam_ttl != 0 ? config_.cam_ttl : config_.beacon_ttl;
    }

    std::string name_;
    v2v::Medium& medium_;
    sim::Simulator& home_;
    MeshConfig config_;
    CamHandler cam_handler_;
    std::uint64_t beacon_id_ = 0; ///< periodic handle
    std::uint32_t announce_seq_ = 0;
    std::uint32_t cam_seq_ = 0;

    std::map<std::string, Neighbor> neighbors_;
    std::map<std::string, std::map<std::string, RouteCandidate>> routes_;
    /// Per-origin newest announce seq seen (selective on-announcement).
    std::map<std::string, std::uint32_t> origin_seq_;

    std::uint64_t announces_sent_ = 0;
    std::uint64_t announces_relayed_ = 0;
    std::uint64_t cams_sent_ = 0;
    std::uint64_t cams_received_ = 0;
    std::uint64_t cams_relayed_ = 0;
    std::uint64_t cams_unroutable_ = 0;
};

} // namespace sa::mesh
