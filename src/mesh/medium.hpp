#pragma once
// v2v::Medium — the shared radio substrate of the V2V mesh (§V: cooperating
// vehicles "share information" over channels that are lossy, delayed and
// range-limited). The Medium replaces the old platoon::V2vChannel and keeps
// only the physics: per-pair loss derived from along-track distance through
// a pluggable fading model, a constant propagation+stack latency, a hard
// radio range, and a deterministic log-distance RSSI estimate delivered with
// every frame. Everything protocol-shaped (neighbor tables, announcements,
// relaying) lives one layer up in mesh::MeshStack.
//
// API redesign: there is exactly ONE attach surface —
// attach(name, home, receiver) — and no implicit home-simulator rule. Every
// endpoint names the simulator its receiver runs on (its vehicle's domain
// under sharding, the only simulator otherwise); delivery is via sim::post,
// so a sharded run stays deterministic.
//
// Sharding. The Medium is the canonical cross-domain link: its latency is
// declared as every domain's lookahead bound (the window the domains may
// race ahead). transmit() may run concurrently on several domain workers;
// membership and positions are therefore frozen while a sharded window is
// executing — attach()/detach()/move() from inside a window is a loud
// ContractViolation (mirroring the schedule_periodic foreign-thread
// contract), mutate only between runs or from script barriers.
//
// Determinism across domain counts. Loss draws do NOT use the per-domain RNG
// streams (domains 1+ are splitmix64-derived, so their streams differ
// between 1/2/4-domain runs of the same seed). Each draw is a stateless hash
// of (medium seed, transmitter, receiver, send time, origin, seq, kind):
// thread-safe without shared mutable state, reproducible from the seed, and
// byte-identical regardless of how vehicles are partitioned onto domains —
// the property the mesh determinism suite locks in.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace sa::v2v {

using sim::Duration;
using sim::Time;

/// What a frame is to the mesh layer. Announce frames build neighbor tables
/// and routes; Cam frames carry the cooperative-awareness payload.
enum class FrameKind : std::uint8_t { Announce, Cam };

[[nodiscard]] const char* to_string(FrameKind kind) noexcept;

/// One radio frame. A single-hop CAM (the old V2vBeacon) is a Frame with
/// origin == transmitter, ttl 1 and no destination; the mesh layer reuses
/// the same shape for TTL'd announcements and addressed multi-hop relays.
struct Frame {
    FrameKind kind = FrameKind::Cam;
    std::string transmitter;  ///< per-hop radio sender (the relaying node)
    std::string origin;       ///< original source of the payload
    std::string destination;  ///< unicast target; empty = broadcast payload
    std::string next_hop;     ///< addressed relay target; empty = all in range
    std::uint32_t seq = 0;    ///< origin's sequence number (dedup + PRR)
    std::uint32_t ttl = 1;    ///< remaining transmissions (1 = no relay)
    std::uint32_t hops = 0;   ///< transmissions already taken
    double position_m = 0.0;  ///< origin's claimed along-track position
    double speed_mps = 0.0;   ///< origin's claimed speed
    Time sent;                ///< stamped by the medium at origination
};

/// Distance-dependent loss shape. The fading fraction f(d) ramps from 0 at
/// the transmitter to 1 at the radio range; the effective loss probability
/// of a pair at distance d is  base + (1 - base) * f(d).
enum class Fading : std::uint8_t {
    None,      ///< f(d) = 0 inside the range (hard-shell radio)
    Linear,    ///< f(d) = d / range
    Quadratic, ///< f(d) = (d / range)^2
};

[[nodiscard]] const char* to_string(Fading fading) noexcept;

struct MediumConfig {
    /// Distance-independent base loss probability in [0, 1].
    double loss_probability = 0.0;
    /// Constant propagation + stack latency; becomes every domain's
    /// lookahead on a sharded kernel (must be > 0 there).
    Duration latency = Duration::ms(20);
    /// Hard radio range in meters; 0 = unlimited (every pair in range).
    double range_m = 0.0;
    /// Distance-dependent loss shape; requires a finite range.
    Fading fading = Fading::None;
    /// Seed of the stateless loss-draw hash (independent of the simulator
    /// seed so the same traffic pattern can be re-rolled in isolation).
    std::uint64_t seed = 0x5AA5F00DULL;
};

/// Shared lossy/latency/range substrate. See the header comment.
class Medium {
public:
    /// Receiver callback: the delivered frame plus the deterministic RSSI
    /// estimate of the transmitter->receiver link at delivery.
    using Receiver = std::function<void(const Frame&, double rssi_dbm)>;

    Medium(sim::Simulator& simulator, MediumConfig config = {});

    Medium(const Medium&) = delete;
    Medium& operator=(const Medium&) = delete;

    /// Attach an endpoint: delivered frames execute on `home` (its domain
    /// worker under sharding). `home` must be the medium's simulator or a
    /// domain of the same sharded kernel. Quiescent contexts only.
    void attach(const std::string& name, sim::Simulator& home, Receiver receiver,
                double position_m = 0.0);
    /// Detach an endpoint. Quiescent contexts only.
    void detach(const std::string& name);
    /// Move an endpoint along the track. Quiescent contexts only (script
    /// barriers are the sanctioned way to move vehicles mid-run).
    void move(const std::string& name, double position_m);

    [[nodiscard]] bool attached(const std::string& name) const;
    [[nodiscard]] double position(const std::string& name) const;
    /// Attached endpoint names, sorted (map order).
    [[nodiscard]] std::vector<std::string> members() const;

    /// Transmit one frame from frame.transmitter (which must be attached).
    /// Every other endpoint — or only frame.next_hop when set — draws an
    /// independent loss and receives the frame latency later on its home.
    /// Fresh frames (hops == 0) are stamped with the sending context's
    /// clock; relayed frames keep their origination timestamp.
    void transmit(Frame frame);

    /// Convenience: a single-hop CAM broadcast frame (the old V2vBeacon).
    [[nodiscard]] static Frame cam(std::string sender, double position_m,
                                   double speed_mps);

    // --- physics (deterministic, exposed for tests and lint) ---------------
    /// Effective loss probability at `distance_m` (1.0 beyond the range).
    [[nodiscard]] double loss_at(double distance_m) const noexcept;
    /// Log-distance path-loss RSSI estimate: -40 dBm at 1 m, exponent 2.2.
    [[nodiscard]] static double rssi_at(double distance_m) noexcept;

    [[nodiscard]] const MediumConfig& config() const noexcept { return config_; }
    [[nodiscard]] sim::Simulator& simulator() noexcept { return simulator_; }

    [[nodiscard]] std::uint64_t transmissions() const noexcept {
        return transmissions_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t deliveries() const noexcept {
        return deliveries_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t losses() const noexcept {
        return losses_.load(std::memory_order_relaxed);
    }

private:
    struct Endpoint {
        sim::Simulator* home;
        Receiver receiver;
        double position_m;
    };

    /// Loud ContractViolation when called from inside a sharded window —
    /// transmit() on other workers reads members_ and positions lock-free.
    void require_quiescent(const char* operation) const;
    /// Stateless loss draw in [0, 1): a hash of the pair, the send instant
    /// and the frame identity. Identical across domain counts by design.
    [[nodiscard]] double loss_draw(const Frame& frame,
                                   const std::string& receiver) const noexcept;

    sim::Simulator& simulator_;
    MediumConfig config_;
    std::map<std::string, Endpoint> endpoints_;
    // Relaxed atomics: transmissions may run concurrently on several domain
    // workers; the counts are order-free sums.
    std::atomic<std::uint64_t> transmissions_{0};
    std::atomic<std::uint64_t> deliveries_{0};
    std::atomic<std::uint64_t> losses_{0};
};

} // namespace sa::v2v
