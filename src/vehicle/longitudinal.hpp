#pragma once
// Point-mass longitudinal vehicle dynamics — the plant behind the ACC and
// braking scenarios (the paper's x-by-wire research vehicle MOBILE is
// substituted by this model; see DESIGN.md).

#include <algorithm>

namespace sa::vehicle {

struct VehicleParams {
    double mass_kg = 1600.0;
    double drag = 0.40;              ///< 0.5 * rho * cd * A  [kg/m]
    double rolling_coeff = 0.012;    ///< rolling resistance coefficient
    double max_engine_force_n = 4500.0;
    double max_brake_force_n = 12000.0; ///< full system (front + rear)
    double gravity = 9.81;
};

class LongitudinalModel {
public:
    explicit LongitudinalModel(VehicleParams params = {}) : params_(params) {}

    /// Advance by dt seconds with normalized commands in [0, 1].
    /// `brake_effectiveness` scales available brake force (degraded rear
    /// braking reduces it; see BrakeByWire).
    void step(double dt_s, double throttle, double brake, double brake_effectiveness = 1.0);

    [[nodiscard]] double speed_mps() const noexcept { return speed_; }
    [[nodiscard]] double position_m() const noexcept { return position_; }
    void set_speed(double mps) noexcept { speed_ = std::max(0.0, mps); }
    void set_position(double m) noexcept { position_ = m; }

    [[nodiscard]] const VehicleParams& params() const noexcept { return params_; }

    /// Idealized stopping distance from `speed` with the given effectiveness
    /// (constant deceleration, no reaction time).
    [[nodiscard]] double stopping_distance(double speed, double brake_effectiveness) const;

private:
    VehicleParams params_;
    double speed_ = 0.0;
    double position_ = 0.0;
};

} // namespace sa::vehicle
