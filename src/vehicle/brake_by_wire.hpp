#pragma once
// Brake-by-wire with separate front and rear channels — the stage for §V's
// security example ("a security flaw in the software component governing
// rear braking"). Channel availability maps to overall effectiveness; the
// ability layer compensates a lost rear channel by reducing speed and using
// powertrain drag ("generating additional brake torque from the drive
// train").

namespace sa::vehicle {

struct BrakeSplit {
    double front_fraction = 0.65; ///< share of total brake force on the front axle
    double drivetrain_fraction = 0.12; ///< extra retardation available from the powertrain
};

class BrakeByWire {
public:
    explicit BrakeByWire(BrakeSplit split = {}) : split_(split) {}

    void set_front_available(bool available) noexcept { front_ = available; }
    void set_rear_available(bool available) noexcept { rear_ = available; }
    /// Engage powertrain braking as a compensation tactic.
    void set_drivetrain_assist(bool engaged) noexcept { drivetrain_ = engaged; }

    [[nodiscard]] bool front_available() const noexcept { return front_; }
    [[nodiscard]] bool rear_available() const noexcept { return rear_; }
    [[nodiscard]] bool drivetrain_assist() const noexcept { return drivetrain_; }

    /// Fraction of nominal brake force currently available, in [0, 1+].
    [[nodiscard]] double effectiveness() const noexcept;

    /// Ability-graph level for the brake_system sink in [0, 1].
    [[nodiscard]] double ability_level() const noexcept;

private:
    BrakeSplit split_;
    bool front_ = true;
    bool rear_ = true;
    bool drivetrain_ = false;
};

} // namespace sa::vehicle
