#pragma once
// Driver / HMI model: the data source behind the "estimate driver intent"
// skill. Produces intent samples (set-speed requests, takeover readiness) at
// a configurable period; an HMI fault silences the stream, which the
// sensor-quality monitor converts into a degraded ability.

#include <functional>

#include "sim/simulator.hpp"

namespace sa::vehicle {

struct DriverIntent {
    double requested_speed_mps = 30.0;
    bool takeover_ready = true;
};

class DriverModel {
public:
    DriverModel(sim::Simulator& simulator, sim::Duration sample_period = sim::Duration::ms(100))
        : simulator_(simulator), period_(sample_period) {}

    /// Start producing intent samples through the given callback.
    void start(std::function<void(const DriverIntent&)> on_sample);
    void stop();

    void set_requested_speed(double mps) noexcept { intent_.requested_speed_mps = mps; }
    void set_takeover_ready(bool ready) noexcept { intent_.takeover_ready = ready; }

    /// Simulate an HMI failure: samples stop flowing.
    void set_hmi_failed(bool failed) noexcept { hmi_failed_ = failed; }
    [[nodiscard]] bool hmi_failed() const noexcept { return hmi_failed_; }

    [[nodiscard]] const DriverIntent& intent() const noexcept { return intent_; }

private:
    sim::Simulator& simulator_;
    sim::Duration period_;
    DriverIntent intent_;
    bool hmi_failed_ = false;
    std::uint64_t periodic_id_ = 0;
};

} // namespace sa::vehicle
