#pragma once
// Environmental sensor models (radar / lidar / camera) with weather-dependent
// degradation: range shrinkage, noise inflation and dropouts. §IV demands
// "data quality assessment for environmental sensors"; these models produce
// exactly the imperfect streams the SensorQualityMonitor has to judge.

#include <optional>
#include <string>

#include "util/random.hpp"
#include "vehicle/weather.hpp"

namespace sa::vehicle {

enum class SensorType { Radar, Lidar, Camera };

const char* to_string(SensorType type) noexcept;

struct SensorConfig {
    SensorType type = SensorType::Radar;
    std::string name = "radar";
    double max_range_m = 150.0;
    double noise_sigma_m = 0.3;   ///< clear-weather measurement noise
    double dropout_prob = 0.005;  ///< clear-weather dropout probability
};

/// Sensor susceptibility to weather, per type. Values are the *remaining*
/// fraction at worst-case weather (fog = 1 / rain = 1).
struct Susceptibility {
    double range_fog;
    double range_rain;
    double noise_fog;  ///< noise multiplier at fog = 1
    double dropout_fog;///< extra dropout probability at fog = 1
};

[[nodiscard]] Susceptibility susceptibility(SensorType type) noexcept;

struct RangeMeasurement {
    double range_m = 0.0;
    bool valid = false;
};

class RangeSensor {
public:
    explicit RangeSensor(SensorConfig config) : config_(std::move(config)) {}

    /// Measure the distance to an object at `true_range_m` under `weather`.
    /// Out-of-range or dropped measurements return valid = false.
    [[nodiscard]] RangeMeasurement measure(double true_range_m,
                                           const WeatherCondition& weather,
                                           RandomEngine& rng) const;

    /// Effective maximum range under the given weather.
    [[nodiscard]] double effective_range_m(const WeatherCondition& weather) const;

    /// Effective noise sigma under the given weather.
    [[nodiscard]] double effective_noise_m(const WeatherCondition& weather) const;

    /// Effective dropout probability under the given weather.
    [[nodiscard]] double effective_dropout(const WeatherCondition& weather) const;

    [[nodiscard]] const SensorConfig& config() const noexcept { return config_; }

private:
    SensorConfig config_;
};

} // namespace sa::vehicle
