#include "vehicle/route_planner.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>

#include "util/assert.hpp"

namespace sa::vehicle {

namespace {
constexpr double kImpassablePenaltyMinutes = 240.0;
}

double RoadEdge::nominal_minutes() const {
    SA_REQUIRE(nominal_speed_kmh > 0.0, "nominal speed must be positive");
    return length_km / nominal_speed_kmh * 60.0;
}

double RoadEdge::expected_minutes() const {
    const double nominal = nominal_minutes();
    double degraded;
    if (degraded_speed_factor <= 0.0) {
        degraded = nominal + kImpassablePenaltyMinutes;
    } else {
        degraded = nominal / degraded_speed_factor;
    }
    return (1.0 - degradation_prob) * nominal + degradation_prob * degraded;
}

double RoadEdge::worst_case_minutes() const {
    if (degradation_prob <= 0.0) {
        return nominal_minutes();
    }
    if (degraded_speed_factor <= 0.0) {
        return nominal_minutes() + kImpassablePenaltyMinutes;
    }
    return nominal_minutes() / degraded_speed_factor;
}

void RoutePlanner::add_road(RoadEdge edge) {
    SA_REQUIRE(!edge.from.empty() && !edge.to.empty(), "road needs endpoints");
    SA_REQUIRE(edge.degradation_prob >= 0.0 && edge.degradation_prob <= 1.0,
               "degradation_prob must be a probability");
    edges_.push_back(edge);
}

std::size_t RoutePlanner::node_count() const {
    std::set<std::string> nodes;
    for (const auto& e : edges_) {
        nodes.insert(e.from);
        nodes.insert(e.to);
    }
    return nodes.size();
}

double RoutePlanner::edge_cost(const RoadEdge& edge, double risk_aversion) const {
    const double nominal = edge.nominal_minutes();
    const double expected = edge.expected_minutes();
    const double worst = edge.worst_case_minutes();
    if (risk_aversion <= 0.0) {
        return nominal;
    }
    if (risk_aversion <= 1.0) {
        return nominal + risk_aversion * (expected - nominal);
    }
    const double beyond = std::min(risk_aversion - 1.0, 1.0);
    return expected + beyond * (worst - expected);
}

Route RoutePlanner::plan(const std::string& from, const std::string& to,
                         double risk_aversion) const {
    Route route;

    // Dijkstra over the chosen cost.
    std::map<std::string, double> dist;
    std::map<std::string, std::string> prev;
    using QueueEntry = std::pair<double, std::string>;
    std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> queue;
    dist[from] = 0.0;
    queue.push({0.0, from});

    while (!queue.empty()) {
        const auto [d, node] = queue.top();
        queue.pop();
        if (d > dist[node]) {
            continue;
        }
        if (node == to) {
            break;
        }
        for (const auto& e : edges_) {
            std::string next;
            if (e.from == node) {
                next = e.to;
            } else if (e.to == node) {
                next = e.from;
            } else {
                continue;
            }
            const double cost = d + edge_cost(e, risk_aversion);
            auto it = dist.find(next);
            if (it == dist.end() || cost < it->second) {
                dist[next] = cost;
                prev[next] = node;
                queue.push({cost, next});
            }
        }
    }

    if (!dist.contains(to)) {
        return route; // unreachable
    }

    // Reconstruct waypoints.
    std::vector<std::string> path;
    for (std::string node = to; node != from; node = prev.at(node)) {
        path.push_back(node);
    }
    path.push_back(from);
    std::reverse(path.begin(), path.end());
    route.waypoints = std::move(path);
    route.found = true;

    // Accumulate the three cost figures along the chosen path.
    for (std::size_t i = 0; i + 1 < route.waypoints.size(); ++i) {
        const std::string& a = route.waypoints[i];
        const std::string& b = route.waypoints[i + 1];
        const RoadEdge* best = nullptr;
        for (const auto& e : edges_) {
            const bool matches =
                (e.from == a && e.to == b) || (e.from == b && e.to == a);
            if (matches &&
                (best == nullptr ||
                 edge_cost(e, risk_aversion) < edge_cost(*best, risk_aversion))) {
                best = &e;
            }
        }
        SA_ASSERT(best != nullptr, "path edge vanished during reconstruction");
        route.nominal_minutes += best->nominal_minutes();
        route.expected_minutes += best->expected_minutes();
        route.worst_case_minutes += best->worst_case_minutes();
    }
    return route;
}

RoutePlanner make_alpine_example(double winter_severity) {
    SA_REQUIRE(winter_severity >= 0.0 && winter_severity <= 1.0,
               "winter severity must be within [0,1]");
    RoutePlanner planner;
    // Direct route over the pass: short but weather-exposed.
    planner.add_road(RoadEdge{"home", "pass_foot", 20.0, 90.0, 0.0, 1.0});
    planner.add_road(
        RoadEdge{"pass_foot", "pass_summit", 15.0, 60.0, 0.6 * winter_severity, 0.25});
    planner.add_road(
        RoadEdge{"pass_summit", "destination", 15.0, 60.0, 0.6 * winter_severity, 0.25});
    // Valley detour: twice as long but robust.
    planner.add_road(RoadEdge{"home", "valley_a", 35.0, 100.0, 0.05 * winter_severity, 0.8});
    planner.add_road(
        RoadEdge{"valley_a", "valley_b", 40.0, 100.0, 0.05 * winter_severity, 0.8});
    planner.add_road(
        RoadEdge{"valley_b", "destination", 30.0, 100.0, 0.05 * winter_severity, 0.8});
    return planner;
}

} // namespace sa::vehicle
