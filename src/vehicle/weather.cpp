#include "vehicle/weather.hpp"

#include <algorithm>
#include <cmath>

namespace sa::vehicle {

double visibility_m(const WeatherCondition& weather) {
    // Exponential decay with fog density; rain has a milder effect.
    const double fog_vis = 2000.0 * std::exp(-4.0 * weather.fog);
    const double rain_factor = 1.0 - 0.5 * weather.rain;
    return std::max(15.0, fog_vis * rain_factor);
}

} // namespace sa::vehicle
