#pragma once
// Closed-loop driving scenario: an ego vehicle with ACC follows a lead
// vehicle; multiple range sensors fused by a simple validity-weighted
// average feed the controller; sensor-quality monitors watch each stream.
// This is the executable backdrop for the §IV (ACC skill graph) and §V
// (fog / rear-brake) experiments.

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "monitor/sensor_quality_monitor.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"
#include "vehicle/acc_controller.hpp"
#include "vehicle/brake_by_wire.hpp"
#include "vehicle/longitudinal.hpp"
#include "vehicle/sensor.hpp"

namespace sa::vehicle {

struct ScenarioConfig {
    double initial_gap_m = 60.0;
    double ego_speed_mps = 25.0;
    double lead_speed_mps = 22.0;
    sim::Duration control_period = sim::Duration::ms(50);
    WeatherCondition weather = WeatherCondition::clear();
    AccConfig acc{};
    VehicleParams vehicle{};
};

/// Lead-vehicle speed profile: time -> speed (m/s). Default: constant.
using LeadProfile = std::function<double(sim::Time)>;

class VehicleSim {
public:
    VehicleSim(sim::Simulator& simulator, ScenarioConfig config = {});

    /// Add a range sensor; returns its index. Call before start().
    std::size_t add_sensor(SensorConfig sensor);

    /// Attach a quality monitor to a sensor stream (index from add_sensor).
    void attach_quality_monitor(std::size_t sensor_index,
                                monitor::SensorQualityMonitor& monitor);

    /// Additive measurement bias (m) injected into every valid sample of the
    /// sensor — a calibration-drift fault. The quality monitor sees the
    /// biased stream too: availability, validity and noise variance are all
    /// unchanged, so no threshold monitor reacts (the learned monitor's
    /// use case).
    void set_sensor_bias(std::size_t sensor_index, double bias_m);
    [[nodiscard]] double sensor_bias(std::size_t sensor_index) const;

    [[nodiscard]] std::size_t sensor_count() const noexcept { return sensors_.size(); }
    /// Last valid (bias-included) measurement of a sensor stream; empty
    /// until the sensor returned its first valid sample.
    [[nodiscard]] std::optional<double> last_measurement(std::size_t sensor_index) const;

    void set_lead_profile(LeadProfile profile) { lead_profile_ = std::move(profile); }
    void set_weather(const WeatherCondition& weather) { config_.weather = weather; }
    [[nodiscard]] const WeatherCondition& weather() const noexcept {
        return config_.weather;
    }

    void start();
    void stop();

    // --- state --------------------------------------------------------------
    [[nodiscard]] double gap_m() const noexcept;
    [[nodiscard]] double ego_speed() const noexcept { return ego_.speed_mps(); }
    [[nodiscard]] double lead_speed() const noexcept { return lead_speed_; }
    [[nodiscard]] bool collided() const noexcept { return collided_; }
    [[nodiscard]] std::uint64_t control_steps() const noexcept { return steps_; }
    [[nodiscard]] std::uint64_t valid_fusions() const noexcept { return valid_fusions_; }
    [[nodiscard]] std::uint64_t blind_steps() const noexcept { return blind_steps_; }

    AccController& acc() noexcept { return acc_; }
    BrakeByWire& brakes() noexcept { return brakes_; }
    LongitudinalModel& ego() noexcept { return ego_; }

    /// Gap statistics over the run (min is the safety-relevant figure).
    [[nodiscard]] const RunningStats& gap_stats() const noexcept { return gap_stats_; }
    [[nodiscard]] const RunningStats& speed_stats() const noexcept { return speed_stats_; }

    /// Last fused measurement (for external monitors / ability feeds).
    [[nodiscard]] std::optional<double> last_fused_gap() const noexcept {
        return fused_gap_;
    }

private:
    void control_step();
    std::optional<double> sense_and_fuse();

    sim::Simulator& simulator_;
    ScenarioConfig config_;
    LongitudinalModel ego_;
    AccController acc_;
    BrakeByWire brakes_;
    double lead_position_;
    double lead_speed_;
    LeadProfile lead_profile_;
    std::vector<RangeSensor> sensors_;
    std::vector<monitor::SensorQualityMonitor*> quality_monitors_;
    std::vector<double> sensor_bias_;
    std::vector<std::optional<double>> last_measurement_;
    std::optional<double> fused_gap_;
    std::optional<double> prev_fused_gap_;
    std::uint64_t periodic_id_ = 0;
    std::uint64_t steps_ = 0;
    std::uint64_t valid_fusions_ = 0;
    std::uint64_t blind_steps_ = 0;
    bool collided_ = false;
    RunningStats gap_stats_;
    RunningStats speed_stats_;
};

} // namespace sa::vehicle
