#pragma once
// Risk-aware route planning under weather uncertainty (§V: "if the system
// was aware that its systems may degrade on a certain route due to possible
// weather influences, it could plan alternative routes ... whether it plans
// a (possibly shorter) route across an alpine pass in winter or whether it
// is advantageous to take a longer detour without risking degraded
// performance").
//
// Roads form a weighted graph; each edge carries a length, a nominal speed
// and a weather forecast (probability that conditions degrade the vehicle,
// and the slowdown factor if they do). The planner minimizes *expected* cost
// with a configurable risk aversion; an infinitely risk-averse planner only
// counts the worst case.

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sa::vehicle {

struct RoadEdge {
    std::string from;
    std::string to;
    double length_km = 1.0;
    double nominal_speed_kmh = 100.0;
    /// Forecast: probability the segment is weather-degraded ...
    double degradation_prob = 0.0;
    /// ... and the speed factor that then applies (0.5 => half speed). A
    /// factor of 0 marks an impassable segment when degraded.
    double degraded_speed_factor = 1.0;

    [[nodiscard]] double nominal_minutes() const;
    /// Expected traversal time given the forecast (minutes). Impassable-when-
    /// degraded segments contribute a large penalty scaled by probability.
    [[nodiscard]] double expected_minutes() const;
    /// Worst-case traversal time (minutes).
    [[nodiscard]] double worst_case_minutes() const;
};

struct Route {
    std::vector<std::string> waypoints;
    double nominal_minutes = 0.0;
    double expected_minutes = 0.0;
    double worst_case_minutes = 0.0;
    bool found = false;
};

class RoutePlanner {
public:
    void add_road(RoadEdge edge); ///< bidirectional

    /// risk_aversion = 0: plan on nominal times (weather-blind baseline).
    /// risk_aversion = 1: plan on expected times (self-aware).
    /// risk_aversion > 1: interpolate towards worst case.
    [[nodiscard]] Route plan(const std::string& from, const std::string& to,
                             double risk_aversion = 1.0) const;

    [[nodiscard]] std::size_t node_count() const;
    [[nodiscard]] std::size_t edge_count() const noexcept { return edges_.size(); }

private:
    [[nodiscard]] double edge_cost(const RoadEdge& edge, double risk_aversion) const;

    std::vector<RoadEdge> edges_;
};

/// The paper's example network: a short alpine pass (fast when clear, likely
/// blocked in winter) versus a longer valley detour.
[[nodiscard]] RoutePlanner make_alpine_example(double winter_severity);

} // namespace sa::vehicle
