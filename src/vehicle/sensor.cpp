#include "vehicle/sensor.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sa::vehicle {

const char* to_string(SensorType type) noexcept {
    switch (type) {
    case SensorType::Radar: return "radar";
    case SensorType::Lidar: return "lidar";
    case SensorType::Camera: return "camera";
    }
    return "?";
}

Susceptibility susceptibility(SensorType type) noexcept {
    // Radar barely cares about fog; lidar suffers; cameras are nearly blind
    // in dense fog (§V: "driving in dense fog with inappropriate or broken
    // sensors will not be possible").
    switch (type) {
    case SensorType::Radar: return Susceptibility{0.85, 0.80, 1.5, 0.02};
    case SensorType::Lidar: return Susceptibility{0.35, 0.60, 3.0, 0.25};
    case SensorType::Camera: return Susceptibility{0.10, 0.50, 4.0, 0.50};
    }
    return Susceptibility{1.0, 1.0, 1.0, 0.0};
}

double RangeSensor::effective_range_m(const WeatherCondition& weather) const {
    const Susceptibility s = susceptibility(config_.type);
    const double fog_factor = 1.0 - (1.0 - s.range_fog) * weather.fog;
    const double rain_factor = 1.0 - (1.0 - s.range_rain) * weather.rain;
    return config_.max_range_m * fog_factor * rain_factor;
}

double RangeSensor::effective_noise_m(const WeatherCondition& weather) const {
    const Susceptibility s = susceptibility(config_.type);
    return config_.noise_sigma_m * (1.0 + (s.noise_fog - 1.0) * weather.fog);
}

double RangeSensor::effective_dropout(const WeatherCondition& weather) const {
    const Susceptibility s = susceptibility(config_.type);
    return std::clamp(config_.dropout_prob + s.dropout_fog * weather.fog, 0.0, 1.0);
}

RangeMeasurement RangeSensor::measure(double true_range_m,
                                      const WeatherCondition& weather,
                                      RandomEngine& rng) const {
    SA_REQUIRE(true_range_m >= 0.0, "true range must be non-negative");
    RangeMeasurement out;
    if (true_range_m > effective_range_m(weather)) {
        return out; // beyond effective range: no detection
    }
    if (rng.chance(effective_dropout(weather))) {
        return out; // dropout
    }
    out.range_m = std::max(0.0, rng.normal(true_range_m, effective_noise_m(weather)));
    out.valid = true;
    return out;
}

} // namespace sa::vehicle
