#include "vehicle/vehicle_sim.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sa::vehicle {

VehicleSim::VehicleSim(sim::Simulator& simulator, ScenarioConfig config)
    : simulator_(simulator),
      config_(config),
      ego_(config.vehicle),
      acc_(config.acc),
      lead_position_(config.initial_gap_m),
      lead_speed_(config.lead_speed_mps) {
    ego_.set_speed(config.ego_speed_mps);
    ego_.set_position(0.0);
}

std::size_t VehicleSim::add_sensor(SensorConfig sensor) {
    SA_REQUIRE(periodic_id_ == 0, "add sensors before start()");
    sensors_.emplace_back(std::move(sensor));
    quality_monitors_.push_back(nullptr);
    sensor_bias_.push_back(0.0);
    last_measurement_.emplace_back();
    return sensors_.size() - 1;
}

void VehicleSim::attach_quality_monitor(std::size_t sensor_index,
                                        monitor::SensorQualityMonitor& monitor) {
    SA_REQUIRE(sensor_index < sensors_.size(), "sensor index out of range");
    quality_monitors_[sensor_index] = &monitor;
}

void VehicleSim::set_sensor_bias(std::size_t sensor_index, double bias_m) {
    SA_REQUIRE(sensor_index < sensors_.size(), "sensor index out of range");
    sensor_bias_[sensor_index] = bias_m;
}

double VehicleSim::sensor_bias(std::size_t sensor_index) const {
    SA_REQUIRE(sensor_index < sensors_.size(), "sensor index out of range");
    return sensor_bias_[sensor_index];
}

std::optional<double> VehicleSim::last_measurement(std::size_t sensor_index) const {
    SA_REQUIRE(sensor_index < sensors_.size(), "sensor index out of range");
    return last_measurement_[sensor_index];
}

void VehicleSim::start() {
    if (periodic_id_ != 0) {
        return;
    }
    periodic_id_ =
        simulator_.schedule_periodic(config_.control_period, [this] { control_step(); });
}

void VehicleSim::stop() {
    if (periodic_id_ != 0) {
        simulator_.cancel_periodic(periodic_id_);
        periodic_id_ = 0;
    }
}

double VehicleSim::gap_m() const noexcept { return lead_position_ - ego_.position_m(); }

std::optional<double> VehicleSim::sense_and_fuse() {
    const double true_gap = gap_m();
    double sum = 0.0;
    int n = 0;
    for (std::size_t i = 0; i < sensors_.size(); ++i) {
        RangeMeasurement m =
            sensors_[i].measure(true_gap, config_.weather, simulator_.rng());
        // Calibration drift: the bias rides on every valid return, upstream
        // of both the quality monitor and the fusion.
        m.range_m += sensor_bias_[i];
        if (quality_monitors_[i] != nullptr) {
            // Feed the monitor with the raw stream: dropouts are missing
            // samples (availability), invalid returns lower validity.
            if (m.valid) {
                quality_monitors_[i]->sample(m.range_m, true);
            }
            // Invalid measurements produce *no* sample — exactly the dropout
            // signature the availability estimator looks for.
        }
        if (m.valid) {
            last_measurement_[i] = m.range_m;
            sum += m.range_m;
            ++n;
        }
    }
    if (n == 0) {
        return std::nullopt;
    }
    return sum / n;
}

void VehicleSim::control_step() {
    const double dt = config_.control_period.to_seconds();
    ++steps_;

    // Lead vehicle update.
    if (lead_profile_) {
        lead_speed_ = std::max(0.0, lead_profile_(simulator_.now()));
    }
    lead_position_ += lead_speed_ * dt;

    // Perception.
    prev_fused_gap_ = fused_gap_;
    fused_gap_ = sense_and_fuse();
    if (fused_gap_.has_value()) {
        ++valid_fusions_;
    } else {
        ++blind_steps_;
    }

    // Closing speed estimate from consecutive fused gaps.
    std::optional<double> closing;
    if (fused_gap_.has_value() && prev_fused_gap_.has_value()) {
        closing = (*prev_fused_gap_ - *fused_gap_) / dt;
    }

    // Control + actuation through the (possibly degraded) brake system.
    const AccCommand cmd = acc_.step(ego_.speed_mps(), fused_gap_, closing);
    ego_.step(dt, cmd.throttle, cmd.brake, brakes_.effectiveness());

    // Bookkeeping.
    const double gap = gap_m();
    gap_stats_.add(gap);
    speed_stats_.add(ego_.speed_mps());
    if (gap <= 0.0) {
        collided_ = true;
    }
}

} // namespace sa::vehicle
