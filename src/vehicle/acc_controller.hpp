#pragma once
// Adaptive Cruise Control: constant-time-gap spacing policy with a speed
// controller fallback. The controller exposes the hooks the ability layer
// pulls during graceful degradation: a max-speed clamp ("reducing the
// maximum speed ... to stay in safe margins", §V) and a time-gap widening.

#include <optional>

namespace sa::vehicle {

struct AccConfig {
    double set_speed_mps = 30.0;
    double time_gap_s = 1.8;
    double min_gap_m = 5.0;
    double kp_gap = 0.12;    ///< gap error -> accel demand
    double kd_gap = 0.35;    ///< closing-speed damping
    double kp_speed = 0.35;  ///< speed error -> accel demand
    double max_accel = 2.0;  ///< m/s^2 demand clamp
    double max_decel = 6.0;  ///< m/s^2 demand clamp
};

struct AccCommand {
    double throttle = 0.0; ///< [0, 1]
    double brake = 0.0;    ///< [0, 1]
    bool following = false;///< true if regulating on a lead vehicle
};

class AccController {
public:
    explicit AccController(AccConfig config = {}) : config_(config) {}

    /// One control step. `measured_gap_m`/`closing_speed_mps` come from the
    /// perception chain (nullopt when no valid target): without a target the
    /// controller regulates speed only.
    [[nodiscard]] AccCommand step(double ego_speed_mps,
                                  std::optional<double> measured_gap_m,
                                  std::optional<double> closing_speed_mps);

    // --- degradation hooks --------------------------------------------------
    /// Clamp the effective set speed (ability-layer tactic). nullopt = clear.
    void set_speed_limit(std::optional<double> limit_mps) { speed_limit_ = limit_mps; }
    [[nodiscard]] std::optional<double> speed_limit() const noexcept {
        return speed_limit_;
    }
    /// Widen the time gap (degraded sensing => more margin).
    void set_time_gap(double seconds) { config_.time_gap_s = seconds; }

    [[nodiscard]] const AccConfig& config() const noexcept { return config_; }
    [[nodiscard]] double effective_set_speed() const noexcept;

private:
    AccConfig config_;
    std::optional<double> speed_limit_;
};

} // namespace sa::vehicle
