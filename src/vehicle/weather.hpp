#pragma once
// Environmental conditions (§V: fog, weather-related degradation, ambient
// temperature as a common-cause fault source). Conditions scale sensor
// performance via per-sensor susceptibility factors.

namespace sa::vehicle {

struct WeatherCondition {
    double fog = 0.0;       ///< 0 = clear .. 1 = dense fog
    double rain = 0.0;      ///< 0 = dry .. 1 = downpour
    double ambient_c = 20.0;

    [[nodiscard]] static WeatherCondition clear() { return {}; }
    [[nodiscard]] static WeatherCondition dense_fog() { return {0.9, 0.0, 8.0}; }
    [[nodiscard]] static WeatherCondition heavy_rain() { return {0.1, 0.9, 12.0}; }
    [[nodiscard]] static WeatherCondition alpine_winter() { return {0.5, 0.3, -10.0}; }
};

/// Meteorological visibility in metres for human reference (used by route
/// planning heuristics and example output).
double visibility_m(const WeatherCondition& weather);

} // namespace sa::vehicle
