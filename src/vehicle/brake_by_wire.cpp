#include "vehicle/brake_by_wire.hpp"

#include <algorithm>

namespace sa::vehicle {

double BrakeByWire::effectiveness() const noexcept {
    double e = 0.0;
    if (front_) {
        e += split_.front_fraction;
    }
    if (rear_) {
        e += 1.0 - split_.front_fraction;
    }
    if (drivetrain_) {
        e += split_.drivetrain_fraction;
    }
    return std::min(e, 1.0);
}

double BrakeByWire::ability_level() const noexcept {
    // The sink's ability is its effectiveness relative to nominal.
    return std::clamp(effectiveness(), 0.0, 1.0);
}

} // namespace sa::vehicle
