#include "vehicle/longitudinal.hpp"

#include "util/assert.hpp"

namespace sa::vehicle {

void LongitudinalModel::step(double dt_s, double throttle, double brake,
                             double brake_effectiveness) {
    SA_REQUIRE(dt_s > 0.0, "time step must be positive");
    throttle = std::clamp(throttle, 0.0, 1.0);
    brake = std::clamp(brake, 0.0, 1.0);
    brake_effectiveness = std::clamp(brake_effectiveness, 0.0, 1.0);

    const double f_engine = throttle * params_.max_engine_force_n;
    const double f_brake = brake * params_.max_brake_force_n * brake_effectiveness;
    const double f_drag = params_.drag * speed_ * speed_;
    const double f_roll =
        speed_ > 0.0 ? params_.rolling_coeff * params_.mass_kg * params_.gravity : 0.0;

    const double accel = (f_engine - f_brake - f_drag - f_roll) / params_.mass_kg;
    speed_ = std::max(0.0, speed_ + accel * dt_s);
    position_ += speed_ * dt_s;
}

double LongitudinalModel::stopping_distance(double speed,
                                            double brake_effectiveness) const {
    brake_effectiveness = std::clamp(brake_effectiveness, 0.01, 1.0);
    const double decel =
        params_.max_brake_force_n * brake_effectiveness / params_.mass_kg;
    return speed * speed / (2.0 * decel);
}

} // namespace sa::vehicle
