#include "vehicle/acc_controller.hpp"

#include <algorithm>

namespace sa::vehicle {

double AccController::effective_set_speed() const noexcept {
    if (speed_limit_.has_value()) {
        return std::min(config_.set_speed_mps, *speed_limit_);
    }
    return config_.set_speed_mps;
}

AccCommand AccController::step(double ego_speed_mps, std::optional<double> measured_gap_m,
                               std::optional<double> closing_speed_mps) {
    AccCommand cmd;

    // Speed-control demand towards the (possibly clamped) set speed.
    const double speed_error = effective_set_speed() - ego_speed_mps;
    double accel_demand = config_.kp_speed * speed_error;

    // Gap-control demand if a target is measured; take the more conservative
    // (smaller) of the two demands.
    if (measured_gap_m.has_value()) {
        const double desired_gap =
            config_.min_gap_m + config_.time_gap_s * ego_speed_mps;
        const double gap_error = *measured_gap_m - desired_gap;
        const double closing = closing_speed_mps.value_or(0.0);
        const double gap_demand = config_.kp_gap * gap_error - config_.kd_gap * closing;
        accel_demand = std::min(accel_demand, gap_demand);
        cmd.following = true;
    }

    accel_demand = std::clamp(accel_demand, -config_.max_decel, config_.max_accel);
    if (accel_demand >= 0.0) {
        cmd.throttle = accel_demand / config_.max_accel;
    } else {
        cmd.brake = -accel_demand / config_.max_decel;
    }
    return cmd;
}

} // namespace sa::vehicle
