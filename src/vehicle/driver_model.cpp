#include "vehicle/driver_model.hpp"

#include "util/assert.hpp"

namespace sa::vehicle {

void DriverModel::start(std::function<void(const DriverIntent&)> on_sample) {
    SA_REQUIRE(static_cast<bool>(on_sample), "driver model needs a sample callback");
    if (periodic_id_ != 0) {
        return;
    }
    periodic_id_ = simulator_.schedule_periodic(
        period_, [this, cb = std::move(on_sample)] {
            if (!hmi_failed_) {
                cb(intent_);
            }
        });
}

void DriverModel::stop() {
    if (periodic_id_ != 0) {
        simulator_.cancel_periodic(periodic_id_);
        periodic_id_ = 0;
    }
}

} // namespace sa::vehicle
