#include "can/virtual_controller.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sa::can {

namespace {
// Doorbell events pack {vf index, send sequence} into one 64-bit token so
// the scheduled lambda captures {this, token} and stays within
// std::function's inline storage (no per-doorbell heap allocation).
constexpr int kTokenVfShift = 48;
constexpr std::uint64_t kTokenSeqMask = (std::uint64_t{1} << kTokenVfShift) - 1;

std::uint64_t make_doorbell_token(int vf_index, std::uint64_t seq) noexcept {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(vf_index)) << kTokenVfShift) |
           (seq & kTokenSeqMask);
}
} // namespace

// ---------------------------------------------------------------------------
// VirtualFunction
// ---------------------------------------------------------------------------

bool VirtualFunction::send(const CanFrame& frame) {
    SA_REQUIRE(frame.valid(), "cannot send an invalid frame");
    if (!enabled_ || queue_.size() >= mailboxes_) {
        ++tx_dropped_;
        return false;
    }
    // Mailboxes transmit in priority order: insert sorted by CAN id, stable.
    const std::uint64_t seq = owner_.next_tx_seq_++;
    auto it = std::find_if(queue_.begin(), queue_.end(),
                           [&](const PendingTx& p) { return frame.id < p.frame.id; });
    queue_.insert(it, PendingTx{frame, owner_.bus_.simulator().now(), seq, false});
    owner_.vf_doorbell(*this, seq);
    return true;
}

void VirtualFunction::add_rx_filter(std::uint32_t id, std::uint32_t mask,
                                    std::function<void(const CanFrame&, Time)> callback) {
    SA_REQUIRE(static_cast<bool>(callback), "RX filter needs a callback");
    if (filters_.empty()) {
        owner_.note_rx_filter(index_);
    }
    filters_.push_back(RxFilter{id, mask, std::move(callback)});
}

// ---------------------------------------------------------------------------
// VirtualCanController
// ---------------------------------------------------------------------------

VirtualCanController::VirtualCanController(CanBus& bus, std::string name,
                                           VirtLatencyModel latency)
    : bus_(bus), name_(std::move(name)), latency_(latency) {
    bus_.attach(*this);
}

VirtualCanController::~VirtualCanController() { bus_.detach(*this); }

PfToken VirtualCanController::take_pf_token() {
    SA_REQUIRE(!pf_token_taken_, "PF token already taken — only one privileged owner");
    pf_token_taken_ = true;
    return PfToken{};
}

VirtualFunction& VirtualCanController::pf_create_vf(const PfToken&, std::size_t mailboxes) {
    SA_REQUIRE(mailboxes > 0, "a VF needs at least one mailbox");
    const int index = static_cast<int>(vfs_.size());
    vfs_.emplace_back(VirtualFunction::Key{}, *this, index, mailboxes);
    return vfs_.back();
}

void VirtualCanController::pf_enable_vf(const PfToken&, int vf_index, bool enabled) {
    vf(vf_index).enabled_ = enabled;
    // Enabling exposes latched frames to arbitration; disabling hides them.
    // Either way the bus's cached head for this controller is stale.
    bus_.notify_tx_pending(*this);
}

void VirtualCanController::pf_set_bus_bitrate(const PfToken&, std::int64_t bps) {
    bus_.set_bitrate(bps);
}

void VirtualCanController::pf_set_vf_mailboxes(const PfToken&, int vf_index,
                                               std::size_t mailboxes) {
    SA_REQUIRE(mailboxes > 0, "a VF needs at least one mailbox");
    vf(vf_index).mailboxes_ = mailboxes;
}

VirtualFunction& VirtualCanController::vf(int index) {
    SA_REQUIRE(index >= 0 && static_cast<std::size_t>(index) < vfs_.size(),
               "VF index out of range");
    return vfs_[static_cast<std::size_t>(index)];
}

std::size_t VirtualCanController::active_vf_count() const noexcept {
    std::size_t n = 0;
    for (const auto& vf : vfs_) {
        if (vf.enabled_) {
            ++n;
        }
    }
    return n;
}

Duration VirtualCanController::arbitration_latency() const {
    const std::size_t active = active_vf_count();
    const std::int64_t extra =
        active > 1 ? static_cast<std::int64_t>(active - 1) * latency_.tx_per_active_vf.count_ns()
                   : 0;
    return latency_.tx_arbitration + Duration(extra);
}

void VirtualCanController::vf_doorbell(VirtualFunction& vf, std::uint64_t seq) {
    // The frame becomes visible to the bus-side protocol layer only after the
    // doorbell write propagates and the virtualization layer re-arbitrates
    // across VFs. Latch exactly the slot this doorbell announced.
    const Duration delay = latency_.tx_doorbell + arbitration_latency();
    const std::uint64_t token = make_doorbell_token(vf.index_, seq);
    bus_.simulator().schedule(delay, [this, token] { latch_doorbell(token); });
}

void VirtualCanController::latch_doorbell(std::uint64_t token) {
    const auto vf_index = static_cast<std::size_t>(token >> kTokenVfShift);
    const std::uint64_t seq = token & kTokenSeqMask;
    VirtualFunction& f = vfs_[vf_index];
    for (auto& p : f.queue_) {
        if ((p.seq & kTokenSeqMask) == seq) {
            p.latched = true;
            break;
        }
    }
    bus_.notify_tx_pending(*this);
}

void VirtualCanController::note_rx_filter(int vf_index) {
    // Keep ascending VF-index order so deliveries happen in the same order a
    // full scan over vfs_ would produce.
    auto it = std::lower_bound(rx_filtered_vfs_.begin(), rx_filtered_vfs_.end(), vf_index);
    rx_filtered_vfs_.insert(it, vf_index);
}

void VirtualCanController::pf_set_arbitration(const PfToken&, VfArbitration arbitration) {
    arbitration_ = arbitration;
    // The policy decides which latched frame is the head; the bus's cached
    // peek for this controller is stale under the new policy.
    bus_.notify_tx_pending(*this);
}

VirtualFunction* VirtualCanController::best_pending(const CanFrame** frame_out) {
    VirtualFunction* best_vf = nullptr;
    const CanFrame* best = nullptr;
    if (arbitration_ == VfArbitration::Priority) {
        // The paper's design: lowest CAN id across all VFs wins.
        for (auto& f : vfs_) {
            if (!f.enabled_) {
                continue;
            }
            for (const auto& p : f.queue_) {
                if (!p.latched) {
                    continue;
                }
                if (best == nullptr || p.frame.id < best->id) {
                    best = &p.frame;
                    best_vf = &f;
                }
                break; // queue is priority-sorted; first latched is its best
            }
        }
    } else {
        // Ablation baseline: serve VFs in turn regardless of frame priority.
        // Selection is side-effect-free (the bus caches peek_tx answers);
        // the cursor advances in tx_done, i.e. per transmission granted.
        const std::size_t n = vfs_.size();
        for (std::size_t k = 0; k < n && best == nullptr; ++k) {
            VirtualFunction& f = vfs_[(rr_next_ + k) % n];
            if (!f.enabled_) {
                continue;
            }
            for (const auto& p : f.queue_) {
                if (p.latched) {
                    best = &p.frame;
                    best_vf = &f;
                    break;
                }
            }
        }
    }
    if (frame_out != nullptr) {
        *frame_out = best;
    }
    return best_vf;
}

std::optional<CanFrame> VirtualCanController::peek_tx() {
    const CanFrame* frame = nullptr;
    if (best_pending(&frame) == nullptr) {
        return std::nullopt;
    }
    return *frame;
}

void VirtualCanController::tx_done(const CanFrame& frame, Time at) {
    // Find the VF holding this latched frame at its head position.
    for (auto& f : vfs_) {
        auto& q = f.queue_;
        auto it = std::find_if(q.begin(), q.end(), [&](const VirtualFunction::PendingTx& p) {
            return p.latched && p.frame == frame;
        });
        if (it != q.end()) {
            f.tx_count_++;
            f.tx_latency_us_.add((at - it->enqueued).to_us());
            last_tx_vf_ = f.index_;
            q.erase(it);
            // Round-robin rotates per transmission granted (not per peek:
            // peeks are cached by the bus and must stay side-effect-free).
            rr_next_ = (static_cast<std::size_t>(f.index_) + 1) % vfs_.size();
            return;
        }
    }
    SA_ASSERT(false, "tx_done for a frame not owned by any VF");
}

void VirtualCanController::rx_frame(const CanFrame& frame, Time at) {
    // Filter towards the VMs; the transmitting VF does not see its own frame.
    const bool own = (last_tx_vf_ >= 0) && (at == bus_.simulator().now());
    const Duration delay = latency_.rx_filter + latency_.rx_copy;
    for (const int idx : rx_filtered_vfs_) {
        VirtualFunction& f = vfs_[static_cast<std::size_t>(idx)];
        if (!f.enabled_) {
            continue;
        }
        if (own && f.index_ == last_tx_vf_) {
            continue;
        }
        for (std::size_t fi = 0; fi < f.filters_.size(); ++fi) {
            if (f.filters_[fi].matches(frame)) {
                // Stage the delivery; the event captures only `this` and the
                // FIFO hands it the right entry (fixed delay => FIFO order).
                if (rx_fifo_.capacity() == 0) {
                    rx_fifo_.reserve(8); // skip the 1/2/4 doubling ramp
                }
                rx_fifo_.push_back(PendingRx{f.index_, fi, frame});
                bus_.simulator().schedule(delay, [this] { deliver_pending_rx(); });
                break; // first matching filter wins per VF
            }
        }
    }
    last_tx_vf_ = -1;
}

void VirtualCanController::deliver_pending_rx() {
    SA_ASSERT(rx_head_ < rx_fifo_.size(), "RX delivery without a staged entry");
    // Copy the entry out: the callback may receive further frames and grow
    // (reallocate) the staging queue re-entrantly.
    const PendingRx rx = rx_fifo_[rx_head_++];
    if (rx_head_ == rx_fifo_.size()) {
        rx_fifo_.clear();
        rx_head_ = 0;
    } else if (rx_head_ >= 64 && rx_head_ * 2 >= rx_fifo_.size()) {
        // Under sustained traffic the FIFO may never run empty; compact the
        // consumed prefix so storage stays bounded by the in-flight window.
        rx_fifo_.erase(rx_fifo_.begin(),
                       rx_fifo_.begin() + static_cast<std::ptrdiff_t>(rx_head_));
        rx_head_ = 0;
    }
    VirtualFunction& f = vfs_[static_cast<std::size_t>(rx.vf_index)];
    f.rx_count_++;
    // Filters are append-only, so the staged index stays valid even if the
    // callback registered more filters meanwhile — but MOVE the callback out
    // for the call: a callback that adds filters to its own VF reallocates
    // filters_, which would destroy the std::function mid-invocation. Moving
    // (instead of the old copy) keeps the steady-state delivery free of the
    // capture-state allocation; deliveries are scheduled events, so the slot
    // is never invoked re-entrantly while vacated.
    auto callback = std::move(f.filters_[rx.filter_index].callback);
    callback(rx.frame, bus_.simulator().now());
    vfs_[static_cast<std::size_t>(rx.vf_index)].filters_[rx.filter_index].callback =
        std::move(callback);
}

} // namespace sa::can
