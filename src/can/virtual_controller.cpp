#include "can/virtual_controller.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sa::can {

// ---------------------------------------------------------------------------
// VirtualFunction
// ---------------------------------------------------------------------------

bool VirtualFunction::send(const CanFrame& frame) {
    SA_REQUIRE(frame.valid(), "cannot send an invalid frame");
    if (!enabled_ || queue_.size() >= mailboxes_) {
        ++tx_dropped_;
        return false;
    }
    // Mailboxes transmit in priority order: insert sorted by CAN id, stable.
    const std::uint64_t seq = owner_.next_tx_seq_++;
    auto it = std::find_if(queue_.begin(), queue_.end(),
                           [&](const PendingTx& p) { return frame.id < p.frame.id; });
    queue_.insert(it, PendingTx{frame, owner_.bus_.simulator().now(), seq, false});
    owner_.vf_doorbell(*this, seq);
    return true;
}

void VirtualFunction::add_rx_filter(std::uint32_t id, std::uint32_t mask,
                                    std::function<void(const CanFrame&, Time)> callback) {
    SA_REQUIRE(static_cast<bool>(callback), "RX filter needs a callback");
    filters_.push_back(RxFilter{id, mask, std::move(callback)});
}

// ---------------------------------------------------------------------------
// VirtualCanController
// ---------------------------------------------------------------------------

VirtualCanController::VirtualCanController(CanBus& bus, std::string name,
                                           VirtLatencyModel latency)
    : bus_(bus), name_(std::move(name)), latency_(latency) {
    bus_.attach(*this);
}

VirtualCanController::~VirtualCanController() { bus_.detach(*this); }

PfToken VirtualCanController::take_pf_token() {
    SA_REQUIRE(!pf_token_taken_, "PF token already taken — only one privileged owner");
    pf_token_taken_ = true;
    return PfToken{};
}

VirtualFunction& VirtualCanController::pf_create_vf(const PfToken&, std::size_t mailboxes) {
    SA_REQUIRE(mailboxes > 0, "a VF needs at least one mailbox");
    const int index = static_cast<int>(vfs_.size());
    vfs_.push_back(std::unique_ptr<VirtualFunction>(
        new VirtualFunction(*this, index, mailboxes)));
    return *vfs_.back();
}

void VirtualCanController::pf_enable_vf(const PfToken&, int vf_index, bool enabled) {
    vf(vf_index).enabled_ = enabled;
    if (enabled) {
        bus_.notify_tx_pending();
    }
}

void VirtualCanController::pf_set_bus_bitrate(const PfToken&, std::int64_t bps) {
    bus_.set_bitrate(bps);
}

void VirtualCanController::pf_set_vf_mailboxes(const PfToken&, int vf_index,
                                               std::size_t mailboxes) {
    SA_REQUIRE(mailboxes > 0, "a VF needs at least one mailbox");
    vf(vf_index).mailboxes_ = mailboxes;
}

VirtualFunction& VirtualCanController::vf(int index) {
    SA_REQUIRE(index >= 0 && static_cast<std::size_t>(index) < vfs_.size(),
               "VF index out of range");
    return *vfs_[static_cast<std::size_t>(index)];
}

std::size_t VirtualCanController::active_vf_count() const noexcept {
    std::size_t n = 0;
    for (const auto& vf : vfs_) {
        if (vf->enabled_) {
            ++n;
        }
    }
    return n;
}

Duration VirtualCanController::arbitration_latency() const {
    const std::size_t active = active_vf_count();
    const std::int64_t extra =
        active > 1 ? static_cast<std::int64_t>(active - 1) * latency_.tx_per_active_vf.count_ns()
                   : 0;
    return latency_.tx_arbitration + Duration(extra);
}

void VirtualCanController::vf_doorbell(VirtualFunction& vf, std::uint64_t seq) {
    // The frame becomes visible to the bus-side protocol layer only after the
    // doorbell write propagates and the virtualization layer re-arbitrates
    // across VFs. Latch exactly the slot this doorbell announced.
    const Duration delay = latency_.tx_doorbell + arbitration_latency();
    const int vf_index = vf.index_;
    bus_.simulator().schedule(delay, [this, vf_index, seq] {
        VirtualFunction& f = *vfs_[static_cast<std::size_t>(vf_index)];
        for (auto& p : f.queue_) {
            if (p.seq == seq) {
                p.latched = true;
                break;
            }
        }
        bus_.notify_tx_pending();
    });
}

void VirtualCanController::pf_set_arbitration(const PfToken&, VfArbitration arbitration) {
    arbitration_ = arbitration;
}

VirtualFunction* VirtualCanController::best_pending(const CanFrame** frame_out) {
    VirtualFunction* best_vf = nullptr;
    const CanFrame* best = nullptr;
    if (arbitration_ == VfArbitration::Priority) {
        // The paper's design: lowest CAN id across all VFs wins.
        for (auto& vfp : vfs_) {
            if (!vfp->enabled_) {
                continue;
            }
            for (const auto& p : vfp->queue_) {
                if (!p.latched) {
                    continue;
                }
                if (best == nullptr || p.frame.id < best->id) {
                    best = &p.frame;
                    best_vf = vfp.get();
                }
                break; // queue is priority-sorted; first latched is its best
            }
        }
    } else {
        // Ablation baseline: serve VFs in turn regardless of frame priority.
        const std::size_t n = vfs_.size();
        for (std::size_t k = 0; k < n && best == nullptr; ++k) {
            auto& vfp = vfs_[(rr_next_ + k) % n];
            if (!vfp->enabled_) {
                continue;
            }
            for (const auto& p : vfp->queue_) {
                if (p.latched) {
                    best = &p.frame;
                    best_vf = vfp.get();
                    rr_next_ = (static_cast<std::size_t>(vfp->index_) + 1) % n;
                    break;
                }
            }
        }
    }
    if (frame_out != nullptr) {
        *frame_out = best;
    }
    return best_vf;
}

std::optional<CanFrame> VirtualCanController::peek_tx() {
    const CanFrame* frame = nullptr;
    if (best_pending(&frame) == nullptr) {
        return std::nullopt;
    }
    return *frame;
}

void VirtualCanController::tx_done(const CanFrame& frame, Time at) {
    // Find the VF holding this latched frame at its head position.
    for (auto& vfp : vfs_) {
        auto& q = vfp->queue_;
        auto it = std::find_if(q.begin(), q.end(), [&](const VirtualFunction::PendingTx& p) {
            return p.latched && p.frame == frame;
        });
        if (it != q.end()) {
            vfp->tx_count_++;
            vfp->tx_latency_us_.add((at - it->enqueued).to_us());
            last_tx_vf_ = vfp->index_;
            q.erase(it);
            return;
        }
    }
    SA_ASSERT(false, "tx_done for a frame not owned by any VF");
}

void VirtualCanController::rx_frame(const CanFrame& frame, Time at) {
    // Filter towards the VMs; the transmitting VF does not see its own frame.
    const bool own = (last_tx_vf_ >= 0) && (at == bus_.simulator().now());
    for (auto& vfp : vfs_) {
        if (!vfp->enabled_) {
            continue;
        }
        if (own && vfp->index_ == last_tx_vf_) {
            continue;
        }
        for (const auto& f : vfp->filters_) {
            if (f.matches(frame)) {
                const Duration delay = latency_.rx_filter + latency_.rx_copy;
                VirtualFunction* target = vfp.get();
                bus_.simulator().schedule(delay, [target, cb = f.callback, frame] {
                    target->rx_count_++;
                    cb(frame, target->owner_.bus_.simulator().now());
                });
                break; // first matching filter wins per VF
            }
        }
    }
    last_tx_vf_ = -1;
}

} // namespace sa::can
