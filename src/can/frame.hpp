#pragma once
// Classic CAN (2.0A/2.0B) data frames with exact on-wire bit counts:
// we serialize the frame fields (SOF, arbitration, control, data, CRC-15)
// and apply the CAN bit-stuffing rule to obtain the true transmission
// length. Tests verify the exact length never exceeds the analytical
// worst case used by the schedulability analysis (analysis/can_wcrt).

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace sa::can {

inline constexpr std::uint32_t kMaxStandardId = 0x7FF;
inline constexpr std::uint32_t kMaxExtendedId = 0x1FFFFFFF;

struct CanFrame {
    std::uint32_t id = 0;
    bool extended = false;
    std::uint8_t dlc = 0; ///< 0..8 data bytes
    std::array<std::uint8_t, 8> data{};

    /// Construct with validation.
    static CanFrame make(std::uint32_t id, std::initializer_list<std::uint8_t> bytes,
                         bool extended = false);
    static CanFrame make(std::uint32_t id, const std::vector<std::uint8_t>& bytes,
                         bool extended = false);

    [[nodiscard]] bool valid() const noexcept;
    [[nodiscard]] std::string str() const;
    /// Append str() to `out` without a temporary (bus trace hot path:
    /// formats on the stack, then one append into retained trace storage).
    void append_str(std::string& out) const;

    bool operator==(const CanFrame&) const = default;
};

/// CAN CRC-15 (polynomial x^15+x^14+x^10+x^8+x^7+x^4+x^3+1 = 0x4599) over a
/// bit sequence, as specified in ISO 11898-1.
[[nodiscard]] std::uint16_t can_crc15(const std::vector<bool>& bits);

/// The stuffable portion of the frame as transmitted: SOF, arbitration,
/// control and data fields plus the CRC sequence (stuffing applies up to and
/// including the CRC sequence; the CRC delimiter, ACK and EOF are not stuffed).
[[nodiscard]] std::vector<bool> frame_stuffable_bits(const CanFrame& frame);

/// Number of stuff bits the transmitter inserts for this exact frame.
[[nodiscard]] int count_stuff_bits(const std::vector<bool>& bits);

/// Exact total number of bits on the wire for this frame, including stuff
/// bits and the fixed trailer (CRC delimiter, ACK slot + delimiter, EOF) but
/// excluding inter-frame space. Computed on a stack buffer (no allocation);
/// the bus calls this once per transmission.
[[nodiscard]] std::int64_t frame_exact_bits(const CanFrame& frame);

/// Fixed trailer + interframe space constants.
inline constexpr std::int64_t kFrameTrailerBits = 1 /*CRC del*/ + 2 /*ACK*/ + 7 /*EOF*/;
inline constexpr std::int64_t kInterframeSpaceBits = 3;

} // namespace sa::can
