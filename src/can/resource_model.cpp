#include "can/resource_model.hpp"

#include "util/assert.hpp"
#include "util/string_util.hpp"

namespace sa::can {

std::string FpgaResources::str() const {
    return format("%lld LUT, %lld FF, %.2f BRAM", static_cast<long long>(luts),
                  static_cast<long long>(ffs), brams);
}

FpgaResources CanControllerResourceModel::virtualized(int vms) const {
    SA_REQUIRE(vms >= 1, "need at least one VM");
    return virtualized_base + per_vf * vms;
}

FpgaResources CanControllerResourceModel::standalone_bank(int vms) const {
    SA_REQUIRE(vms >= 1, "need at least one VM");
    return standalone * vms;
}

int CanControllerResourceModel::break_even_vms(int max_vms) const {
    for (int n = 1; n <= max_vms; ++n) {
        if (virtualized(n).cost() <= standalone_bank(n).cost()) {
            return n;
        }
    }
    return -1;
}

} // namespace sa::can
