#include "can/frame.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace sa::can {

CanFrame CanFrame::make(std::uint32_t id, std::initializer_list<std::uint8_t> bytes,
                        bool extended) {
    return make(id, std::vector<std::uint8_t>(bytes), extended);
}

CanFrame CanFrame::make(std::uint32_t id, const std::vector<std::uint8_t>& bytes,
                        bool extended) {
    SA_REQUIRE(bytes.size() <= 8, "classic CAN payload is at most 8 bytes");
    SA_REQUIRE(id <= (extended ? kMaxExtendedId : kMaxStandardId), "CAN id out of range");
    CanFrame f;
    f.id = id;
    f.extended = extended;
    f.dlc = static_cast<std::uint8_t>(bytes.size());
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        f.data[i] = bytes[i];
    }
    return f;
}

bool CanFrame::valid() const noexcept {
    if (dlc > 8) {
        return false;
    }
    return id <= (extended ? kMaxExtendedId : kMaxStandardId);
}

std::string CanFrame::str() const {
    std::ostringstream os;
    os << (extended ? "x" : "") << std::hex << id << std::dec << " [" << int(dlc) << "]";
    for (int i = 0; i < dlc; ++i) {
        os << (i ? " " : " : ") << std::hex << int(data[static_cast<std::size_t>(i)]) << std::dec;
    }
    return os.str();
}

std::uint16_t can_crc15(const std::vector<bool>& bits) {
    std::uint16_t crc = 0;
    for (bool bit : bits) {
        const bool crc_nxt = bit ^ ((crc >> 14) & 1u);
        crc = static_cast<std::uint16_t>((crc << 1) & 0x7FFF);
        if (crc_nxt) {
            crc ^= 0x4599;
        }
    }
    return crc;
}

namespace {
void push_bits(std::vector<bool>& out, std::uint32_t value, int width) {
    for (int i = width - 1; i >= 0; --i) {
        out.push_back(((value >> i) & 1u) != 0);
    }
}
} // namespace

std::vector<bool> frame_stuffable_bits(const CanFrame& frame) {
    SA_REQUIRE(frame.valid(), "invalid CAN frame");
    std::vector<bool> bits;
    bits.reserve(128);
    bits.push_back(false); // SOF (dominant)
    if (!frame.extended) {
        push_bits(bits, frame.id, 11);
        bits.push_back(false); // RTR = dominant (data frame)
        bits.push_back(false); // IDE = dominant (standard)
        bits.push_back(false); // r0
    } else {
        push_bits(bits, frame.id >> 18, 11); // base id
        bits.push_back(true);                // SRR = recessive
        bits.push_back(true);                // IDE = recessive (extended)
        push_bits(bits, frame.id & 0x3FFFF, 18);
        bits.push_back(false); // RTR
        bits.push_back(false); // r1
        bits.push_back(false); // r0
    }
    push_bits(bits, frame.dlc, 4);
    for (int i = 0; i < frame.dlc; ++i) {
        push_bits(bits, frame.data[static_cast<std::size_t>(i)], 8);
    }
    const std::uint16_t crc = can_crc15(bits);
    push_bits(bits, crc, 15);
    return bits;
}

int count_stuff_bits(const std::vector<bool>& bits) {
    // After 5 consecutive equal bits, a complementary bit is inserted; the
    // inserted bit participates in subsequent stuffing decisions.
    int stuffed = 0;
    int run = 0;
    bool last = true; // bus idle is recessive; SOF (dominant) starts a run of 1
    bool first = true;
    for (bool b : bits) {
        if (first) {
            last = b;
            run = 1;
            first = false;
            continue;
        }
        if (b == last) {
            ++run;
            if (run == 5) {
                ++stuffed;
                // Inserted complement bit resets the run to length 1 of the
                // complement value; the next real bit compares against it.
                last = !b;
                run = 1;
            }
        } else {
            last = b;
            run = 1;
        }
    }
    return stuffed;
}

std::int64_t frame_exact_bits(const CanFrame& frame) {
    const auto bits = frame_stuffable_bits(frame);
    const int stuffed = count_stuff_bits(bits);
    return static_cast<std::int64_t>(bits.size()) + stuffed + kFrameTrailerBits;
}

} // namespace sa::can
