#include "can/frame.hpp"

#include <cstdio>

#include "util/assert.hpp"

namespace sa::can {

namespace {
CanFrame make_frame(std::uint32_t id, const std::uint8_t* bytes, std::size_t count,
                    bool extended) {
    SA_REQUIRE(count <= 8, "classic CAN payload is at most 8 bytes");
    SA_REQUIRE(id <= (extended ? kMaxExtendedId : kMaxStandardId), "CAN id out of range");
    CanFrame f;
    f.id = id;
    f.extended = extended;
    f.dlc = static_cast<std::uint8_t>(count);
    for (std::size_t i = 0; i < count; ++i) {
        f.data[i] = bytes[i];
    }
    return f;
}
} // namespace

CanFrame CanFrame::make(std::uint32_t id, std::initializer_list<std::uint8_t> bytes,
                        bool extended) {
    return make_frame(id, bytes.begin(), bytes.size(), extended);
}

CanFrame CanFrame::make(std::uint32_t id, const std::vector<std::uint8_t>& bytes,
                        bool extended) {
    return make_frame(id, bytes.data(), bytes.size(), extended);
}

bool CanFrame::valid() const noexcept {
    if (dlc > 8) {
        return false;
    }
    return id <= (extended ? kMaxExtendedId : kMaxStandardId);
}

void CanFrame::append_str(std::string& out) const {
    // Hot path (bus tracing): manual formatting, no ostringstream. There is
    // no validity precondition (it is used to describe bad frames too), so
    // clamp to the payload that actually exists. Worst case fits easily:
    // "x" + 8 hex id + " [255]" + 8 * " : ff" = well under 64 bytes.
    char buf[64];
    int n = std::snprintf(buf, sizeof buf, "%s%x [%d]", extended ? "x" : "", id, int(dlc));
    const int payload = dlc > 8 ? 8 : int(dlc);
    for (int i = 0; i < payload; ++i) {
        n += std::snprintf(buf + n, sizeof buf - static_cast<std::size_t>(n), "%s%x",
                           i ? " " : " : ", int(data[static_cast<std::size_t>(i)]));
    }
    out.append(buf, static_cast<std::size_t>(n));
}

std::string CanFrame::str() const {
    std::string out;
    append_str(out);
    return out;
}

namespace {

/// Fixed-capacity bit buffer: the stuffable portion of any classic CAN frame
/// is at most 118 bits (extended, 8 data bytes), so serialization never
/// allocates.
struct BitBuf {
    std::uint8_t bits[128];
    int n = 0;

    void push(bool b) noexcept { bits[n++] = b ? 1 : 0; }
    void push_bits(std::uint32_t value, int width) noexcept {
        for (int i = width - 1; i >= 0; --i) {
            bits[n++] = static_cast<std::uint8_t>((value >> i) & 1u);
        }
    }
};

/// Serialize SOF, arbitration, control and data fields (everything stuffable
/// up to — not including — the CRC sequence).
void serialize_pre_crc(const CanFrame& frame, BitBuf& out) noexcept {
    out.push(false); // SOF (dominant)
    if (!frame.extended) {
        out.push_bits(frame.id, 11);
        out.push(false); // RTR = dominant (data frame)
        out.push(false); // IDE = dominant (standard)
        out.push(false); // r0
    } else {
        out.push_bits(frame.id >> 18, 11); // base id
        out.push(true);                    // SRR = recessive
        out.push(true);                    // IDE = recessive (extended)
        out.push_bits(frame.id & 0x3FFFF, 18);
        out.push(false); // RTR
        out.push(false); // r1
        out.push(false); // r0
    }
    out.push_bits(frame.dlc, 4);
    for (int i = 0; i < frame.dlc; ++i) {
        out.push_bits(frame.data[static_cast<std::size_t>(i)], 8);
    }
}

/// CAN CRC-15 step for one bit; shared by both the contiguous-buffer and
/// std::vector<bool> entry points.
inline std::uint16_t crc15_step(std::uint16_t crc, bool bit) noexcept {
    const bool crc_nxt = bit ^ ((crc >> 14) & 1u);
    crc = static_cast<std::uint16_t>((crc << 1) & 0x7FFF);
    if (crc_nxt) {
        crc ^= 0x4599;
    }
    return crc;
}

std::uint16_t crc15_buf(const BitBuf& buf) noexcept {
    std::uint16_t crc = 0;
    for (int i = 0; i < buf.n; ++i) {
        crc = crc15_step(crc, buf.bits[i] != 0);
    }
    return crc;
}

/// Stuff-bit count over any indexable bit sequence (single implementation
/// shared by the hot stack-buffer path and the std::vector<bool> API).
/// After 5 consecutive equal bits, a complementary bit is inserted; the
/// inserted bit participates in subsequent stuffing decisions.
template <typename GetBit>
int count_stuff_bits_impl(std::size_t n, GetBit bit_at) {
    if (n == 0) {
        return 0;
    }
    int stuffed = 0;
    int run = 1;
    bool last = bit_at(0);
    for (std::size_t i = 1; i < n; ++i) {
        const bool b = bit_at(i);
        if (b == last) {
            ++run;
            if (run == 5) {
                ++stuffed;
                // Inserted complement bit resets the run to length 1 of the
                // complement value; the next real bit compares against it.
                last = !b;
                run = 1;
            }
        } else {
            last = b;
            run = 1;
        }
    }
    return stuffed;
}

int count_stuff_bits_buf(const std::uint8_t* bits, int n) noexcept {
    return count_stuff_bits_impl(static_cast<std::size_t>(n),
                                 [bits](std::size_t i) { return bits[i] != 0; });
}

} // namespace

std::uint16_t can_crc15(const std::vector<bool>& bits) {
    std::uint16_t crc = 0;
    for (bool bit : bits) {
        crc = crc15_step(crc, bit);
    }
    return crc;
}

std::vector<bool> frame_stuffable_bits(const CanFrame& frame) {
    SA_REQUIRE(frame.valid(), "invalid CAN frame");
    BitBuf buf;
    serialize_pre_crc(frame, buf);
    const std::uint16_t crc = crc15_buf(buf);
    buf.push_bits(crc, 15);
    std::vector<bool> bits;
    bits.reserve(static_cast<std::size_t>(buf.n));
    for (int i = 0; i < buf.n; ++i) {
        bits.push_back(buf.bits[i] != 0);
    }
    return bits;
}

int count_stuff_bits(const std::vector<bool>& bits) {
    return count_stuff_bits_impl(bits.size(),
                                 [&bits](std::size_t i) -> bool { return bits[i]; });
}

std::int64_t frame_exact_bits(const CanFrame& frame) {
    // Allocation-free: the bus calls this once per transmission, so it runs
    // on a stack buffer instead of materialising std::vector<bool>s.
    SA_REQUIRE(frame.valid(), "invalid CAN frame");
    BitBuf buf;
    serialize_pre_crc(frame, buf);
    const std::uint16_t crc = crc15_buf(buf);
    buf.push_bits(crc, 15);
    const int stuffed = count_stuff_bits_buf(buf.bits, buf.n);
    return static_cast<std::int64_t>(buf.n) + stuffed + kFrameTrailerBits;
}

} // namespace sa::can
