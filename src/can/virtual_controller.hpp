#pragma once
// Virtualized CAN controller after Fig. 2 of the paper (and Herber et al.,
// DAC 2015 [8]): a hardware *virtualization layer* extends a traditional
// CAN controller (the *protocol layer*) such that multiple virtual machines
// share one physical controller.
//
//  - The controller is split into one privileged *physical function* (PF)
//    and N *virtual functions* (VFs). VFs provide the data path only; the
//    PF performs privileged operations (bus speed, VF resource management)
//    and "shall only be accessible to privileged SW components, e.g. the
//    hypervisor running an MCC".
//  - TX: each VF owns private mailboxes. The virtualization layer arbitrates
//    pending frames across VFs strictly by CAN-id priority, so bus priority
//    is respected end-to-end ("transmitted with respect to their bus
//    priority in real-time").
//  - RX: completed frames are filtered towards the VFs via per-VF filter
//    tables ("messages are filtered towards the VMs").
//  - Every doorbell/copy/filter step costs configurable latency; defaults
//    are calibrated so a round-trip echo over two virtualized endpoints adds
//    ~7-11 us versus two native controllers, matching §III of the paper.
//
// Implementation notes (throughput): the kernel events this layer schedules
// (doorbell latches, RX copies) capture at most {this, one 64-bit token} so
// std::function stays in its inline storage — per-frame virtualization
// overhead costs no heap allocations. RX deliveries ride a FIFO staging
// queue drained in schedule order, which is valid because every delivery
// shares the same fixed rx_filter + rx_copy latency.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "can/bus.hpp"
#include "can/controller.hpp" // RxFilter
#include "util/stable_vector.hpp"
#include "util/stats.hpp"

namespace sa::can {

/// Latencies of the virtualization layer (per operation).
struct VirtLatencyModel {
    // Defaults calibrated against Herber et al. [8]: a round trip between two
    // virtualized endpoints adds 2*(tx + rx) overhead = 7.0 us with one VF,
    // growing by ~0.5 us per additional active VF (arbitration scan), i.e.
    // 7-11 us across 1..8 VFs — the range the paper quotes.
    Duration tx_doorbell = Duration::ns(1'000);    ///< VM write -> VF mailbox latched
    Duration tx_arbitration = Duration::ns(800);   ///< cross-VF priority pick
    Duration tx_per_active_vf = Duration::ns(250); ///< arbitration scan per extra VF
    Duration rx_filter = Duration::ns(700);        ///< filter-table lookup
    Duration rx_copy = Duration::ns(1'000);        ///< copy into VM RX ring + doorbell
};

/// Thrown when an unprivileged caller invokes a PF operation.
class PrivilegeError : public std::runtime_error {
public:
    explicit PrivilegeError(const std::string& what) : std::runtime_error(what) {}
};

/// Cross-VF TX arbitration policy. The paper's design (Fig. 2, [8]) demands
/// Priority — frames leave "with respect to their bus priority" regardless
/// of the owning VM. RoundRobin is the naive fair-share ablation baseline:
/// it causes priority inversion between VMs, which the ablation bench
/// quantifies.
enum class VfArbitration { Priority, RoundRobin };

/// Token proving the holder may use the physical function. Only the
/// hypervisor/MCC side of the system should hold one (the constructor of
/// VirtualCanController hands out exactly one).
class PfToken {
public:
    PfToken(const PfToken&) = delete;
    PfToken& operator=(const PfToken&) = delete;
    PfToken(PfToken&&) noexcept = default;
    PfToken& operator=(PfToken&&) noexcept = default;

private:
    friend class VirtualCanController;
    PfToken() = default;
};

class VirtualCanController;

/// Data-path handle a VM uses: private TX mailboxes + RX callback.
class VirtualFunction {
public:
    /// Passkey gating construction to the owning controller. The constructor
    /// must be public so the controller's StableVector can emplace VFs in
    /// place, but only VirtualCanController can mint a Key — so VF creation
    /// still goes through pf_create_vf exclusively.
    class Key {
        friend class VirtualCanController;
        Key() = default;
    };

    VirtualFunction(Key /*key*/, VirtualCanController& owner, int index,
                    std::size_t mailboxes)
        : owner_(owner), index_(index), mailboxes_(mailboxes) {}

    /// Queue a frame in this VF's mailbox set. Returns false (drop) when all
    /// mailboxes are occupied.
    bool send(const CanFrame& frame);

    /// Register an RX filter; matching frames are delivered to this VF.
    void add_rx_filter(std::uint32_t id, std::uint32_t mask,
                       std::function<void(const CanFrame&, Time)> callback);

    [[nodiscard]] int index() const noexcept { return index_; }
    [[nodiscard]] bool enabled() const noexcept { return enabled_; }
    [[nodiscard]] std::size_t mailbox_count() const noexcept { return mailboxes_; }
    [[nodiscard]] std::uint64_t tx_count() const noexcept { return tx_count_; }
    [[nodiscard]] std::uint64_t rx_count() const noexcept { return rx_count_; }
    [[nodiscard]] std::uint64_t tx_dropped() const noexcept { return tx_dropped_; }
    [[nodiscard]] const SampleSet& tx_latency_us() const noexcept { return tx_latency_us_; }

private:
    friend class VirtualCanController;
    struct PendingTx {
        CanFrame frame;
        Time enqueued;
        std::uint64_t seq = 0; ///< doorbell identity
        bool latched = false;  ///< doorbell latency elapsed; visible to arbiter
    };

    VirtualCanController& owner_;
    int index_;
    std::size_t mailboxes_;
    bool enabled_ = true;
    std::vector<PendingTx> queue_; ///< kept sorted by CAN id (stable)
    std::vector<RxFilter> filters_;
    std::uint64_t tx_count_ = 0;
    std::uint64_t rx_count_ = 0;
    std::uint64_t tx_dropped_ = 0;
    SampleSet tx_latency_us_;
};

class VirtualCanController : public CanControllerBase {
public:
    VirtualCanController(CanBus& bus, std::string name, VirtLatencyModel latency = {});
    ~VirtualCanController() override;

    VirtualCanController(const VirtualCanController&) = delete;
    VirtualCanController& operator=(const VirtualCanController&) = delete;

    /// Obtain the single PF token. Can be taken exactly once.
    [[nodiscard]] PfToken take_pf_token();

    // --- Physical function (privileged) -----------------------------------
    VirtualFunction& pf_create_vf(const PfToken& token, std::size_t mailboxes = 8);
    void pf_enable_vf(const PfToken& token, int vf_index, bool enabled);
    void pf_set_bus_bitrate(const PfToken& token, std::int64_t bps);
    void pf_set_vf_mailboxes(const PfToken& token, int vf_index, std::size_t mailboxes);

    // --- Data path (unprivileged; used by VirtualFunction) ----------------
    [[nodiscard]] std::size_t vf_count() const noexcept { return vfs_.size(); }
    [[nodiscard]] VirtualFunction& vf(int index);

    // CanControllerBase
    std::optional<CanFrame> peek_tx() override;
    void tx_done(const CanFrame& frame, Time at) override;
    void rx_frame(const CanFrame& frame, Time at) override;
    [[nodiscard]] const std::string& node_name() const override { return name_; }

    [[nodiscard]] const VirtLatencyModel& latency_model() const noexcept { return latency_; }
    [[nodiscard]] std::size_t active_vf_count() const noexcept;

    /// Select the cross-VF arbitration policy (PF-privileged: the hypervisor
    /// decides the sharing discipline).
    void pf_set_arbitration(const PfToken& token, VfArbitration arbitration);
    [[nodiscard]] VfArbitration arbitration() const noexcept { return arbitration_; }

private:
    friend class VirtualFunction;
    /// An RX delivery staged behind the fixed rx_filter + rx_copy latency.
    /// Deliveries drain strictly FIFO because the latency is identical for
    /// every entry, so the staging queue needs no timestamps.
    struct PendingRx {
        int vf_index;
        std::size_t filter_index;
        CanFrame frame;
    };

    void vf_doorbell(VirtualFunction& vf, std::uint64_t seq);
    void latch_doorbell(std::uint64_t token);
    void deliver_pending_rx();
    /// Called by a VF when its filter table goes from empty to non-empty.
    void note_rx_filter(int vf_index);
    [[nodiscard]] Duration arbitration_latency() const;
    VirtualFunction* best_pending(const CanFrame** frame_out);
    std::uint64_t next_tx_seq_ = 1;

    CanBus& bus_;
    std::string name_;
    VirtLatencyModel latency_;
    bool pf_token_taken_ = false;
    // StableVector, not vector<unique_ptr>: references must stay stable
    // across pf_create_vf (vf() hands out VirtualFunction&), and its chunked
    // storage makes N VFs cost O(N / chunk) allocations instead of one `new`
    // per VF — controller bring-up is the allocation-heaviest part of the
    // virtualized data path (fig. 2 bench).
    util::StableVector<VirtualFunction> vfs_;
    int last_tx_vf_ = -1; ///< VF of the just-completed transmission (self-RX mask)
    VfArbitration arbitration_ = VfArbitration::Priority;
    std::size_t rr_next_ = 0; ///< round-robin cursor
    // FIFO staging queue for in-flight RX deliveries: pops advance rx_head_
    // and the storage is compacted whenever it runs empty, so steady-state
    // delivery does not allocate.
    std::vector<PendingRx> rx_fifo_;
    std::size_t rx_head_ = 0;
    // Indices (ascending) of VFs with at least one RX filter. rx_frame runs
    // once per completed frame per controller and only these VFs can match,
    // so it scans this list instead of every VF — with many VFs configured
    // and few subscribed (the common virtualized topology), that's the
    // difference between O(#VFs) and O(#subscribers) per delivery. Ascending
    // order preserves the original VF-index delivery order.
    std::vector<int> rx_filtered_vfs_;
};

} // namespace sa::can
