#pragma once
// Discrete-event CAN bus: CSMA/CR arbitration by identifier priority,
// exact frame timing (can/frame.hpp), optional bit-error injection with
// automatic retransmission.
//
// Arbitration is *batched*: the bus keeps a per-controller cache of the
// frame each controller would send next and only re-polls a controller
// (CanControllerBase::peek_tx) when that controller signalled new TX state
// via notify_tx_pending(). Draining a backlog of k frames queued in one
// idle window therefore costs one full poll pass plus k cheap cache
// refreshes of the winners — not k full re-scans of every controller.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "can/frame.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace sa::can {

using sim::Duration;
using sim::Time;

class CanBus;

/// Interface between bus and controller. Implemented by CanController and
/// VirtualCanController.
class CanControllerBase {
public:
    virtual ~CanControllerBase() = default;

    /// The bus asks for the frame this controller would send now.
    /// Return nullopt if nothing is pending.
    ///
    /// The bus caches the answer until the controller calls
    /// CanBus::notify_tx_pending() (or one of its frames completes/aborts),
    /// so implementations must report every head-of-queue change through
    /// notify_tx_pending().
    virtual std::optional<CanFrame> peek_tx() = 0;

    /// The bus tells the controller its peeked frame won arbitration and is
    /// now on the wire (it must stay at the head of the TX selection until
    /// tx_done or tx_aborted).
    virtual void tx_started(const CanFrame& frame) { (void)frame; }

    /// Transmission was corrupted (error frame); the controller will retry
    /// via the next arbitration round.
    virtual void tx_aborted(const CanFrame& frame) { (void)frame; }

    /// The bus tells the controller its peeked frame won arbitration and
    /// transmission completed at `at`.
    virtual void tx_done(const CanFrame& frame, Time at) = 0;

    /// A frame (from any controller, including this one) completed on the
    /// bus. Controllers apply their own acceptance filtering.
    virtual void rx_frame(const CanFrame& frame, Time at) = 0;

    [[nodiscard]] virtual const std::string& node_name() const = 0;
};

struct CanBusConfig {
    std::int64_t bitrate_bps = 500'000;
    double bit_error_rate = 0.0; ///< per-frame probability of corruption
    std::size_t trace_capacity = 65536;
};

class CanBus {
public:
    CanBus(sim::Simulator& simulator, std::string name, CanBusConfig config = {});

    void attach(CanControllerBase& controller);
    void detach(CanControllerBase& controller);

    /// A controller signals that its pending-TX head may have changed (new
    /// frame queued, queue flushed, VF enabled/disabled, bus-off recovery,
    /// ...). Invalidates the bus's cached peek for that controller and
    /// starts arbitration if the bus is idle. Idempotent.
    void notify_tx_pending(CanControllerBase& controller);

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] std::int64_t bitrate_bps() const noexcept { return config_.bitrate_bps; }
    [[nodiscard]] Duration bit_time() const noexcept {
        return Duration(1'000'000'000LL / config_.bitrate_bps);
    }
    [[nodiscard]] bool busy() const noexcept { return transmitting_; }

    void set_bitrate(std::int64_t bps);
    void set_bit_error_rate(double p);

    // Statistics.
    [[nodiscard]] std::uint64_t frames_transmitted() const noexcept { return frames_tx_; }
    [[nodiscard]] std::uint64_t frames_corrupted() const noexcept { return frames_err_; }
    [[nodiscard]] std::uint64_t arbitration_rounds() const noexcept { return arb_rounds_; }
    /// Controller polls (peek_tx calls) actually issued; with the cached
    /// arbitration this grows much slower than arbitration_rounds *
    /// controller count under backlog.
    [[nodiscard]] std::uint64_t controller_polls() const noexcept { return polls_; }
    [[nodiscard]] double busy_fraction(Time horizon) const;

    [[nodiscard]] sim::Trace& trace() noexcept { return trace_; }
    sim::Simulator& simulator() noexcept { return simulator_; }

private:
    /// Per-controller arbitration cache entry: the frame this controller
    /// would transmit next (refreshed only when stale).
    struct ArbEntry {
        CanControllerBase* controller;
        std::optional<CanFrame> head;
        bool stale = true;
    };

    void try_start_transmission();
    void finish_transmission();
    void mark_stale(CanControllerBase* controller) noexcept;
    [[nodiscard]] bool is_attached(const CanControllerBase* controller) const noexcept;

    sim::Simulator& simulator_;
    std::string name_;
    CanBusConfig config_;
    std::vector<ArbEntry> arb_;
    bool transmitting_ = false;
    // In-flight transmission state; kept in members (one frame is on the
    // wire at a time) so the completion event captures only `this`.
    CanControllerBase* tx_controller_ = nullptr;
    CanFrame tx_frame_{};
    bool tx_corrupted_ = false;
    std::uint64_t frames_tx_ = 0;
    std::uint64_t frames_err_ = 0;
    std::uint64_t arb_rounds_ = 0;
    std::uint64_t polls_ = 0;
    std::int64_t busy_ns_ = 0;
    // Reused snapshot buffer for RX delivery (finish_transmission): safe
    // because transmissions never nest — the next finish is a future event.
    std::vector<CanControllerBase*> rx_scratch_;
    std::uint64_t detach_epoch_ = 0; ///< bumped on detach; guards snapshots
    sim::Trace trace_;
};

} // namespace sa::can
