#include "can/controller.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sa::can {

namespace {
/// TX queue priority order: lower CAN id first; FIFO among equal ids.
bool higher_priority(const CanFrame& a, const CanFrame& b) noexcept { return a.id < b.id; }
} // namespace

const char* to_string(FaultConfinement state) noexcept {
    switch (state) {
    case FaultConfinement::ErrorActive: return "error_active";
    case FaultConfinement::ErrorPassive: return "error_passive";
    case FaultConfinement::BusOff: return "bus_off";
    }
    return "?";
}

void ErrorCounters::on_tx_error() noexcept {
    tec_ += 8;
    if (tec_ >= 256) {
        bus_off_ = true;
    }
}

void ErrorCounters::on_tx_success() noexcept { tec_ = std::max(0, tec_ - 1); }

void ErrorCounters::on_rx_error() noexcept { rec_ = std::min(255, rec_ + 1); }

void ErrorCounters::on_rx_success() noexcept { rec_ = std::max(0, rec_ - 1); }

FaultConfinement ErrorCounters::state() const noexcept {
    if (bus_off_) {
        return FaultConfinement::BusOff;
    }
    if (tec_ >= 128 || rec_ >= 128) {
        return FaultConfinement::ErrorPassive;
    }
    return FaultConfinement::ErrorActive;
}

void ErrorCounters::reset() noexcept {
    tec_ = 0;
    rec_ = 0;
    bus_off_ = false;
}

CanController::CanController(CanBus& bus, std::string name, std::size_t tx_queue_capacity)
    : bus_(bus), name_(std::move(name)), capacity_(tx_queue_capacity) {
    SA_REQUIRE(capacity_ > 0, "TX queue capacity must be positive");
    bus_.attach(*this);
}

CanController::~CanController() { bus_.detach(*this); }

bool CanController::send(const CanFrame& frame) {
    SA_REQUIRE(frame.valid(), "cannot send an invalid frame");
    if (tx_queue_.size() >= capacity_) {
        ++tx_dropped_;
        return false;
    }
    // Insert keeping priority order (stable for equal ids). A frame already
    // on the wire stays pinned at the head — CAN transmission is
    // non-preemptive, so nothing may overtake it in this controller.
    auto begin = tx_queue_.begin();
    if (in_flight_ && begin != tx_queue_.end()) {
        ++begin;
    }
    auto it = std::find_if(begin, tx_queue_.end(), [&](const PendingTx& p) {
        return higher_priority(frame, p.frame);
    });
    tx_queue_.insert(it, PendingTx{frame, bus_.simulator().now()});
    bus_.notify_tx_pending(*this);
    return true;
}

void CanController::add_rx_filter(std::uint32_t id, std::uint32_t mask,
                                  std::function<void(const CanFrame&, Time)> callback) {
    SA_REQUIRE(static_cast<bool>(callback), "RX filter needs a callback");
    filters_.push_back(RxFilter{id, mask, std::move(callback)});
}

std::optional<CanFrame> CanController::peek_tx() {
    if (errors_.state() == FaultConfinement::BusOff || tx_queue_.empty()) {
        return std::nullopt;
    }
    return tx_queue_.front().frame;
}

void CanController::tx_started(const CanFrame& frame) {
    SA_ASSERT(!tx_queue_.empty() && tx_queue_.front().frame == frame,
              "tx_started for a frame that is not at the queue head");
    in_flight_ = true;
}

void CanController::tx_aborted(const CanFrame& frame) {
    (void)frame;
    in_flight_ = false; // retry via the next arbitration round
    const bool was_off = errors_.state() == FaultConfinement::BusOff;
    errors_.on_tx_error();
    if (!was_off && errors_.state() == FaultConfinement::BusOff) {
        // Fault confinement: the node isolates itself; pending TX is flushed.
        tx_dropped_ += tx_queue_.size();
        tx_queue_.clear();
        bus_off_signal_.emit();
    }
}

void CanController::recover_from_bus_off() {
    errors_.reset();
    bus_.notify_tx_pending(*this);
}

void CanController::tx_done(const CanFrame& frame, Time at) {
    SA_ASSERT(!tx_queue_.empty() && tx_queue_.front().frame == frame,
              "tx_done for a frame that is not at the queue head");
    in_flight_ = false;
    const PendingTx done = tx_queue_.front();
    tx_queue_.erase(tx_queue_.begin());
    ++tx_count_;
    errors_.on_tx_success();
    tx_latency_us_.add((at - done.enqueued).to_us());
    last_tx_valid_ = true;
    last_tx_frame_ = frame;
    last_tx_time_ = at;
}

void CanController::rx_frame(const CanFrame& frame, Time at) {
    // A controller does not receive its own transmission unless requested
    // (self-reception is an opt-in feature on real controllers too).
    if (!receive_own_) {
        // Identify "own" frames conservatively: the frame we just completed.
        // The bus calls tx_done before rx_frame, so our queue no longer holds
        // it; track by comparing against the last completed frame instead.
        if (last_tx_valid_ && frame == last_tx_frame_ && at == last_tx_time_) {
            return;
        }
    }
    errors_.on_rx_success();
    for (const auto& f : filters_) {
        if (f.matches(frame)) {
            ++rx_count_;
            f.callback(frame, at);
            return; // first matching filter wins (hardware mailbox semantics)
        }
    }
}

} // namespace sa::can
