#pragma once
// Analytical FPGA resource model for the virtualized CAN controller,
// calibrated to the synthesis results of Herber et al. (DAC 2015 [8]) that
// §III of the paper summarizes: "In terms of FPGA resources, the virtualized
// solution breaks even with multiple stand-alone controllers at four VMs."
//
// The model is intentionally simple: a stand-alone controller costs a fixed
// amount of LUT/FF/BRAM; the virtualized controller pays a larger one-time
// cost (protocol layer + virtualization layer + PF) plus a small per-VF
// increment (mailbox RAM mapping, filter table slice, doorbell logic).

#include <cstdint>
#include <string>

namespace sa::can {

struct FpgaResources {
    std::int64_t luts = 0;
    std::int64_t ffs = 0;
    double brams = 0.0;

    FpgaResources operator+(const FpgaResources& o) const noexcept {
        return {luts + o.luts, ffs + o.ffs, brams + o.brams};
    }
    FpgaResources operator*(std::int64_t k) const noexcept {
        return {luts * k, ffs * k, brams * static_cast<double>(k)};
    }

    /// Scalar cost used for break-even comparison: weighted sum roughly
    /// proportional to Virtex-7 slice usage.
    [[nodiscard]] double cost() const noexcept {
        return static_cast<double>(luts) + 0.5 * static_cast<double>(ffs) + 400.0 * brams;
    }

    [[nodiscard]] std::string str() const;
};

struct CanControllerResourceModel {
    /// One conventional stand-alone CAN controller (protocol layer only).
    FpgaResources standalone{1'200, 900, 1.0};

    /// Virtualized controller: protocol layer + virtualization layer + PF.
    FpgaResources virtualized_base{2'700, 2'000, 2.0};

    /// Per-VF increment: mailboxes, filter-table slice, doorbell.
    FpgaResources per_vf{350, 260, 0.25};

    /// Total resources of a virtualized controller serving `vms` VMs.
    [[nodiscard]] FpgaResources virtualized(int vms) const;

    /// Total resources of `vms` stand-alone controllers (one per VM).
    [[nodiscard]] FpgaResources standalone_bank(int vms) const;

    /// Smallest number of VMs for which the virtualized controller is
    /// cheaper (by scalar cost) than one stand-alone controller per VM.
    /// Returns -1 if it never breaks even within `max_vms`.
    [[nodiscard]] int break_even_vms(int max_vms = 64) const;
};

} // namespace sa::can
