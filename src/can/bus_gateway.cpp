#include "can/bus_gateway.hpp"

#include "util/assert.hpp"

namespace sa::can {

BusGateway::BusGateway(std::string name, Duration forward_latency)
    : name_(std::move(name)), latency_(forward_latency) {
    SA_REQUIRE(latency_.count_ns() >= 0, "forward latency must be non-negative");
}

BusGateway::~BusGateway() { *alive_ = false; }

CanController& BusGateway::port(CanBus& bus) {
    auto it = ports_.find(&bus);
    if (it == ports_.end()) {
        auto controller =
            std::make_unique<CanController>(bus, name_ + "@" + bus.name());
        it = ports_.emplace(&bus, std::move(controller)).first;
    }
    return *it->second;
}

void BusGateway::add_route(CanBus& from, CanBus& to, std::uint32_t id,
                           std::uint32_t mask) {
    SA_REQUIRE(&from != &to, "gateway route must join two distinct buses");
    SA_REQUIRE(&from.simulator() == &to.simulator(),
               "gateway route must stay on one simulator");
    CanController& egress = port(to);
    port(from).add_rx_filter(
        id, mask, [this, &egress](const CanFrame& frame, Time) {
            ++forwarded_;
            // Store-and-forward: the egress send happens after the gateway's
            // processing latency, from a fresh event (never from inside the
            // ingress bus's RX delivery). The alive flag guards the event
            // against the gateway being destroyed mid-flight.
            egress.bus().simulator().schedule(
                latency_, [alive = alive_, this, &egress, frame] {
                    if (!*alive) {
                        return;
                    }
                    if (!egress.send(frame)) {
                        ++dropped_;
                    }
                });
        });
}

} // namespace sa::can
