#include "can/bus_gateway.hpp"

#include "can/bus.hpp"
#include "sim/sharded_kernel.hpp"
#include "util/assert.hpp"

namespace sa::can {

BusGateway::BusGateway(std::string name, Duration forward_latency)
    : name_(std::move(name)), latency_(forward_latency) {
    SA_REQUIRE(latency_.count_ns() >= 0, "forward latency must be non-negative");
}

BusGateway::~BusGateway() { alive_->store(false, std::memory_order_relaxed); }

CanController& BusGateway::port(CanBus& bus) {
    auto it = ports_.find(&bus);
    if (it == ports_.end()) {
        auto controller =
            std::make_unique<CanController>(bus, name_ + "@" + bus.name());
        it = ports_.emplace(&bus, std::move(controller)).first;
    }
    return *it->second;
}

void BusGateway::add_route(CanBus& from, CanBus& to, std::uint32_t id,
                           std::uint32_t mask) {
    SA_REQUIRE(&from != &to, "gateway route must join two distinct buses");
    sim::Simulator& ingress_sim = from.simulator();
    sim::Simulator& egress_sim = to.simulator();
    if (&ingress_sim != &egress_sim) {
        // Cross-domain route: both ends must shard the same kernel, and the
        // forward latency is the conservative lookahead the ingress domain
        // grants the rest of the system.
        SA_REQUIRE(ingress_sim.shard() != nullptr &&
                       ingress_sim.shard() == egress_sim.shard(),
                   "gateway route must stay on one simulator or join two "
                   "domains of one ShardedKernel");
        SA_REQUIRE(latency_.count_ns() > 0,
                   "a cross-domain gateway route needs a positive forward "
                   "latency (it becomes the ingress domain's lookahead)");
        ingress_sim.shard()->declare_lookahead(ingress_sim, latency_);
    }
    CanController& egress = port(to);
    port(from).add_rx_filter(
        id, mask, [this, &egress, &ingress_sim](const CanFrame& frame, Time) {
            forwarded_.fetch_add(1, std::memory_order_relaxed);
            // Store-and-forward: the egress send happens after the gateway's
            // processing latency, from a fresh event (never from inside the
            // ingress bus's RX delivery), on the egress bus's domain when the
            // route crosses domains. The alive flag guards the event against
            // the gateway being destroyed mid-flight.
            sim::post(egress.bus().simulator(), ingress_sim.now() + latency_,
                      [alive = alive_, this, &egress, frame] {
                          if (!alive->load(std::memory_order_relaxed)) {
                              return;
                          }
                          if (!egress.send(frame)) {
                              dropped_.fetch_add(1, std::memory_order_relaxed);
                          }
                      });
        });
}

} // namespace sa::can
