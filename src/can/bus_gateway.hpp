#pragma once
// Bus-to-bus CAN gateway: joins two or more CAN buses into one topology by
// store-and-forward routing. Zonal/domain architectures split traffic across
// segments (sensor bus, actuation bus, backbone) and a gateway ECU forwards
// the frames that must cross segments; the ROADMAP's "multi-bus fan-out"
// scenarios are built from exactly this primitive.
//
// Routes are directional: (from bus, to bus, id/mask filter). A matching
// frame completing on `from` is re-queued on `to` after `forward_latency`
// (the gateway ECU's store-and-forward processing time). Routing loops are
// the caller's responsibility — two routes forwarding the same id range in
// both directions will ping-pong.
//
// Sharding: a route may join buses living on different domains of one
// ShardedKernel. The forward then crosses domains through the kernel's
// mailboxes, and add_route() declares `forward_latency` as the ingress
// domain's lookahead bound — gateway routes are exactly the links whose
// latency defines how far the domains may safely race ahead of each other.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "can/controller.hpp"

namespace sa::can {

class BusGateway {
public:
    /// `name` prefixes the per-bus controller node names ("<name>@<bus>").
    explicit BusGateway(std::string name,
                        Duration forward_latency = Duration::us(20));
    /// Pending (in-flight) forwards are dropped on destruction.
    ~BusGateway();

    BusGateway(const BusGateway&) = delete;
    BusGateway& operator=(const BusGateway&) = delete;

    /// Forward frames matching (id & mask) == (frame.id & mask) from `from`
    /// to `to`. `mask` 0 forwards everything. The buses must live on the
    /// same simulator or on two domains of the same ShardedKernel; a
    /// cross-domain route requires a positive forward latency, which is
    /// declared as the ingress domain's lookahead. Controllers are created
    /// lazily per bus.
    void add_route(CanBus& from, CanBus& to, std::uint32_t id, std::uint32_t mask);

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] Duration forward_latency() const noexcept { return latency_; }

    /// Frames accepted by a route filter and scheduled for forwarding.
    [[nodiscard]] std::uint64_t frames_forwarded() const noexcept {
        return forwarded_.load(std::memory_order_relaxed);
    }
    /// Forwards that were dropped because the egress TX queue was full.
    [[nodiscard]] std::uint64_t frames_dropped() const noexcept {
        return dropped_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::size_t attached_bus_count() const noexcept {
        return ports_.size();
    }

private:
    CanController& port(CanBus& bus);

    std::string name_;
    Duration latency_;
    // Stable addresses: forwarding callbacks capture CanController pointers.
    std::map<const CanBus*, std::unique_ptr<CanController>> ports_;
    // Liveness guard for in-flight forward events: scheduled forwards check
    // the flag before touching the gateway, so destroying a gateway while
    // its simulator keeps running simply drops the pending forwards instead
    // of dereferencing freed controllers. Atomic because the ingress and
    // egress side of a cross-domain route run on different workers.
    std::shared_ptr<std::atomic<bool>> alive_ =
        std::make_shared<std::atomic<bool>>(true);
    // Relaxed atomics: forwarded_ counts on the ingress worker, dropped_ on
    // the egress worker; order-free sums.
    std::atomic<std::uint64_t> forwarded_{0};
    std::atomic<std::uint64_t> dropped_{0};
};

} // namespace sa::can
