#pragma once
// Bus-to-bus CAN gateway: joins two or more CAN buses into one topology by
// store-and-forward routing. Zonal/domain architectures split traffic across
// segments (sensor bus, actuation bus, backbone) and a gateway ECU forwards
// the frames that must cross segments; the ROADMAP's "multi-bus fan-out"
// scenarios are built from exactly this primitive.
//
// Routes are directional: (from bus, to bus, id/mask filter). A matching
// frame completing on `from` is re-queued on `to` after `forward_latency`
// (the gateway ECU's store-and-forward processing time). Routing loops are
// the caller's responsibility — two routes forwarding the same id range in
// both directions will ping-pong.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "can/controller.hpp"

namespace sa::can {

class BusGateway {
public:
    /// `name` prefixes the per-bus controller node names ("<name>@<bus>").
    explicit BusGateway(std::string name,
                        Duration forward_latency = Duration::us(20));
    /// Pending (in-flight) forwards are dropped on destruction.
    ~BusGateway();

    BusGateway(const BusGateway&) = delete;
    BusGateway& operator=(const BusGateway&) = delete;

    /// Forward frames matching (id & mask) == (frame.id & mask) from `from`
    /// to `to`. `mask` 0 forwards everything. Both buses must live on the
    /// same simulator. Controllers are created lazily per bus.
    void add_route(CanBus& from, CanBus& to, std::uint32_t id, std::uint32_t mask);

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] Duration forward_latency() const noexcept { return latency_; }

    /// Frames accepted by a route filter and scheduled for forwarding.
    [[nodiscard]] std::uint64_t frames_forwarded() const noexcept { return forwarded_; }
    /// Forwards that were dropped because the egress TX queue was full.
    [[nodiscard]] std::uint64_t frames_dropped() const noexcept { return dropped_; }
    [[nodiscard]] std::size_t attached_bus_count() const noexcept {
        return ports_.size();
    }

private:
    CanController& port(CanBus& bus);

    std::string name_;
    Duration latency_;
    // Stable addresses: forwarding callbacks capture CanController pointers.
    std::map<const CanBus*, std::unique_ptr<CanController>> ports_;
    // Liveness guard for in-flight forward events: scheduled forwards check
    // the flag before touching the gateway, so destroying a gateway while
    // its simulator keeps running simply drops the pending forwards instead
    // of dereferencing freed controllers.
    std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
    std::uint64_t forwarded_ = 0;
    std::uint64_t dropped_ = 0;
};

} // namespace sa::can
