#include "can/bus.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace sa::can {

CanBus::CanBus(sim::Simulator& simulator, std::string name, CanBusConfig config)
    : simulator_(simulator),
      name_(std::move(name)),
      config_(config),
      trace_(config.trace_capacity) {
    SA_REQUIRE(config_.bitrate_bps > 0, "bitrate must be positive");
    SA_REQUIRE(config_.bit_error_rate >= 0.0 && config_.bit_error_rate <= 1.0,
               "bit_error_rate must be a probability");
}

void CanBus::attach(CanControllerBase& controller) {
    SA_REQUIRE(std::find(controllers_.begin(), controllers_.end(), &controller) ==
                   controllers_.end(),
               "controller already attached");
    controllers_.push_back(&controller);
}

void CanBus::detach(CanControllerBase& controller) {
    controllers_.erase(std::remove(controllers_.begin(), controllers_.end(), &controller),
                       controllers_.end());
}

void CanBus::set_bitrate(std::int64_t bps) {
    SA_REQUIRE(bps > 0, "bitrate must be positive");
    config_.bitrate_bps = bps;
}

void CanBus::set_bit_error_rate(double p) {
    SA_REQUIRE(p >= 0.0 && p <= 1.0, "bit_error_rate must be a probability");
    config_.bit_error_rate = p;
}

void CanBus::notify_tx_pending() {
    if (!transmitting_) {
        try_start_transmission();
    }
}

void CanBus::try_start_transmission() {
    SA_ASSERT(!transmitting_, "arbitration while bus is busy");

    // Arbitration: among all controllers' head frames, the lowest identifier
    // wins (dominant bits win on the wire). Extended frames lose against a
    // standard frame with the same base id (SRR/IDE are recessive).
    CanControllerBase* winner = nullptr;
    CanFrame best{};
    for (auto* c : controllers_) {
        const auto f = c->peek_tx();
        if (!f.has_value()) {
            continue;
        }
        SA_ASSERT(f->valid(), "controller offered an invalid frame");
        if (winner == nullptr) {
            winner = c;
            best = *f;
            continue;
        }
        const std::uint32_t base_new = f->extended ? (f->id >> 18) : f->id;
        const std::uint32_t base_old = best.extended ? (best.id >> 18) : best.id;
        const bool new_wins =
            (base_new < base_old) ||
            (base_new == base_old && !f->extended && best.extended) ||
            (base_new == base_old && f->extended == best.extended && f->id < best.id);
        if (new_wins) {
            winner = c;
            best = *f;
        }
    }
    if (winner == nullptr) {
        return; // bus stays idle
    }
    ++arb_rounds_;
    transmitting_ = true;
    winner->tx_started(best);

    const std::int64_t bits = frame_exact_bits(best) + kInterframeSpaceBits;
    const Duration tx_time = Duration(bits * 1'000'000'000LL / config_.bitrate_bps);
    busy_ns_ += tx_time.count_ns();

    const bool corrupted =
        config_.bit_error_rate > 0.0 && simulator_.rng().chance(config_.bit_error_rate);

    trace_.record(simulator_.now(), "can.arb",
                  winner->node_name() + " wins with " + best.str());

    simulator_.schedule(tx_time, [this, winner, frame = best, corrupted] {
        finish_transmission(winner, frame, corrupted);
    });
}

void CanBus::finish_transmission(CanControllerBase* winner, CanFrame frame, bool corrupted) {
    transmitting_ = false;
    if (corrupted) {
        // Error frame: all nodes discard; the transmitter retries via the
        // next arbitration round.
        ++frames_err_;
        trace_.record(simulator_.now(), "can.err", frame.str());
        winner->tx_aborted(frame);
    } else {
        ++frames_tx_;
        trace_.record(simulator_.now(), "can.tx", frame.str());
        // Completion order: the transmitter is told first (it frees its
        // mailbox), then every attached controller sees the frame.
        winner->tx_done(frame, simulator_.now());
        for (auto* c : controllers_) {
            c->rx_frame(frame, simulator_.now());
        }
    }
    // An RX callback may already have kicked off the next transmission
    // synchronously (echo patterns); only arbitrate if still idle.
    if (!transmitting_) {
        try_start_transmission();
    }
}

double CanBus::busy_fraction(Time horizon) const {
    if (horizon.ns() <= 0) {
        return 0.0;
    }
    return static_cast<double>(busy_ns_) / static_cast<double>(horizon.ns());
}

} // namespace sa::can
