#include "can/bus.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace sa::can {

namespace {
/// CSMA/CR outcome between two candidate frames: true if `a` beats `b`.
/// The lowest base identifier wins (dominant bits win on the wire); extended
/// frames lose against a standard frame with the same base id (SRR/IDE are
/// recessive).
bool frame_wins(const CanFrame& a, const CanFrame& b) noexcept {
    const std::uint32_t base_a = a.extended ? (a.id >> 18) : a.id;
    const std::uint32_t base_b = b.extended ? (b.id >> 18) : b.id;
    if (base_a != base_b) {
        return base_a < base_b;
    }
    if (a.extended != b.extended) {
        return !a.extended;
    }
    return a.id < b.id;
}
} // namespace

CanBus::CanBus(sim::Simulator& simulator, std::string name, CanBusConfig config)
    : simulator_(simulator),
      name_(std::move(name)),
      config_(config),
      trace_(config.trace_capacity) {
    SA_REQUIRE(config_.bitrate_bps > 0, "bitrate must be positive");
    SA_REQUIRE(config_.bit_error_rate >= 0.0 && config_.bit_error_rate <= 1.0,
               "bit_error_rate must be a probability");
}

void CanBus::attach(CanControllerBase& controller) {
    SA_REQUIRE(std::find_if(arb_.begin(), arb_.end(),
                            [&](const ArbEntry& e) { return e.controller == &controller; }) ==
                   arb_.end(),
               "controller already attached");
    arb_.push_back(ArbEntry{&controller, std::nullopt, true});
}

void CanBus::detach(CanControllerBase& controller) {
    arb_.erase(std::remove_if(arb_.begin(), arb_.end(),
                              [&](const ArbEntry& e) { return e.controller == &controller; }),
               arb_.end());
    ++detach_epoch_; // invalidates any in-flight delivery snapshot
}

bool CanBus::is_attached(const CanControllerBase* controller) const noexcept {
    for (const auto& e : arb_) {
        if (e.controller == controller) {
            return true;
        }
    }
    return false;
}

void CanBus::set_bitrate(std::int64_t bps) {
    SA_REQUIRE(bps > 0, "bitrate must be positive");
    config_.bitrate_bps = bps;
}

void CanBus::set_bit_error_rate(double p) {
    SA_REQUIRE(p >= 0.0 && p <= 1.0, "bit_error_rate must be a probability");
    config_.bit_error_rate = p;
}

void CanBus::mark_stale(CanControllerBase* controller) noexcept {
    for (auto& e : arb_) {
        if (e.controller == controller) {
            e.stale = true;
            return;
        }
    }
}

void CanBus::notify_tx_pending(CanControllerBase& controller) {
    mark_stale(&controller);
    if (!transmitting_) {
        try_start_transmission();
    }
}

void CanBus::try_start_transmission() {
    SA_ASSERT(!transmitting_, "arbitration while bus is busy");

    // One arbitration pass over the cached controller heads. Only entries a
    // controller invalidated (via notify_tx_pending, or by winning the
    // previous round) are re-polled; everything else arbitrates from cache.
    ArbEntry* winner = nullptr;
    for (auto& e : arb_) {
        if (e.stale) {
            e.head = e.controller->peek_tx();
            e.stale = false;
            ++polls_;
        }
        if (!e.head.has_value()) {
            continue;
        }
        SA_ASSERT(e.head->valid(), "controller offered an invalid frame");
        if (winner == nullptr || frame_wins(*e.head, *winner->head)) {
            winner = &e;
        }
    }
    if (winner == nullptr) {
        return; // bus stays idle
    }
    ++arb_rounds_;
    transmitting_ = true;
    tx_controller_ = winner->controller;
    tx_frame_ = *winner->head;
    tx_controller_->tx_started(tx_frame_);

    const std::int64_t bits = frame_exact_bits(tx_frame_) + kInterframeSpaceBits;
    const Duration tx_time = Duration(bits * 1'000'000'000LL / config_.bitrate_bps);
    busy_ns_ += tx_time.count_ns();

    tx_corrupted_ =
        config_.bit_error_rate > 0.0 && simulator_.rng().chance(config_.bit_error_rate);

    // Format straight into the trace's retained storage: no temporary
    // strings on the per-transmission path.
    std::string& detail = trace_.append_record(simulator_.now(), "can.arb");
    detail.append(tx_controller_->node_name()).append(" wins with ");
    tx_frame_.append_str(detail);

    simulator_.schedule(tx_time, [this] { finish_transmission(); });
}

void CanBus::finish_transmission() {
    transmitting_ = false;
    CanControllerBase* winner = tx_controller_;
    tx_controller_ = nullptr;
    // Copy out of the in-flight members: an RX callback below may send
    // synchronously, re-entering try_start_transmission and overwriting
    // tx_frame_/tx_corrupted_ while this frame is still being delivered.
    const CanFrame frame = tx_frame_;
    const bool corrupted = tx_corrupted_;
    // The transmitter may have been destroyed (detaching itself) while its
    // frame was on the wire; only touch it if it is still attached.
    const bool winner_attached = is_attached(winner);
    if (winner_attached) {
        // The winner's queue advances whether the frame completed or
        // aborted; its cached head is stale either way.
        mark_stale(winner);
    }
    if (corrupted) {
        // Error frame: all nodes discard; the transmitter retries via the
        // next arbitration round.
        ++frames_err_;
        frame.append_str(trace_.append_record(simulator_.now(), "can.err"));
        if (winner_attached) {
            winner->tx_aborted(frame);
        }
    } else {
        ++frames_tx_;
        frame.append_str(trace_.append_record(simulator_.now(), "can.tx"));
        // Completion order: the transmitter is told first (it frees its
        // mailbox), then every controller attached at completion time sees
        // the frame. Deliver from a snapshot so an RX callback that
        // attaches/detaches controllers cannot skip or double-deliver. The
        // per-controller attachment re-check (pointers may be dead after a
        // detach) is skipped in the common case via the detach epoch.
        if (winner_attached) {
            winner->tx_done(frame, simulator_.now());
        }
        rx_scratch_.clear();
        rx_scratch_.reserve(arb_.size()); // no-op after the first delivery
        for (const auto& e : arb_) {
            rx_scratch_.push_back(e.controller);
        }
        const std::uint64_t epoch_at_snapshot = detach_epoch_;
        for (CanControllerBase* c : rx_scratch_) {
            if (detach_epoch_ == epoch_at_snapshot || is_attached(c)) {
                c->rx_frame(frame, simulator_.now());
            }
        }
    }
    // An RX callback may already have kicked off the next transmission
    // synchronously (echo patterns); only arbitrate if still idle.
    if (!transmitting_) {
        try_start_transmission();
    }
}

double CanBus::busy_fraction(Time horizon) const {
    if (horizon.ns() <= 0) {
        return 0.0;
    }
    return static_cast<double>(busy_ns_) / static_cast<double>(horizon.ns());
}

} // namespace sa::can
