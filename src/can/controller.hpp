#pragma once
// A conventional ("native", non-virtualized) CAN controller: priority-sorted
// transmit queue, acceptance filters with callbacks on receive, and
// per-frame latency bookkeeping. This is the baseline the virtualized
// controller (Fig. 2) is compared against in bench/fig2_can_latency.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "can/bus.hpp"
#include "sim/process.hpp" // Signal
#include "util/stats.hpp"

namespace sa::can {

/// Acceptance filter: frame matches if (frame.id & mask) == (id & mask).
struct RxFilter {
    std::uint32_t id = 0;
    std::uint32_t mask = 0; ///< 0 accepts everything
    std::function<void(const CanFrame&, Time)> callback;

    [[nodiscard]] bool matches(const CanFrame& frame) const noexcept {
        return (frame.id & mask) == (id & mask);
    }
};

/// ISO 11898 fault-confinement state, driven by the TEC/REC error counters.
/// A node whose transmissions keep failing isolates *itself* from the bus —
/// the classic self-protection mechanism against babbling(-idiot) faults.
enum class FaultConfinement { ErrorActive, ErrorPassive, BusOff };

const char* to_string(FaultConfinement state) noexcept;

/// TEC/REC bookkeeping per ISO 11898-1 (simplified: +8 per TX error, -1 per
/// successful TX; +1 per RX error, -1 per good RX).
class ErrorCounters {
public:
    void on_tx_error() noexcept;
    void on_tx_success() noexcept;
    void on_rx_error() noexcept;
    void on_rx_success() noexcept;

    [[nodiscard]] int tec() const noexcept { return tec_; }
    [[nodiscard]] int rec() const noexcept { return rec_; }
    [[nodiscard]] FaultConfinement state() const noexcept;

    /// Bus-off recovery (application-initiated reset).
    void reset() noexcept;

private:
    int tec_ = 0;
    int rec_ = 0;
    bool bus_off_ = false;
};

class CanController : public CanControllerBase {
public:
    CanController(CanBus& bus, std::string name, std::size_t tx_queue_capacity = 64);
    ~CanController() override;

    CanController(const CanController&) = delete;
    CanController& operator=(const CanController&) = delete;

    /// Queue a frame for transmission. Returns false if the TX queue is full
    /// (frame dropped; counted in tx_dropped()).
    bool send(const CanFrame& frame);

    /// Register an acceptance filter; matching frames invoke the callback.
    void add_rx_filter(std::uint32_t id, std::uint32_t mask,
                       std::function<void(const CanFrame&, Time)> callback);

    /// The bus this controller is attached to (fixed for its lifetime).
    [[nodiscard]] CanBus& bus() noexcept { return bus_; }

    // CanControllerBase
    std::optional<CanFrame> peek_tx() override;
    void tx_started(const CanFrame& frame) override;
    void tx_aborted(const CanFrame& frame) override;
    void tx_done(const CanFrame& frame, Time at) override;
    void rx_frame(const CanFrame& frame, Time at) override;
    [[nodiscard]] const std::string& node_name() const override { return name_; }

    // Statistics.
    [[nodiscard]] std::uint64_t tx_count() const noexcept { return tx_count_; }
    [[nodiscard]] std::uint64_t rx_count() const noexcept { return rx_count_; }
    [[nodiscard]] std::uint64_t tx_dropped() const noexcept { return tx_dropped_; }
    [[nodiscard]] std::size_t tx_pending() const noexcept { return tx_queue_.size(); }
    [[nodiscard]] const SampleSet& tx_latency_us() const noexcept { return tx_latency_us_; }

    /// Seen by the echo benches: loopback of own frames is suppressed.
    void set_receive_own(bool receive_own) noexcept { receive_own_ = receive_own; }

    // --- fault confinement (ISO 11898) -------------------------------------
    [[nodiscard]] FaultConfinement fault_state() const noexcept {
        return errors_.state();
    }
    [[nodiscard]] const ErrorCounters& error_counters() const noexcept {
        return errors_;
    }
    /// Application-initiated bus-off recovery: counters reset; queued frames
    /// were flushed when the node went bus-off.
    void recover_from_bus_off();
    /// Emitted once when the node enters BusOff.
    sim::Signal<>& bus_off() noexcept { return bus_off_signal_; }

private:
    struct PendingTx {
        CanFrame frame;
        Time enqueued;
    };

    CanBus& bus_;
    std::string name_;
    std::size_t capacity_;
    std::vector<PendingTx> tx_queue_; ///< kept sorted by priority on insert
    std::vector<RxFilter> filters_;
    bool receive_own_ = false;
    bool in_flight_ = false; ///< queue head is on the wire; nothing may pass it

    std::uint64_t tx_count_ = 0;
    std::uint64_t rx_count_ = 0;
    std::uint64_t tx_dropped_ = 0;
    SampleSet tx_latency_us_;

    // Last completed own transmission, used to suppress self-reception.
    bool last_tx_valid_ = false;
    CanFrame last_tx_frame_{};
    Time last_tx_time_{};

    ErrorCounters errors_;
    sim::Signal<> bus_off_signal_;
};

} // namespace sa::can
