#include "campaign/corpus.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "campaign/lexer.hpp"
#include "util/string_util.hpp"

namespace sa::campaign {
namespace {

/// Quote a string for the entry grammar (the lexer reads single-line
/// double-quoted strings; reasons never contain quotes or newlines, but
/// strip them defensively so str() always re-parses).
std::string quoted(const std::string& text) {
    std::string out = "\"";
    for (const char c : text) {
        if (c != '"' && c != '\n' && c != '\r') {
            out += c;
        }
    }
    out += "\"";
    return out;
}

} // namespace

std::string CorpusEntry::signature() const {
    if (status == "crash") {
        return format("crash signal=%d", signal);
    }
    return status + " reason=" + reason;
}

std::string CorpusEntry::signature_of(const CellVerdict& verdict) {
    if (verdict.status == "crash") {
        return format("crash signal=%d", verdict.signal);
    }
    return verdict.status + " reason=" + verdict.reason;
}

CorpusEntry CorpusEntry::from_failure(const CellConfig& cell,
                                      const CellVerdict& verdict) {
    CorpusEntry entry;
    entry.cell = cell;
    entry.status = verdict.status;
    entry.reason = verdict.reason;
    entry.signal = verdict.signal;
    entry.fingerprint = fingerprint_hex(fnv1a64(verdict.json()));
    return entry;
}

std::string CorpusEntry::suggested_filename() const {
    const std::uint64_t hash = fnv1a64(signature() + "|" + cell.id());
    return cell.campaign + "-" + fingerprint_hex(hash).substr(0, 12) + ".repro";
}

std::string CorpusEntry::str() const {
    std::string out = cell.str();
    out += "expect status " + status + ";\n";
    if (!reason.empty()) {
        out += "expect reason " + quoted(reason) + ";\n";
    }
    if (signal != 0) {
        out += format("expect signal %d;\n", signal);
    }
    if (!fingerprint.empty()) {
        // Quoted: a hex16 that starts with a digit ("1cc9...") would lex as
        // Number + Ident as a bare token.
        out += "expect fingerprint " + quoted(fingerprint) + ";\n";
    }
    return out;
}

CorpusEntry CorpusEntry::parse(const std::string& text) {
    // Split at the first `expect`: the cell block re-uses CellConfig::parse
    // (which checks for trailing input), the rest is the expectation list.
    const std::size_t split = text.find("expect");
    if (split == std::string::npos) {
        throw CampaignParseError(0, "corpus entry has no expect statements");
    }
    CorpusEntry entry;
    entry.cell = CellConfig::parse(text.substr(0, split));
    entry.status.clear();

    const std::string expects = text.substr(split);
    detail::Lexer lexer(expects);
    while (lexer.peek().kind != detail::TokKind::End) {
        lexer.expect_ident("expect");
        const detail::Token what = lexer.take();
        if (what.kind != detail::TokKind::Ident) {
            throw CampaignParseError(what.line, "expected an expectation kind" +
                                                    std::string(", got '") +
                                                    what.text + "'");
        }
        if (what.text == "status") {
            const std::string value = lexer.take_ident("a status");
            if (value != "ok" && value != "violation" && value != "crash") {
                throw CampaignParseError(what.line,
                                         "unknown status '" + value + "'");
            }
            entry.status = value;
        } else if (what.text == "reason") {
            const detail::Token value = lexer.take();
            if (value.kind != detail::TokKind::String) {
                throw CampaignParseError(value.line, "expected a quoted reason");
            }
            entry.reason = value.text;
        } else if (what.text == "signal") {
            entry.signal =
                static_cast<int>(lexer.take_number("a signal number"));
        } else if (what.text == "fingerprint") {
            // Canonically quoted (see str()); bare Ident/Number tokens are
            // accepted too for hand-written entries whose hex16 happens to
            // lex as a single token.
            const detail::Token value = lexer.take();
            if (value.kind != detail::TokKind::String &&
                value.kind != detail::TokKind::Ident &&
                value.kind != detail::TokKind::Number) {
                throw CampaignParseError(value.line, "expected a fingerprint");
            }
            entry.fingerprint = value.text;
        } else {
            throw CampaignParseError(what.line, "unknown expectation '" +
                                                    what.text + "'");
        }
        lexer.expect_punct(";");
    }
    if (entry.status.empty()) {
        throw CampaignParseError(0, "corpus entry lacks 'expect status'");
    }
    return entry;
}

std::vector<std::string>
CorpusEntry::mismatches(const std::string& verdict_json) const {
    std::vector<std::string> out;
    const std::string got_status = json_string_field(verdict_json, "status");
    const std::string got_reason = json_string_field(verdict_json, "reason");
    const int got_signal =
        static_cast<int>(json_int_field(verdict_json, "signal", 0));
    if (got_status != status) {
        out.push_back("status: expected '" + status + "', got '" + got_status +
                      "'");
    }
    if (!reason.empty() && got_reason != reason) {
        out.push_back("reason: expected '" + reason + "', got '" + got_reason +
                      "'");
    }
    if (signal != 0 && got_signal != signal) {
        out.push_back(format("signal: expected %d, got %d", signal, got_signal));
    }
    if (!fingerprint.empty()) {
        const std::string actual = fingerprint_hex(fnv1a64(verdict_json));
        if (actual != fingerprint) {
            out.push_back("fingerprint: expected " + fingerprint + ", got " +
                          actual);
        }
    }
    return out;
}

std::vector<std::pair<std::string, CorpusEntry>>
load_corpus(const std::string& directory) {
    namespace fs = std::filesystem;
    std::vector<std::pair<std::string, CorpusEntry>> out;
    std::error_code ec;
    if (!fs::is_directory(directory, ec)) {
        return out;
    }
    std::vector<fs::path> paths;
    for (const auto& entry : fs::directory_iterator(directory)) {
        if (entry.is_regular_file() && entry.path().extension() == ".repro") {
            paths.push_back(entry.path());
        }
    }
    std::sort(paths.begin(), paths.end());
    for (const fs::path& path : paths) {
        std::ifstream in(path);
        std::ostringstream text;
        text << in.rdbuf();
        try {
            out.emplace_back(path.string(), CorpusEntry::parse(text.str()));
        } catch (const CampaignParseError& error) {
            throw CampaignParseError(error.line(), path.string() + ": " +
                                                       error.what());
        }
    }
    return out;
}

} // namespace sa::campaign
