#pragma once
// The failing-seed corpus: every failing campaign cell is persisted as a
// minimal reproducer — the shrunk `cell { ... }` block plus `expect`
// statements pinning what the failure looked like. Replaying an entry
// re-runs the cell bit-for-bit and checks the expectations, which is what
// turns yesterday's failures into today's regression-fuzz suite
// (fixtures/corpus/ is replayed by CI on every PR).
//
// Entry grammar (one cell block, then one or more expect statements):
//
//   cell { campaign smoke; template platoon; vehicles 2; duration 800ms;
//          weather clear; fault misuse; policy steady; topology dual_bus;
//          domains 1; seed 7; }
//   expect status violation;
//   expect reason "precondition failed: ...";
//   expect signal 6;
//   expect fingerprint "9f86d081884c7d65";

#include <string>
#include <vector>

#include "campaign/campaign_spec.hpp"
#include "campaign/verdict.hpp"

namespace sa::campaign {

/// One committed reproducer: a (shrunk) cell plus the expected failure.
struct CorpusEntry {
    CellConfig cell;
    std::string status = "violation"; ///< expected verdict status
    std::string reason;               ///< expected reason ("" = don't check)
    int signal = 0;                   ///< expected crash signal (0 = none)
    std::string fingerprint;          ///< expected verdict fingerprint
                                      ///< (hex16; "" = don't check)

    /// Failure identity used for dedup and shrink: crashes group by
    /// (status, signal), violations by (status, reason) — the axes of a
    /// cell are deliberately NOT part of the signature, so shrink can move
    /// through the matrix while "the same failure" stays recognisable.
    [[nodiscard]] std::string signature() const;
    /// Signature of a live verdict, comparable with signature().
    [[nodiscard]] static std::string signature_of(const CellVerdict& verdict);

    /// Build an entry from a failing cell and its verdict (records the
    /// verdict fingerprint so replay checks bit-for-bit reproduction).
    [[nodiscard]] static CorpusEntry from_failure(const CellConfig& cell,
                                                 const CellVerdict& verdict);

    /// Deterministic filename for fixtures/corpus/, derived from the
    /// failure signature and the cell identity ("<campaign>-<hash>.repro").
    [[nodiscard]] std::string suggested_filename() const;

    /// Serialize to the entry grammar; parse(str()) round-trips.
    [[nodiscard]] std::string str() const;
    [[nodiscard]] static CorpusEntry parse(const std::string& text);

    /// Check a replayed verdict (its canonical JSON line — CellVerdict::
    /// json() in-process, the worker's stdout line in process mode) against
    /// the expectations; returns human-readable mismatches (empty =
    /// reproduced bit-for-bit).
    [[nodiscard]] std::vector<std::string>
    mismatches(const std::string& verdict_json) const;
};

/// Load every *.repro entry under `directory` (sorted by filename so replay
/// order is stable). Returns (path, entry) pairs; a missing directory is an
/// empty corpus, an unparseable entry throws CampaignParseError with the
/// filename in the message.
[[nodiscard]] std::vector<std::pair<std::string, CorpusEntry>>
load_corpus(const std::string& directory);

} // namespace sa::campaign
