#include "campaign/campaign_spec.hpp"

#include <algorithm>

#include "campaign/lexer.hpp"
#include "util/assert.hpp"
#include "util/string_util.hpp"

namespace sa::campaign {

CampaignParseError::CampaignParseError(int line, const std::string& message)
    : std::runtime_error(message), line_(line) {}

// --- axis names --------------------------------------------------------------------

const char* to_string(Weather weather) noexcept {
    switch (weather) {
    case Weather::Clear: return "clear";
    case Weather::Fog: return "fog";
    case Weather::Rain: return "rain";
    case Weather::Winter: return "winter";
    }
    return "?";
}

const char* to_string(Fault fault) noexcept {
    switch (fault) {
    case Fault::None: return "none";
    case Fault::FogBlind: return "fog_blind";
    case Fault::V2vBlackout: return "v2v_blackout";
    case Fault::Storm: return "storm";
    case Fault::Overrun: return "overrun";
    case Fault::SensorDrift: return "sensor_drift";
    case Fault::Misuse: return "misuse";
    case Fault::Crash: return "crash";
    }
    return "?";
}

const char* to_string(PolicyKind policy) noexcept {
    switch (policy) {
    case PolicyKind::Steady: return "steady";
    case PolicyKind::Cautious: return "cautious";
    case PolicyKind::Eager: return "eager";
    }
    return "?";
}

const char* to_string(Topology topology) noexcept {
    switch (topology) {
    case Topology::DualBus: return "dual_bus";
    case Topology::Bridged: return "bridged";
    case Topology::Mesh: return "mesh";
    case Topology::LossyMesh: return "lossy_mesh";
    }
    return "?";
}

bool topology_is_mesh(Topology topology) noexcept {
    return topology == Topology::Mesh || topology == Topology::LossyMesh;
}

namespace {

template <typename Enum>
bool enum_from_string(const std::string& text, Enum& out,
                      std::initializer_list<Enum> all) {
    for (Enum value : all) {
        if (text == to_string(value)) {
            out = value;
            return true;
        }
    }
    return false;
}

} // namespace

bool weather_from_string(const std::string& text, Weather& out) {
    return enum_from_string(text, out,
                            {Weather::Clear, Weather::Fog, Weather::Rain,
                             Weather::Winter});
}

bool fault_from_string(const std::string& text, Fault& out) {
    return enum_from_string(text, out,
                            {Fault::None, Fault::FogBlind, Fault::V2vBlackout,
                             Fault::Storm, Fault::Overrun, Fault::SensorDrift,
                             Fault::Misuse, Fault::Crash});
}

bool policy_from_string(const std::string& text, PolicyKind& out) {
    return enum_from_string(
        text, out, {PolicyKind::Steady, PolicyKind::Cautious, PolicyKind::Eager});
}

bool topology_from_string(const std::string& text, Topology& out) {
    return enum_from_string(text, out,
                            {Topology::DualBus, Topology::Bridged,
                             Topology::Mesh, Topology::LossyMesh});
}

bool fault_is_harness_probe(Fault fault) noexcept {
    return fault == Fault::Misuse || fault == Fault::Crash;
}

std::string duration_str(sim::Duration duration) {
    const std::int64_t ns = duration.count_ns();
    if (ns % 1'000'000'000 == 0) {
        return format("%llds", static_cast<long long>(ns / 1'000'000'000));
    }
    if (ns % 1'000'000 == 0) {
        return format("%lldms", static_cast<long long>(ns / 1'000'000));
    }
    if (ns % 1'000 == 0) {
        return format("%lldus", static_cast<long long>(ns / 1'000));
    }
    return format("%lldns", static_cast<long long>(ns));
}

namespace detail {

sim::Duration take_duration(Lexer& lexer) {
    const Token number = lexer.take();
    if (number.kind != TokKind::Number) {
        throw CampaignParseError(number.line,
                                 "expected a duration like '400ms', got '" +
                                     number.text + "'");
    }
    const std::int64_t value = std::stoll(number.text);
    const Token unit = lexer.take();
    if (unit.kind != TokKind::Ident) {
        throw CampaignParseError(unit.line,
                                 "expected a duration unit (ns/us/ms/s) after '" +
                                     number.text + "'");
    }
    if (unit.text == "ns") {
        return sim::Duration::ns(value);
    }
    if (unit.text == "us") {
        return sim::Duration::us(value);
    }
    if (unit.text == "ms") {
        return sim::Duration::ms(value);
    }
    if (unit.text == "s") {
        return sim::Duration::sec(value);
    }
    throw CampaignParseError(unit.line,
                             "unknown duration unit '" + unit.text + "'");
}

} // namespace detail

// --- CellConfig --------------------------------------------------------------------

std::string CellConfig::id() const {
    std::string out = campaign;
    out += " vehicles=" + std::to_string(vehicles);
    out += " duration=" + duration_str(duration);
    if (!spec_file.empty()) {
        out += " spec=" + spec_file;
    }
    out += " weather=" + std::string(to_string(weather));
    out += " fault=" + std::string(to_string(fault));
    out += " policy=" + std::string(to_string(policy));
    out += " topology=" + std::string(to_string(topology));
    out += " domains=" + std::to_string(domains);
    out += " seed=" + std::to_string(seed);
    if (learned_warmup.count_ns() > 0) {
        out += " learned=" + duration_str(learned_warmup);
        if (learned_no_metrics) {
            out += "/none";
        }
    }
    if (mesh_range_m > 0) {
        out += " mesh_range=" + std::to_string(mesh_range_m);
    }
    if (mesh_ttl > 0) {
        out += " mesh_ttl=" + std::to_string(mesh_ttl);
    }
    return out;
}

std::string CellConfig::str() const {
    std::string out = "cell {\n";
    out += "  campaign " + campaign + ";\n";
    out += "  template " + scenario_template + ";\n";
    out += "  vehicles " + std::to_string(vehicles) + ";\n";
    out += "  duration " + duration_str(duration) + ";\n";
    if (!spec_file.empty()) {
        out += "  spec \"" + spec_file + "\";\n";
    }
    out += "  weather " + std::string(to_string(weather)) + ";\n";
    out += "  fault " + std::string(to_string(fault)) + ";\n";
    out += "  policy " + std::string(to_string(policy)) + ";\n";
    out += "  topology " + std::string(to_string(topology)) + ";\n";
    out += "  domains " + std::to_string(domains) + ";\n";
    out += "  seed " + std::to_string(seed) + ";\n";
    if (learned_warmup.count_ns() > 0) {
        out += "  learned " + duration_str(learned_warmup) +
               (learned_no_metrics ? " none" : "") + ";\n";
    }
    if (mesh_range_m > 0) {
        out += "  mesh_range " + std::to_string(mesh_range_m) + ";\n";
    }
    if (mesh_ttl > 0) {
        out += "  mesh_ttl " + std::to_string(mesh_ttl) + ";\n";
    }
    out += "}\n";
    return out;
}

namespace {

void check_vehicles(std::size_t count, int line) {
    if (count < 2 || count > 8) {
        throw CampaignParseError(line, "vehicles must be in [2, 8], got " +
                                           std::to_string(count));
    }
}

void check_domains(std::size_t count, int line) {
    if (count < 1 || count > 8) {
        throw CampaignParseError(line, "domains must be in [1, 8], got " +
                                           std::to_string(count));
    }
}

void check_duration(sim::Duration duration, int line) {
    if (duration.count_ns() < sim::Duration::ms(1).count_ns()) {
        throw CampaignParseError(line, "duration must be at least 1ms");
    }
}

/// Parse the tail of a `learned <dur> [none];` statement (after the keyword;
/// the caller consumes the terminating ';').
void parse_learned(detail::Lexer& lexer, int line, sim::Duration& warmup,
                   bool& no_metrics) {
    warmup = detail::take_duration(lexer);
    if (warmup.count_ns() <= 0) {
        throw CampaignParseError(line, "learned warm-up must be positive");
    }
    no_metrics = false;
    if (lexer.peek().kind == detail::TokKind::Ident) {
        const std::string flag = lexer.take_ident("'none'");
        if (flag != "none") {
            throw CampaignParseError(line,
                                     "unknown learned flag '" + flag + "'");
        }
        no_metrics = true;
    }
}

/// Parse one cell statement into `cell`. Returns false when `keyword` is not
/// a cell statement (so CampaignSpec::parse can report axis keywords with a
/// campaign-specific message).
bool parse_cell_statement(detail::Lexer& lexer, const std::string& keyword, int line,
                          CellConfig& cell) {
    using detail::TokKind;
    if (keyword == "campaign") {
        cell.campaign = lexer.take_ident("a campaign name");
    } else if (keyword == "template") {
        cell.scenario_template = lexer.take_ident("a template name");
    } else if (keyword == "vehicles") {
        cell.vehicles =
            static_cast<std::size_t>(lexer.take_number("a vehicle count"));
        check_vehicles(cell.vehicles, line);
    } else if (keyword == "duration") {
        cell.duration = detail::take_duration(lexer);
        check_duration(cell.duration, line);
    } else if (keyword == "spec") {
        const detail::Token token = lexer.take();
        if (token.kind != TokKind::String) {
            throw CampaignParseError(token.line,
                                     "expected a quoted spec file path");
        }
        cell.spec_file = token.text;
    } else if (keyword == "weather") {
        const std::string value = lexer.take_ident("a weather value");
        if (!weather_from_string(value, cell.weather)) {
            throw CampaignParseError(line, "unknown weather '" + value + "'");
        }
    } else if (keyword == "fault") {
        const std::string value = lexer.take_ident("a fault value");
        if (!fault_from_string(value, cell.fault)) {
            throw CampaignParseError(line, "unknown fault '" + value + "'");
        }
    } else if (keyword == "policy") {
        const std::string value = lexer.take_ident("a policy value");
        if (!policy_from_string(value, cell.policy)) {
            throw CampaignParseError(line, "unknown policy '" + value + "'");
        }
    } else if (keyword == "topology") {
        const std::string value = lexer.take_ident("a topology value");
        if (!topology_from_string(value, cell.topology)) {
            throw CampaignParseError(line, "unknown topology '" + value + "'");
        }
    } else if (keyword == "domains") {
        cell.domains = static_cast<std::size_t>(lexer.take_number("a domain count"));
        check_domains(cell.domains, line);
    } else if (keyword == "seed") {
        cell.seed = lexer.take_number("a seed");
    } else if (keyword == "learned") {
        parse_learned(lexer, line, cell.learned_warmup, cell.learned_no_metrics);
    } else if (keyword == "mesh_range") {
        cell.mesh_range_m = lexer.take_number("a radio range in meters");
    } else if (keyword == "mesh_ttl") {
        cell.mesh_ttl = lexer.take_number("a beacon TTL");
    } else {
        return false;
    }
    lexer.expect_punct(";");
    return true;
}

} // namespace

CellConfig CellConfig::parse(const std::string& text) {
    detail::Lexer lexer(text);
    lexer.expect_ident("cell");
    lexer.expect_punct("{");
    CellConfig cell;
    for (;;) {
        const detail::Token token = lexer.take();
        if (token.kind == detail::TokKind::Punct && token.text == "}") {
            break;
        }
        if (token.kind != detail::TokKind::Ident) {
            throw CampaignParseError(token.line, "expected a cell statement, got '" +
                                                     token.text + "'");
        }
        if (!parse_cell_statement(lexer, token.text, token.line, cell)) {
            throw CampaignParseError(token.line,
                                     "unknown cell statement '" + token.text + "'");
        }
    }
    return cell;
}

// --- CampaignSpec ------------------------------------------------------------------

CampaignSpec::CampaignSpec(std::string name) : name_(std::move(name)) {}

CampaignSpec& CampaignSpec::scenario_template(std::string name) {
    template_ = std::move(name);
    return *this;
}

CampaignSpec& CampaignSpec::vehicles(std::vector<std::size_t> counts) {
    SA_REQUIRE(!counts.empty(), "vehicles axis needs at least one value");
    vehicles_ = std::move(counts);
    return *this;
}

CampaignSpec& CampaignSpec::duration(sim::Duration duration) {
    SA_REQUIRE(duration.count_ns() >= sim::Duration::ms(1).count_ns(),
               "campaign duration must be at least 1ms");
    duration_ = duration;
    return *this;
}

CampaignSpec& CampaignSpec::spec_file(std::string path) {
    spec_file_ = std::move(path);
    return *this;
}

CampaignSpec& CampaignSpec::weathers(std::vector<Weather> values) {
    SA_REQUIRE(!values.empty(), "weather axis needs at least one value");
    weathers_ = std::move(values);
    return *this;
}

CampaignSpec& CampaignSpec::faults(std::vector<Fault> values) {
    SA_REQUIRE(!values.empty(), "fault axis needs at least one value");
    faults_ = std::move(values);
    return *this;
}

CampaignSpec& CampaignSpec::policies(std::vector<PolicyKind> values) {
    SA_REQUIRE(!values.empty(), "policy axis needs at least one value");
    policies_ = std::move(values);
    return *this;
}

CampaignSpec& CampaignSpec::topologies(std::vector<Topology> values) {
    SA_REQUIRE(!values.empty(), "topology axis needs at least one value");
    topologies_ = std::move(values);
    return *this;
}

CampaignSpec& CampaignSpec::domains(std::vector<std::size_t> counts) {
    SA_REQUIRE(!counts.empty(), "domains axis needs at least one value");
    domains_ = std::move(counts);
    return *this;
}

CampaignSpec& CampaignSpec::seeds(std::uint64_t lo, std::uint64_t hi) {
    seeds_ = SeedRange{lo, hi};
    return *this;
}

CampaignSpec& CampaignSpec::learned(sim::Duration warmup, bool no_metrics) {
    SA_REQUIRE(warmup.count_ns() >= 0, "learned warm-up must not be negative");
    learned_warmup_ = warmup;
    learned_no_metrics_ = no_metrics;
    return *this;
}

CampaignSpec& CampaignSpec::mesh_range(std::uint64_t range_m) {
    mesh_range_m_ = range_m;
    return *this;
}

CampaignSpec& CampaignSpec::mesh_ttl(std::uint64_t ttl) {
    mesh_ttl_ = ttl;
    return *this;
}

std::uint64_t CampaignSpec::cell_count() const noexcept {
    std::uint64_t count = seeds_.count();
    count *= weathers_.size();
    count *= faults_.size();
    count *= policies_.size();
    count *= topologies_.size();
    count *= domains_.size();
    count *= vehicles_.size();
    return count;
}

std::vector<CellConfig> CampaignSpec::expand() const {
    std::vector<CellConfig> cells;
    cells.reserve(static_cast<std::size_t>(cell_count()));
    for (const Weather weather : weathers_) {
        for (const Fault fault : faults_) {
            for (const PolicyKind policy : policies_) {
                for (const Topology topology : topologies_) {
                    for (const std::size_t domains : domains_) {
                        for (const std::size_t vehicles : vehicles_) {
                            for (std::uint64_t seed = seeds_.lo;
                                 seed <= seeds_.hi && seeds_.count() > 0; ++seed) {
                                CellConfig cell;
                                cell.campaign = name_;
                                cell.scenario_template = template_;
                                cell.vehicles = vehicles;
                                cell.duration = duration_;
                                cell.spec_file = spec_file_;
                                cell.weather = weather;
                                cell.fault = fault;
                                cell.policy = policy;
                                cell.topology = topology;
                                cell.domains = domains;
                                cell.seed = seed;
                                cell.learned_warmup = learned_warmup_;
                                cell.learned_no_metrics = learned_no_metrics_;
                                cell.mesh_range_m = mesh_range_m_;
                                cell.mesh_ttl = mesh_ttl_;
                                cells.push_back(std::move(cell));
                                if (seed == seeds_.hi) {
                                    break; // avoid overflow at UINT64_MAX
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    return cells;
}

std::string CampaignSpec::str() const {
    std::string out = "campaign " + name_ + " {\n";
    out += "  template " + template_ + ";\n";
    out += "  vehicles";
    for (const std::size_t count : vehicles_) {
        out += " " + std::to_string(count);
    }
    out += ";\n";
    out += "  duration " + duration_str(duration_) + ";\n";
    if (!spec_file_.empty()) {
        out += "  spec \"" + spec_file_ + "\";\n";
    }
    out += "  weather";
    for (const Weather weather : weathers_) {
        out += " " + std::string(to_string(weather));
    }
    out += ";\n";
    out += "  fault";
    for (const Fault fault : faults_) {
        out += " " + std::string(to_string(fault));
    }
    out += ";\n";
    out += "  policy";
    for (const PolicyKind policy : policies_) {
        out += " " + std::string(to_string(policy));
    }
    out += ";\n";
    out += "  topology";
    for (const Topology topology : topologies_) {
        out += " " + std::string(to_string(topology));
    }
    out += ";\n";
    out += "  domains";
    for (const std::size_t count : domains_) {
        out += " " + std::to_string(count);
    }
    out += ";\n";
    out += "  seeds " + std::to_string(seeds_.lo) + ".." + std::to_string(seeds_.hi) +
           ";\n";
    if (learned_warmup_.count_ns() > 0) {
        out += "  learned " + duration_str(learned_warmup_) +
               (learned_no_metrics_ ? " none" : "") + ";\n";
    }
    if (mesh_range_m_ > 0) {
        out += "  mesh_range " + std::to_string(mesh_range_m_) + ";\n";
    }
    if (mesh_ttl_ > 0) {
        out += "  mesh_ttl " + std::to_string(mesh_ttl_) + ";\n";
    }
    out += "}\n";
    return out;
}

namespace {

/// Values of a multi-valued axis statement: one or more tokens before ';',
/// each converted by `convert` (which throws on an unknown value).
template <typename Value, typename Convert>
std::vector<Value> parse_axis_values(detail::Lexer& lexer, Convert convert) {
    std::vector<Value> values;
    while (lexer.peek().kind == detail::TokKind::Ident ||
           lexer.peek().kind == detail::TokKind::Number) {
        values.push_back(convert(lexer.take()));
    }
    if (values.empty()) {
        throw CampaignParseError(lexer.peek().line,
                                 "axis statement needs at least one value");
    }
    lexer.expect_punct(";");
    return values;
}

} // namespace

CampaignSpec CampaignSpec::parse(const std::string& text) {
    using detail::Token;
    using detail::TokKind;
    detail::Lexer lexer(text);
    lexer.expect_ident("campaign");
    CampaignSpec spec(lexer.take_ident("a campaign name"));
    lexer.expect_punct("{");

    auto ident_value = [](const Token& token) {
        if (token.kind != TokKind::Ident) {
            throw CampaignParseError(token.line,
                                     "expected an axis value, got '" + token.text +
                                         "'");
        }
        return token;
    };
    auto count_value = [](const Token& token) {
        if (token.kind != TokKind::Number) {
            throw CampaignParseError(token.line, "expected a count, got '" +
                                                     token.text + "'");
        }
        return token;
    };

    for (;;) {
        const Token token = lexer.take();
        if (token.kind == TokKind::Punct && token.text == "}") {
            break;
        }
        if (token.kind != TokKind::Ident) {
            throw CampaignParseError(token.line,
                                     "expected a campaign statement, got '" +
                                         token.text + "'");
        }
        const std::string& keyword = token.text;
        if (keyword == "template") {
            spec.template_ = lexer.take_ident("a template name");
            lexer.expect_punct(";");
        } else if (keyword == "vehicles") {
            spec.vehicles_ = parse_axis_values<std::size_t>(
                lexer, [&](const Token& t) {
                    const Token checked = count_value(t);
                    const auto count =
                        static_cast<std::size_t>(std::stoull(checked.text));
                    check_vehicles(count, checked.line);
                    return count;
                });
        } else if (keyword == "duration") {
            spec.duration_ = detail::take_duration(lexer);
            check_duration(spec.duration_, token.line);
            lexer.expect_punct(";");
        } else if (keyword == "spec") {
            const Token path = lexer.take();
            if (path.kind != TokKind::String) {
                throw CampaignParseError(path.line,
                                         "expected a quoted spec file path");
            }
            spec.spec_file_ = path.text;
            lexer.expect_punct(";");
        } else if (keyword == "weather") {
            spec.weathers_ = parse_axis_values<Weather>(lexer, [&](const Token& t) {
                Weather value{};
                const Token checked = ident_value(t);
                if (!weather_from_string(checked.text, value)) {
                    throw CampaignParseError(checked.line, "unknown weather '" +
                                                               checked.text + "'");
                }
                return value;
            });
        } else if (keyword == "fault") {
            spec.faults_ = parse_axis_values<Fault>(lexer, [&](const Token& t) {
                Fault value{};
                const Token checked = ident_value(t);
                if (!fault_from_string(checked.text, value)) {
                    throw CampaignParseError(checked.line, "unknown fault '" +
                                                               checked.text + "'");
                }
                return value;
            });
        } else if (keyword == "policy") {
            spec.policies_ =
                parse_axis_values<PolicyKind>(lexer, [&](const Token& t) {
                    PolicyKind value{};
                    const Token checked = ident_value(t);
                    if (!policy_from_string(checked.text, value)) {
                        throw CampaignParseError(
                            checked.line, "unknown policy '" + checked.text + "'");
                    }
                    return value;
                });
        } else if (keyword == "topology") {
            spec.topologies_ =
                parse_axis_values<Topology>(lexer, [&](const Token& t) {
                    Topology value{};
                    const Token checked = ident_value(t);
                    if (!topology_from_string(checked.text, value)) {
                        throw CampaignParseError(
                            checked.line, "unknown topology '" + checked.text + "'");
                    }
                    return value;
                });
        } else if (keyword == "domains") {
            spec.domains_ = parse_axis_values<std::size_t>(
                lexer, [&](const Token& t) {
                    const Token checked = count_value(t);
                    const auto count =
                        static_cast<std::size_t>(std::stoull(checked.text));
                    check_domains(count, checked.line);
                    return count;
                });
        } else if (keyword == "seeds") {
            spec.seeds_.lo = lexer.take_number("a seed range low bound");
            lexer.expect_punct("..");
            spec.seeds_.hi = lexer.take_number("a seed range high bound");
            lexer.expect_punct(";");
        } else if (keyword == "learned") {
            parse_learned(lexer, token.line, spec.learned_warmup_,
                          spec.learned_no_metrics_);
            lexer.expect_punct(";");
        } else if (keyword == "mesh_range") {
            spec.mesh_range_m_ = lexer.take_number("a radio range in meters");
            lexer.expect_punct(";");
        } else if (keyword == "mesh_ttl") {
            spec.mesh_ttl_ = lexer.take_number("a beacon TTL");
            lexer.expect_punct(";");
        } else {
            throw CampaignParseError(token.line, "unknown campaign axis '" +
                                                     keyword + "'");
        }
    }
    const Token tail = lexer.take();
    if (tail.kind != TokKind::End) {
        throw CampaignParseError(tail.line, "trailing input after the campaign "
                                            "block: '" +
                                                tail.text + "'");
    }
    return spec;
}

} // namespace sa::campaign
