#include "campaign/driver.hpp"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <map>
#include <set>
#include <utility>

#include <sys/wait.h>
#include <unistd.h>

#include "campaign/runner.hpp"
#include "util/assert.hpp"
#include "util/string_util.hpp"

namespace sa::campaign {
namespace {

/// Write the whole buffer (cell blocks are far below PIPE_BUF, but be
/// correct anyway). Returns false on a broken pipe (worker died early).
bool write_all(int fd, const std::string& text) {
    std::size_t done = 0;
    while (done < text.size()) {
        const ssize_t n = ::write(fd, text.data() + done, text.size() - done);
        if (n <= 0) {
            return false;
        }
        done += static_cast<std::size_t>(n);
    }
    return true;
}

std::string read_all(int fd) {
    std::string out;
    char buf[4096];
    while (true) {
        const ssize_t n = ::read(fd, buf, sizeof buf);
        if (n <= 0) {
            break;
        }
        out.append(buf, static_cast<std::size_t>(n));
    }
    return out;
}

/// The last non-empty line that looks like a verdict object.
std::string last_json_line(const std::string& text) {
    std::size_t end = text.size();
    while (end > 0) {
        std::size_t start = text.rfind('\n', end - 1);
        start = (start == std::string::npos) ? 0 : start + 1;
        const std::string line = text.substr(start, end - start);
        if (!line.empty() && line.front() == '{') {
            return line;
        }
        if (start == 0) {
            break;
        }
        end = start - 1;
    }
    return {};
}

/// One in-flight worker process.
struct Worker {
    pid_t pid = -1;
    int out_fd = -1;
    std::size_t index = 0;
};

CellResult make_result(const CellConfig& cell, std::string verdict_json) {
    CellResult result;
    result.cell = cell;
    result.status = json_string_field(verdict_json, "status");
    result.reason = json_string_field(verdict_json, "reason");
    result.signal = static_cast<int>(json_int_field(verdict_json, "signal", 0));
    result.verdict_json = std::move(verdict_json);
    return result;
}

} // namespace

std::string CellResult::signature() const {
    if (status == "crash") {
        return format("crash signal=%d", signal);
    }
    return status + " reason=" + reason;
}

CampaignDriver::CampaignDriver(DriverOptions options)
    : options_(std::move(options)) {
    SA_REQUIRE(options_.jobs >= 1, "the driver needs at least one job slot");
    if (!options_.worker_exe.empty()) {
        // A worker that aborts before draining stdin must not take the
        // driver down with SIGPIPE; write_all() reports the failure instead.
        std::signal(SIGPIPE, SIG_IGN);
    }
}

CellResult CampaignDriver::run_single(const CellConfig& cell) {
    if (options_.worker_exe.empty()) {
        SA_REQUIRE(!cell_may_crash_process(cell),
                   "crash cells need worker-process mode (in-process mode "
                   "would take the driver down)");
        return make_result(cell, run_cell(cell).json());
    }

    int in_pipe[2];
    int out_pipe[2];
    SA_REQUIRE(::pipe(in_pipe) == 0 && ::pipe(out_pipe) == 0,
               "cannot create worker pipes");
    const pid_t pid = ::fork();
    SA_REQUIRE(pid >= 0, "cannot fork a campaign worker");
    if (pid == 0) {
        ::dup2(in_pipe[0], STDIN_FILENO);
        ::dup2(out_pipe[1], STDOUT_FILENO);
        ::close(in_pipe[0]);
        ::close(in_pipe[1]);
        ::close(out_pipe[0]);
        ::close(out_pipe[1]);
        ::execl(options_.worker_exe.c_str(), options_.worker_exe.c_str(),
                "cell", "-", static_cast<char*>(nullptr));
        ::_exit(127);
    }
    ::close(in_pipe[0]);
    ::close(out_pipe[1]);
    (void)write_all(in_pipe[1], cell.str());
    ::close(in_pipe[1]);

    int status = 0;
    ::waitpid(pid, &status, 0);
    const std::string output = read_all(out_pipe[0]);
    ::close(out_pipe[0]);

    if (WIFSIGNALED(status)) {
        return make_result(cell, CellVerdict::crash(WTERMSIG(status)).json());
    }
    const std::string line = last_json_line(output);
    if (line.empty() || WEXITSTATUS(status) != 0) {
        return make_result(
            cell, CellVerdict::worker_error(
                      format("worker exited with status %d and no verdict",
                             WEXITSTATUS(status)))
                      .json());
    }
    return make_result(cell, line);
}

CorpusEntry CampaignDriver::shrink(const CellResult& failure,
                                   std::uint64_t seed_floor) {
    const std::string signature = failure.signature();
    CellConfig current = failure.cell;
    std::string current_json = failure.verdict_json;

    const auto try_reset = [&](CellConfig candidate) {
        if (candidate == current) {
            return;
        }
        CellResult replay = run_single(candidate);
        if (replay.signature() == signature) {
            current = std::move(candidate);
            current_json = std::move(replay.verdict_json);
        }
    };

    // Axis-dropping order: partitioning first (never part of the verdict),
    // then environment, then size, then the seed toward the range floor.
    CellConfig candidate = current;
    candidate.domains = 1;
    try_reset(candidate);
    candidate = current;
    candidate.topology = Topology::DualBus;
    try_reset(candidate);
    candidate = current;
    candidate.weather = Weather::Clear;
    try_reset(candidate);
    candidate = current;
    candidate.policy = PolicyKind::Steady;
    try_reset(candidate);
    candidate = current;
    candidate.vehicles = 2;
    try_reset(candidate);
    candidate = current;
    candidate.spec_file.clear();
    try_reset(candidate);
    candidate = current;
    candidate.seed = seed_floor;
    try_reset(candidate);

    CorpusEntry entry;
    entry.cell = current;
    entry.status = failure.status;
    entry.reason = failure.reason;
    entry.signal = failure.signal;
    entry.fingerprint = fingerprint_hex(fnv1a64(current_json));
    return entry;
}

CampaignReport CampaignDriver::run(const CampaignSpec& spec) {
    const std::vector<CellConfig> cells = spec.expand();
    const bool needs_workers =
        std::any_of(cells.begin(), cells.end(),
                    [](const CellConfig& cell) { return cell_may_crash_process(cell); });
    SA_REQUIRE(!needs_workers || !options_.worker_exe.empty(),
               "the matrix contains crash cells; run with a worker executable");

    const auto start = std::chrono::steady_clock::now();
    const auto in_budget = [&] {
        if (options_.budget_seconds == 0) {
            return true;
        }
        const auto elapsed = std::chrono::steady_clock::now() - start;
        return elapsed < std::chrono::seconds(options_.budget_seconds);
    };

    CampaignReport report;
    report.campaign = spec.name();
    report.cells = cells.size();
    std::map<std::size_t, CellResult> by_index;

    if (options_.worker_exe.empty()) {
        std::size_t index = 0;
        for (; index < cells.size() && in_budget(); ++index) {
            by_index.emplace(index, run_single(cells[index]));
        }
        report.skipped = cells.size() - index;
    } else {
        std::map<pid_t, Worker> running;
        std::size_t next = 0;
        const auto launch = [&](std::size_t index) {
            int in_pipe[2];
            int out_pipe[2];
            SA_REQUIRE(::pipe(in_pipe) == 0 && ::pipe(out_pipe) == 0,
                       "cannot create worker pipes");
            const pid_t pid = ::fork();
            SA_REQUIRE(pid >= 0, "cannot fork a campaign worker");
            if (pid == 0) {
                ::dup2(in_pipe[0], STDIN_FILENO);
                ::dup2(out_pipe[1], STDOUT_FILENO);
                ::close(in_pipe[0]);
                ::close(in_pipe[1]);
                ::close(out_pipe[0]);
                ::close(out_pipe[1]);
                for (const auto& [other_pid, other] : running) {
                    ::close(other.out_fd);
                }
                ::execl(options_.worker_exe.c_str(),
                        options_.worker_exe.c_str(), "cell", "-",
                        static_cast<char*>(nullptr));
                ::_exit(127);
            }
            ::close(in_pipe[0]);
            ::close(out_pipe[1]);
            (void)write_all(in_pipe[1], cells[index].str());
            ::close(in_pipe[1]);
            running.emplace(pid, Worker{pid, out_pipe[0], index});
        };

        while (next < cells.size() || !running.empty()) {
            while (next < cells.size() && running.size() < options_.jobs &&
                   in_budget()) {
                launch(next++);
            }
            if (running.empty()) {
                break; // budget expired with nothing in flight
            }
            int status = 0;
            const pid_t pid = ::waitpid(-1, &status, 0);
            const auto it = running.find(pid);
            if (it == running.end()) {
                continue;
            }
            const Worker worker = it->second;
            running.erase(it);
            const std::string output = read_all(worker.out_fd);
            ::close(worker.out_fd);
            const CellConfig& cell = cells[worker.index];
            if (WIFSIGNALED(status)) {
                by_index.emplace(worker.index,
                                 make_result(cell, CellVerdict::crash(
                                                       WTERMSIG(status))
                                                       .json()));
            } else {
                const std::string line = last_json_line(output);
                if (line.empty() || WEXITSTATUS(status) != 0) {
                    by_index.emplace(
                        worker.index,
                        make_result(cell,
                                    CellVerdict::worker_error(
                                        format("worker exited with status %d "
                                               "and no verdict",
                                               WEXITSTATUS(status)))
                                        .json()));
                } else {
                    by_index.emplace(worker.index, make_result(cell, line));
                }
            }
        }
        report.skipped = cells.size() - by_index.size();
    }

    // Aggregate in cell-index order: the report is deterministic in the
    // verdicts alone, not in worker completion order.
    std::set<std::string> known(options_.known_signatures.begin(),
                                options_.known_signatures.end());
    std::set<std::string> seen_new;
    for (auto& [index, result] : by_index) {
        report.executed++;
        if (result.status == "ok") {
            report.ok++;
        } else if (result.status == "crash") {
            report.crashes++;
        } else {
            report.violations++;
        }
        report.total_jobs += static_cast<std::uint64_t>(
            json_int_field(result.verdict_json, "total_jobs"));
        report.total_misses += static_cast<std::uint64_t>(
            json_int_field(result.verdict_json, "total_misses"));
        report.total_anomalies += static_cast<std::uint64_t>(
            json_int_field(result.verdict_json, "total_anomalies"));
        report.total_maneuvers += static_cast<std::uint64_t>(
            json_int_field(result.verdict_json, "total_maneuvers"));
        report.worst_p99_ns = std::max(
            report.worst_p99_ns,
            json_int_field(result.verdict_json, "p99_ns", -1));
        if (result.failed()) {
            const std::string signature = result.signature();
            if (known.contains(signature)) {
                report.known_failures++;
            } else if (seen_new.insert(signature).second) {
                if (options_.shrink) {
                    report.new_entries.push_back(
                        shrink(result, spec.seed_range().lo));
                } else {
                    CorpusEntry entry;
                    entry.cell = result.cell;
                    entry.status = result.status;
                    entry.reason = result.reason;
                    entry.signal = result.signal;
                    entry.fingerprint =
                        fingerprint_hex(fnv1a64(result.verdict_json));
                    report.new_entries.push_back(std::move(entry));
                }
            }
        }
        report.results.push_back(std::move(result));
    }
    return report;
}

std::string CampaignReport::json() const {
    std::string out = "{\"version\":1";
    out += ",\"campaign\":\"" + campaign + "\"";
    out += format(",\"cells\":%llu", static_cast<unsigned long long>(cells));
    out += format(",\"executed\":%llu",
                  static_cast<unsigned long long>(executed));
    out += format(",\"skipped\":%llu", static_cast<unsigned long long>(skipped));
    out += format(",\"ok\":%llu", static_cast<unsigned long long>(ok));
    out += format(",\"violations\":%llu",
                  static_cast<unsigned long long>(violations));
    out += format(",\"crashes\":%llu", static_cast<unsigned long long>(crashes));
    out += format(",\"known_failures\":%llu",
                  static_cast<unsigned long long>(known_failures));
    out += ",\"new_failures\":[";
    for (std::size_t i = 0; i < new_entries.size(); ++i) {
        const CorpusEntry& entry = new_entries[i];
        if (i > 0) {
            out += ",";
        }
        out += "{\"cell\":\"" + entry.cell.id() + "\"";
        out += ",\"status\":\"" + entry.status + "\"";
        out += ",\"reason\":\"" + entry.reason + "\"";
        out += format(",\"signal\":%d", entry.signal);
        out += ",\"fingerprint\":\"" + entry.fingerprint + "\"";
        out += ",\"file\":\"" + entry.suggested_filename() + "\"}";
    }
    out += "]";
    out += format(",\"totals\":{\"total_jobs\":%llu",
                  static_cast<unsigned long long>(total_jobs));
    out += format(",\"total_misses\":%llu",
                  static_cast<unsigned long long>(total_misses));
    out += format(",\"total_anomalies\":%llu",
                  static_cast<unsigned long long>(total_anomalies));
    out += format(",\"total_maneuvers\":%llu}",
                  static_cast<unsigned long long>(total_maneuvers));
    out += format(",\"worst_p99_ns\":%lld}",
                  static_cast<long long>(worst_p99_ns));
    return out;
}

std::string CampaignReport::str() const {
    std::string out = "campaign '" + campaign + "': ";
    out += format("%llu cells, %llu executed (%llu skipped)\n",
                  static_cast<unsigned long long>(cells),
                  static_cast<unsigned long long>(executed),
                  static_cast<unsigned long long>(skipped));
    out += format("  ok %llu · violations %llu · crashes %llu · known %llu\n",
                  static_cast<unsigned long long>(ok),
                  static_cast<unsigned long long>(violations),
                  static_cast<unsigned long long>(crashes),
                  static_cast<unsigned long long>(known_failures));
    out += format("  totals: jobs %llu, misses %llu, anomalies %llu, "
                  "maneuvers %llu, worst p99 %lld ns\n",
                  static_cast<unsigned long long>(total_jobs),
                  static_cast<unsigned long long>(total_misses),
                  static_cast<unsigned long long>(total_anomalies),
                  static_cast<unsigned long long>(total_maneuvers),
                  static_cast<long long>(worst_p99_ns));
    if (new_entries.empty()) {
        out += "  no new failures\n";
    } else {
        out += format("  NEW FAILURES: %llu\n",
                      static_cast<unsigned long long>(new_entries.size()));
        for (const CorpusEntry& entry : new_entries) {
            out += "    " + entry.signature() + "\n";
            out += "      minimal cell: " + entry.cell.id() + "\n";
        }
    }
    return out;
}

} // namespace sa::campaign
