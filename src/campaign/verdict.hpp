#pragma once
// Per-cell verdicts: everything one campaign cell observably produced,
// rendered as a single schema-stable JSON line. The verdict is the unit of
// determinism — replaying a cell with the same seed must reproduce the JSON
// byte-for-byte (and therefore its FNV-1a fingerprint), across worker
// processes AND domain counts, which is why the domain count and raw
// executed-event totals are deliberately NOT part of the verdict (they
// describe the partitioning, not the simulated system).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sa::campaign {

/// Per-vehicle slice of a verdict (counters + follow-skill level + gateway
/// forwarding stats).
struct VehicleVerdict {
    std::string name;
    std::uint64_t jobs = 0;
    std::uint64_t misses = 0;
    std::uint64_t anomalies = 0;
    std::uint64_t problems_handled = 0;
    std::uint64_t problems_resolved = 0;
    double follow_level = -1.0; ///< follow-skill level; -1 when no graph
    std::uint64_t gw_forwarded = 0;
    std::uint64_t gw_dropped = 0;
};

/// Object-frame latency across the gateway (sense-bus TX to act-bus TX),
/// nearest-rank percentiles in nanoseconds; -1 when no pairs were observed.
struct LatencySummary {
    std::uint64_t count = 0;
    std::int64_t p50_ns = -1;
    std::int64_t p90_ns = -1;
    std::int64_t p99_ns = -1;
    std::int64_t max_ns = -1;
};

/// The outcome of one campaign cell.
struct CellVerdict {
    /// "ok", "violation" (a contract violation or exception surfaced from
    /// the run) or "crash" (synthesized by the driver when a worker process
    /// died; never produced in-process).
    std::string status = "ok";
    std::string reason; ///< violation message / crash description
    int signal = 0;     ///< terminating signal of a crashed worker
    std::int64_t at_ns = 0; ///< simulation progress at report time

    std::vector<VehicleVerdict> vehicles;
    bool platoon_formed = false;
    std::vector<std::string> members;
    std::vector<std::string> detached;
    std::vector<std::string> maneuvers; ///< ManeuverRecord::str() history
    LatencySummary latency;

    /// Synthesized verdict for a worker that terminated abnormally.
    [[nodiscard]] static CellVerdict crash(int signal);
    /// Synthesized verdict for a worker that exited without a verdict line.
    [[nodiscard]] static CellVerdict worker_error(std::string reason);

    /// One line, schema version 1, fixed key order, doubles at %.6f — the
    /// byte-stable form the fingerprint and the determinism property hash.
    [[nodiscard]] std::string json() const;
};

/// FNV-1a 64-bit hash (the corpus fingerprint function).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view text) noexcept;

/// 16-digit lowercase hex rendering of a fingerprint.
[[nodiscard]] std::string fingerprint_hex(std::uint64_t fingerprint);

/// Extract the string value of `"key":"..."` from a verdict JSON line
/// (JSON-unescaped). Returns an empty string when the key is absent.
[[nodiscard]] std::string json_string_field(const std::string& json,
                                            const std::string& key);

/// Extract the integer value of `"key":N`. Returns `fallback` when absent.
[[nodiscard]] std::int64_t json_int_field(const std::string& json,
                                          const std::string& key,
                                          std::int64_t fallback = 0);

} // namespace sa::campaign
