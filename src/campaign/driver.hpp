#pragma once
// The campaign driver: expands a CampaignSpec, fans the cells across worker
// processes (fork/exec of the self-invoking sa_campaign CLI — one crashing
// cell kills its worker, never the driver), aggregates the per-cell verdicts
// into a schema-stable report, and shrinks every new failure into a minimal
// corpus reproducer. An in-process mode (worker_exe empty) runs cells on the
// driver's own thread for tests and replay of non-crash entries.

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/campaign_spec.hpp"
#include "campaign/corpus.hpp"
#include "campaign/verdict.hpp"

namespace sa::campaign {

struct DriverOptions {
    /// Concurrent worker processes (in-process mode ignores this).
    std::size_t jobs = 4;
    /// Worker executable (fork/exec'd as `<worker_exe> cell -`); empty runs
    /// every cell in-process — which REQUIREs a matrix without Crash cells.
    std::string worker_exe;
    /// Shrink new failures before recording them (drop matrix axes while
    /// the failure signature persists).
    bool shrink = true;
    /// Wall-clock budget in seconds; 0 = run the whole matrix. When the
    /// budget expires, remaining cells are skipped (and counted).
    std::uint64_t budget_seconds = 0;
    /// Failure signatures already covered by the committed corpus: matching
    /// failures count as known, everything else becomes a new reproducer.
    std::vector<std::string> known_signatures;
};

/// One executed cell: the config plus the verdict's canonical JSON line
/// (byte-stable; the corpus fingerprint hashes exactly this).
struct CellResult {
    CellConfig cell;
    std::string verdict_json;
    std::string status;
    std::string reason;
    int signal = 0;

    [[nodiscard]] bool failed() const noexcept { return status != "ok"; }
    [[nodiscard]] std::string signature() const;
};

/// Aggregated campaign outcome. Deterministic given the per-cell verdicts:
/// results are ordered by cell index regardless of completion order.
struct CampaignReport {
    std::string campaign;
    std::uint64_t cells = 0;    ///< matrix size
    std::uint64_t executed = 0; ///< cells actually run
    std::uint64_t skipped = 0;  ///< cells dropped by the wall-clock budget
    std::uint64_t ok = 0;
    std::uint64_t violations = 0;
    std::uint64_t crashes = 0;
    std::uint64_t known_failures = 0; ///< failures matching the corpus
    std::vector<CellResult> results;  ///< every executed cell, by index
    /// One shrunk reproducer per NEW failure signature (first occurrence).
    std::vector<CorpusEntry> new_entries;
    /// Totals summed over every executed cell's verdict.
    std::uint64_t total_jobs = 0;
    std::uint64_t total_misses = 0;
    std::uint64_t total_anomalies = 0;
    std::uint64_t total_maneuvers = 0;
    std::int64_t worst_p99_ns = -1; ///< max per-cell p99 latency

    [[nodiscard]] bool has_new_failures() const noexcept {
        return !new_entries.empty();
    }
    /// Schema-stable JSON report (version 1).
    [[nodiscard]] std::string json() const;
    /// Human summary (one screen).
    [[nodiscard]] std::string str() const;
};

class CampaignDriver {
public:
    explicit CampaignDriver(DriverOptions options);

    /// Expand and run the whole matrix. REQUIREs worker-process mode when
    /// the matrix contains Crash cells.
    [[nodiscard]] CampaignReport run(const CampaignSpec& spec);

    /// Run one cell (worker process or in-process per the options) —
    /// the building block replay and shrink share with run().
    [[nodiscard]] CellResult run_single(const CellConfig& cell);

    /// Shrink a failing cell: reset matrix axes one at a time (domains,
    /// topology, weather, policy, vehicles, spec, seed toward `seed_floor`)
    /// keeping each reset only while the failure signature persists.
    /// Returns the corpus entry of the minimal cell.
    [[nodiscard]] CorpusEntry shrink(const CellResult& failure,
                                     std::uint64_t seed_floor);

private:
    DriverOptions options_;
};

} // namespace sa::campaign
