#pragma once
// sa::campaign — deterministic scenario-campaign descriptions. A campaign is
// a parameterized matrix over the canonical platoon scenario template:
// weather and fault injections × maneuver policies × topologies × domain
// counts × platoon sizes × a seed range, declared in a compact text form
// (parsed like skills::SkillGraphSpec) so campaigns are data, not
// recompiles. expand() enumerates the matrix into CellConfigs in a fixed
// nested-loop order; every cell is fully described by its own text block
// (CellConfig::str()/parse() round-trip), which is what the worker protocol
// and the failing-seed corpus exchange.
//
// Campaign grammar (comments: // to end of line; statements ';'-terminated):
//
//   campaign <name> {
//     template platoon;             // scenario template (only "platoon")
//     vehicles <n> [<n> ...];       // axis: platoon sizes, each in [2, 8]
//     duration <n><unit>;           // simulated time per cell (ns/us/ms/s)
//     spec "<path>";                // optional skill-graph spec file
//     weather <w> [<w> ...];        // axis: clear fog rain winter
//     fault <f> [<f> ...];          // axis: none fog_blind v2v_blackout
//                                   //       storm overrun sensor_drift
//                                   //       misuse crash
//     policy <p> [<p> ...];         // axis: steady cautious eager
//     topology <t> [<t> ...];       // axis: dual_bus bridged mesh lossy_mesh
//     domains <n> [<n> ...];        // axis: ECU domain counts, each in [1, 8]
//     seeds <lo>..<hi>;             // inclusive seed range
//     learned <n><unit> [none];     // optional: learned monitor on every
//                                   // vehicle, with this warm-up; "none"
//                                   // disables metric auto-resolution
//     mesh_range <n>;               // optional: radio range in meters for
//                                   // mesh topologies (0 = template default)
//     mesh_ttl <n>;                 // optional: announcement beacon TTL for
//                                   // mesh topologies (0 = template default)
//   }
//
// A cell block uses the same statements with singular values plus
// `campaign <name>;` and `seed <n>;`:
//
//   cell { campaign smoke; template platoon; vehicles 3; duration 800ms;
//          weather fog; fault misuse; policy steady; topology dual_bus;
//          domains 2; seed 7; }

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace sa::campaign {

/// Thrown by CampaignSpec/CellConfig/corpus parsing on malformed text.
class CampaignParseError : public std::runtime_error {
public:
    CampaignParseError(int line, const std::string& message);
    [[nodiscard]] int line() const noexcept { return line_; }

private:
    int line_;
};

/// Weather axis: applied to *every* vehicle as capability-quality downgrades
/// (radar / v2v_link source levels) at duration/4 — the preset vehicles have
/// no closed driving loop, so weather acts where the maneuver engine looks.
enum class Weather { Clear, Fog, Rain, Winter };

/// Fault axis: injected on the second vehicle ("beta") at duration/2.
/// SensorDrift is a slow stepwise radar-capability decay that never crosses
/// a maneuver threshold — the axis only matters to cells with a learned
/// monitor. Misuse and Crash are harness probes: Misuse raises a
/// deterministic ContractViolation inside a script (exercising violation
/// capture), Crash calls abort() (exercising worker-process isolation).
enum class Fault {
    None, FogBlind, V2vBlackout, Storm, Overrun, SensorDrift, Misuse, Crash
};

/// Maneuver-policy axis: three ManeuverPolicy presets (thresholds and
/// check periods) — see campaign::maneuver_policy_for().
enum class PolicyKind { Steady, Cautious, Eager };

/// Topology axis: the dual-bus zonal preset alone, with a scenario-level
/// backbone bridge forwarding object frames from the first vehicle's sense
/// bus into the second vehicle's sense bus, or with a multi-hop V2V mesh
/// (range-limited v2v::Medium + a MeshStack per vehicle). Mesh uses a clean
/// radio (loss only from range/fading); LossyMesh adds a base loss floor.
enum class Topology { DualBus, Bridged, Mesh, LossyMesh };

/// True for topologies that put a V2V mesh under the platoon.
[[nodiscard]] bool topology_is_mesh(Topology topology) noexcept;

[[nodiscard]] const char* to_string(Weather weather) noexcept;
[[nodiscard]] const char* to_string(Fault fault) noexcept;
[[nodiscard]] const char* to_string(PolicyKind policy) noexcept;
[[nodiscard]] const char* to_string(Topology topology) noexcept;
[[nodiscard]] bool weather_from_string(const std::string& text, Weather& out);
[[nodiscard]] bool fault_from_string(const std::string& text, Fault& out);
[[nodiscard]] bool policy_from_string(const std::string& text, PolicyKind& out);
[[nodiscard]] bool topology_from_string(const std::string& text, Topology& out);

/// True for fault axes that probe the harness itself rather than the
/// modelled system (Misuse throws, Crash aborts the worker process).
[[nodiscard]] bool fault_is_harness_probe(Fault fault) noexcept;

/// Render a duration with the largest exact unit ("400ms", "250us", "2s").
[[nodiscard]] std::string duration_str(sim::Duration duration);

/// One fully instantiated campaign cell. Everything a run needs is here;
/// str() serializes the canonical `cell { ... }` block and parse() reads it
/// back (the worker protocol and corpus entries exchange exactly this).
struct CellConfig {
    std::string campaign = "adhoc";
    std::string scenario_template = "platoon";
    std::size_t vehicles = 3;
    sim::Duration duration = sim::Duration::ms(400);
    std::string spec_file; ///< empty: the builtin platoon_follow spec
    Weather weather = Weather::Clear;
    Fault fault = Fault::None;
    PolicyKind policy = PolicyKind::Steady;
    Topology topology = Topology::DualBus;
    std::size_t domains = 1;
    std::uint64_t seed = 1;
    /// Learned monitor on every vehicle when positive (zero = off). Only
    /// serialized when enabled, so pre-existing cell blocks stay
    /// byte-identical.
    sim::Duration learned_warmup = sim::Duration::zero();
    /// Disable metric auto-resolution (`learned ... none;` — a deliberately
    /// broken configuration surfaced by lint rule LRN001).
    bool learned_no_metrics = false;
    /// Radio range in meters for mesh topologies (0 = template default).
    /// Only serialized when non-zero, so pre-existing cells stay identical.
    std::uint64_t mesh_range_m = 0;
    /// Announcement beacon TTL for mesh topologies (0 = template default).
    std::uint64_t mesh_ttl = 0;

    bool operator==(const CellConfig&) const = default;

    /// One-line identity, e.g. "smoke vehicles=3 duration=800ms weather=fog
    /// fault=misuse policy=steady topology=dual_bus domains=2 seed=7".
    [[nodiscard]] std::string id() const;
    /// Canonical multi-line `cell { ... }` block; parse(str()) round-trips.
    [[nodiscard]] std::string str() const;
    /// Parse exactly one `cell { ... }` block.
    [[nodiscard]] static CellConfig parse(const std::string& text);
};

/// Inclusive seed range of a campaign ("seeds 1..16;").
struct SeedRange {
    std::uint64_t lo = 1;
    std::uint64_t hi = 1;

    [[nodiscard]] std::uint64_t count() const noexcept {
        return hi >= lo ? hi - lo + 1 : 0;
    }
};

/// A parsed (or programmatically built) campaign matrix.
class CampaignSpec {
public:
    CampaignSpec() = default;
    explicit CampaignSpec(std::string name);

    /// Parse exactly one `campaign <name> { ... }` block.
    [[nodiscard]] static CampaignSpec parse(const std::string& text);

    // --- builder-style declaration ------------------------------------------
    CampaignSpec& scenario_template(std::string name);
    CampaignSpec& vehicles(std::vector<std::size_t> counts);
    CampaignSpec& duration(sim::Duration duration);
    CampaignSpec& spec_file(std::string path);
    CampaignSpec& weathers(std::vector<Weather> values);
    CampaignSpec& faults(std::vector<Fault> values);
    CampaignSpec& policies(std::vector<PolicyKind> values);
    CampaignSpec& topologies(std::vector<Topology> values);
    CampaignSpec& domains(std::vector<std::size_t> counts);
    CampaignSpec& seeds(std::uint64_t lo, std::uint64_t hi);
    /// Learned monitor on every vehicle of every cell (zero warm-up = off).
    CampaignSpec& learned(sim::Duration warmup, bool no_metrics = false);
    /// Radio range / beacon TTL for mesh-topology cells (0 = defaults).
    CampaignSpec& mesh_range(std::uint64_t range_m);
    CampaignSpec& mesh_ttl(std::uint64_t ttl);

    // --- introspection ------------------------------------------------------
    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] const std::string& scenario_template() const noexcept {
        return template_;
    }
    [[nodiscard]] const std::vector<std::size_t>& vehicles() const noexcept {
        return vehicles_;
    }
    [[nodiscard]] sim::Duration duration() const noexcept { return duration_; }
    [[nodiscard]] const std::string& spec_file() const noexcept { return spec_file_; }
    [[nodiscard]] const std::vector<Weather>& weathers() const noexcept {
        return weathers_;
    }
    [[nodiscard]] const std::vector<Fault>& faults() const noexcept { return faults_; }
    [[nodiscard]] const std::vector<PolicyKind>& policies() const noexcept {
        return policies_;
    }
    [[nodiscard]] const std::vector<Topology>& topologies() const noexcept {
        return topologies_;
    }
    [[nodiscard]] const std::vector<std::size_t>& domains() const noexcept {
        return domains_;
    }
    [[nodiscard]] SeedRange seed_range() const noexcept { return seeds_; }
    [[nodiscard]] sim::Duration learned_warmup() const noexcept {
        return learned_warmup_;
    }
    [[nodiscard]] bool learned_no_metrics() const noexcept {
        return learned_no_metrics_;
    }
    [[nodiscard]] std::uint64_t mesh_range() const noexcept {
        return mesh_range_m_;
    }
    [[nodiscard]] std::uint64_t mesh_ttl() const noexcept { return mesh_ttl_; }

    /// Matrix size: the product of every axis (0 when the seed range is
    /// empty — lint flags that as CMP002).
    [[nodiscard]] std::uint64_t cell_count() const noexcept;

    /// Enumerate the matrix in the fixed nested-loop order weather → fault →
    /// policy → topology → domains → vehicles → seed (seed innermost), so
    /// cell indices are stable across runs and machines.
    [[nodiscard]] std::vector<CellConfig> expand() const;

    /// Serialize to the campaign grammar; parse(str()) round-trips.
    [[nodiscard]] std::string str() const;

private:
    std::string name_ = "adhoc";
    std::string template_ = "platoon";
    std::vector<std::size_t> vehicles_{3};
    sim::Duration duration_ = sim::Duration::ms(400);
    std::string spec_file_;
    std::vector<Weather> weathers_{Weather::Clear};
    std::vector<Fault> faults_{Fault::None};
    std::vector<PolicyKind> policies_{PolicyKind::Steady};
    std::vector<Topology> topologies_{Topology::DualBus};
    std::vector<std::size_t> domains_{1};
    SeedRange seeds_{};
    sim::Duration learned_warmup_ = sim::Duration::zero();
    bool learned_no_metrics_ = false;
    std::uint64_t mesh_range_m_ = 0;
    std::uint64_t mesh_ttl_ = 0;
};

} // namespace sa::campaign
