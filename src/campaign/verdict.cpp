#include "campaign/verdict.hpp"

#include <utility>

#include "util/string_util.hpp"

namespace sa::campaign {
namespace {

std::string json_escape(const std::string& text) {
    std::string out;
    out.reserve(text.size() + 8);
    for (const char c : text) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                out += format("\\u%04x", static_cast<int>(c));
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string json_unescape(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (text[i] != '\\' || i + 1 >= text.size()) {
            out += text[i];
            continue;
        }
        ++i;
        switch (text[i]) {
        case 'n':
            out += '\n';
            break;
        case 'r':
            out += '\r';
            break;
        case 't':
            out += '\t';
            break;
        case 'u':
            if (i + 4 < text.size()) {
                const int code = std::stoi(text.substr(i + 1, 4), nullptr, 16);
                out += static_cast<char>(code);
                i += 4;
            }
            break;
        default:
            out += text[i];
        }
    }
    return out;
}

std::string string_list_json(const std::vector<std::string>& values) {
    std::string out = "[";
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i > 0) {
            out += ",";
        }
        out += "\"" + json_escape(values[i]) + "\"";
    }
    out += "]";
    return out;
}

} // namespace

CellVerdict CellVerdict::crash(int signal) {
    CellVerdict verdict;
    verdict.status = "crash";
    verdict.signal = signal;
    verdict.reason = format("worker terminated by signal %d", signal);
    return verdict;
}

CellVerdict CellVerdict::worker_error(std::string reason) {
    CellVerdict verdict;
    verdict.status = "crash";
    verdict.signal = 0;
    verdict.reason = std::move(reason);
    return verdict;
}

std::string CellVerdict::json() const {
    std::string out = "{\"version\":1";
    out += ",\"status\":\"" + json_escape(status) + "\"";
    out += ",\"reason\":\"" + json_escape(reason) + "\"";
    out += format(",\"signal\":%d", signal);
    out += format(",\"at_ns\":%lld", static_cast<long long>(at_ns));
    out += ",\"vehicles\":[";
    for (std::size_t i = 0; i < vehicles.size(); ++i) {
        const VehicleVerdict& v = vehicles[i];
        if (i > 0) {
            out += ",";
        }
        out += "{\"name\":\"" + json_escape(v.name) + "\"";
        out += format(",\"jobs\":%llu", static_cast<unsigned long long>(v.jobs));
        out += format(",\"misses\":%llu",
                      static_cast<unsigned long long>(v.misses));
        out += format(",\"anomalies\":%llu",
                      static_cast<unsigned long long>(v.anomalies));
        out += format(",\"handled\":%llu",
                      static_cast<unsigned long long>(v.problems_handled));
        out += format(",\"resolved\":%llu",
                      static_cast<unsigned long long>(v.problems_resolved));
        out += format(",\"follow\":%.6f", v.follow_level);
        out += format(",\"gw_fwd\":%llu",
                      static_cast<unsigned long long>(v.gw_forwarded));
        out += format(",\"gw_drop\":%llu}",
                      static_cast<unsigned long long>(v.gw_dropped));
    }
    out += "]";
    out += ",\"platoon\":{\"formed\":";
    out += platoon_formed ? "true" : "false";
    out += ",\"members\":" + string_list_json(members);
    out += ",\"detached\":" + string_list_json(detached);
    out += ",\"maneuvers\":" + string_list_json(maneuvers);
    out += "}";
    out += format(",\"latency\":{\"count\":%llu",
                  static_cast<unsigned long long>(latency.count));
    out += format(",\"p50_ns\":%lld", static_cast<long long>(latency.p50_ns));
    out += format(",\"p90_ns\":%lld", static_cast<long long>(latency.p90_ns));
    out += format(",\"p99_ns\":%lld", static_cast<long long>(latency.p99_ns));
    out += format(",\"max_ns\":%lld}", static_cast<long long>(latency.max_ns));
    std::uint64_t total_jobs = 0;
    std::uint64_t total_misses = 0;
    std::uint64_t total_anomalies = 0;
    std::uint64_t total_handled = 0;
    std::uint64_t total_resolved = 0;
    for (const VehicleVerdict& v : vehicles) {
        total_jobs += v.jobs;
        total_misses += v.misses;
        total_anomalies += v.anomalies;
        total_handled += v.problems_handled;
        total_resolved += v.problems_resolved;
    }
    out += format(",\"totals\":{\"total_jobs\":%llu",
                  static_cast<unsigned long long>(total_jobs));
    out += format(",\"total_misses\":%llu",
                  static_cast<unsigned long long>(total_misses));
    out += format(",\"total_anomalies\":%llu",
                  static_cast<unsigned long long>(total_anomalies));
    out += format(",\"total_handled\":%llu",
                  static_cast<unsigned long long>(total_handled));
    out += format(",\"total_resolved\":%llu",
                  static_cast<unsigned long long>(total_resolved));
    out += format(",\"total_maneuvers\":%llu",
                  static_cast<unsigned long long>(maneuvers.size()));
    out += format(",\"total_detached\":%llu}",
                  static_cast<unsigned long long>(detached.size()));
    out += "}";
    return out;
}

std::uint64_t fnv1a64(std::string_view text) noexcept {
    std::uint64_t hash = 14695981039346656037ULL;
    for (const char c : text) {
        hash ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
        hash *= 1099511628211ULL;
    }
    return hash;
}

std::string fingerprint_hex(std::uint64_t fingerprint) {
    return format("%016llx", static_cast<unsigned long long>(fingerprint));
}

std::string json_string_field(const std::string& json, const std::string& key) {
    const std::string needle = "\"" + key + "\":\"";
    const std::size_t start = json.find(needle);
    if (start == std::string::npos) {
        return {};
    }
    std::size_t pos = start + needle.size();
    std::string raw;
    while (pos < json.size() && json[pos] != '"') {
        if (json[pos] == '\\' && pos + 1 < json.size()) {
            raw += json[pos];
            ++pos;
        }
        raw += json[pos];
        ++pos;
    }
    return json_unescape(raw);
}

std::int64_t json_int_field(const std::string& json, const std::string& key,
                            std::int64_t fallback) {
    const std::string needle = "\"" + key + "\":";
    const std::size_t start = json.find(needle);
    if (start == std::string::npos) {
        return fallback;
    }
    std::size_t pos = start + needle.size();
    bool negative = false;
    if (pos < json.size() && json[pos] == '-') {
        negative = true;
        ++pos;
    }
    std::int64_t value = 0;
    bool any = false;
    while (pos < json.size() && json[pos] >= '0' && json[pos] <= '9') {
        value = value * 10 + (json[pos] - '0');
        ++pos;
        any = true;
    }
    if (!any) {
        return fallback;
    }
    return negative ? -value : value;
}

} // namespace sa::campaign
