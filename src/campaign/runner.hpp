#pragma once
// Cell execution: turn one CellConfig into a composed Scenario (the
// canonical platoon_follow preset under the cell's weather/fault/policy/
// topology axes), run it for the cell's duration, and distil the outcome
// into a CellVerdict. Everything here is deterministic in the cell alone:
// two processes running the same cell produce byte-identical verdict JSON,
// and so do runs at different domain counts (the verdict deliberately
// omits partitioning detail).

#include <string>
#include <vector>

#include "campaign/campaign_spec.hpp"
#include "campaign/verdict.hpp"
#include "platoon/platoon.hpp"
#include "scenario/scenario_builder.hpp"

namespace sa::campaign {

/// Vehicle names of a campaign cell, in convoy/declaration order
/// ("alpha", "beta", ... — CellConfig::vehicles picks a prefix, [2, 8]).
[[nodiscard]] std::vector<std::string> cell_vehicle_names(std::size_t vehicles);

/// The ManeuverPolicy preset behind a PolicyKind axis value. Check periods
/// are off-grid primes (247/103/251 ms) so policy evaluation never collides
/// with the preset's periodic tasks at shared timestamps.
[[nodiscard]] platoon::ManeuverPolicy maneuver_policy_for(PolicyKind kind);

/// Declare the cell's full scenario on `builder` (vehicles, trust,
/// candidates, maneuver engine, weather/fault scripts, bridge topology).
/// `builder` must have been constructed with the cell's seed. Throws
/// CampaignParseError when the cell names a spec file that cannot be read
/// or parsed.
void declare_cell_scenario(scenario::ScenarioBuilder& builder,
                           const CellConfig& cell);

/// True when running this cell in-process could take the process down
/// (the Crash harness probe) — the driver refuses such cells outside
/// worker-process mode.
[[nodiscard]] bool cell_may_crash_process(const CellConfig& cell) noexcept;

/// Build and run one cell, capturing violations as a "violation" verdict
/// (with the partial scenario report) instead of propagating. Never
/// returns status "crash" — that verdict is synthesized by the driver when
/// a *worker process* dies.
[[nodiscard]] CellVerdict run_cell(const CellConfig& cell);

} // namespace sa::campaign
