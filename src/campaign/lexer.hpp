#pragma once
// Internal token stream shared by the campaign-grammar parsers
// (campaign_spec.cpp, corpus.cpp). Mirrors the lexer style of
// skills/skill_graph_spec.cpp but keeps '.' out of numbers so seed ranges
// ("1..16") lex as Number '..' Number.

#include <cctype>
#include <cstdint>
#include <string>

#include "campaign/campaign_spec.hpp"

namespace sa::campaign::detail {

enum class TokKind { Ident, Number, String, Punct, End };

struct Token {
    TokKind kind = TokKind::End;
    std::string text;
    int line = 0;
};

class Lexer {
public:
    explicit Lexer(const std::string& text) : text_(text) { advance(); }

    [[nodiscard]] const Token& peek() const noexcept { return current_; }

    Token take() {
        Token token = current_;
        advance();
        return token;
    }

    /// Take a token and require it to be the punctuation `punct`.
    Token expect_punct(const std::string& punct) {
        Token token = take();
        if (token.kind != TokKind::Punct || token.text != punct) {
            throw CampaignParseError(token.line, "expected '" + punct + "'" +
                                                     describe(token));
        }
        return token;
    }

    /// Take a token and require it to be the identifier `ident`.
    Token expect_ident(const std::string& ident) {
        Token token = take();
        if (token.kind != TokKind::Ident || token.text != ident) {
            throw CampaignParseError(token.line,
                                     "expected '" + ident + "'" + describe(token));
        }
        return token;
    }

    /// Take a token and require an identifier (any); returns its text.
    std::string take_ident(const char* what) {
        Token token = take();
        if (token.kind != TokKind::Ident) {
            throw CampaignParseError(token.line, "expected " + std::string(what) +
                                                     describe(token));
        }
        return token.text;
    }

    /// Take a token and require an unsigned number; returns its value.
    std::uint64_t take_number(const char* what) {
        Token token = take();
        if (token.kind != TokKind::Number) {
            throw CampaignParseError(token.line, "expected " + std::string(what) +
                                                     describe(token));
        }
        return std::stoull(token.text);
    }

private:
    static std::string describe(const Token& token) {
        if (token.kind == TokKind::End) {
            return ", got end of input";
        }
        return ", got '" + token.text + "'";
    }

    void advance() {
        skip_space_and_comments();
        current_.line = line_;
        if (pos_ >= text_.size()) {
            current_ = Token{TokKind::End, "", line_};
            return;
        }
        const char c = text_[pos_];
        if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
            const std::size_t start = pos_;
            while (pos_ < text_.size() &&
                   (std::isalnum(static_cast<unsigned char>(text_[pos_])) != 0 ||
                    text_[pos_] == '_')) {
                ++pos_;
            }
            current_ = Token{TokKind::Ident, text_.substr(start, pos_ - start), line_};
            return;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
            const std::size_t start = pos_;
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
                ++pos_;
            }
            current_ = Token{TokKind::Number, text_.substr(start, pos_ - start),
                             line_};
            return;
        }
        if (c == '"') {
            const std::size_t start = ++pos_;
            while (pos_ < text_.size() && text_[pos_] != '"' && text_[pos_] != '\n') {
                ++pos_;
            }
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                throw CampaignParseError(line_, "unterminated string literal");
            }
            current_ = Token{TokKind::String, text_.substr(start, pos_ - start),
                             line_};
            ++pos_;
            return;
        }
        if (c == '.' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '.') {
            pos_ += 2;
            current_ = Token{TokKind::Punct, "..", line_};
            return;
        }
        ++pos_;
        current_ = Token{TokKind::Punct, std::string(1, c), line_};
    }

    void skip_space_and_comments() {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '\n') {
                ++line_;
                ++pos_;
            } else if (std::isspace(static_cast<unsigned char>(c)) != 0) {
                ++pos_;
            } else if (c == '/' && pos_ + 1 < text_.size() &&
                       text_[pos_ + 1] == '/') {
                while (pos_ < text_.size() && text_[pos_] != '\n') {
                    ++pos_;
                }
            } else {
                break;
            }
        }
    }

    const std::string& text_;
    std::size_t pos_ = 0;
    int line_ = 1;
    Token current_;
};

/// Parse "<number><unit>" where the unit identifier is ns/us/ms/s.
[[nodiscard]] sim::Duration take_duration(Lexer& lexer);

} // namespace sa::campaign::detail
