#include "campaign/runner.hpp"

#include <cstdlib>
#include <fstream>
#include <iterator>
#include <memory>
#include <sstream>
#include <utility>

#include "learn/anomaly_model_monitor.hpp"
#include "scenario/presets.hpp"
#include "scenario/scenario.hpp"
#include "sim/trace.hpp"
#include "skills/acc_graph_factory.hpp"
#include "skills/capability_registry.hpp"
#include "skills/skill_graph_spec.hpp"
#include "util/assert.hpp"
#include "util/stats.hpp"
#include "util/string_util.hpp"

namespace sa::campaign {
namespace {

// Convoy-ordered vehicle names; CellConfig::vehicles ∈ [2, 8] picks a prefix.
const char* const kVehicleNames[] = {"alpha", "beta",    "gamma", "delta",
                                     "echo",  "foxtrot", "golf",  "hotel"};

/// Weather = capability-quality downgrades applied to every vehicle: the
/// preset vehicles have no closed driving loop, so weather acts on the
/// source levels the maneuver engine keys on (radar, V2V link).
void apply_weather(scenario::Scenario& scenario,
                   const std::vector<std::string>& names, Weather weather) {
    double radar = 1.0;
    double v2v = 1.0;
    switch (weather) {
    case Weather::Clear:
        return;
    case Weather::Fog:
        radar = 0.35;
        break;
    case Weather::Rain:
        radar = 0.6;
        v2v = 0.8;
        break;
    case Weather::Winter:
        radar = 0.5;
        v2v = 0.6;
        break;
    }
    for (const std::string& name : names) {
        auto& abilities = scenario.vehicle(name).abilities();
        abilities.set_source_level(skills::acc::kRadar, radar);
        abilities.set_source_level(skills::caps::kV2vLink, v2v);
        abilities.propagate();
    }
}

/// Fault injection on the cell's fault target (the second vehicle).
void apply_fault(scenario::Scenario& scenario,
                 const std::vector<std::string>& names, Fault fault) {
    const std::string& target = names[1];
    switch (fault) {
    case Fault::None:
        return;
    case Fault::FogBlind: {
        auto& abilities = scenario.vehicle(target).abilities();
        abilities.set_source_level(skills::acc::kRadar, 0.0);
        abilities.set_source_level(skills::caps::kV2vLink, 0.0);
        abilities.propagate();
        return;
    }
    case Fault::V2vBlackout:
        for (const std::string& name : names) {
            auto& abilities = scenario.vehicle(name).abilities();
            abilities.set_source_level(skills::caps::kV2vLink, 0.0);
            abilities.propagate();
        }
        return;
    case Fault::Storm: {
        auto& vehicle = scenario.vehicle(target);
        vehicle.rte().access().grant("perception", "brake_cmd");
        vehicle.faults().compromise_with_message_storm("perception", "brake_cmd",
                                                       sim::Duration::ms(2));
        return;
    }
    case Fault::Overrun:
        scenario.vehicle(target).faults().inject_wcet_violation(
            "perception", 0, sim::Duration::ms(15));
        return;
    case Fault::SensorDrift:
        // Scripted as a stepwise ramp in declare_cell_scenario (the drift
        // needs several scheduled points, not a single injection instant).
        return;
    case Fault::Misuse:
        // Deterministic SA_REQUIRE violation: probes that the harness
        // captures contract violations as verdicts, not process deaths.
        (void)scenario.vehicle(target).bus_gateway("nope");
        return;
    case Fault::Crash:
        // Harness probe for worker-process isolation. Never reached
        // in-process: the driver refuses cell_may_crash_process() cells
        // outside worker mode.
        std::abort();
    }
}

skills::SkillGraphSpec load_spec_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        throw CampaignParseError(0, "cannot read spec file '" + path + "'");
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
        return skills::SkillGraphSpec::parse(text.str());
    } catch (const std::exception& error) {
        throw CampaignParseError(0, "spec file '" + path +
                                        "': " + std::string(error.what()));
    }
}

/// Pair the k-th object-frame TX on the sense bus with the k-th on the act
/// bus — the store-and-forward gateway preserves order for a single frame
/// id, so the pairing measures the cross-gateway forwarding latency.
void collect_latency(const sim::Trace& sense, const sim::Trace& act,
                     SampleSet& samples) {
    const std::string prefix =
        format("%x [", scenario::presets::kDualBusObjectFrameId);
    std::vector<sim::Time> sent;
    for (const auto& record : sense.records()) {
        if (record.tag == "can.tx" && record.detail.starts_with(prefix)) {
            sent.push_back(record.at);
        }
    }
    std::size_t k = 0;
    for (const auto& record : act.records()) {
        if (record.tag != "can.tx" || !record.detail.starts_with(prefix)) {
            continue;
        }
        if (k >= sent.size()) {
            break;
        }
        samples.add(static_cast<double>(record.at.ns() - sent[k].ns()));
        ++k;
    }
}

void fill_verdict(CellVerdict& verdict, scenario::Scenario& scenario,
                  const std::vector<std::string>& names) {
    const scenario::ScenarioReport report = scenario.report();
    verdict.at_ns = report.at.ns();
    SampleSet latency;
    for (const std::string& name : names) {
        const scenario::VehicleReport& slice = report.vehicle(name);
        auto& vehicle = scenario.vehicle(name);
        VehicleVerdict row;
        row.name = name;
        row.jobs = slice.jobs_completed;
        row.misses = slice.deadline_misses;
        row.anomalies = slice.anomalies;
        row.problems_handled = slice.problems_handled;
        row.problems_resolved = slice.problems_resolved;
        const std::string& root = vehicle.root_skill();
        if (!root.empty()) {
            row.follow_level = vehicle.abilities().level(root);
        }
        if (vehicle.has_bus_gateway("gw")) {
            row.gw_forwarded = vehicle.bus_gateway("gw").frames_forwarded();
            row.gw_dropped = vehicle.bus_gateway("gw").frames_dropped();
        }
        verdict.vehicles.push_back(std::move(row));
        collect_latency(vehicle.rte().can_bus("can_sense").trace(),
                        vehicle.rte().can_bus("can_act").trace(), latency);
    }
    if (scenario.has_platoon()) {
        verdict.platoon_formed = scenario.platoon().formed();
        verdict.members = scenario.platoon().member_names();
        for (const auto& member : scenario.detached_members()) {
            verdict.detached.push_back(member.id);
        }
        for (const auto& record : scenario.platoon().history()) {
            verdict.maneuvers.push_back(record.str());
        }
    }
    if (latency.count() > 0) {
        verdict.latency.count = latency.count();
        verdict.latency.p50_ns = static_cast<std::int64_t>(latency.percentile(50.0));
        verdict.latency.p90_ns = static_cast<std::int64_t>(latency.percentile(90.0));
        verdict.latency.p99_ns = static_cast<std::int64_t>(latency.percentile(99.0));
        verdict.latency.max_ns = static_cast<std::int64_t>(latency.max());
    }
}

} // namespace

std::vector<std::string> cell_vehicle_names(std::size_t vehicles) {
    SA_REQUIRE(vehicles >= 2 && vehicles <= 8,
               "campaign cells support 2..8 vehicles");
    return std::vector<std::string>(kVehicleNames, kVehicleNames + vehicles);
}

platoon::ManeuverPolicy maneuver_policy_for(PolicyKind kind) {
    platoon::ManeuverPolicy policy;
    switch (kind) {
    case PolicyKind::Steady:
        policy.leave_below = 0.5;
        policy.split_below = 0.15;
        policy.join_below = 0.0;
        policy.check_period = sim::Duration::ms(247);
        break;
    case PolicyKind::Cautious:
        policy.leave_below = 0.65;
        policy.split_below = 0.3;
        policy.join_below = 0.0;
        policy.check_period = sim::Duration::ms(103);
        break;
    case PolicyKind::Eager:
        policy.leave_below = 0.4;
        policy.split_below = 0.1;
        policy.join_below = 0.55;
        policy.check_period = sim::Duration::ms(251);
        break;
    }
    return policy;
}

bool cell_may_crash_process(const CellConfig& cell) noexcept {
    return cell.fault == Fault::Crash;
}

void declare_cell_scenario(scenario::ScenarioBuilder& builder,
                           const CellConfig& cell) {
    SA_REQUIRE(cell.scenario_template == "platoon",
               "unknown campaign scenario template");
    const std::vector<std::string> names = cell_vehicle_names(cell.vehicles);
    std::unique_ptr<skills::SkillGraphSpec> spec;
    if (!cell.spec_file.empty()) {
        spec = std::make_unique<skills::SkillGraphSpec>(
            load_spec_file(cell.spec_file));
    }
    builder.domains(cell.domains);
    builder.duration_hint(cell.duration);
    for (const std::string& name : names) {
        scenario::presets::declare_platoon_follow_vehicle(builder, name);
        if (spec) {
            builder.vehicle(name).skill_graph(*spec);
        }
        if (cell.learned_warmup.count_ns() > 0) {
            learn::LearnedMonitorConfig learned;
            learned.warmup = cell.learned_warmup;
            learned.auto_metrics = !cell.learned_no_metrics;
            learned.seed = cell.seed;
            builder.vehicle(name).learned_monitor(learned);
        }
        builder.trust(name, 14).platoon_candidate({name, 0.9, 24.0, 10.0, false});
    }
    builder.platoon_maneuvers(maneuver_policy_for(cell.policy));
    if (cell.topology == Topology::Bridged) {
        scenario::BridgeSpec bridge;
        bridge.name = "backbone";
        bridge.forward_latency = sim::Duration::us(150);
        bridge.routes.push_back({names[0], "can_sense", names[1], "can_sense",
                                 scenario::presets::kDualBusObjectFrameId,
                                 0x7F0});
        builder.bridge(std::move(bridge));
    }
    if (topology_is_mesh(cell.topology)) {
        // Convoy spacing 120 m with a 150 m default range: only adjacent
        // vehicles hear each other directly, so any farther coordination
        // must relay through the mesh. LossyMesh adds a base loss floor on
        // top of the linear range fading.
        v2v::MediumConfig medium;
        medium.loss_probability =
            cell.topology == Topology::LossyMesh ? 0.10 : 0.0;
        medium.latency = sim::Duration::ms(20);
        medium.range_m = cell.mesh_range_m > 0
                             ? static_cast<double>(cell.mesh_range_m)
                             : 150.0;
        medium.fading = v2v::Fading::Linear;
        medium.seed = cell.seed;
        builder.v2v(medium);
        for (std::size_t i = 0; i < names.size(); ++i) {
            mesh::MeshConfig stack;
            stack.beacon_ttl =
                cell.mesh_ttl > 0 ? static_cast<std::uint32_t>(cell.mesh_ttl)
                                  : 8;
            // Staggered off-grid phases: no two beacons share a timestamp
            // with each other or the preset's periodic tasks.
            stack.beacon_phase =
                sim::Duration::us(913 * static_cast<std::int64_t>(i) + 11);
            builder.vehicle(names[i]).mesh(stack,
                                           120.0 * static_cast<double>(i));
        }
    }
    // Off-grid script offsets (+11/13/17 us): never collide with the
    // preset's periodic tasks at shared timestamps, so script-vs-task
    // ordering cannot diverge between domain counts.
    const std::int64_t total = cell.duration.count_ns();
    const auto form_at = sim::Duration::ns(total / 8 + 11'000);
    const auto weather_at = sim::Duration::ns(total / 4 + 13'000);
    const auto fault_at = sim::Duration::ns(total / 2 + 17'000);
    builder.at(form_at,
               [](scenario::Scenario& s) { (void)s.form_managed_platoon(); });
    if (cell.weather != Weather::Clear) {
        builder.at(weather_at, [names, weather = cell.weather](
                                   scenario::Scenario& s) {
            apply_weather(s, names, weather);
        });
    }
    if (cell.fault == Fault::SensorDrift) {
        // Slow stepwise radar-capability decay on the fault target. Every
        // level stays above all maneuver-policy thresholds (Cautious leaves
        // below 0.65), so nothing hand-written reacts — only a learned
        // monitor watching skill levels sees the joint state walk away from
        // its baseline.
        static constexpr double kDriftLevels[] = {0.94, 0.88, 0.82, 0.76};
        for (std::size_t step = 0; step < std::size(kDriftLevels); ++step) {
            const auto step_at = sim::Duration::ns(
                total / 2 + (total / 16) * static_cast<std::int64_t>(step) +
                17'000);
            builder.at(step_at, [target = names[1], level = kDriftLevels[step]](
                                    scenario::Scenario& s) {
                auto& abilities = s.vehicle(target).abilities();
                abilities.set_source_level(skills::acc::kRadar, level);
                abilities.propagate();
            });
        }
    } else if (cell.fault != Fault::None) {
        builder.at(fault_at, [names, fault = cell.fault](scenario::Scenario& s) {
            apply_fault(s, names, fault);
        });
    }
}

CellVerdict run_cell(const CellConfig& cell) {
    CellVerdict verdict;
    scenario::ScenarioBuilder builder(cell.seed);
    declare_cell_scenario(builder, cell);
    const std::vector<std::string> names = cell_vehicle_names(cell.vehicles);
    std::unique_ptr<scenario::Scenario> scenario;
    try {
        scenario = builder.build();
        scenario->run(cell.duration, cell.domains);
    } catch (const ContractViolation& violation) {
        verdict.status = "violation";
        verdict.reason = violation.message();
    } catch (const std::exception& error) {
        verdict.status = "violation";
        verdict.reason = error.what();
    }
    if (scenario) {
        fill_verdict(verdict, *scenario, names);
    }
    return verdict;
}

} // namespace sa::campaign
