// Library version, exposed so that consumers (and the build-contract test)
// can verify they linked against a live sa library rather than a stub.

#pragma once

namespace sa {

// Semantic version of the sa library, e.g. "0.1.0". Never null, never empty.
const char* version() noexcept;

}  // namespace sa
