#pragma once
// Ability layer: functional self-awareness (§IV/§V). Reassesses the ability
// graph when lower layers report losses and offers graceful-degradation
// tactics ("the objective of driving can be kept operational although the
// ability to brake is only partially available by reducing the maximum
// speed and generating additional brake torque from the drive train").
//
// Tactics come from the DegradationManager; the layer converts every
// currently applicable tactic into a proposal. An optional ability-update
// hook lets the embedding system refresh source levels (e.g. brake sink
// level after containment) before planning.

#include <functional>

#include "core/layer.hpp"
#include "skills/ability_graph.hpp"
#include "skills/degradation.hpp"

namespace sa::core {

class AbilityLayer : public Layer {
public:
    AbilityLayer(skills::AbilityGraph& abilities, skills::DegradationManager& tactics,
                 std::string root_skill);

    /// Called before planning on each problem: lets the embedding system map
    /// the anomaly onto ability-graph inputs (e.g. contained rear brake =>
    /// brake_system level 0.35). The hook returns true if it updated levels.
    using AbilityUpdateHook = std::function<bool(const Problem&)>;
    void set_update_hook(AbilityUpdateHook hook) { update_hook_ = std::move(hook); }

    std::vector<Proposal> propose(const Problem& problem) override;
    [[nodiscard]] double health() const override;

    [[nodiscard]] std::uint64_t tactics_applied() const noexcept {
        return tactics_applied_;
    }

private:
    skills::AbilityGraph& abilities_;
    skills::DegradationManager& tactics_;
    std::string root_skill_;
    AbilityUpdateHook update_hook_;
    std::uint64_t tactics_applied_ = 0;
};

} // namespace sa::core
