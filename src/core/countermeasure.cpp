#include "core/countermeasure.hpp"

#include "util/string_util.hpp"

namespace sa::core {

ProposalSummary ProposalSummary::of(const Proposal& proposal) {
    return ProposalSummary{proposal.layer, proposal.action, proposal.target,
                           proposal.scope,  proposal.cost,  proposal.adequacy};
}

std::string ProposalSummary::str() const {
    return format("[%s] %s(%s) scope=%.2f cost=%.2f adequacy=%.2f", to_string(layer),
                  action.c_str(), target.c_str(), scope, cost, adequacy);
}

} // namespace sa::core
