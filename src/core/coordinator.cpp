#include "core/coordinator.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/log.hpp"
#include "util/string_util.hpp"

namespace sa::core {

CrossLayerCoordinator::CrossLayerCoordinator(sim::Simulator& simulator,
                                             CoordinatorConfig config)
    : simulator_(simulator), config_(config) {
    SA_REQUIRE(config_.max_escalations >= 0, "hop budget must be non-negative");
}

void CrossLayerCoordinator::register_layer(std::unique_ptr<Layer> layer) {
    SA_REQUIRE(layer != nullptr, "layer must not be null");
    SA_REQUIRE(!layers_.contains(layer->id()),
               std::string("layer already registered: ") + to_string(layer->id()));
    layers_[layer->id()] = std::move(layer);
}

bool CrossLayerCoordinator::has_layer(LayerId id) const { return layers_.contains(id); }

Layer& CrossLayerCoordinator::layer(LayerId id) {
    auto it = layers_.find(id);
    SA_REQUIRE(it != layers_.end(), std::string("unknown layer: ") + to_string(id));
    return *it->second;
}

void CrossLayerCoordinator::connect(monitor::MonitorManager& monitors) {
    monitors.anomalies().subscribe([this](const monitor::Anomaly& anomaly) {
        if (anomaly.severity == monitor::Severity::Info) {
            return;
        }
        (void)handle(anomaly);
    });
}

bool CrossLayerCoordinator::target_locked(const std::string& target) const {
    auto it = target_locks_.find(target);
    if (it == target_locks_.end()) {
        return false;
    }
    return simulator_.now() - it->second < config_.conflict_cooldown;
}

Decision CrossLayerCoordinator::handle(const monitor::Anomaly& anomaly) {
    ++handled_;
    Problem problem;
    problem.id = next_problem_id_++;
    problem.anomaly = anomaly;
    problem.entry = entry_layer(anomaly.domain);
    Decision decision = resolve(std::move(problem), config_.max_follow_ups);
    if (decision.resolved) {
        ++resolved_;
    }
    push_decision(decision);
    return decision;
}

void CrossLayerCoordinator::push_decision(Decision decision) {
    // The audit trail is bounded: long-running vehicles must not grow the
    // decision history without limit (kDecisionHistory).
    while (decisions_.size() >= kDecisionHistory) {
        decisions_.pop_front();
    }
    decisions_.push_back(std::move(decision));
}

Decision CrossLayerCoordinator::resolve(Problem problem, int follow_up_budget) {
    Decision decision;
    decision.problem_id = problem.id;
    decision.at = simulator_.now();
    decision.anomaly = problem.anomaly;
    decision.entry = problem.entry;

    std::optional<Proposal> chosen;

    // Walk the stack bottom-up starting at the entry layer. With cross-layer
    // coordination disabled (ablation), only the entry layer is consulted.
    const int start = static_cast<int>(problem.entry);
    const int last = config_.cross_layer_enabled
                         ? std::min(kLayerCount - 1, start + config_.max_escalations)
                         : start;
    for (int li = start; li <= last; ++li) {
        auto it = layers_.find(static_cast<LayerId>(li));
        if (it == layers_.end()) {
            continue;
        }
        problem.escalations = li - start;
        auto proposals = it->second->propose(problem);

        // Record everything considered; filter to acceptable ones.
        std::vector<Proposal> acceptable;
        for (auto& p : proposals) {
            decision.considered.push_back(ProposalSummary::of(p));
            if (p.adequacy < config_.min_adequacy) {
                continue;
            }
            if (target_locked(p.target)) {
                ++conflicts_;
                ++decision.conflicts_avoided;
                continue;
            }
            acceptable.push_back(std::move(p));
        }
        if (acceptable.empty()) {
            if (li < last) {
                ++escalations_;
            }
            continue; // escalate to the next layer
        }

        // Containment principle: minimal scope, then minimal cost, then
        // highest adequacy. Deterministic tie-break by action name.
        std::sort(acceptable.begin(), acceptable.end(),
                  [](const Proposal& a, const Proposal& b) {
                      if (a.scope != b.scope) return a.scope < b.scope;
                      if (a.cost != b.cost) return a.cost < b.cost;
                      if (a.adequacy != b.adequacy) return a.adequacy > b.adequacy;
                      return a.action < b.action;
                  });
        chosen = std::move(acceptable.front());
        decision.escalations = li - start;
        break;
    }

    if (!chosen.has_value()) {
        decision.resolved = false;
        decision.escalations = last - start;
        decision.rationale =
            format("no adequate countermeasure within hop budget (%d layer(s) consulted)",
                   last - start + 1);
        SA_LOG_WARN << "coordinator: problem " << problem.id << " ("
                    << problem.anomaly.kind << ") unresolved — " << decision.rationale;
        return decision;
    }

    // Execute and lock the target against conflicting concurrent actions.
    decision.executed = ProposalSummary::of(*chosen);
    target_locks_[chosen->target] = simulator_.now();
    if (chosen->execute) {
        chosen->execute();
    }
    decision.resolved = true;
    decision.rationale = format("picked %s at layer %s (entry %s, %d escalation(s))",
                                chosen->action.c_str(), to_string(chosen->layer),
                                to_string(problem.entry), decision.escalations);
    SA_LOG_INFO << "coordinator: problem " << problem.id << " (" << problem.anomaly.kind
                << ") -> " << decision.executed->str();

    // Consequence propagation: the chosen countermeasure may itself create a
    // problem on another layer (e.g. containment => component loss). Bounded
    // by the follow-up budget.
    if (chosen->follow_up.has_value() && follow_up_budget > 0) {
        Problem follow;
        follow.id = next_problem_id_++;
        follow.anomaly = *chosen->follow_up;
        follow.anomaly.at = simulator_.now();
        follow.entry = entry_layer(follow.anomaly.domain);
        Decision follow_decision = resolve(std::move(follow), follow_up_budget - 1);
        ++handled_;
        if (follow_decision.resolved) {
            ++resolved_;
        }
        push_decision(std::move(follow_decision));
    }

    return decision;
}

} // namespace sa::core
