#pragma once
// Objective layer: the top of the stack — it may "alter the driving
// objective of the system. An option would be to transition the system into
// a safe state, i.e. stop driving" (§V). It always has an adequate answer
// (safe stop), which is what bounds every escalation chain; cheaper
// objective changes (re-route, platooning) are offered when the embedding
// system registers them.

#include <functional>
#include <optional>

#include "core/layer.hpp"

namespace sa::core {

enum class DrivingObjective { Drive, DegradedDrive, SafeStop, Stopped };

const char* to_string(DrivingObjective objective) noexcept;

class ObjectiveLayer : public Layer {
public:
    ObjectiveLayer();

    std::vector<Proposal> propose(const Problem& problem) override;
    [[nodiscard]] double health() const override;

    [[nodiscard]] DrivingObjective objective() const noexcept { return objective_; }
    void set_objective(DrivingObjective objective) noexcept { objective_ = objective; }

    /// Optional alternative objective changes, tried before safe stop.
    struct Alternative {
        std::string name;       ///< e.g. "replan_route", "join_platoon"
        double cost = 0.5;
        /// Applicability test for the anomaly kinds this helps against.
        std::function<bool(const Problem&)> applicable;
        std::function<void()> apply;
    };
    void add_alternative(Alternative alternative);

    /// Hook invoked when safe stop is executed (vehicle-side braking etc.).
    void set_safe_stop_action(std::function<void()> action) {
        safe_stop_action_ = std::move(action);
    }

    [[nodiscard]] std::uint64_t safe_stops() const noexcept { return safe_stops_; }

private:
    DrivingObjective objective_ = DrivingObjective::Drive;
    std::vector<Alternative> alternatives_;
    std::function<void()> safe_stop_action_;
    std::uint64_t safe_stops_ = 0;
};

} // namespace sa::core
