#pragma once
// Network/security layer: containment of compromised components (§V's
// worked example — "the only viable option for the system is often to shut
// down the affected component"). Follows the containment principle: revoke
// the offending access first (smallest scope); contain the whole component
// if the anomaly is critical. Containment produces a follow-up problem
// ("component_contained") so the safety/ability layers can reassess — the
// two "fundamentally different ways" of §V.

#include "core/layer.hpp"
#include "rte/rte.hpp"

namespace sa::core {

class NetworkLayer : public Layer {
public:
    explicit NetworkLayer(rte::Rte& rte);

    std::vector<Proposal> propose(const Problem& problem) override;
    [[nodiscard]] double health() const override;

    [[nodiscard]] std::uint64_t containments() const noexcept { return containments_; }
    [[nodiscard]] std::uint64_t revocations() const noexcept { return revocations_; }

private:
    rte::Rte& rte_;
    std::uint64_t containments_ = 0;
    std::uint64_t revocations_ = 0;
};

} // namespace sa::core
