#include "core/safety_layer.hpp"

#include "monitor/anomaly_kinds.hpp"

namespace sa::core {

namespace kinds = sa::monitor::kinds;

SafetyLayer::SafetyLayer(rte::Rte& rte, model::Mcc& mcc)
    : Layer(LayerId::Safety, "safety"), rte_(rte), mcc_(mcc) {}

std::string SafetyLayer::find_partner(const std::string& component) const {
    const auto& functions = mcc_.functions();
    const model::Contract* c = functions.find(component);
    // Either direction of the redundancy declaration counts.
    if (c != nullptr && c->redundant_with.has_value()) {
        const std::string& partner = *c->redundant_with;
        if (rte_.has_component(partner) &&
            rte_.component(partner).state() == rte::ComponentState::Running) {
            return partner;
        }
    }
    for (const auto& other : functions.contracts()) {
        if (other.redundant_with.has_value() && *other.redundant_with == component &&
            rte_.has_component(other.component) &&
            rte_.component(other.component).state() == rte::ComponentState::Running) {
            return other.component;
        }
    }
    return {};
}

std::vector<Proposal> SafetyLayer::propose(const Problem& problem) {
    std::vector<Proposal> out;
    const auto& a = problem.anomaly;
    const bool component_loss = a.kind == kinds::kComponentContained ||
                                a.kind == kinds::kHeartbeatLoss ||
                                a.kind == kinds::kComponentFailed;
    if (!component_loss) {
        return out;
    }
    const std::string component = a.source;

    // Option 1: redundancy takes over (anticipated safe-guard). Adequate only
    // when a running partner exists in the committed model.
    const std::string partner = find_partner(component);
    if (!partner.empty()) {
        Proposal p;
        p.layer = id();
        p.action = "activate_redundancy";
        // The action manipulates the *partner* (promotion to primary); it
        // must not collide with the containment lock on the failed component.
        p.target = partner;
        p.scope = 0.1;
        p.cost = 0.1;
        p.adequacy = 0.95;
        p.execute = [this, partner] {
            // The partner is hot stand-by: promoting it is a bookkeeping act
            // here; the redundant service is already provided.
            ++redundancy_activations_;
        };
        out.push_back(std::move(p));
    }

    // Option 2: recovery by restart — but only for *failures*; restarting a
    // contained (compromised) component would re-open the security hole, so
    // the restart proposal is inadequate for containments.
    if (rte_.has_component(component)) {
        const auto state = rte_.component(component).state();
        Proposal p;
        p.layer = id();
        p.action = "recover_restart";
        p.target = component;
        p.scope = 0.1;
        p.cost = 0.2;
        p.adequacy = (a.kind == kinds::kComponentContained ||
                      state == rte::ComponentState::Contained)
                         ? 0.05
                         : 0.75;
        p.execute = [this, component] {
            rte_.component(component).restart();
            ++recoveries_;
        };
        out.push_back(std::move(p));
    }

    return out;
}

double SafetyLayer::health() const {
    // Fraction of safety-critical (ASIL >= C) components still running.
    auto& rte = const_cast<rte::Rte&>(rte_);
    std::size_t critical = 0;
    std::size_t running = 0;
    for (const auto& c : mcc_.functions().contracts()) {
        if (c.asil < model::Asil::C) {
            continue;
        }
        ++critical;
        if (rte.has_component(c.component) &&
            rte.component(c.component).state() == rte::ComponentState::Running) {
            ++running;
        }
    }
    return critical == 0 ? 1.0
                         : static_cast<double>(running) / static_cast<double>(critical);
}

} // namespace sa::core
