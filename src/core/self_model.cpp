#include "core/self_model.hpp"

#include <algorithm>

#include "skills/ability_graph.hpp"
#include "util/assert.hpp"
#include "util/string_util.hpp"

namespace sa::core {

double SelfSnapshot::health(LayerId layer) const {
    auto it = layer_health.find(layer);
    return it == layer_health.end() ? 1.0 : it->second;
}

std::string SelfSnapshot::str() const {
    std::string out = format("self v%llu @%s overall=%.2f",
                             static_cast<unsigned long long>(version),
                             at.str().c_str(), overall);
    for (const auto& [layer, health] : layer_health) {
        out += format(" %s=%.2f", to_string(layer), health);
    }
    if (root_ability.has_value()) {
        out += format(" ability(%s)=%.2f", root_skill.c_str(), *root_ability);
    }
    return out;
}

void SelfModel::bind_abilities(const skills::AbilityGraph& abilities,
                               std::string root_skill) {
    SA_REQUIRE(abilities.structure().has_node(root_skill),
               "bind_abilities: unknown root skill: " + root_skill);
    abilities_ = &abilities;
    root_skill_ = std::move(root_skill);
}

SelfSnapshot SelfModel::capture() {
    SelfSnapshot snap;
    snap.version = next_version_++;
    snap.at = simulator_.now();
    snap.overall = 1.0;
    for (int li = 0; li < kLayerCount; ++li) {
        const auto id = static_cast<LayerId>(li);
        if (!coordinator_.has_layer(id)) {
            continue;
        }
        const double h = std::clamp(coordinator_.layer(id).health(), 0.0, 1.0);
        snap.layer_health[id] = h;
        snap.overall = std::min(snap.overall, h);
    }
    snap.open_problems = coordinator_.problems_unresolved();
    if (abilities_ != nullptr) {
        snap.root_skill = root_skill_;
        snap.root_ability = abilities_->level(root_skill_);
    }
    if (history_.size() == kHistoryCapacity) {
        history_.pop_front();
    }
    history_.push_back(snap);
    published_.emit(history_.back());
    return history_.back();
}

void SelfModel::start(sim::Duration period) {
    if (periodic_id_ != 0) {
        return;
    }
    periodic_id_ = simulator_.schedule_periodic(period, [this] { (void)capture(); });
}

void SelfModel::stop() {
    if (periodic_id_ != 0) {
        simulator_.cancel_periodic(periodic_id_);
        periodic_id_ = 0;
    }
}

const SelfSnapshot& SelfModel::latest() const {
    SA_REQUIRE(!history_.empty(), "no snapshot captured yet");
    return history_.back();
}

} // namespace sa::core
