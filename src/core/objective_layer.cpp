#include "core/objective_layer.hpp"

#include "util/assert.hpp"

namespace sa::core {

const char* to_string(DrivingObjective objective) noexcept {
    switch (objective) {
    case DrivingObjective::Drive: return "drive";
    case DrivingObjective::DegradedDrive: return "degraded_drive";
    case DrivingObjective::SafeStop: return "safe_stop";
    case DrivingObjective::Stopped: return "stopped";
    }
    return "?";
}

ObjectiveLayer::ObjectiveLayer() : Layer(LayerId::Objective, "objective") {}

void ObjectiveLayer::add_alternative(Alternative alternative) {
    SA_REQUIRE(static_cast<bool>(alternative.apply), "alternative needs an apply action");
    SA_REQUIRE(static_cast<bool>(alternative.applicable),
               "alternative needs an applicability test");
    alternatives_.push_back(std::move(alternative));
}

std::vector<Proposal> ObjectiveLayer::propose(const Problem& problem) {
    std::vector<Proposal> out;

    // Cheaper objective changes first (registered by the embedding system).
    for (const auto& alt : alternatives_) {
        if (!alt.applicable(problem)) {
            continue;
        }
        Proposal p;
        p.layer = id();
        p.action = alt.name;
        p.target = "objective";
        p.scope = 0.8;
        p.cost = alt.cost;
        p.adequacy = 0.8;
        auto apply = alt.apply;
        p.execute = [this, apply] {
            objective_ = DrivingObjective::DegradedDrive;
            apply();
        };
        out.push_back(std::move(p));
    }

    // The unconditional last resort: transition to a safe state. Maximum
    // scope and cost, but always adequate — this is what guarantees every
    // escalation chain terminates with a decision.
    {
        Proposal p;
        p.layer = id();
        p.action = "safe_stop";
        p.target = "objective";
        p.scope = 1.0;
        p.cost = 1.0;
        p.adequacy = 1.0;
        p.execute = [this] {
            objective_ = DrivingObjective::SafeStop;
            ++safe_stops_;
            if (safe_stop_action_) {
                safe_stop_action_();
            }
        };
        out.push_back(std::move(p));
    }
    return out;
}

double ObjectiveLayer::health() const {
    switch (objective_) {
    case DrivingObjective::Drive: return 1.0;
    case DrivingObjective::DegradedDrive: return 0.7;
    case DrivingObjective::SafeStop: return 0.3;
    case DrivingObjective::Stopped: return 0.2;
    }
    return 0.0;
}

} // namespace sa::core
