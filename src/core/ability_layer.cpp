#include "core/ability_layer.hpp"

#include <algorithm>

namespace sa::core {

AbilityLayer::AbilityLayer(skills::AbilityGraph& abilities,
                           skills::DegradationManager& tactics, std::string root_skill)
    : Layer(LayerId::Ability, "ability"),
      abilities_(abilities),
      tactics_(tactics),
      root_skill_(std::move(root_skill)) {}

std::vector<Proposal> AbilityLayer::propose(const Problem& problem) {
    std::vector<Proposal> out;

    // Map the anomaly onto ability inputs, then re-propagate.
    if (update_hook_) {
        (void)update_hook_(problem);
    }
    abilities_.propagate();

    // Every applicable tactic becomes a proposal. Cost scales with the
    // declared tactic cost; scope is the share of the graph below nominal.
    const auto plan = tactics_.plan(abilities_);
    if (plan.empty()) {
        return out;
    }
    std::size_t below_nominal = 0;
    const auto snapshot = abilities_.snapshot();
    for (const auto& [node, level] : snapshot) {
        if (skills::classify(level, abilities_.thresholds()) !=
            skills::AbilityLevel::Nominal) {
            ++below_nominal;
        }
    }
    const double scope_base =
        snapshot.empty() ? 0.3
                         : 0.2 + 0.5 * static_cast<double>(below_nominal) /
                                     static_cast<double>(snapshot.size());

    for (const skills::Tactic* t : plan) {
        Proposal p;
        p.layer = id();
        p.action = "tactic:" + t->name;
        p.target = t->target_skill;
        p.scope = std::min(1.0, scope_base);
        p.cost = std::min(1.0, 0.1 * static_cast<double>(t->cost));
        // A tactic is adequate when the root skill is still above
        // unavailable — functional compensation only works while the overall
        // function exists at all.
        const double root = abilities_.level(root_skill_);
        p.adequacy = root > abilities_.thresholds().marginal ? 0.85 : 0.25;
        p.execute = [this, t] {
            const double level = abilities_.level(t->target_skill);
            t->apply();
            tactics_.mark_fired(t->name, level);
            ++tactics_applied_;
            abilities_.propagate();
        };
        out.push_back(std::move(p));
    }
    (void)problem;
    return out;
}

double AbilityLayer::health() const { return abilities_.level(root_skill_); }

} // namespace sa::core
