#include "core/platform_layer.hpp"

#include "monitor/anomaly_kinds.hpp"

#include <algorithm>

#include "util/string_util.hpp"

namespace sa::core {

namespace kinds = sa::monitor::kinds;

PlatformLayer::PlatformLayer(rte::Rte& rte, model::Mcc& mcc, PlatformLayerConfig config)
    : Layer(LayerId::Platform, "platform"), rte_(rte), mcc_(mcc), config_(config) {}

std::string PlatformLayer::ecu_from_source(const std::string& source) const {
    // Convention: thermal monitors name signals "temp.<ecu>".
    if (starts_with(source, "temp.")) {
        return source.substr(5);
    }
    return source;
}

std::vector<Proposal> PlatformLayer::propose(const Problem& problem) {
    std::vector<Proposal> out;
    const auto& a = problem.anomaly;

    // Thermal stress: propose stepping DVFS down, but only with adequacy if
    // the timing model still holds at the reduced speed (self-awareness of
    // the consequence, not just the local fix).
    if (a.kind == kinds::kRangeViolation && starts_with(a.source, "temp.")) {
        const std::string ecu_name = ecu_from_source(a.source);
        if (rte_.has_ecu(ecu_name)) {
            rte::Ecu& ecu = rte_.ecu(ecu_name);
            const int next_level = ecu.dvfs_level() + 1;
            if (next_level < ecu.dvfs_level_count()) {
                // Self-awareness of the consequence: would the committed
                // configuration still be schedulable at the reduced speed?
                const double factor_after = ecu.dvfs_speed(next_level);
                const bool still_schedulable =
                    mcc_.revalidate_with_speed(ecu_name, factor_after);
                Proposal p;
                p.layer = id();
                p.action = "dvfs_down";
                p.target = ecu_name;
                p.scope = 0.15; ///< one ECU slows down
                p.cost = 0.2;
                p.adequacy = still_schedulable ? 0.9 : 0.3;
                p.execute = [this, &ecu, next_level] {
                    ecu.set_dvfs_level(next_level);
                    ++dvfs_actions_;
                };
                if (!still_schedulable) {
                    // Escalation hint: the ability layer should shed load /
                    // reduce function performance instead.
                    p.follow_up = monitor::Anomaly{
                        a.at, monitor::Domain::Sensor, monitor::Severity::Warning,
                        ecu_name, "platform_performance_reduced",
                        "DVFS throttling would break deadlines; function-level "
                        "degradation required",
                        a.magnitude};
                }
                out.push_back(std::move(p));
            }
        }
    }

    // Execution-budget violation: restart the offending component (transient
    // fault hypothesis). Low cost, small scope.
    if (a.kind == kinds::kBudgetViolation || a.kind == kinds::kMissRatioHigh) {
        // source is "component.task" for budget violations; take the prefix.
        std::string component = a.source;
        if (auto dot = component.find('.'); dot != std::string::npos) {
            component = component.substr(0, dot);
        }
        if (rte_.has_component(component)) {
            Proposal p;
            p.layer = id();
            p.action = "restart_component";
            p.target = component;
            p.scope = 0.1;
            p.cost = 0.15;
            p.adequacy = a.kind == kinds::kBudgetViolation ? 0.7 : 0.4;
            p.execute = [this, component] {
                rte_.component(component).restart();
                ++restarts_;
            };
            out.push_back(std::move(p));
        }
    }

    return out;
}

double PlatformLayer::health() const {
    // Health from thermal headroom and deadline performance across ECUs.
    double worst = 1.0;
    for (const auto& name : rte_.ecu_names()) {
        // Safe: ecu() is non-const but rte_ is a non-const ref.
        auto& ecu = const_cast<rte::Rte&>(rte_).ecu(name);
        const double temp = ecu.thermal().temperature_c();
        const double thermal_health =
            std::clamp(1.0 - (temp - config_.recover_temp_c) /
                                 (config_.overtemp_threshold_c + 20.0 -
                                  config_.recover_temp_c),
                       0.0, 1.0);
        const auto& sched = ecu.scheduler();
        const double miss_health =
            sched.completed_jobs() == 0
                ? 1.0
                : 1.0 - std::min(1.0, 10.0 * static_cast<double>(sched.missed_deadlines()) /
                                          static_cast<double>(sched.completed_jobs()));
        worst = std::min({worst, thermal_health, miss_health});
    }
    return worst;
}

} // namespace sa::core
