#pragma once
// Vehicle self-model: the "consistent self-representation of the system"
// (§V) aggregated from all layers. Snapshots are versioned and taken
// atomically in simulation time, so consumers (decision making, HMI,
// telemetry) always see a coherent picture rather than a mix of stale and
// fresh per-layer values.

#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/coordinator.hpp"

namespace sa::skills {
class AbilityGraph;
} // namespace sa::skills

namespace sa::core {

struct SelfSnapshot {
    std::uint64_t version = 0;
    sim::Time at;
    std::map<LayerId, double> layer_health; ///< [0, 1] per registered layer
    double overall = 1.0;                   ///< min over layers
    std::uint64_t open_problems = 0;        ///< handled - resolved so far
    /// Root-skill name and ability level when the self-model is bound to an
    /// ability graph (the degradation-policy outcome in the
    /// self-representation); absent otherwise.
    std::string root_skill;
    std::optional<double> root_ability;

    [[nodiscard]] double health(LayerId layer) const;
    [[nodiscard]] std::string str() const;
};

class SelfModel {
public:
    SelfModel(sim::Simulator& simulator, CrossLayerCoordinator& coordinator)
        : simulator_(simulator), coordinator_(coordinator) {}

    /// Include the ability graph's root-skill level in every snapshot: the
    /// degradation flow (monitor alarm -> DegradationPolicy -> ability
    /// graph) becomes visible in the self-representation. `abilities` must
    /// outlive this model.
    void bind_abilities(const skills::AbilityGraph& abilities, std::string root_skill);

    /// Take a consistent snapshot now.
    SelfSnapshot capture();

    /// Capture periodically; snapshots are retained (bounded) and published.
    void start(sim::Duration period);
    void stop();

    [[nodiscard]] const SelfSnapshot& latest() const;
    [[nodiscard]] const std::deque<SelfSnapshot>& history() const noexcept {
        return history_;
    }

    sim::Signal<const SelfSnapshot&>& snapshot_taken() noexcept { return published_; }

private:
    sim::Simulator& simulator_;
    CrossLayerCoordinator& coordinator_;
    const skills::AbilityGraph* abilities_ = nullptr;
    std::string root_skill_;
    std::deque<SelfSnapshot> history_;
    std::uint64_t next_version_ = 1;
    std::uint64_t periodic_id_ = 0;
    sim::Signal<const SelfSnapshot&> published_;
    static constexpr std::size_t kHistoryCapacity = 1024;
};

} // namespace sa::core
