#pragma once
// Cross-layer coordinator — the paper's central mechanism (§V). Anomalies
// enter at their origin layer; the coordinator collects countermeasure
// proposals, picks the *lowest adequate layer with minimal scope* (contain
// an IP service rather than kill the Ethernet), executes it, and processes
// any follow-up consequences through the stack again. Escalation is bounded
// by a hop budget so problems are never "forwarded ad infinitum", and
// concurrently proposed actions on the same target are serialized to avoid
// the "conflicting decisions [that] could lead to catastrophic effects".

#include <deque>
#include <map>
#include <memory>

#include "core/countermeasure.hpp"
#include "core/layer.hpp"
#include "monitor/manager.hpp"
#include "sim/simulator.hpp"

namespace sa::core {

struct CoordinatorConfig {
    /// Minimum adequacy for a proposal to be acceptable.
    double min_adequacy = 0.5;
    /// Hop budget: max escalations per problem (including follow-ups).
    int max_escalations = kLayerCount;
    /// Max follow-up problems processed per root anomaly.
    int max_follow_ups = 4;
    /// Cooldown during which a second action on the same target is treated
    /// as a conflict and suppressed.
    sim::Duration conflict_cooldown = sim::Duration::ms(500);
    /// Ablation switch: false = only the entry layer is consulted, no
    /// escalation (the "single-layer self-awareness" baseline of the paper's
    /// argument).
    bool cross_layer_enabled = true;
};

class CrossLayerCoordinator {
public:
    CrossLayerCoordinator(sim::Simulator& simulator, CoordinatorConfig config = {});

    /// Register a layer implementation (owned). Each LayerId at most once.
    void register_layer(std::unique_ptr<Layer> layer);
    [[nodiscard]] bool has_layer(LayerId id) const;
    [[nodiscard]] Layer& layer(LayerId id);

    /// Subscribe to a monitor manager's anomaly stream; Warning and Critical
    /// anomalies are handled, Info is ignored.
    void connect(monitor::MonitorManager& monitors);

    /// Handle one anomaly synchronously; returns the (root) decision.
    Decision handle(const monitor::Anomaly& anomaly);

    // --- introspection -------------------------------------------------------
    [[nodiscard]] const std::deque<Decision>& decisions() const noexcept {
        return decisions_;
    }
    [[nodiscard]] std::uint64_t problems_handled() const noexcept { return handled_; }
    [[nodiscard]] std::uint64_t problems_resolved() const noexcept { return resolved_; }
    [[nodiscard]] std::uint64_t problems_unresolved() const noexcept {
        return handled_ - resolved_;
    }
    [[nodiscard]] std::uint64_t total_escalations() const noexcept { return escalations_; }
    [[nodiscard]] std::uint64_t conflicts_avoided() const noexcept { return conflicts_; }

    [[nodiscard]] const CoordinatorConfig& config() const noexcept { return config_; }
    void set_cross_layer_enabled(bool enabled) noexcept {
        config_.cross_layer_enabled = enabled;
    }

    /// Retained decision records; decisions() never grows beyond this.
    static constexpr std::size_t kDecisionHistory = 1024;

private:
    Decision resolve(Problem problem, int follow_up_budget);
    void push_decision(Decision decision);
    [[nodiscard]] bool target_locked(const std::string& target) const;

    sim::Simulator& simulator_;
    CoordinatorConfig config_;
    std::map<LayerId, std::unique_ptr<Layer>> layers_;
    std::deque<Decision> decisions_;
    std::map<std::string, sim::Time> target_locks_;
    std::uint64_t next_problem_id_ = 1;
    std::uint64_t handled_ = 0;
    std::uint64_t resolved_ = 0;
    std::uint64_t escalations_ = 0;
    std::uint64_t conflicts_ = 0;
};

} // namespace sa::core
