#pragma once
// Decision records of the cross-layer coordinator: which proposals were
// considered for a problem, which was executed and why. These records make
// the system's self-aware decision process auditable ("forcing the system to
// be aware of the consequences of the chosen solution", §V).

#include <optional>
#include <string>
#include <vector>

#include "core/layer.hpp"
#include "sim/time.hpp"

namespace sa::core {

/// Copyable summary of a proposal (without the action closure).
struct ProposalSummary {
    LayerId layer = LayerId::Platform;
    std::string action;
    std::string target;
    double scope = 0.0;
    double cost = 0.0;
    double adequacy = 0.0;

    [[nodiscard]] static ProposalSummary of(const Proposal& proposal);
    [[nodiscard]] std::string str() const;
};

struct Decision {
    std::uint64_t problem_id = 0;
    sim::Time at;
    monitor::Anomaly anomaly;
    LayerId entry = LayerId::Platform;
    std::vector<ProposalSummary> considered;
    std::optional<ProposalSummary> executed;
    bool resolved = false;
    int escalations = 0;
    int conflicts_avoided = 0;
    std::string rationale;
};

} // namespace sa::core
