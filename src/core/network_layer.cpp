#include "core/network_layer.hpp"

#include "monitor/anomaly_kinds.hpp"

namespace sa::core {

namespace kinds = sa::monitor::kinds;

NetworkLayer::NetworkLayer(rte::Rte& rte) : Layer(LayerId::Network, "network"), rte_(rte) {}

std::vector<Proposal> NetworkLayer::propose(const Problem& problem) {
    std::vector<Proposal> out;
    const auto& a = problem.anomaly;
    if (a.kind != kinds::kRateExcess && a.kind != kinds::kAccessProbe) {
        return out;
    }
    const std::string component = a.source; // IDS names the offending client
    if (!rte_.has_component(component)) {
        return out;
    }

    // Option 1 (smallest scope): revoke the abused access only. Adequate for
    // probing, weak against a component that is already inside (it may abuse
    // other granted services).
    {
        Proposal p;
        p.layer = id();
        p.action = "revoke_access";
        p.target = component + "/access";
        p.scope = 0.05;
        p.cost = 0.05;
        p.adequacy = a.kind == kinds::kAccessProbe ? 0.85 : 0.35;
        p.execute = [this, component] {
            rte_.access().revoke_all(component);
            ++revocations_;
        };
        out.push_back(std::move(p));
    }

    // Option 2: contain the component — stop its tasks, withdraw services.
    // Scope includes every dependent of its services; the follow-up problem
    // lets the upper layers deal with exactly that loss.
    {
        Proposal p;
        p.layer = id();
        p.action = "contain_component";
        p.target = component;
        p.scope = 0.25;
        p.cost = 0.4;
        p.adequacy = a.severity == monitor::Severity::Critical ? 0.95 : 0.6;
        p.execute = [this, component] {
            rte_.component(component).contain();
            rte_.access().revoke_all(component);
            ++containments_;
        };
        p.follow_up = monitor::Anomaly{a.at,
                                       monitor::Domain::Function,
                                       monitor::Severity::Critical,
                                       component,
                                       kinds::kComponentContained,
                                       "security containment removed " + component,
                                       1.0};
        out.push_back(std::move(p));
    }
    return out;
}

double NetworkLayer::health() const {
    // Health: fraction of components not compromised/contained.
    auto& rte = const_cast<rte::Rte&>(rte_);
    const auto names = rte.component_names();
    if (names.empty()) {
        return 1.0;
    }
    std::size_t bad = 0;
    for (const auto& name : names) {
        const auto state = rte.component(name).state();
        if (state == rte::ComponentState::Compromised ||
            state == rte::ComponentState::Contained) {
            ++bad;
        }
    }
    return 1.0 - static_cast<double>(bad) / static_cast<double>(names.size());
}

} // namespace sa::core
