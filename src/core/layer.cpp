#include "core/layer.hpp"

namespace sa::core {

const char* to_string(LayerId layer) noexcept {
    switch (layer) {
    case LayerId::Platform: return "platform";
    case LayerId::Network: return "network";
    case LayerId::Safety: return "safety";
    case LayerId::Ability: return "ability";
    case LayerId::Objective: return "objective";
    }
    return "?";
}

LayerId entry_layer(monitor::Domain domain) noexcept {
    switch (domain) {
    case monitor::Domain::Platform: return LayerId::Platform;
    case monitor::Domain::Network: return LayerId::Network;
    case monitor::Domain::Security: return LayerId::Network;
    case monitor::Domain::Function: return LayerId::Safety;
    case monitor::Domain::Sensor: return LayerId::Ability;
    }
    return LayerId::Platform;
}

} // namespace sa::core
