#pragma once
// Platform layer: reacts to hardware/software-platform anomalies. Its key
// move is DVFS (§V: temperature "may ... require voltage or frequency
// scaling to prevent permanent damage. This alone, however, does not fully
// contain the fault as the deteriorated hardware performance can still
// cause deadline misses") — therefore every throttling proposal is checked
// against the MCC's timing model first; if the configuration would become
// unschedulable at the lower speed, the platform layer lowers its adequacy
// and the problem escalates.

#include "core/layer.hpp"
#include "model/mcc.hpp"
#include "rte/rte.hpp"

namespace sa::core {

struct PlatformLayerConfig {
    double overtemp_threshold_c = 85.0; ///< matches the RangeMonitor bound
    double recover_temp_c = 70.0;
};

class PlatformLayer : public Layer {
public:
    PlatformLayer(rte::Rte& rte, model::Mcc& mcc, PlatformLayerConfig config = {});

    std::vector<Proposal> propose(const Problem& problem) override;
    [[nodiscard]] double health() const override;

    [[nodiscard]] std::uint64_t dvfs_actions() const noexcept { return dvfs_actions_; }
    [[nodiscard]] std::uint64_t restarts() const noexcept { return restarts_; }

private:
    /// "temp.<ecu>" anomaly sources name the ECU.
    [[nodiscard]] std::string ecu_from_source(const std::string& source) const;

    rte::Rte& rte_;
    model::Mcc& mcc_;
    PlatformLayerConfig config_;
    std::uint64_t dvfs_actions_ = 0;
    std::uint64_t restarts_ = 0;
};

} // namespace sa::core
