#pragma once
// Safety layer: treats component losses "as a component failure on the
// safety layer, where this effect must have been anticipated as part of the
// safety design. For instance, a safe-guard such as a redundancy concept is
// in place ... Also, recovery mechanisms such as restarting the service with
// a different software setup may count as a countermeasure" (§V).
//
// Proposals consult the MCC's model: redundancy activation is only adequate
// when the committed function model actually declares a surviving partner.

#include "core/layer.hpp"
#include "model/mcc.hpp"
#include "rte/rte.hpp"

namespace sa::core {

class SafetyLayer : public Layer {
public:
    SafetyLayer(rte::Rte& rte, model::Mcc& mcc);

    std::vector<Proposal> propose(const Problem& problem) override;
    [[nodiscard]] double health() const override;

    [[nodiscard]] std::uint64_t redundancy_activations() const noexcept {
        return redundancy_activations_;
    }
    [[nodiscard]] std::uint64_t recoveries() const noexcept { return recoveries_; }

private:
    /// Surviving redundancy partner of `component`, or empty.
    [[nodiscard]] std::string find_partner(const std::string& component) const;

    rte::Rte& rte_;
    model::Mcc& mcc_;
    std::uint64_t redundancy_activations_ = 0;
    std::uint64_t recoveries_ = 0;
};

} // namespace sa::core
