#pragma once
// Self-awareness layers (§V). A detected anomaly enters the layer stack at
// the layer owning its origin domain; each layer may propose countermeasures
// with an explicit scope/cost/adequacy so the coordinator can "identify the
// most appropriate layer to respond to detected anomalies without the need
// to anticipate the exact situation at design time".

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "monitor/metric.hpp"

namespace sa::core {

/// Layer stack, bottom-up. Escalation moves towards Objective.
enum class LayerId {
    Platform = 0,  ///< hardware/software platform (DVFS, scheduling, restart)
    Network = 1,   ///< communication + security containment
    Safety = 2,    ///< redundancy, recovery, safe-guards
    Ability = 3,   ///< skill/ability reassessment, graceful degradation
    Objective = 4, ///< driving objective (safe stop, re-route, platoon)
};

inline constexpr int kLayerCount = 5;

const char* to_string(LayerId layer) noexcept;

/// Which layer an anomaly from a given origin domain enters at.
[[nodiscard]] LayerId entry_layer(monitor::Domain domain) noexcept;

/// A problem travelling through the layer stack.
struct Problem {
    std::uint64_t id = 0;
    monitor::Anomaly anomaly;
    LayerId entry = LayerId::Platform;
    int escalations = 0; ///< hops taken so far
};

/// A countermeasure offer from one layer.
struct Proposal {
    LayerId layer = LayerId::Platform;
    std::string action; ///< machine-matchable, e.g. "contain_component"
    std::string target; ///< the resource acted upon (conflict detection key)
    double scope = 0.5;    ///< fraction of the system affected (0..1; pick small)
    double cost = 0.5;     ///< functional loss (0..1; pick small)
    double adequacy = 0.5; ///< confidence this resolves the problem (0..1)
    std::function<void()> execute;
    /// Optional follow-up the coordinator must handle after execution (e.g.
    /// containment produces a component-loss problem for the safety layer).
    std::optional<monitor::Anomaly> follow_up;
};

class Layer {
public:
    Layer(LayerId id, std::string name) : id_(id), name_(std::move(name)) {}
    virtual ~Layer() = default;

    Layer(const Layer&) = delete;
    Layer& operator=(const Layer&) = delete;

    [[nodiscard]] LayerId id() const noexcept { return id_; }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    /// Countermeasure offers for the problem (empty if not responsible).
    [[nodiscard]] virtual std::vector<Proposal> propose(const Problem& problem) = 0;

    /// Layer health in [0, 1] for the vehicle self-model.
    [[nodiscard]] virtual double health() const = 0;

private:
    LayerId id_;
    std::string name_;
};

} // namespace sa::core
