#include "version.hpp"

// SA_VERSION_STRING is injected by the build system from the CMake project
// version; the fallback covers ad-hoc compilation outside CMake.
#ifndef SA_VERSION_STRING
#define SA_VERSION_STRING "0.1.0"
#endif

namespace sa {

const char* version() noexcept { return SA_VERSION_STRING; }

}  // namespace sa
