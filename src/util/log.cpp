#include "util/log.hpp"

#include <cstdio>

namespace sa {

namespace {
LogLevel g_level = LogLevel::Warn;
Log::Sink g_sink; // empty -> stderr

void default_sink(LogLevel level, const std::string& message) {
    std::fprintf(stderr, "[%s] %s\n", Log::level_name(level), message.c_str());
}
} // namespace

void Log::set_level(LogLevel level) noexcept { g_level = level; }

LogLevel Log::level() noexcept { return g_level; }

void Log::set_sink(Sink sink) { g_sink = std::move(sink); }

void Log::write(LogLevel level, const std::string& message) {
    if (static_cast<int>(level) < static_cast<int>(g_level)) {
        return;
    }
    if (g_sink) {
        g_sink(level, message);
    } else {
        default_sink(level, message);
    }
}

const char* Log::level_name(LogLevel level) noexcept {
    switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
    }
    return "?";
}

} // namespace sa
