#pragma once
// Chunked sequence with stable element addresses and lazy storage.
//
// The third piece of the sa::util memory layer (with Pool and
// InlineCallable): a grow-only sequence for objects that hand out long-lived
// references — VirtualCanController's virtual functions, registries of
// per-entity state. Elements are placement-new'd into fixed-size chunks, so
//
//  - references/pointers to elements NEVER move (unlike std::vector), and
//  - N elements cost ceil(N / ChunkSize) chunk allocations (unlike
//    vector<unique_ptr<T>>'s one `new` per element), and
//  - an empty container owns no heap at all (unlike std::deque, which
//    allocates its map plus one chunk on default construction).
//
// Elements need not be movable or copyable — emplace_back constructs in
// place, which is what lets types with reference members live here.
// Grow-only by design: no erase/pop, indices are stable identities. clear()
// destroys elements but keeps the chunks for reuse.

#include <cstddef>
#include <iterator>
#include <memory>
#include <utility>
#include <vector>

namespace sa::util {

template <typename T, std::size_t ChunkSize = 8>
class StableVector {
    static_assert(ChunkSize > 0, "chunks must hold at least one element");

public:
    StableVector() = default;
    StableVector(const StableVector&) = delete;
    StableVector& operator=(const StableVector&) = delete;

    ~StableVector() {
        clear();
        for (T* chunk : chunks_) {
            std::allocator<T>{}.deallocate(chunk, ChunkSize);
        }
    }

    template <typename... Args>
    T& emplace_back(Args&&... args) {
        const std::size_t chunk = size_ / ChunkSize;
        if (chunk == chunks_.size()) {
            chunks_.push_back(std::allocator<T>{}.allocate(ChunkSize));
        }
        T* slot = chunks_[chunk] + size_ % ChunkSize;
        std::construct_at(slot, std::forward<Args>(args)...);
        ++size_;
        return *slot;
    }

    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

    [[nodiscard]] T& operator[](std::size_t i) noexcept {
        return chunks_[i / ChunkSize][i % ChunkSize];
    }
    [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
        return chunks_[i / ChunkSize][i % ChunkSize];
    }

    [[nodiscard]] T& back() noexcept { return (*this)[size_ - 1]; }
    [[nodiscard]] const T& back() const noexcept { return (*this)[size_ - 1]; }

    /// Destroy all elements (indices restart at 0). Chunk storage is kept,
    /// so refilling after a clear() does not allocate.
    void clear() noexcept {
        for (std::size_t i = size_; i-- > 0;) {
            std::destroy_at(&(*this)[i]);
        }
        size_ = 0;
    }

    template <bool Const>
    class Iterator {
        using Container = std::conditional_t<Const, const StableVector, StableVector>;

    public:
        using iterator_category = std::forward_iterator_tag;
        using value_type = T;
        using difference_type = std::ptrdiff_t;
        using reference = std::conditional_t<Const, const T&, T&>;
        using pointer = std::conditional_t<Const, const T*, T*>;

        Iterator() = default;
        Iterator(Container* owner, std::size_t pos) : owner_(owner), pos_(pos) {}
        reference operator*() const { return (*owner_)[pos_]; }
        pointer operator->() const { return &(*owner_)[pos_]; }
        Iterator& operator++() {
            ++pos_;
            return *this;
        }
        Iterator operator++(int) {
            Iterator old = *this;
            ++pos_;
            return old;
        }
        bool operator==(const Iterator&) const = default;

    private:
        Container* owner_ = nullptr;
        std::size_t pos_ = 0;
    };

    using iterator = Iterator<false>;
    using const_iterator = Iterator<true>;

    [[nodiscard]] iterator begin() noexcept { return {this, 0}; }
    [[nodiscard]] iterator end() noexcept { return {this, size_}; }
    [[nodiscard]] const_iterator begin() const noexcept { return {this, 0}; }
    [[nodiscard]] const_iterator end() const noexcept { return {this, size_}; }

private:
    std::vector<T*> chunks_;
    std::size_t size_ = 0;
};

} // namespace sa::util
