#pragma once
// Minimal leveled logger. Output is line-oriented and intended for example
// programs and debugging; the library itself logs sparingly (decisions of the
// MCC and the cross-layer coordinator, anomaly reports).

#include <functional>
#include <sstream>
#include <string>

namespace sa {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Global logging configuration. Not thread-safe by design: the simulation is
/// single-threaded (discrete-event), so a global sink is sufficient.
class Log {
public:
    using Sink = std::function<void(LogLevel, const std::string&)>;

    static void set_level(LogLevel level) noexcept;
    static LogLevel level() noexcept;

    /// Replace the output sink (default: stderr). Pass nullptr to restore default.
    static void set_sink(Sink sink);

    static void write(LogLevel level, const std::string& message);

    static const char* level_name(LogLevel level) noexcept;
};

namespace detail {
class LogLine {
public:
    explicit LogLine(LogLevel level) : level_(level) {}
    LogLine(const LogLine&) = delete;
    LogLine& operator=(const LogLine&) = delete;
    ~LogLine() { Log::write(level_, os_.str()); }

    template <typename T>
    LogLine& operator<<(const T& value) {
        os_ << value;
        return *this;
    }

private:
    LogLevel level_;
    std::ostringstream os_;
};
} // namespace detail

} // namespace sa

#define SA_LOG(sa_log_lvl)                                                            \
    if (static_cast<int>(sa_log_lvl) < static_cast<int>(::sa::Log::level())) {        \
    } else                                                                            \
        ::sa::detail::LogLine(sa_log_lvl)

#define SA_LOG_TRACE SA_LOG(::sa::LogLevel::Trace)
#define SA_LOG_DEBUG SA_LOG(::sa::LogLevel::Debug)
#define SA_LOG_INFO SA_LOG(::sa::LogLevel::Info)
#define SA_LOG_WARN SA_LOG(::sa::LogLevel::Warn)
#define SA_LOG_ERROR SA_LOG(::sa::LogLevel::Error)
