#pragma once
// Chunked freelist pool: fixed-size objects recycled without destruction.
//
// acquire() pops a recycled object from the free list (or carves a fresh one
// from a newly allocated chunk); release() pushes it back. Objects are
// default-constructed once, when their chunk is allocated, and NEVER
// destroyed on release — the caller resets whatever logical state it cares
// about and keeps whatever physical state it wants to reuse. That is the
// point: an EventQueue bucket released to the pool keeps its items vector's
// capacity, so re-acquiring it for the next timestamp costs nothing.
//
// release() never allocates: the free list's capacity is re-reserved to the
// total object count whenever a chunk is added, so draining a pool from a
// noexcept teardown path (EventQueue::clear, destructors) is safe.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace sa::util {

template <typename T, std::size_t ChunkSize = 64>
class Pool {
    static_assert(ChunkSize > 0, "pool chunks must hold at least one object");

public:
    Pool() = default;
    Pool(const Pool&) = delete;
    Pool& operator=(const Pool&) = delete;

    /// Hand out an object. The object's state is whatever its last user left
    /// behind (or default-constructed if fresh) — reset what you need.
    [[nodiscard]] T* acquire() {
        ++acquires_;
        if (free_.empty()) {
            grow();
        }
        T* obj = free_.back();
        free_.pop_back();
        return obj;
    }

    /// Return an object to the pool. Never allocates (capacity pre-reserved).
    void release(T* obj) noexcept { free_.push_back(obj); }

    /// Objects ever constructed (an upper bound on the concurrent high-water
    /// mark rounded up to a chunk).
    [[nodiscard]] std::size_t created() const noexcept { return created_; }
    [[nodiscard]] std::uint64_t acquires() const noexcept { return acquires_; }

    /// Lower bound on the fraction of acquire() calls served without a fresh
    /// chunk allocation: 1 - created/acquires. In steady state (bounded
    /// working set, many iterations) this tends to 1; a pool that allocates
    /// per acquire stays at 0.
    [[nodiscard]] double recycle_hit_rate() const noexcept {
        if (acquires_ == 0 || created() >= acquires_) {
            return 0.0;
        }
        return 1.0 - static_cast<double>(created()) / static_cast<double>(acquires_);
    }

private:
    void grow() {
        // Chunks double from a small start up to ChunkSize: a pool whose
        // working set stays at a handful of objects (short-lived simulation
        // worlds) pays for a few objects, not a full ChunkSize slab, while a
        // pool that really needs hundreds converges on ChunkSize slabs.
        const std::size_t count = next_chunk_;
        if (next_chunk_ < ChunkSize) {
            next_chunk_ = next_chunk_ * 2 < ChunkSize ? next_chunk_ * 2 : ChunkSize;
        }
        chunks_.push_back(std::make_unique<T[]>(count));
        T* base = chunks_.back().get();
        created_ += count;
        // Reserve for every object ever created so release() stays noexcept.
        free_.reserve(created_);
        for (std::size_t i = count; i-- > 0;) {
            free_.push_back(base + i);
        }
    }

    std::vector<std::unique_ptr<T[]>> chunks_;
    std::vector<T*> free_;
    std::size_t created_ = 0;
    std::size_t next_chunk_ = ChunkSize < 8 ? ChunkSize : 8;
    std::uint64_t acquires_ = 0;
};

} // namespace sa::util
