#pragma once
// Small string helpers shared by the contract parser and report printers.

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace sa {

/// Transparent hash for std::string-keyed unordered containers: lookups by
/// std::string_view or const char* hash directly, without materialising a
/// temporary std::string. Pair with std::equal_to<> (also transparent):
///
///   std::unordered_map<std::string, V, StringHash, std::equal_to<>> map;
///   map.find(std::string_view{...});   // no allocation
struct StringHash {
    using is_transparent = void;

    [[nodiscard]] std::size_t operator()(std::string_view text) const noexcept {
        return std::hash<std::string_view>{}(text);
    }
};

/// Split on a delimiter; empty fields are kept ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view text, char delim);

/// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

std::string to_lower(std::string_view text);

/// printf-style helper returning std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Render a duration in nanoseconds with an adaptive unit ("12.3us", "4.5ms").
std::string human_duration_ns(long long ns);

} // namespace sa
