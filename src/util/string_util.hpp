#pragma once
// Small string helpers shared by the contract parser and report printers.

#include <string>
#include <string_view>
#include <vector>

namespace sa {

/// Split on a delimiter; empty fields are kept ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view text, char delim);

/// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

std::string to_lower(std::string_view text);

/// printf-style helper returning std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Render a duration in nanoseconds with an adaptive unit ("12.3us", "4.5ms").
std::string human_duration_ns(long long ns);

} // namespace sa
