#pragma once
// Streaming statistics accumulators used by monitors, benchmarks and the
// experiment harnesses (min/max/mean/variance via Welford, plus percentile
// support through a retained-sample reservoir).

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace sa {

/// Online accumulator: O(1) per observation, numerically stable variance.
class RunningStats {
public:
    void add(double x) noexcept;
    void merge(const RunningStats& other) noexcept;
    void reset() noexcept;

    [[nodiscard]] std::size_t count() const noexcept { return n_; }
    [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
    [[nodiscard]] double mean() const noexcept;
    [[nodiscard]] double variance() const noexcept; ///< population variance
    [[nodiscard]] double stddev() const noexcept;
    [[nodiscard]] double min() const noexcept;
    [[nodiscard]] double max() const noexcept;
    [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/// Retains all samples; supports exact percentiles. Use for bounded series
/// (per-experiment latency distributions), not unbounded monitoring streams.
class SampleSet {
public:
    void add(double x);
    void clear() noexcept { samples_.clear(); sorted_ = true; }

    [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
    [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
    [[nodiscard]] double mean() const;
    [[nodiscard]] double min() const;
    [[nodiscard]] double max() const;

    /// Exact percentile by nearest-rank; p in [0, 100].
    [[nodiscard]] double percentile(double p) const;
    [[nodiscard]] double median() const { return percentile(50.0); }

    [[nodiscard]] const std::vector<double>& samples() const noexcept { return samples_; }

private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/// Fixed-bound histogram for monitoring streams where retaining samples is
/// too expensive. Out-of-range observations clamp into the edge buckets.
class Histogram {
public:
    Histogram(double lo, double hi, std::size_t buckets);

    void add(double x) noexcept;
    [[nodiscard]] std::size_t bucket_count() const noexcept { return counts_.size(); }
    [[nodiscard]] std::uint64_t bucket(std::size_t i) const;
    [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
    [[nodiscard]] double bucket_lo(std::size_t i) const;
    [[nodiscard]] double bucket_hi(std::size_t i) const;

    /// Approximate quantile via linear interpolation within the bucket.
    [[nodiscard]] double quantile(double q) const;

private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

} // namespace sa
