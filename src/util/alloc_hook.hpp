#pragma once
// Allocation-count harness: operator new/delete interposition behind a
// test-only hook.
//
// Linking semantics ARE the hook. The replacing operator new/delete live in
// alloc_hook.cpp together with every accessor declared here; sa is a static
// library, so that object file — interposition included — is linked into a
// binary only when the binary references one of these symbols. Test suites
// and benches that use the harness get counted allocation; every other
// consumer of libsa links the stock allocator, untouched.
//
// The replacements forward to std::malloc/std::free, which is exactly what
// the defaults do — so ASan/TSan (which intercept malloc) keep their full
// heap bookkeeping underneath, and the zero-alloc pins hold under
// sanitizers too. Counters are thread_local: a CountScope observes only the
// calling thread, which is what the steady-state pins want (sharded worker
// threads warm their own pools independently).

#include <cstdint>

namespace sa::util::alloc_hook {

/// True iff the interposing operators are linked into this binary. Always
/// true when callable — referencing it is what links them — but lets tests
/// assert the pull-in semantics explicitly.
[[nodiscard]] bool interposed() noexcept;

/// Enable/disable counting on the calling thread; returns the previous
/// state. Counting is off by default (the operators always run — only the
/// counters are gated), so unrelated code in a harness-linked binary pays
/// one predicted-not-taken branch per allocation and nothing else.
bool set_counting(bool enabled) noexcept;
[[nodiscard]] bool counting() noexcept;

/// Monotonic per-thread counters; advance only while counting is enabled.
[[nodiscard]] std::uint64_t thread_allocations() noexcept;
[[nodiscard]] std::uint64_t thread_deallocations() noexcept;

/// RAII counting window: enables counting on construction, restores the
/// previous state on destruction, reports the deltas seen on this thread.
/// Scopes nest — an outer scope's counts include every inner scope's.
class CountScope {
public:
    CountScope() noexcept;
    ~CountScope();
    CountScope(const CountScope&) = delete;
    CountScope& operator=(const CountScope&) = delete;

    /// operator new calls on this thread since construction.
    [[nodiscard]] std::uint64_t allocations() const noexcept;
    /// operator delete calls (non-null) on this thread since construction.
    [[nodiscard]] std::uint64_t deallocations() const noexcept;

private:
    bool previous_;
    std::uint64_t start_allocations_;
    std::uint64_t start_deallocations_;
};

} // namespace sa::util::alloc_hook
