#pragma once
// Open-addressed flat hash map from int64 keys to pointer values.
//
// Purpose-built for the EventQueue's timestamp -> bucket index (and similar
// int-keyed hot maps): linear probing over a power-of-two slot array,
// splitmix64-mixed keys, backward-shift deletion (no tombstones, so probe
// chains never rot), and nullptr as the empty-slot sentinel — values must
// never be null. Unlike unordered_map there is one flat allocation, no
// per-node malloc, and clear() keeps the slot array, so a warmed map serves
// steady-state insert/find/erase without touching the heap.

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "util/assert.hpp"

namespace sa::util {

template <typename P>
class FlatPtrMap64 {
    static_assert(std::is_pointer_v<P>, "values must be (non-null) pointers");

public:
    FlatPtrMap64() = default;

    /// The value mapped to `key`, or nullptr when absent.
    [[nodiscard]] P find(std::int64_t key) const noexcept {
        if (size_ == 0) {
            return nullptr;
        }
        std::size_t i = home(key);
        while (slots_[i].value != nullptr) {
            if (slots_[i].key == key) {
                return slots_[i].value;
            }
            i = (i + 1) & mask_;
        }
        return nullptr;
    }

    /// Insert a mapping. `key` must be absent and `value` non-null.
    void insert(std::int64_t key, P value) {
        SA_ASSERT(value != nullptr, "flat map values must be non-null");
        if ((size_ + 1) * 4 > slots_.size() * 3) {
            grow();
        }
        std::size_t i = home(key);
        while (slots_[i].value != nullptr) {
            SA_ASSERT(slots_[i].key != key, "duplicate key in flat map insert");
            i = (i + 1) & mask_;
        }
        slots_[i] = Slot{key, value};
        ++size_;
    }

    /// Remove a mapping if present (backward-shift: the probe chain behind
    /// the hole is compacted so later lookups never scan a tombstone).
    void erase(std::int64_t key) noexcept {
        if (size_ == 0) {
            return;
        }
        std::size_t i = home(key);
        while (slots_[i].value != nullptr && slots_[i].key != key) {
            i = (i + 1) & mask_;
        }
        if (slots_[i].value == nullptr) {
            return; // absent
        }
        std::size_t hole = i;
        std::size_t j = (hole + 1) & mask_;
        while (slots_[j].value != nullptr) {
            // Slot j may fill the hole iff the hole lies within j's probe
            // chain, i.e. the cyclic distance home(j)->hole does not exceed
            // home(j)->j.
            const std::size_t h = home(slots_[j].key);
            if (((j - h) & mask_) >= ((j - hole) & mask_)) {
                slots_[hole] = slots_[j];
                hole = j;
            }
            j = (j + 1) & mask_;
        }
        slots_[hole] = Slot{};
        --size_;
    }

    /// Drop every mapping, keeping the slot array's allocation.
    void clear() noexcept {
        for (Slot& slot : slots_) {
            slot = Slot{};
        }
        size_ = 0;
    }

    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
    /// Slot-array capacity (diagnostic; 0 until the first insert).
    [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

private:
    struct Slot {
        std::int64_t key = 0;
        P value = nullptr; ///< nullptr == empty
    };

    /// splitmix64 finalizer: full-avalanche mix for dense int keys (raw
    /// timestamps share low bits across periodic grids).
    static std::uint64_t mix(std::uint64_t x) noexcept {
        x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
        x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
        return x ^ (x >> 31);
    }

    [[nodiscard]] std::size_t home(std::int64_t key) const noexcept {
        return static_cast<std::size_t>(mix(static_cast<std::uint64_t>(key))) & mask_;
    }

    void grow() {
        std::vector<Slot> old = std::move(slots_);
        const std::size_t next = old.empty() ? 16 : old.size() * 2;
        slots_.assign(next, Slot{});
        mask_ = next - 1;
        for (const Slot& slot : old) {
            if (slot.value != nullptr) {
                std::size_t i = home(slot.key);
                while (slots_[i].value != nullptr) {
                    i = (i + 1) & mask_;
                }
                slots_[i] = slot;
            }
        }
    }

    std::vector<Slot> slots_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
};

} // namespace sa::util
