#include "util/string_util.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cmath>

namespace sa {

std::vector<std::string> split(std::string_view text, char delim) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = text.find(delim, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(text.substr(start));
            break;
        }
        out.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

std::string_view trim(std::string_view text) {
    std::size_t b = 0;
    std::size_t e = text.size();
    while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) {
        ++b;
    }
    while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) {
        --e;
    }
    return text.substr(b, e - b);
}

bool starts_with(std::string_view text, std::string_view prefix) {
    return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
    return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view text) {
    std::string out(text);
    for (char& c : out) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    return out;
}

std::string format(const char* fmt, ...) {
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::string out;
    if (needed > 0) {
        out.resize(static_cast<std::size_t>(needed));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    }
    va_end(args);
    return out;
}

std::string human_duration_ns(long long ns) {
    const double v = static_cast<double>(ns);
    if (std::llabs(ns) >= 1'000'000'000LL) {
        return format("%.3fs", v / 1e9);
    }
    if (std::llabs(ns) >= 1'000'000LL) {
        return format("%.3fms", v / 1e6);
    }
    if (std::llabs(ns) >= 1'000LL) {
        return format("%.3fus", v / 1e3);
    }
    return format("%lldns", ns);
}

} // namespace sa
