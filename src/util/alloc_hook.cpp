// Interposing operator new/delete + the counting accessors. Keep EVERYTHING
// of the harness in this one translation unit: static-library pull-in is the
// test-only hook (see alloc_hook.hpp). Do not add other utilities here.

#include "util/alloc_hook.hpp"

#include <cstdlib>
#include <new>

namespace sa::util::alloc_hook {

namespace {

struct ThreadCounters {
    std::uint64_t allocations = 0;
    std::uint64_t deallocations = 0;
    bool counting = false;
};

thread_local ThreadCounters t_counters;

void* counted_allocate(std::size_t size) {
    if (t_counters.counting) {
        ++t_counters.allocations;
    }
    // Standard-conformant failure protocol: retry through the new-handler.
    for (;;) {
        if (void* p = std::malloc(size == 0 ? 1 : size)) {
            return p;
        }
        std::new_handler handler = std::get_new_handler();
        if (handler == nullptr) {
            throw std::bad_alloc{};
        }
        handler();
    }
}

void* counted_allocate_nothrow(std::size_t size) noexcept {
    if (t_counters.counting) {
        ++t_counters.allocations;
    }
    return std::malloc(size == 0 ? 1 : size);
}

void counted_deallocate(void* p) noexcept {
    if (p == nullptr) {
        return;
    }
    if (t_counters.counting) {
        ++t_counters.deallocations;
    }
    std::free(p);
}

} // namespace

bool interposed() noexcept { return true; }

bool set_counting(bool enabled) noexcept {
    const bool previous = t_counters.counting;
    t_counters.counting = enabled;
    return previous;
}

bool counting() noexcept { return t_counters.counting; }

std::uint64_t thread_allocations() noexcept { return t_counters.allocations; }

std::uint64_t thread_deallocations() noexcept { return t_counters.deallocations; }

CountScope::CountScope() noexcept
    : previous_(set_counting(true)),
      start_allocations_(thread_allocations()),
      start_deallocations_(thread_deallocations()) {}

CountScope::~CountScope() { set_counting(previous_); }

std::uint64_t CountScope::allocations() const noexcept {
    return thread_allocations() - start_allocations_;
}

std::uint64_t CountScope::deallocations() const noexcept {
    return thread_deallocations() - start_deallocations_;
}

} // namespace sa::util::alloc_hook

// ---------------------------------------------------------------------------
// Global replacements ([new.delete.single] / [new.delete.array]). Unaligned
// forms only — the codebase has no over-aligned types, and the library
// defaults for align_val_t allocate independently of these, so the pairing
// stays consistent either way.
// ---------------------------------------------------------------------------

void* operator new(std::size_t size) {
    return sa::util::alloc_hook::counted_allocate(size);
}

void* operator new[](std::size_t size) {
    return sa::util::alloc_hook::counted_allocate(size);
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
    return sa::util::alloc_hook::counted_allocate_nothrow(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
    return sa::util::alloc_hook::counted_allocate_nothrow(size);
}

void operator delete(void* p) noexcept { sa::util::alloc_hook::counted_deallocate(p); }

void operator delete[](void* p) noexcept { sa::util::alloc_hook::counted_deallocate(p); }

void operator delete(void* p, std::size_t) noexcept {
    sa::util::alloc_hook::counted_deallocate(p);
}

void operator delete[](void* p, std::size_t) noexcept {
    sa::util::alloc_hook::counted_deallocate(p);
}

void operator delete(void* p, const std::nothrow_t&) noexcept {
    sa::util::alloc_hook::counted_deallocate(p);
}

void operator delete[](void* p, const std::nothrow_t&) noexcept {
    sa::util::alloc_hook::counted_deallocate(p);
}
