#include "util/assert.hpp"

#include <sstream>

namespace sa {

namespace {
std::string format_message(const char* kind, const char* expr, const char* file, int line,
                           const std::string& msg) {
    std::ostringstream os;
    os << kind << " failed: (" << expr << ") at " << file << ":" << line;
    if (!msg.empty()) {
        os << " — " << msg;
    }
    return os.str();
}

std::string stable_message(const char* kind, const char* expr, const std::string& msg) {
    std::ostringstream os;
    os << kind << " failed: (" << expr << ")";
    if (!msg.empty()) {
        os << " — " << msg;
    }
    return os.str();
}
} // namespace

ContractViolation::ContractViolation(const char* kind, const char* expr, const char* file,
                                     int line, const std::string& msg)
    : std::logic_error(format_message(kind, expr, file, line, msg)),
      expr_(expr),
      file_(file),
      line_(line),
      message_(stable_message(kind, expr, msg)) {}

namespace detail {

void contract_failed(const char* kind, const char* expr, const char* file, int line,
                     const std::string& msg) {
    throw ContractViolation(kind, expr, file, line, msg);
}

} // namespace detail
} // namespace sa
