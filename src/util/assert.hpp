#pragma once
// Lightweight contract-checking macros used across the library.
//
// SA_ASSERT   — internal invariant; violation indicates a library bug.
// SA_REQUIRE  — precondition on a public API; violation indicates caller error.
// Both throw sa::ContractViolation so tests can verify misuse is rejected
// (EXPECT_THROW) instead of aborting the process.

#include <stdexcept>
#include <string>

namespace sa {

/// Thrown when an SA_ASSERT/SA_REQUIRE contract is violated.
class ContractViolation : public std::logic_error {
public:
    ContractViolation(const char* kind, const char* expr, const char* file, int line,
                      const std::string& msg);

    [[nodiscard]] const char* expression() const noexcept { return expr_; }
    [[nodiscard]] const char* file() const noexcept { return file_; }
    [[nodiscard]] int line() const noexcept { return line_; }
    /// The violation without the file:line suffix of what() — a stable form
    /// for reports and reproducer corpora that must not churn when code
    /// moves (e.g. sa::campaign verdicts).
    [[nodiscard]] const std::string& message() const noexcept { return message_; }

private:
    const char* expr_;
    const char* file_;
    int line_;
    std::string message_;
};

namespace detail {
[[noreturn]] void contract_failed(const char* kind, const char* expr, const char* file,
                                  int line, const std::string& msg);
} // namespace detail

} // namespace sa

#define SA_ASSERT(expr, msg)                                                          \
    do {                                                                              \
        if (!(expr)) {                                                                \
            ::sa::detail::contract_failed("assertion", #expr, __FILE__, __LINE__,     \
                                          (msg));                                     \
        }                                                                             \
    } while (false)

#define SA_REQUIRE(expr, msg)                                                         \
    do {                                                                              \
        if (!(expr)) {                                                                \
            ::sa::detail::contract_failed("precondition", #expr, __FILE__, __LINE__,  \
                                          (msg));                                     \
        }                                                                             \
    } while (false)
