#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace sa {

void RunningStats::add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
    if (other.n_ == 0) {
        return;
    }
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void RunningStats::reset() noexcept { *this = RunningStats{}; }

double RunningStats::mean() const noexcept { return n_ ? mean_ : 0.0; }

double RunningStats::variance() const noexcept {
    return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::min() const noexcept { return n_ ? min_ : 0.0; }

double RunningStats::max() const noexcept { return n_ ? max_ : 0.0; }

void SampleSet::add(double x) {
    if (samples_.capacity() == 0) {
        // Skip the 1/2/4/8 doubling ramp: even short-lived sample sets (one
        // latency series per bench world) record a few observations.
        samples_.reserve(16);
    }
    samples_.push_back(x);
    sorted_ = false;
}

double SampleSet::mean() const {
    SA_REQUIRE(!samples_.empty(), "mean of empty sample set");
    double sum = 0.0;
    for (double s : samples_) {
        sum += s;
    }
    return sum / static_cast<double>(samples_.size());
}

double SampleSet::min() const {
    SA_REQUIRE(!samples_.empty(), "min of empty sample set");
    return *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::max() const {
    SA_REQUIRE(!samples_.empty(), "max of empty sample set");
    return *std::max_element(samples_.begin(), samples_.end());
}

double SampleSet::percentile(double p) const {
    SA_REQUIRE(!samples_.empty(), "percentile of empty sample set");
    SA_REQUIRE(p >= 0.0 && p <= 100.0, "percentile must be within [0,100]");
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    if (p <= 0.0) {
        return samples_.front();
    }
    const auto n = samples_.size();
    const auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * static_cast<double>(n)));
    return samples_[std::min(rank, n) - 1];
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)), counts_(buckets, 0) {
    SA_REQUIRE(hi > lo, "histogram range must be non-empty");
    SA_REQUIRE(buckets > 0, "histogram needs at least one bucket");
}

void Histogram::add(double x) noexcept {
    std::size_t i;
    if (x <= lo_) {
        i = 0;
    } else if (x >= hi_) {
        i = counts_.size() - 1;
    } else {
        i = static_cast<std::size_t>((x - lo_) / width_);
        i = std::min(i, counts_.size() - 1);
    }
    ++counts_[i];
    ++total_;
}

std::uint64_t Histogram::bucket(std::size_t i) const {
    SA_REQUIRE(i < counts_.size(), "bucket index out of range");
    return counts_[i];
}

double Histogram::bucket_lo(std::size_t i) const {
    SA_REQUIRE(i < counts_.size(), "bucket index out of range");
    return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const { return bucket_lo(i) + width_; }

double Histogram::quantile(double q) const {
    SA_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be within [0,1]");
    SA_REQUIRE(total_ > 0, "quantile of empty histogram");
    const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total_));
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const std::uint64_t next = cum + counts_[i];
        if (next >= target && counts_[i] > 0) {
            const double frac =
                counts_[i] ? static_cast<double>(target - cum) / static_cast<double>(counts_[i])
                           : 0.0;
            return bucket_lo(i) + frac * width_;
        }
        cum = next;
    }
    return hi_;
}

} // namespace sa
