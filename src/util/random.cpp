#include "util/random.hpp"

namespace sa {

std::int64_t RandomEngine::uniform_int(std::int64_t lo, std::int64_t hi) {
    SA_REQUIRE(lo <= hi, "uniform_int requires lo <= hi");
    std::uniform_int_distribution<std::int64_t> dist(lo, hi);
    return dist(rng_);
}

double RandomEngine::uniform(double lo, double hi) {
    SA_REQUIRE(lo <= hi, "uniform requires lo <= hi");
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(rng_);
}

bool RandomEngine::chance(double p) {
    SA_REQUIRE(p >= 0.0 && p <= 1.0, "probability must be within [0,1]");
    if (p <= 0.0) {
        return false;
    }
    if (p >= 1.0) {
        return true;
    }
    std::bernoulli_distribution dist(p);
    return dist(rng_);
}

double RandomEngine::normal(double mean, double sigma) {
    SA_REQUIRE(sigma >= 0.0, "sigma must be non-negative");
    if (sigma == 0.0) {
        return mean;
    }
    std::normal_distribution<double> dist(mean, sigma);
    return dist(rng_);
}

double RandomEngine::exponential(double mean) {
    SA_REQUIRE(mean > 0.0, "exponential mean must be positive");
    std::exponential_distribution<double> dist(1.0 / mean);
    return dist(rng_);
}

std::size_t RandomEngine::index(std::size_t size) {
    SA_REQUIRE(size > 0, "cannot pick an index from an empty range");
    std::uniform_int_distribution<std::size_t> dist(0, size - 1);
    return dist(rng_);
}

RandomEngine RandomEngine::fork() {
    // Derive a child seed; splitmix-style finalizer decorrelates the streams.
    std::uint64_t s = rng_();
    s ^= s >> 30;
    s *= 0xbf58476d1ce4e5b9ULL;
    s ^= s >> 27;
    s *= 0x94d049bb133111ebULL;
    s ^= s >> 31;
    return RandomEngine(s);
}

} // namespace sa
