#pragma once
// Move-only type-erased callable with small-buffer inline storage.
//
// std::function keeps only ~16 bytes of inline storage on libstdc++ (and
// only for trivially-copyable targets), so kernel event actions capturing
// {this, token, id} heap-allocate on every schedule. InlineCallable widens
// the inline buffer (24 bytes by default — three pointers, the dense-cohort
// sweet spot: the event queue's Item stays 40 bytes, and measured cohort
// push throughput is bandwidth-bound in sizeof(Item)) and drops
// copyability, which the event path never needed: actions are moved into
// the queue, moved out to execute, and destroyed. Callables larger than the
// buffer (or with throwing moves, or over-aligned beyond 8) fall back to a
// single heap allocation, preserving correctness for rare fat captures —
// long-lived callables like periodic bodies pay that once at registration,
// not per event, because relocation of a heap target moves a pointer.
//
// Semantics intentionally mirror the std::function subset the kernel uses:
// implicit construction from any callable, assignment from nullptr to drop
// the target early, explicit bool, and invocation. Invoking an empty
// InlineCallable is undefined (the queue rejects empty actions at push).

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace sa::util {

template <typename Signature, std::size_t InlineBytes = 24>
class InlineCallable; // primary template left undefined

template <typename R, typename... Args, std::size_t InlineBytes>
class InlineCallable<R(Args...), InlineBytes> {
public:
    static constexpr std::size_t inline_bytes = InlineBytes;

    InlineCallable() noexcept = default;
    // NOLINTNEXTLINE(google-explicit-constructor): mirrors std::function
    InlineCallable(std::nullptr_t) noexcept {}

    template <typename F, typename D = std::decay_t<F>,
              typename = std::enable_if_t<!std::is_same_v<D, InlineCallable> &&
                                          std::is_invocable_r_v<R, D&, Args...>>>
    // NOLINTNEXTLINE(google-explicit-constructor): mirrors std::function
    InlineCallable(F&& f) {
        construct<D>(std::forward<F>(f));
    }

    InlineCallable(InlineCallable&& other) noexcept { move_from(other); }

    InlineCallable& operator=(InlineCallable&& other) noexcept {
        if (this != &other) {
            reset();
            move_from(other);
        }
        return *this;
    }

    InlineCallable& operator=(std::nullptr_t) noexcept {
        reset();
        return *this;
    }

    template <typename F, typename D = std::decay_t<F>,
              typename = std::enable_if_t<!std::is_same_v<D, InlineCallable> &&
                                          std::is_invocable_r_v<R, D&, Args...>>>
    InlineCallable& operator=(F&& f) {
        reset();
        construct<D>(std::forward<F>(f));
        return *this;
    }

    InlineCallable(const InlineCallable&) = delete;
    InlineCallable& operator=(const InlineCallable&) = delete;

    ~InlineCallable() { reset(); }

    [[nodiscard]] explicit operator bool() const noexcept { return vtable_ != nullptr; }

    friend bool operator==(const InlineCallable& c, std::nullptr_t) noexcept {
        return c.vtable_ == nullptr;
    }

    R operator()(Args... args) {
        return vtable_->invoke(storage_, std::forward<Args>(args)...);
    }

    void reset() noexcept {
        if (vtable_ != nullptr) {
            if (!vtable_->trivial_destroy) {
                vtable_->destroy(storage_);
            }
            vtable_ = nullptr;
        }
    }

    /// True when the current target lives in the inline buffer (diagnostic;
    /// empty callables report true — there is nothing on the heap).
    [[nodiscard]] bool is_inline() const noexcept {
        return vtable_ == nullptr || !vtable_->heap;
    }

private:
    struct VTable {
        R (*invoke)(void*, Args&&...);
        /// Move-construct dst from src, then destroy src. Never throws: only
        /// nothrow-movable targets are stored inline, heap targets relocate
        /// by pointer.
        void (*relocate)(void* dst, void* src) noexcept;
        void (*destroy)(void*) noexcept;
        bool heap;
        /// memcpy of the storage buffer IS relocation: trivially copyable
        /// inline targets and heap targets (whose buffer holds only a D*).
        /// Keeps the two moves per event-queue push free of indirect calls —
        /// the kernel's lambdas capture {this, pointers, ints} and qualify.
        bool trivial_relocate;
        /// Destruction is a no-op (trivially destructible inline target).
        bool trivial_destroy;
    };

    // Pointer alignment, not max_align_t: 16-byte alignment would pad the
    // whole object (and every queue Item holding one) up to the next
    // 16-byte multiple, and the dense-cohort benches are bandwidth-bound in
    // sizeof. Over-aligned captures take the heap path via fits_inline_v.
    static constexpr std::size_t kStorageAlign = alignof(void*);

    template <typename D>
    static constexpr bool fits_inline_v =
        sizeof(D) <= InlineBytes && alignof(D) <= kStorageAlign &&
        std::is_nothrow_move_constructible_v<D>;

    template <typename D>
    struct InlineOps {
        static R invoke(void* p, Args&&... args) {
            return (*std::launder(reinterpret_cast<D*>(p)))(std::forward<Args>(args)...);
        }
        static void relocate(void* dst, void* src) noexcept {
            D* s = std::launder(reinterpret_cast<D*>(src));
            ::new (dst) D(std::move(*s));
            s->~D();
        }
        static void destroy(void* p) noexcept {
            std::launder(reinterpret_cast<D*>(p))->~D();
        }
        static constexpr VTable vtable{&invoke, &relocate, &destroy, false,
                                       std::is_trivially_copyable_v<D>,
                                       std::is_trivially_destructible_v<D>};
    };

    template <typename D>
    struct HeapOps {
        static R invoke(void* p, Args&&... args) {
            return (**std::launder(reinterpret_cast<D**>(p)))(std::forward<Args>(args)...);
        }
        static void relocate(void* dst, void* src) noexcept {
            ::new (dst) D*(*std::launder(reinterpret_cast<D**>(src)));
        }
        static void destroy(void* p) noexcept {
            delete *std::launder(reinterpret_cast<D**>(p));
        }
        static constexpr VTable vtable{&invoke, &relocate, &destroy, true,
                                       /*trivial_relocate=*/true,
                                       /*trivial_destroy=*/false};
    };

    template <typename D, typename F>
    void construct(F&& f) {
        if constexpr (fits_inline_v<D>) {
            ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
            vtable_ = &InlineOps<D>::vtable;
        } else {
            ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
            vtable_ = &HeapOps<D>::vtable;
        }
    }

    void move_from(InlineCallable& other) noexcept {
        if (other.vtable_ != nullptr) {
            if (other.vtable_->trivial_relocate) {
                // Whole-buffer copy regardless of target size: fixed-size
                // memcpy inlines to a few vector moves, no indirect call.
                std::memcpy(static_cast<void*>(storage_), other.storage_,
                            InlineBytes);
            } else {
                other.vtable_->relocate(storage_, other.storage_);
            }
            vtable_ = other.vtable_;
            other.vtable_ = nullptr;
        }
    }

    alignas(kStorageAlign) unsigned char storage_[InlineBytes];
    const VTable* vtable_ = nullptr;
};

} // namespace sa::util
