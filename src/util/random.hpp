#pragma once
// Deterministic random engine wrapper. Every stochastic element of the
// simulation (sensor noise, fault injection, workload generators) draws from
// an explicitly seeded RandomEngine so experiments are reproducible.

#include <cstdint>
#include <random>
#include <vector>

#include "util/assert.hpp"

namespace sa {

class RandomEngine {
public:
    explicit RandomEngine(std::uint64_t seed = 0x5AA5F00DULL) : rng_(seed) {}

    /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    /// Uniform real in [lo, hi). Requires lo <= hi.
    double uniform(double lo, double hi);

    /// Bernoulli trial with success probability p in [0, 1].
    bool chance(double p);

    /// Normal distribution with the given mean and standard deviation (sigma >= 0).
    double normal(double mean, double sigma);

    /// Exponential inter-arrival with the given mean (> 0).
    double exponential(double mean);

    /// Pick a uniformly random index into a container of the given size (> 0).
    std::size_t index(std::size_t size);

    /// Fisher-Yates shuffle.
    template <typename T>
    void shuffle(std::vector<T>& items) {
        for (std::size_t i = items.size(); i > 1; --i) {
            std::swap(items[i - 1], items[index(i)]);
        }
    }

    /// Fork a child engine with an independent stream derived from this one.
    RandomEngine fork();

    std::mt19937_64& raw() noexcept { return rng_; }

private:
    std::mt19937_64 rng_;
};

} // namespace sa
