#pragma once
// Strongly-typed simulation time. The whole library uses integer nanoseconds;
// this avoids floating-point drift in event ordering and makes CAN bit timing
// exact at every standard bitrate.

#include <compare>
#include <cstdint>
#include <string>

namespace sa::sim {

class Duration;

/// Absolute simulation time (ns since simulation start).
class Time {
public:
    constexpr Time() = default;
    constexpr explicit Time(std::int64_t ns) : ns_(ns) {}

    [[nodiscard]] constexpr std::int64_t ns() const noexcept { return ns_; }
    [[nodiscard]] constexpr double us() const noexcept { return static_cast<double>(ns_) / 1e3; }
    [[nodiscard]] constexpr double ms() const noexcept { return static_cast<double>(ns_) / 1e6; }
    [[nodiscard]] constexpr double s() const noexcept { return static_cast<double>(ns_) / 1e9; }

    static constexpr Time zero() noexcept { return Time(0); }
    static constexpr Time max() noexcept { return Time(INT64_MAX); }

    constexpr auto operator<=>(const Time&) const = default;

    [[nodiscard]] std::string str() const;

private:
    std::int64_t ns_ = 0;
};

/// Relative time span (ns). Negative spans are allowed for arithmetic but
/// cannot be used to schedule events.
class Duration {
public:
    constexpr Duration() = default;
    constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}

    static constexpr Duration ns(std::int64_t v) noexcept { return Duration(v); }
    static constexpr Duration us(std::int64_t v) noexcept { return Duration(v * 1'000); }
    static constexpr Duration ms(std::int64_t v) noexcept { return Duration(v * 1'000'000); }
    static constexpr Duration sec(std::int64_t v) noexcept { return Duration(v * 1'000'000'000); }
    static constexpr Duration from_seconds(double s) noexcept {
        return Duration(static_cast<std::int64_t>(s * 1e9));
    }
    static constexpr Duration zero() noexcept { return Duration(0); }

    [[nodiscard]] constexpr std::int64_t count_ns() const noexcept { return ns_; }
    [[nodiscard]] constexpr double to_us() const noexcept { return static_cast<double>(ns_) / 1e3; }
    [[nodiscard]] constexpr double to_ms() const noexcept { return static_cast<double>(ns_) / 1e6; }
    [[nodiscard]] constexpr double to_seconds() const noexcept {
        return static_cast<double>(ns_) / 1e9;
    }

    constexpr auto operator<=>(const Duration&) const = default;

    [[nodiscard]] std::string str() const;

private:
    std::int64_t ns_ = 0;
};

constexpr Time operator+(Time t, Duration d) noexcept { return Time(t.ns() + d.count_ns()); }
constexpr Time operator-(Time t, Duration d) noexcept { return Time(t.ns() - d.count_ns()); }
constexpr Duration operator-(Time a, Time b) noexcept { return Duration(a.ns() - b.ns()); }
constexpr Duration operator+(Duration a, Duration b) noexcept {
    return Duration(a.count_ns() + b.count_ns());
}
constexpr Duration operator-(Duration a, Duration b) noexcept {
    return Duration(a.count_ns() - b.count_ns());
}
constexpr Duration operator*(Duration d, std::int64_t k) noexcept {
    return Duration(d.count_ns() * k);
}
constexpr Duration operator*(std::int64_t k, Duration d) noexcept { return d * k; }
constexpr Duration operator-(Duration d) noexcept { return Duration(-d.count_ns()); }

namespace literals {
constexpr Duration operator""_ns(unsigned long long v) { return Duration::ns(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_us(unsigned long long v) { return Duration::us(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_ms(unsigned long long v) { return Duration::ms(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_s(unsigned long long v) { return Duration::sec(static_cast<std::int64_t>(v)); }
} // namespace literals

} // namespace sa::sim
