#include "sim/simulator.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sa::sim {

namespace detail {
namespace {
thread_local Simulator* t_executing_domain = nullptr;
std::atomic<int> g_active_sharded_kernels{0};
} // namespace

Simulator* executing_domain() noexcept { return t_executing_domain; }
void set_executing_domain(Simulator* simulator) noexcept {
    t_executing_domain = simulator;
}
int active_sharded_kernels() noexcept {
    return g_active_sharded_kernels.load(std::memory_order_relaxed);
}
void add_active_sharded_kernels(int delta) noexcept {
    g_active_sharded_kernels.fetch_add(delta, std::memory_order_relaxed);
}
} // namespace detail

EventHandle Simulator::schedule(Duration delay, EventQueue::Action action) {
    SA_REQUIRE(delay.count_ns() >= 0, "cannot schedule into the past");
    SA_REQUIRE(owned_by_caller(),
               "event scheduled on a foreign simulator from inside a window; "
               "use sim::post() instead");
    return queue_.push(now_ + delay, std::move(action));
}

EventHandle Simulator::schedule_at(Time at, EventQueue::Action action) {
    SA_REQUIRE(at >= now_, "cannot schedule into the past");
    SA_REQUIRE(owned_by_caller(),
               "event scheduled on a foreign simulator from inside a window; "
               "use sim::post() instead");
    return queue_.push(at, std::move(action));
}

std::uint64_t Simulator::schedule_periodic(Duration period, EventQueue::Action action,
                                           Duration phase) {
    SA_REQUIRE(period.count_ns() > 0, "periodic activity needs a positive period");
    SA_REQUIRE(phase.count_ns() >= 0, "phase must be non-negative");
    SA_REQUIRE(owned_by_caller(),
               "periodic registered on a foreign simulator from inside a "
               "window; post() the registration to the owning domain instead");
    auto task = std::make_shared<PeriodicTask>();
    const std::uint64_t id = next_periodic_id_++;
    task->id = id;
    task->period = period;
    task->action = std::move(action);
    PeriodicTask& slot = *periodics_.emplace(id, std::move(task)).first->second;
    arm_periodic(slot, phase);
    return id;
}

Simulator::PeriodicTask* Simulator::find_periodic(std::uint64_t id) noexcept {
    const auto it = periodics_.find(id);
    return it == periodics_.end() ? nullptr : it->second.get();
}

void Simulator::arm_periodic(PeriodicTask& task, Duration delay) {
    // The firing captures only {this, id} — small enough for std::function's
    // inline storage, so re-arming a periodic never heap-allocates. The id
    // indirection (instead of a pointer) keeps the firing safe even if the
    // task cancels itself from inside its own action.
    const std::uint64_t id = task.id;
    task.next = schedule(delay, [this, id] { fire_periodic(id); });
}

void Simulator::fire_periodic(std::uint64_t id) {
    const auto it = periodics_.find(id);
    if (it == periodics_.end()) {
        return; // cancelled between scheduling and firing (belt and braces)
    }
    // Pin the task across the call: the action may cancel_periodic its own
    // id, which erases the map entry — the std::function and its captures
    // must outlive their invocation.
    const std::shared_ptr<PeriodicTask> task = it->second;
    task->next = EventHandle{};
    task->action();
    // Re-resolve before re-arming: only still-registered tasks continue.
    PeriodicTask* live = find_periodic(id);
    if (live != nullptr) {
        arm_periodic(*live, live->period);
    }
}

void Simulator::cancel_periodic(std::uint64_t id) {
    SA_REQUIRE(owned_by_caller(),
               "periodic cancelled on a foreign simulator from inside a "
               "window; post() the cancellation to the owning domain instead");
    const auto it = periodics_.find(id);
    if (it != periodics_.end()) {
        queue_.cancel(it->second->next); // eager: no stale event stays queued
        periodics_.erase(it);
    }
}

std::size_t Simulator::run_until(Time until) {
    std::size_t executed = 0;
    stop_requested_.store(false, std::memory_order_relaxed);
    while (!queue_.empty() && !stop_requested_.load(std::memory_order_relaxed)) {
        const Time next = queue_.next_time();
        if (next > until) {
            break;
        }
        auto popped = queue_.pop();
        SA_ASSERT(popped.at >= now_, "event queue time went backwards");
        now_ = popped.at;
        popped.action();
        ++executed;
        ++executed_;
    }
    // Even if nothing fired, time advances to the horizon so subsequent
    // scheduling is relative to the end of the observed window — except
    // after a stop(): jumping past still-pending events would strand them
    // in the past and poison every later drain.
    if (!stop_requested_.load(std::memory_order_relaxed) && now_ < until &&
        until != Time::max()) {
        now_ = until;
    }
    // Consume the stop request: it was honored by this run and must not
    // leak into a later run_batch() drain loop.
    stop_requested_.store(false, std::memory_order_relaxed);
    return executed;
}

void Simulator::advance_to(Time at) {
    SA_REQUIRE(at >= now_, "cannot advance the clock backwards");
    SA_REQUIRE(queue_.empty() || queue_.next_time() >= at,
               "cannot advance the clock past pending events");
    now_ = at;
}

std::size_t Simulator::run_batch(Time until) {
    if (stop_requested_.exchange(false, std::memory_order_relaxed)) {
        // stop() was requested (typically from within the previous cohort):
        // consume the request and end the caller's drain loop.
        return 0;
    }
    if (queue_.empty()) {
        return 0;
    }
    const Time next = queue_.next_time();
    if (next > until) {
        return 0;
    }
    SA_ASSERT(next >= now_, "event queue time went backwards");
    // Drain into a local buffer (recycled through batch_) so that an action
    // which re-enters run_batch() cannot invalidate the cohort being
    // iterated; the innermost call simply grows its own buffer.
    std::vector<EventQueue::Action> batch = std::move(batch_);
    batch.clear();
    now_ = queue_.pop_batch(batch);
    for (auto& action : batch) {
        action();
        action = nullptr; // destroy captures promptly, like run_until()
        ++executed_;
    }
    const std::size_t executed = batch.size();
    batch_ = std::move(batch); // hand the (largest) buffer back for reuse
    return executed;
}

bool Simulator::step(Time until) {
    if (queue_.empty()) {
        return false;
    }
    const Time next = queue_.next_time();
    if (next > until) {
        return false;
    }
    auto popped = queue_.pop();
    now_ = popped.at;
    popped.action();
    ++executed_;
    return true;
}

} // namespace sa::sim
