#include "sim/simulator.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sa::sim {

namespace detail {
namespace {
thread_local Simulator* t_executing_domain = nullptr;
std::atomic<int> g_active_sharded_kernels{0};
} // namespace

Simulator* executing_domain() noexcept { return t_executing_domain; }
void set_executing_domain(Simulator* simulator) noexcept {
    t_executing_domain = simulator;
}
int active_sharded_kernels() noexcept {
    return g_active_sharded_kernels.load(std::memory_order_relaxed);
}
void add_active_sharded_kernels(int delta) noexcept {
    g_active_sharded_kernels.fetch_add(delta, std::memory_order_relaxed);
}
} // namespace detail

EventHandle Simulator::schedule(Duration delay, EventQueue::Action action) {
    SA_REQUIRE(delay.count_ns() >= 0, "cannot schedule into the past");
    SA_REQUIRE(owned_by_caller(),
               "event scheduled on a foreign simulator from inside a window; "
               "use sim::post() instead");
    return queue_.push(now_ + delay, std::move(action));
}

EventHandle Simulator::schedule_at(Time at, EventQueue::Action action) {
    SA_REQUIRE(at >= now_, "cannot schedule into the past");
    SA_REQUIRE(owned_by_caller(),
               "event scheduled on a foreign simulator from inside a window; "
               "use sim::post() instead");
    return queue_.push(at, std::move(action));
}

namespace {
/// id layout: high 32 bits = slot generation, low 32 bits = slot index + 1.
constexpr std::uint32_t periodic_index(std::uint64_t id) noexcept {
    return static_cast<std::uint32_t>(id & 0xFFFF'FFFFULL) - 1;
}
constexpr std::uint32_t periodic_generation(std::uint64_t id) noexcept {
    return static_cast<std::uint32_t>(id >> 32);
}
} // namespace

std::uint64_t Simulator::schedule_periodic(Duration period, EventQueue::Action action,
                                           Duration phase) {
    SA_REQUIRE(period.count_ns() > 0, "periodic activity needs a positive period");
    SA_REQUIRE(phase.count_ns() >= 0, "phase must be non-negative");
    SA_REQUIRE(owned_by_caller(),
               "periodic registered on a foreign simulator from inside a "
               "window; post() the registration to the owning domain instead");
    std::uint32_t index;
    if (!free_periodics_.empty()) {
        index = free_periodics_.back();
        free_periodics_.pop_back();
    } else {
        periodics_.push_back(PeriodicSlot{});
        // Keep the free list's capacity >= total slots so cancel_periodic's
        // push never allocates in steady state.
        free_periodics_.reserve(periodics_.capacity());
        index = static_cast<std::uint32_t>(periodics_.size() - 1);
    }
    PeriodicSlot& slot = periodics_[index];
    slot.period = period;
    slot.action = std::move(action);
    slot.live = true;
    const std::uint64_t id =
        (static_cast<std::uint64_t>(slot.generation) << 32) | (index + 1);
    arm_periodic(slot, id, phase);
    return id;
}

void Simulator::arm_periodic(PeriodicSlot& slot, std::uint64_t id, Duration delay) {
    // The firing captures only {this, id} — well within the Action's inline
    // buffer, so re-arming a periodic never heap-allocates. The id
    // indirection (instead of a pointer) keeps the firing safe even if the
    // task cancels itself from inside its own action.
    slot.next = schedule(delay, [this, id] { fire_periodic(id); });
}

void Simulator::fire_periodic(std::uint64_t id) {
    const std::uint32_t index = periodic_index(id);
    if (index >= periodics_.size()) {
        return; // cancelled between scheduling and firing (belt and braces)
    }
    {
        PeriodicSlot& slot = periodics_[index];
        if (!slot.live || slot.generation != periodic_generation(id)) {
            return; // slot was cancelled (and possibly reused) meanwhile
        }
        slot.next = EventHandle{};
    }
    // Move the action out of the slot for the call: the action may
    // cancel_periodic its own id (which would null the slot's action) or
    // register new periodics (which may reallocate the vector); its captures
    // must outlive their invocation either way.
    EventQueue::Action action = std::move(periodics_[index].action);
    action();
    // Re-resolve before re-arming: only a still-live, same-generation slot
    // gets the action back and continues.
    PeriodicSlot& slot = periodics_[index];
    if (slot.live && slot.generation == periodic_generation(id)) {
        slot.action = std::move(action);
        arm_periodic(slot, id, slot.period);
    }
}

void Simulator::cancel_periodic(std::uint64_t id) {
    SA_REQUIRE(owned_by_caller(),
               "periodic cancelled on a foreign simulator from inside a "
               "window; post() the cancellation to the owning domain instead");
    const std::uint32_t index = periodic_index(id);
    if (index >= periodics_.size()) {
        return;
    }
    PeriodicSlot& slot = periodics_[index];
    if (!slot.live || slot.generation != periodic_generation(id)) {
        return; // already cancelled (possibly a stale id on a reused slot)
    }
    queue_.cancel(slot.next); // eager: no stale event stays queued
    slot.next = EventHandle{};
    slot.live = false;
    slot.action = nullptr;
    ++slot.generation; // stale ids can never act on this slot again
    free_periodics_.push_back(index);
}

std::size_t Simulator::run_until(Time until) {
    std::size_t executed = 0;
    stop_requested_.store(false, std::memory_order_relaxed);
    EventQueue::Popped popped;
    while (!stop_requested_.load(std::memory_order_relaxed) &&
           queue_.pop_until(until, popped)) {
        SA_ASSERT(popped.at >= now_, "event queue time went backwards");
        now_ = popped.at;
        popped.action();
        popped.action = nullptr; // destroy captures promptly
        ++executed;
        ++executed_;
    }
    // Even if nothing fired, time advances to the horizon so subsequent
    // scheduling is relative to the end of the observed window — except
    // after a stop(): jumping past still-pending events would strand them
    // in the past and poison every later drain.
    if (!stop_requested_.load(std::memory_order_relaxed) && now_ < until &&
        until != Time::max()) {
        now_ = until;
    }
    // Consume the stop request: it was honored by this run and must not
    // leak into a later run_batch() drain loop.
    stop_requested_.store(false, std::memory_order_relaxed);
    return executed;
}

void Simulator::advance_to(Time at) {
    SA_REQUIRE(at >= now_, "cannot advance the clock backwards");
    SA_REQUIRE(queue_.empty() || queue_.next_time() >= at,
               "cannot advance the clock past pending events");
    now_ = at;
}

std::size_t Simulator::run_batch(Time until) {
    if (stop_requested_.exchange(false, std::memory_order_relaxed)) {
        // stop() was requested (typically from within the previous cohort):
        // consume the request and end the caller's drain loop.
        return 0;
    }
    if (queue_.empty()) {
        return 0;
    }
    const Time next = queue_.next_time();
    if (next > until) {
        return 0;
    }
    SA_ASSERT(next >= now_, "event queue time went backwards");
    // Drain into a local buffer (recycled through batch_) so that an action
    // which re-enters run_batch() cannot invalidate the cohort being
    // iterated; the innermost call simply grows its own buffer.
    std::vector<EventQueue::Action> batch = std::move(batch_);
    batch.clear();
    now_ = queue_.pop_batch(batch);
    for (auto& action : batch) {
        action();
        action = nullptr; // destroy captures promptly, like run_until()
        ++executed_;
    }
    const std::size_t executed = batch.size();
    batch_ = std::move(batch); // hand the (largest) buffer back for reuse
    return executed;
}

bool Simulator::step(Time until) {
    EventQueue::Popped popped;
    if (!queue_.pop_until(until, popped)) {
        return false;
    }
    now_ = popped.at;
    popped.action();
    ++executed_;
    return true;
}

} // namespace sa::sim
