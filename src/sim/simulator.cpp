#include "sim/simulator.hpp"

#include <algorithm>
#include <memory>

#include "util/assert.hpp"

namespace sa::sim {

EventHandle Simulator::schedule(Duration delay, EventQueue::Action action) {
    SA_REQUIRE(delay.count_ns() >= 0, "cannot schedule into the past");
    return queue_.push(now_ + delay, std::move(action));
}

EventHandle Simulator::schedule_at(Time at, EventQueue::Action action) {
    SA_REQUIRE(at >= now_, "cannot schedule into the past");
    return queue_.push(at, std::move(action));
}

std::uint64_t Simulator::schedule_periodic(Duration period, EventQueue::Action action,
                                           Duration phase) {
    SA_REQUIRE(period.count_ns() > 0, "periodic activity needs a positive period");
    SA_REQUIRE(phase.count_ns() >= 0, "phase must be non-negative");
    auto task = std::make_shared<PeriodicTask>();
    task->id = next_periodic_id_++;
    task->period = period;
    task->action = std::move(action);
    periodics_.push_back(task);
    schedule(phase, [this, task] { fire_periodic(task); });
    return task->id;
}

void Simulator::fire_periodic(std::shared_ptr<PeriodicTask> task) {
    if (task->cancelled) {
        return;
    }
    task->action();
    if (!task->cancelled) {
        schedule(task->period, [this, task] { fire_periodic(task); });
    }
}

void Simulator::cancel_periodic(std::uint64_t id) {
    for (auto& task : periodics_) {
        if (task->id == id) {
            task->cancelled = true;
        }
    }
    periodics_.erase(std::remove_if(periodics_.begin(), periodics_.end(),
                                    [](const auto& t) { return t->cancelled; }),
                     periodics_.end());
}

std::size_t Simulator::run_until(Time until) {
    std::size_t executed = 0;
    stop_requested_ = false;
    while (!queue_.empty() && !stop_requested_) {
        const Time next = queue_.next_time();
        if (next > until) {
            break;
        }
        auto popped = queue_.pop();
        SA_ASSERT(popped.at >= now_, "event queue time went backwards");
        now_ = popped.at;
        popped.action();
        ++executed;
        ++executed_;
    }
    // Even if nothing fired, time advances to the horizon so subsequent
    // scheduling is relative to the end of the observed window.
    if (now_ < until && until != Time::max()) {
        now_ = until;
    }
    return executed;
}

bool Simulator::step(Time until) {
    if (queue_.empty()) {
        return false;
    }
    const Time next = queue_.next_time();
    if (next > until) {
        return false;
    }
    auto popped = queue_.pop();
    now_ = popped.at;
    popped.action();
    ++executed_;
    return true;
}

} // namespace sa::sim
