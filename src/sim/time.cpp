#include "sim/time.hpp"

#include "util/string_util.hpp"

namespace sa::sim {

std::string Time::str() const { return human_duration_ns(ns_); }

std::string Duration::str() const { return human_duration_ns(ns_); }

} // namespace sa::sim
