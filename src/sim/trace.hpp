#pragma once
// Event tracing: a bounded in-memory record of named simulation events with
// timestamps. Tests and experiment harnesses query it; example programs can
// dump it. Kept deliberately simple (no categories/levels beyond a tag).

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace sa::sim {

struct TraceRecord {
    Time at;
    std::string tag;    ///< machine-matchable event kind, e.g. "can.tx"
    std::string detail; ///< free-form human detail
};

class Trace {
public:
    explicit Trace(std::size_t capacity = 65536) : capacity_(capacity) {}

    void record(Time at, std::string tag, std::string detail = {});

    [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
    [[nodiscard]] std::uint64_t total_recorded() const noexcept { return total_; }

    /// All retained records, oldest first.
    [[nodiscard]] const std::deque<TraceRecord>& records() const noexcept { return records_; }

    /// Records whose tag matches exactly.
    [[nodiscard]] std::vector<TraceRecord> with_tag(const std::string& tag) const;

    /// Count of retained records with the given tag.
    [[nodiscard]] std::size_t count_tag(const std::string& tag) const;

    void clear() noexcept {
        records_.clear();
        total_ = 0;
    }

private:
    std::size_t capacity_;
    std::deque<TraceRecord> records_;
    std::uint64_t total_ = 0;
};

} // namespace sa::sim
