#pragma once
// Event tracing: a bounded in-memory record of named simulation events with
// timestamps. Tests and experiment harnesses query it; example programs can
// dump it. Kept deliberately simple (no categories/levels beyond a tag).
//
// Storage is a ring buffer over a flat vector: the vector grows (lazily) to
// the configured capacity once and then wraps, recycling each TraceRecord in
// place — tag and detail are assign()ed into the evicted record's strings,
// so a saturated trace records events without touching the heap at all.
// (The previous deque-based design paid a node churn per eviction.)

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"
#include "util/assert.hpp"

namespace sa::sim {

struct TraceRecord {
    Time at;
    std::string tag;    ///< machine-matchable event kind, e.g. "can.tx"
    std::string detail; ///< free-form human detail
};

class Trace {
public:
    explicit Trace(std::size_t capacity = 65536) : capacity_(capacity) {
        SA_REQUIRE(capacity_ >= 1, "trace capacity must be at least 1");
    }

    void record(Time at, std::string_view tag, std::string_view detail = {});

    /// Start a record and hand back its (cleared) detail string so the
    /// caller can format into the retained storage directly — the CAN bus
    /// uses this to build arbitration details without a temporary string.
    /// The reference is valid until the next record() / append_record() /
    /// clear().
    std::string& append_record(Time at, std::string_view tag);

    [[nodiscard]] std::size_t size() const noexcept { return ring_.size(); }
    [[nodiscard]] std::uint64_t total_recorded() const noexcept { return total_; }

    /// Lightweight range over the retained records, oldest first. Valid
    /// until the trace is next mutated (like iterating the container the
    /// old API exposed).
    class View {
    public:
        class iterator {
        public:
            using value_type = TraceRecord;
            using reference = const TraceRecord&;
            using difference_type = std::ptrdiff_t;

            iterator() = default;
            iterator(const Trace* trace, std::size_t pos) : trace_(trace), pos_(pos) {}
            reference operator*() const { return trace_->at(pos_); }
            const TraceRecord* operator->() const { return &trace_->at(pos_); }
            iterator& operator++() {
                ++pos_;
                return *this;
            }
            iterator operator++(int) {
                iterator old = *this;
                ++pos_;
                return old;
            }
            bool operator==(const iterator&) const = default;

        private:
            const Trace* trace_ = nullptr;
            std::size_t pos_ = 0;
        };

        [[nodiscard]] iterator begin() const noexcept { return {trace_, 0}; }
        [[nodiscard]] iterator end() const noexcept { return {trace_, size_}; }
        [[nodiscard]] std::size_t size() const noexcept { return size_; }
        [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
        [[nodiscard]] const TraceRecord& front() const { return trace_->at(0); }
        [[nodiscard]] const TraceRecord& back() const { return trace_->at(size_ - 1); }
        [[nodiscard]] const TraceRecord& operator[](std::size_t i) const {
            return trace_->at(i);
        }

    private:
        friend class Trace;
        View(const Trace* trace, std::size_t size) : trace_(trace), size_(size) {}
        const Trace* trace_;
        std::size_t size_;
    };

    /// All retained records, oldest first.
    [[nodiscard]] View records() const noexcept { return View(this, ring_.size()); }

    /// Records whose tag matches exactly (copies, oldest first).
    [[nodiscard]] std::vector<TraceRecord> with_tag(const std::string& tag) const;

    /// Count of retained records with the given tag.
    [[nodiscard]] std::size_t count_tag(const std::string& tag) const;

    /// Drop all records. Keeps the ring's storage (records and their string
    /// capacities) for reuse.
    void clear() noexcept {
        ring_.clear();
        head_ = 0;
        total_ = 0;
    }

private:
    /// i-th retained record, oldest first. head_ is the eviction cursor:
    /// 0 until the ring first fills, after which it marks the oldest record.
    [[nodiscard]] const TraceRecord& at(std::size_t i) const {
        std::size_t pos = head_ + i;
        if (pos >= ring_.size()) {
            pos -= ring_.size();
        }
        return ring_[pos];
    }

    /// The record slot for the next event: a fresh slot while growing to
    /// capacity, the evicted oldest slot once saturated.
    TraceRecord& next_slot();

    std::size_t capacity_;
    std::vector<TraceRecord> ring_;
    std::size_t head_ = 0;
    std::uint64_t total_ = 0;
};

} // namespace sa::sim
